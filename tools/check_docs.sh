#!/usr/bin/env bash
# Docs consistency check (run by the CI docs job and tools/ci.sh):
#   1. every telemetry metric / span name used in src/ must be documented
#      in docs/METRICS.md;
#   2. no markdown file may contain a dead relative link.
# Pure grep/sed — no build needed.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. metric & span names ------------------------------------------------
# Telemetry names are literal strings by convention (see util/telemetry.hpp),
# so they can be harvested syntactically. The registry/tracer implementation
# and the tests use placeholder names and are excluded.
sources=$(find src -name '*.cpp' -o -name '*.hpp' | grep -v 'util/telemetry')

names=$(
  for f in $sources; do
    grep -hoE '(counter_add|gauge_set|histogram_record|record_complete)\("[^"]+"' "$f" || true
    grep -hoE 'TraceSpan [A-Za-z_]+\("[^"]+"' "$f" || true
    grep -hoE 'BD_TRACE_SPAN\("[^"]+"' "$f" || true
  done | sed -E 's/.*\("([^"]+)".*/\1/' | sort -u
)

if [ -z "$names" ]; then
  echo "check_docs: no telemetry names found in src/ — extraction broken?" >&2
  fail=1
fi

for name in $names; do
  if ! grep -qF "\`$name\`" docs/METRICS.md; then
    echo "check_docs: '$name' is used in src/ but not documented in docs/METRICS.md" >&2
    fail=1
  fi
done

# --- 2. root bench artifacts must be documented ----------------------------
# Every BENCH_*.json at the repo root is the output of a bench harness and
# must have a matching schema section in docs/BENCHMARKS.md (the literal
# `BENCH_<name>.json`). An artifact nothing documents is an orphan: either
# document it or delete it (and note why in ROADMAP.md).
for bench in BENCH_*.json; do
  [ -e "$bench" ] || continue
  if ! grep -qF "\`$bench\`" docs/BENCHMARKS.md; then
    echo "check_docs: '$bench' sits at the repo root but docs/BENCHMARKS.md has no \`$bench\` section" >&2
    fail=1
  fi
done

# --- 3. dead relative markdown links ---------------------------------------
# [text](target) where target is not absolute, not a URL and not an anchor
# must resolve to a file relative to the markdown file's directory.
while IFS= read -r md; do
  dir=$(dirname "$md")
  links=$(grep -oE '\]\(([^)#][^)]*)\)' "$md" | sed -E 's/^\]\((.*)\)$/\1/' || true)
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|/*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "check_docs: dead link '$link' in $md" >&2
      fail=1
    fi
  done
# PAPERS.md / SNIPPETS.md hold verbatim extracted paper text and example
# code whose bracket patterns are not real links.
done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*' \
           -not -path './related/*' -not -name 'PAPERS.md' -not -name 'SNIPPETS.md')

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK ($(echo "$names" | wc -l) telemetry names documented, links clean)"
