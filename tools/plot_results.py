#!/usr/bin/env python3
"""Plot the CSV series the benchmark harnesses emit.

Usage:  tools/plot_results.py [results_dir]

Reads fig2.csv / fig3.csv / fig4.csv / table1.csv / table2.csv (whichever
exist) from the given directory (default: cwd) and writes matching .png
plots next to them. Requires matplotlib.
"""

import csv
import os
import sys


def read_csv(path):
    with open(path) as f:
        rows = list(csv.DictReader(f))
    return rows


def main():
    directory = sys.argv[1] if len(sys.argv) > 1 else "."
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    def out(name):
        return os.path.join(directory, name)

    fig2 = os.path.join(directory, "fig2.csv")
    if os.path.exists(fig2):
        rows = read_csv(fig2)
        s = [float(r["s"]) for r in rows]
        fig, axes = plt.subplots(1, 2, figsize=(11, 4))
        axes[0].plot(s, [float(r["longitudinal_analytic"]) for r in rows],
                     "k-", label="analytic")
        axes[0].plot(s, [float(r["longitudinal_computed"]) for r in rows],
                     "r.", ms=3, label="computed")
        axes[0].set_title("longitudinal force (Fig. 2 left)")
        axes[1].plot(s, [float(r["transverse_analytic"]) for r in rows],
                     "k-", label="analytic")
        axes[1].plot(s, [float(r["transverse_computed"]) for r in rows],
                     "r.", ms=3, label="computed")
        axes[1].set_title("transverse force (Fig. 2 right)")
        for ax in axes:
            ax.set_xlabel("s / σ_s")
            ax.legend()
        fig.tight_layout()
        fig.savefig(out("fig2.png"), dpi=150)
        print("wrote fig2.png")

    fig3 = os.path.join(directory, "fig3.csv")
    if os.path.exists(fig3):
        rows = read_csv(fig3)
        n = [float(r["particles"]) for r in rows]
        fig, ax = plt.subplots(figsize=(5.5, 4))
        ax.loglog(n, [float(r["mse_mc"]) for r in rows], "o-",
                  label="MSE (Monte-Carlo)")
        if "mse_analytic" in rows[0]:
            ax.loglog(n, [float(r["mse_analytic"]) for r in rows], "s--",
                      label="MSE vs analytic")
        ax.loglog(n, [float(rows[0]["mse_mc"]) * float(rows[0]["particles"]) / x
                      for x in n], "k:", label="∝ 1/N")
        ax.set_xlabel("N particles")
        ax.set_ylabel("force MSE")
        ax.set_title("Monte-Carlo convergence (Fig. 3)")
        ax.legend()
        fig.tight_layout()
        fig.savefig(out("fig3.png"), dpi=150)
        print("wrote fig3.png")

    fig4 = os.path.join(directory, "fig4.csv")
    if os.path.exists(fig4):
        rows = read_csv(fig4)
        fig, ax = plt.subplots(figsize=(5.5, 4))
        ai_lo, ai_hi = 0.125, 4096.0
        peak, bw = 1430.0, 200.0
        ais, roofs = [], []
        ai = ai_lo
        while ai <= ai_hi:
            ais.append(ai)
            roofs.append(min(peak, ai * bw))
            ai *= 2
        ax.loglog(ais, roofs, "k-", label="roofline (measured BW)")
        for r in rows:
            ax.loglog([float(r["ai"])], [float(r["gflops"])], "o",
                      label=r["kernel"])
        ax.set_xlabel("arithmetic intensity (flops / DRAM byte)")
        ax.set_ylabel("GFlop/s")
        ax.set_title("roofline (Fig. 4)")
        ax.legend(fontsize=8)
        fig.tight_layout()
        fig.savefig(out("fig4.png"), dpi=150)
        print("wrote fig4.png")

    table2 = os.path.join(directory, "table2.csv")
    if os.path.exists(table2):
        rows = read_csv(table2)
        fig, ax = plt.subplots(figsize=(5.5, 4))
        grids = [r["grid"] for r in rows]
        ax.bar(range(len(rows)), [float(r["speedup_gpu"]) for r in rows])
        ax.set_xticks(range(len(rows)))
        ax.set_xticklabels([f'{g}²' for g in grids])
        ax.axhline(1.0, color="k", lw=0.5)
        ax.set_ylabel("Predictive-RP speedup over Heuristic-RP")
        ax.set_title("stage speedup (Table II)")
        fig.tight_layout()
        fig.savefig(out("table2.png"), dpi=150)
        print("wrote table2.png")


if __name__ == "__main__":
    main()
