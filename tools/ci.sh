#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then a ThreadSanitizer
# pass over the concurrency-sensitive tests (thread pool, SIMT executor,
# rp-kernels/solvers, deposition, k-means, telemetry scopes, checkpoint
# writers, the simulation fleet) with an oversubscribed pool
# (BD_NUM_THREADS=8) so cross-thread interleavings actually happen.
#
# An ASan+UBSan stage reruns the whole suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (unlike TSan, the overhead is small enough
# for all of it). The robustness surface — serialization, checkpoint
# restore, fault injection, input parsers — handles corrupt/adversarial
# bytes, so memory errors hide there first.
#
# A faults stage reruns the fleet-supervisor suite under an ambient
# BD_FAULT sweep (grid_nan, forecast, slow_step, pool_throw): tests that
# pin a fault spec must stay deterministic, the rest must absorb each
# ambient class through the retry/quarantine machinery.
#
# A docs stage checks docs consistency (tools/check_docs.sh): every
# telemetry name documented in docs/METRICS.md, no dead markdown links.
#
# A simd stage proves the scalar/SIMD bitwise-identity contract from both
# sides: the whole suite reruns on the default build with BD_SIMD=off
# (forced-scalar dispatch), and the SIMD-touching tests rebuild and rerun
# with the whole tree compiled -mavx2 (preset avx2; deliberately without
# -mfma — FMA contraction in the scalar reference would break identity).
#
# A perf-smoke stage runs bench_rp_eval against the checked-in baseline
# (tools/perf_baseline_rp_eval.json). Eval counts are deterministic, so
# the gate catches real regressions: > 2% more integrand evaluations than
# the baseline, a solver saving < 25% vs the naive engine, or the scratch
# arena allocating after warm-up on the rigid steady-state workload.
# It also runs bench_clustering against
# tools/perf_baseline_clustering.json (identical-or-better solver
# fallback counts always; the >= 5x clustering speedup floor and the
# accel/reference inertia-ratio ceiling at 128^2/256^2),
# bench_fleet against tools/perf_baseline_fleet.json (the
# fleet-vs-solo digest gate always applies; the aggregate speedup floor
# only engages on machines with enough hardware threads), bench_simd
# against tools/perf_baseline_simd.json (batched-vs-scalar bitwise
# identity always; the >= 2x throughput floor only where AVX2 exists)
# and bench_scaling against tools/perf_baseline_scaling.json (sharded
# replay counters identical to serial always; the replay speedup floor
# only on hosts with >= 4 hardware threads).
#
# Usage: tools/ci.sh [tier1|tsan|asan|faults|docs|simd|perf-smoke|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

tier1() {
  echo "=== tier-1: build + ctest (preset: default) ==="
  cmake --preset default
  cmake --build --preset default -j "$(nproc)"
  ctest --preset default -j "$(nproc)"
}

tsan() {
  echo "=== tsan: executor/solver tests under ThreadSanitizer ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)" --target \
    test_parallel test_determinism test_executor test_rp_kernels \
    test_solvers test_deposit test_kmeans test_clustering test_telemetry \
    test_checkpoint test_fleet test_eval_engine test_health test_simulation \
    test_wake
  ctest --preset tsan -j 1
}

simd() {
  echo "=== simd: forced-scalar tier-1 + whole-tree -mavx2 identity leg ==="
  cmake --preset default
  cmake --build --preset default -j "$(nproc)"
  BD_SIMD=off ctest --preset default -j "$(nproc)"
  cmake --preset avx2
  cmake --build --preset avx2 -j "$(nproc)" --target \
    test_eval_engine test_determinism test_executor test_rp_kernels \
    test_solvers test_checkpoint
  ctest --preset avx2 -j "$(nproc)"
}

faults() {
  echo "=== faults: fleet supervisor suite under a BD_FAULT sweep ==="
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target test_fleet
  for spec in "grid_nan@2:8" "forecast@3:2" "slow_step@2:40" "pool_throw@3"; do
    echo "--- BD_FAULT=$spec ---"
    BD_FAULT="$spec" ./build/tests/test_fleet
  done
}

asan() {
  echo "=== asan: full test suite under Address+UBSanitizer ==="
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan -j "$(nproc)"
}

docs() {
  echo "=== docs: telemetry names + markdown links ==="
  tools/check_docs.sh
}

perf_smoke() {
  echo "=== perf-smoke: bench_rp_eval vs checked-in baseline ==="
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target bench_rp_eval
  ./build/bench/bench_rp_eval \
    --json=BENCH_rp_eval.json \
    --check-baseline=tools/perf_baseline_rp_eval.json
  cmake --build --preset default -j "$(nproc)" --target bench_clustering
  ./build/bench/bench_clustering \
    --json=BENCH_clustering.json \
    --check-baseline=tools/perf_baseline_clustering.json
  cmake --build --preset default -j "$(nproc)" --target bench_fleet
  ./build/bench/bench_fleet \
    --json=BENCH_fleet.json \
    --check-baseline=tools/perf_baseline_fleet.json
  cmake --build --preset default -j "$(nproc)" --target bench_simd
  ./build/bench/bench_simd \
    --json=BENCH_simd.json \
    --check-baseline=tools/perf_baseline_simd.json
  cmake --build --preset default -j "$(nproc)" --target bench_scaling
  ./build/bench/bench_scaling \
    --json=BENCH_scaling.json \
    --check-baseline=tools/perf_baseline_scaling.json
}

case "$stage" in
  tier1) tier1 ;;
  tsan) tsan ;;
  asan) asan ;;
  faults) faults ;;
  docs) docs ;;
  simd) simd ;;
  perf-smoke) perf_smoke ;;
  all) tier1; tsan; asan; faults; docs; simd; perf_smoke ;;
  *) echo "unknown stage: $stage (want tier1|tsan|asan|faults|docs|simd|perf-smoke|all)" >&2; exit 2 ;;
esac
echo "CI ($stage) OK"
