#pragma once
/// \file timemodel.hpp
/// Roofline-based kernel time model: a kernel finishes when both its compute
/// work (at divergence-degraded issue rate) and its DRAM traffic (at the
/// measured bandwidth) are done; the slower leg bounds the time. The paper's
/// kernels are memory-bound on the K40 (Table I GFlop/s ≈ AI × measured BW),
/// which this model reproduces.

#include "simt/device.hpp"
#include "simt/metrics.hpp"

namespace bd::simt {

/// Breakdown of the modeled kernel time. Four concurrent legs; the slowest
/// bounds the kernel:
///  * compute   — flops at the divergence-degraded issue rate
///  * L1        — line transactions through the L1/tex path (this is where
///                uncoalesced access costs show up even when cache-resident)
///  * L2        — L1-miss line traffic through the shared L2
///  * DRAM      — L2-miss sector traffic at the measured DRAM bandwidth
struct TimeBreakdown {
  double compute_seconds = 0.0;
  double l1_seconds = 0.0;
  double l2_seconds = 0.0;
  double memory_seconds = 0.0;   ///< DRAM leg
  double total_seconds = 0.0;    ///< max of all legs
  bool memory_bound = false;     ///< any memory leg is the binding one
};

/// Compute the modeled time for the given counters on the given device.
TimeBreakdown model_time(const KernelMetrics& metrics, const DeviceSpec& spec);

/// Convenience: compute the model and store total_seconds into
/// metrics.modeled_seconds. Returns the breakdown.
TimeBreakdown apply_time_model(KernelMetrics& metrics, const DeviceSpec& spec);

}  // namespace bd::simt
