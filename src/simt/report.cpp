#include "simt/report.hpp"

#include <cstdio>
#include <sstream>

#include "util/table.hpp"

namespace bd::simt {

std::string binding_resource(const KernelMetrics& metrics,
                             const DeviceSpec& spec) {
  const TimeBreakdown tb = model_time(metrics, spec);
  if (tb.total_seconds <= 0.0) return "idle";
  if (tb.total_seconds == tb.compute_seconds) return "compute-bound";
  if (tb.total_seconds == tb.l1_seconds) return "L1-bandwidth-bound";
  if (tb.total_seconds == tb.l2_seconds) return "L2-bandwidth-bound";
  return "DRAM-bound";
}

std::string profiler_report(const std::string& kernel_name,
                            const KernelMetrics& metrics,
                            const DeviceSpec& spec) {
  const TimeBreakdown tb = model_time(metrics, spec);
  std::ostringstream os;
  char line[160];
  auto emit = [&](const char* name, const char* fmt, double value) {
    std::snprintf(line, sizeof(line), "  %-28s ", name);
    os << line;
    std::snprintf(line, sizeof(line), fmt, value);
    os << line << '\n';
  };
  os << "==== kernel: " << kernel_name << " (" << spec.name << ") ====\n";
  emit("warp_execution_efficiency", "%.2f %%",
       metrics.warp_execution_efficiency() * 100.0);
  emit("gld_efficiency", "%.2f %%",
       metrics.global_load_efficiency() * 100.0);
  emit("l1_cache_global_hit_rate", "%.2f %%", metrics.l1_hit_rate() * 100.0);
  emit("l2_hit_rate", "%.2f %%", metrics.l2_hit_rate() * 100.0);
  emit("branch_divergence_rate", "%.2f %%",
       metrics.branch_divergence_rate() * 100.0);
  emit("dram_read_bytes", "%.3e B", static_cast<double>(metrics.dram_bytes));
  emit("flop_count_dp", "%.3e", static_cast<double>(metrics.flops));
  emit("arithmetic_intensity", "%.3f F/B", metrics.arithmetic_intensity());
  emit("modeled_kernel_time", "%.3e s", metrics.modeled_seconds);
  emit("achieved_dp_gflops", "%.1f GF/s", metrics.gflops());
  emit("compute_leg", "%.3e s", tb.compute_seconds);
  emit("l1_bandwidth_leg", "%.3e s", tb.l1_seconds);
  emit("l2_bandwidth_leg", "%.3e s", tb.l2_seconds);
  emit("dram_leg", "%.3e s", tb.memory_seconds);
  os << "  binding resource:            " << binding_resource(metrics, spec)
     << '\n';
  return os.str();
}

std::string comparison_report(const std::vector<KernelReportEntry>& kernels,
                              const DeviceSpec& spec) {
  std::vector<std::string> headings{"metric"};
  for (const auto& k : kernels) headings.push_back(k.name);
  util::ConsoleTable table(headings);

  auto row = [&](const std::string& name, auto getter, int precision) {
    table.cell(name);
    for (const auto& k : kernels) table.cell(getter(k.metrics), precision);
    table.end_row();
  };
  row("warp execution eff %",
      [](const KernelMetrics& m) {
        return m.warp_execution_efficiency() * 100.0;
      },
      1);
  row("global load eff %",
      [](const KernelMetrics& m) { return m.global_load_efficiency() * 100.0; },
      1);
  row("L1 hit rate %",
      [](const KernelMetrics& m) { return m.l1_hit_rate() * 100.0; }, 1);
  row("L2 hit rate %",
      [](const KernelMetrics& m) { return m.l2_hit_rate() * 100.0; }, 1);
  row("arithmetic intensity F/B",
      [](const KernelMetrics& m) { return m.arithmetic_intensity(); }, 2);
  row("achieved GFlop/s",
      [](const KernelMetrics& m) { return m.gflops(); }, 0);
  row("modeled time ms",
      [](const KernelMetrics& m) { return m.modeled_seconds * 1e3; }, 3);

  table.cell("binding resource");
  for (const auto& k : kernels) {
    table.cell(binding_resource(k.metrics, spec));
  }
  table.end_row();
  return table.str();
}

}  // namespace bd::simt
