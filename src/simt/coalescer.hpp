#pragma once
/// \file coalescer.hpp
/// Warp memory coalescer: converts the per-lane addresses of one warp-level
/// load instruction into the set of cache-line transactions the hardware
/// would issue, exactly as the CUDA profiler's gld_efficiency metric models.

#include <cstdint>
#include <vector>

namespace bd::simt {

/// One lane's contribution to a warp load.
struct LaneAccess {
  std::uint64_t addr;
  std::uint32_t bytes;
};

/// Result of coalescing one warp-level load.
struct CoalesceResult {
  std::vector<std::uint64_t> line_addrs;  ///< unique line base addresses
  std::uint64_t bytes_requested = 0;      ///< sum of lane request widths
  std::uint64_t bytes_transferred = 0;    ///< lines * line_bytes
};

/// Coalesce the accesses of the active lanes of one warp instruction into
/// unique `line_bytes`-sized transactions. Accesses that straddle a line
/// boundary touch multiple lines (each counted once per warp instruction).
CoalesceResult coalesce(const std::vector<LaneAccess>& accesses,
                        std::uint32_t line_bytes);

}  // namespace bd::simt
