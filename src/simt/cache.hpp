#pragma once
/// \file cache.hpp
/// Set-associative LRU cache model used for both the per-SM L1 and the
/// shared L2. Addresses are cache-line granular (the coalescer splits raw
/// accesses into line touches before calling in here).

#include <cstdint>
#include <vector>

namespace bd::simt {

/// Aggregate hit/miss counters for one cache instance.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t accesses() const { return hits + misses; }
  double hit_rate() const {
    return accesses() ? static_cast<double>(hits) / accesses() : 0.0;
  }
  CacheStats& operator+=(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    return *this;
  }
};

/// Classic set-associative cache with true-LRU replacement.
/// Capacity, line size and associativity are fixed at construction.
class SetAssocCache {
 public:
  /// \param capacity_bytes total size; must be a multiple of line*ways.
  /// \param line_bytes line (transaction) size; must be a power of two.
  /// \param ways associativity; clamped so there is at least one set.
  SetAssocCache(std::uint32_t capacity_bytes, std::uint32_t line_bytes,
                std::uint32_t ways);

  /// Probe and fill: returns true on hit; on miss the line is installed
  /// with LRU eviction.
  bool access(std::uint64_t addr);

  /// Invalidate all lines and (optionally) keep statistics.
  void flush();

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t num_sets() const { return num_sets_; }
  std::uint32_t ways() const { return ways_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;  // larger = more recently used
    bool valid = false;
  };

  std::uint32_t line_bytes_;
  std::uint32_t line_shift_;
  std::uint32_t num_sets_;
  std::uint32_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_storage_;  // num_sets_ * ways_
  CacheStats stats_;
};

}  // namespace bd::simt
