#pragma once
/// \file probe.hpp
/// LaneProbe — the instrumentation interface every modeled-GPU code path is
/// written against. Algorithm code (quadrature, integrands, kernels) reports
/// its floating-point work, global-memory loads, loop trip counts and
/// branches through this interface; the executor aggregates per-warp
/// divergence and replays memory traffic through the cache model.
///
/// Host-side (CPU) phases use NullProbe, which compiles to no-ops.

#include <cstdint>

namespace bd::simt {

/// Compile-time site identifier: hashes a stable name (FNV-1a) so call sites
/// across translation units cannot collide by accident.
constexpr std::uint32_t site_id(const char* name) {
  std::uint32_t hash = 2166136261u;
  for (const char* p = name; *p; ++p) {
    hash ^= static_cast<std::uint32_t>(*p);
    hash *= 16777619u;
  }
  return hash;
}

/// Per-lane instrumentation sink.
class LaneProbe {
 public:
  virtual ~LaneProbe() = default;

  /// Record `n` double-precision floating point operations.
  virtual void count_flops(std::uint64_t n) = 0;

  /// Record a global-memory load of `bytes` at `addr` issued from static
  /// call site `site`. Lanes of a warp loading at the same (site, occurrence)
  /// are coalesced together.
  virtual void load(std::uint32_t site, const void* addr,
                    std::uint32_t bytes) = 0;

  /// Record that the loop at `site` executed `trips` iterations in this
  /// lane. Divergence = spread of trip counts across the warp.
  virtual void loop_trip(std::uint32_t site, std::uint64_t trips) = 0;

  /// Record the outcome of a data-dependent branch at `site`.
  virtual void branch(std::uint32_t site, bool taken) = 0;

  /// Record `count` same-width loads issued from static site `site`, in
  /// program order. Semantically identical to `count` sequential load()
  /// calls — the default implementation is exactly that loop — but probes
  /// that buffer events (LaneTrace) override it with a bulk append, so
  /// batched evaluation paths pay one virtual dispatch per sample block
  /// instead of one per row.
  virtual void load_run(std::uint32_t site, const void* const* addrs,
                        std::uint32_t bytes, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) load(site, addrs[i], bytes);
  }
};

/// No-op probe for host-side execution paths.
class NullProbe final : public LaneProbe {
 public:
  void count_flops(std::uint64_t) override {}
  void load(std::uint32_t, const void*, std::uint32_t) override {}
  void loop_trip(std::uint32_t, std::uint64_t) override {}
  void branch(std::uint32_t, bool) override {}
  void load_run(std::uint32_t, const void* const*, std::uint32_t,
                std::size_t) override {}

  /// Shared instance: NullProbe is stateless.
  static NullProbe& instance() {
    static NullProbe probe;
    return probe;
  }
};

/// Counting probe that only accumulates totals (no trace) — used to measure
/// the algorithmic flop/byte volume of host-side reference computations.
class CountingProbe final : public LaneProbe {
 public:
  void count_flops(std::uint64_t n) override { flops_ += n; }
  void load(std::uint32_t, const void*, std::uint32_t bytes) override {
    load_bytes_ += bytes;
    ++loads_;
  }
  void loop_trip(std::uint32_t, std::uint64_t trips) override {
    loop_iterations_ += trips;
  }
  void branch(std::uint32_t, bool) override { ++branches_; }
  void load_run(std::uint32_t, const void* const*, std::uint32_t bytes,
                std::size_t count) override {
    load_bytes_ += static_cast<std::uint64_t>(bytes) * count;
    loads_ += count;
  }

  std::uint64_t flops() const { return flops_; }
  std::uint64_t loads() const { return loads_; }
  std::uint64_t load_bytes() const { return load_bytes_; }
  std::uint64_t loop_iterations() const { return loop_iterations_; }
  std::uint64_t branches() const { return branches_; }

  void reset() { *this = CountingProbe{}; }

 private:
  std::uint64_t flops_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t load_bytes_ = 0;
  std::uint64_t loop_iterations_ = 0;
  std::uint64_t branches_ = 0;
};

}  // namespace bd::simt
