#include "simt/metrics.hpp"

#include <sstream>

namespace bd::simt {

double KernelMetrics::warp_execution_efficiency() const {
  if (lane_slots == 0) return 1.0;
  return static_cast<double>(active_lane_slots) /
         static_cast<double>(lane_slots);
}

double KernelMetrics::global_load_efficiency() const {
  if (bytes_transferred == 0) return 1.0;
  return static_cast<double>(bytes_requested) /
         static_cast<double>(bytes_transferred);
}

double KernelMetrics::branch_divergence_rate() const {
  if (branch_events == 0) return 0.0;
  return static_cast<double>(divergent_branches) /
         static_cast<double>(branch_events);
}

double KernelMetrics::arithmetic_intensity() const {
  if (dram_bytes == 0) return 0.0;
  return static_cast<double>(flops) / static_cast<double>(dram_bytes);
}

double KernelMetrics::gflops() const {
  if (modeled_seconds <= 0.0) return 0.0;
  return static_cast<double>(flops) / modeled_seconds / 1e9;
}

KernelMetrics& KernelMetrics::operator+=(const KernelMetrics& other) {
  flops += other.flops;
  warp_instructions += other.warp_instructions;
  active_lane_slots += other.active_lane_slots;
  lane_slots += other.lane_slots;
  branch_events += other.branch_events;
  divergent_branches += other.divergent_branches;
  load_instructions += other.load_instructions;
  bytes_requested += other.bytes_requested;
  bytes_transferred += other.bytes_transferred;
  l1_transactions += other.l1_transactions;
  l1 += other.l1;
  l2 += other.l2;
  dram_bytes += other.dram_bytes;
  modeled_seconds += other.modeled_seconds;
  return *this;
}

std::string KernelMetrics::summary() const {
  std::ostringstream os;
  os << "flops:                    " << flops << "\n"
     << "warp instructions:        " << warp_instructions << "\n"
     << "warp execution eff:       " << warp_execution_efficiency() * 100.0
     << " %\n"
     << "branch divergence rate:   " << branch_divergence_rate() * 100.0
     << " %\n"
     << "global load efficiency:   " << global_load_efficiency() * 100.0
     << " %\n"
     << "L1 hit rate:              " << l1_hit_rate() * 100.0 << " %\n"
     << "L2 hit rate:              " << l2_hit_rate() * 100.0 << " %\n"
     << "DRAM bytes:               " << dram_bytes << "\n"
     << "arithmetic intensity:     " << arithmetic_intensity()
     << " flops/byte\n"
     << "modeled time:             " << modeled_seconds << " s\n"
     << "GFlop/s:                  " << gflops() << "\n";
  return os.str();
}

}  // namespace bd::simt
