#include "simt/trace.hpp"

namespace bd::simt {

void LaneTrace::reset() {
  flops_ = 0;
  loads_.clear();
  loops_.clear();
  branches_.clear();
}

std::size_t LaneTrace::footprint_bytes() const {
  return loads_.capacity() * sizeof(LoadEvent) +
         loops_.capacity() * sizeof(LoopEvent) +
         branches_.capacity() * sizeof(BranchEvent);
}

}  // namespace bd::simt
