#pragma once
/// \file warp.hpp
/// Warp analyzer: reconstructs lockstep SIMT execution from independent
/// per-lane traces. Events are aligned by (site, occurrence-within-site):
/// lanes that recorded the n-th event at a static site are the lanes that
/// were active when the warp issued that instruction. The analyzer derives
/// divergence statistics and replays coalesced memory traffic through the
/// SM's L1 and the shared L2.

#include <cstdint>
#include <vector>

#include "simt/cache.hpp"
#include "simt/device.hpp"
#include "simt/metrics.hpp"
#include "simt/trace.hpp"

namespace bd::simt {

/// The coalesced memory stream of one warp: line addresses per warp-level
/// load instruction, in program order — ready for cache replay.
struct WarpReplay {
  std::vector<std::vector<std::uint64_t>> instructions;
};

/// Reconstruct warp-level execution from per-lane traces: accumulates
/// divergence/coalescing statistics into `out` and returns the warp's
/// transaction stream for cache replay.
WarpReplay analyze_warp_groups(const std::vector<const LaneTrace*>& traces,
                               const DeviceSpec& spec, KernelMetrics& out);

/// Replay several warps' transaction streams through the SM's L1 and the
/// shared L2, interleaving round-robin one instruction at a time — the
/// concurrency model of an SM's warp schedulers. Scattered per-warp
/// streams thrash the shared L1; streams touching common lines share it.
/// Composition of replay_interleaved_l1 + replay_l2_lines.
void replay_interleaved(std::vector<WarpReplay>& replays,
                        const DeviceSpec& spec, SetAssocCache& l1,
                        SetAssocCache& l2, KernelMetrics& out);

/// L1 stage of replay_interleaved: interleaves the warps through the SM's
/// private L1, accumulating L1 hit/miss counters into `out` and appending
/// the line address of every L1 miss to `l2_misses` in replay order
/// instead of touching the shared L2. Per-SM L1 state is independent, so
/// the executor runs this stage for all SMs in parallel (sharded replay)
/// and feeds the recorded miss streams to replay_l2_lines serially.
void replay_interleaved_l1(std::vector<WarpReplay>& replays,
                           const DeviceSpec& spec, SetAssocCache& l1,
                           KernelMetrics& out,
                           std::vector<std::uint64_t>& l2_misses);

/// L2 stage: replays recorded L1-miss lines through the shared L2 as
/// sector transactions (l2_line_bytes each), accumulating L2 hit/miss
/// counters and DRAM traffic into `out`. Feeding each SM's miss stream in
/// SM-major order reproduces the serial executor's L2 access order
/// exactly, which is what keeps sharded replay bitwise identical.
void replay_l2_lines(const std::vector<std::uint64_t>& lines,
                     const DeviceSpec& spec, SetAssocCache& l2,
                     KernelMetrics& out);

/// Convenience for tests: analyze one warp and replay it alone.
void analyze_warp(const std::vector<const LaneTrace*>& traces,
                  const DeviceSpec& spec, SetAssocCache& l1,
                  SetAssocCache& l2, KernelMetrics& out);

}  // namespace bd::simt
