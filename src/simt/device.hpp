#pragma once
/// \file device.hpp
/// Device specification for the SIMT execution model. Defaults describe the
/// NVIDIA Tesla K40 the paper evaluates on (Kepler GK110B, "caching mode":
/// global loads cached in both L1 and L2).

#include <cstdint>
#include <string>

namespace bd::simt {

/// Static hardware parameters consumed by the cache model, the coalescer and
/// the roofline time model.
struct DeviceSpec {
  std::string name = "Tesla K40 (modeled)";

  // Execution resources.
  std::uint32_t num_sms = 15;          ///< GK110B streaming multiprocessors.
  std::uint32_t warp_size = 32;        ///< SIMD width.
  std::uint32_t max_threads_per_block = 1024;
  /// Warps concurrently resident per SM (register/occupancy limited for
  /// these double-precision kernels: 16 warps ≈ 50% occupancy on GK110B).
  /// Resident warps' memory streams interleave in the shared L1 — the
  /// effect that rewards inter-warp data locality and punishes scatter.
  std::uint32_t resident_warps_per_sm = 16;

  // Memory hierarchy (caching mode: 48 KB L1 per SM).
  std::uint32_t l1_bytes = 48 * 1024;  ///< per-SM L1 capacity.
  std::uint32_t l1_line_bytes = 128;   ///< L1/global-load transaction size.
  std::uint32_t l1_ways = 6;           ///< modeled associativity.
  std::uint32_t l2_bytes = 1536 * 1024;///< shared L2 capacity.
  std::uint32_t l2_line_bytes = 32;    ///< L2/DRAM sector size.
  std::uint32_t l2_ways = 16;          ///< modeled associativity.

  // Roofline parameters.
  double peak_dp_gflops = 1430.0;      ///< K40 peak double precision.
  double theoretical_bw_gbs = 288.0;   ///< spec-sheet DRAM bandwidth.
  double measured_bw_gbs = 200.0;      ///< SDK bandwidthTest value (paper §V-B1).
  /// Aggregate L1/tex transaction bandwidth: one 128 B line per cycle per
  /// SM (15 SMs × 745 MHz × 128 B ≈ 1.4 TB/s). Poorly coalesced kernels
  /// pay this even when the data is cache-resident.
  double l1_bw_gbs = 1400.0;
  /// Aggregate L2 bandwidth (GK110B ≈ 750 GB/s).
  double l2_bw_gbs = 750.0;

  /// Fraction of peak issue rate a real kernel sustains on the DP pipes
  /// (dual-issue limits, dependency stalls, non-FMA mix). Calibrated so a
  /// divergence-free kernel lands at the paper's measured ~485 GFlop/s
  /// plateau (0.35 × 1430 GF × ~97% warp efficiency ≈ 485).
  double issue_efficiency = 0.35;

  /// Derived: AI (flops/byte) at which compute and memory rooflines meet.
  double ridge_ai() const { return peak_dp_gflops / measured_bw_gbs; }
};

/// The default modeled device (Tesla K40).
inline DeviceSpec tesla_k40() { return DeviceSpec{}; }

/// A deliberately tiny device for unit tests (small caches, 1 SM) so tests
/// can exercise capacity evictions with few accesses.
inline DeviceSpec test_device() {
  DeviceSpec d;
  d.name = "test-device";
  d.num_sms = 2;
  d.l1_bytes = 1024;       // 8 lines of 128 B
  d.l1_ways = 2;
  d.l2_bytes = 4096;       // 128 lines of 32 B
  d.l2_ways = 4;
  return d;
}

}  // namespace bd::simt
