#pragma once
/// \file executor.hpp
/// SIMT executor: runs a per-thread kernel function over a (blocks × threads)
/// launch grid on the host while modeling GPU execution. Each lane records a
/// trace; warps are analyzed for divergence and their memory traffic is
/// replayed through per-SM L1 caches and the shared L2. Blocks are assigned
/// to SMs round-robin, matching the hardware's greedy block scheduler
/// closely enough for aggregate cache statistics.
///
/// Execution is a two-pass pipeline:
///
///  1. *Lane execution* (parallel): kernel lambdas run and warps are
///     analyzed for divergence/coalescing block by block on the process
///     thread pool (util/parallel.hpp, BD_NUM_THREADS). This is where all
///     the quadrature time goes.
///  2. *Cache replay* (sharded): per-SM L1 state is independent, so each
///     SM's warps replay through its private L1 in parallel on the pool,
///     recording L1-miss lines in replay order; a serial SM-major merge
///     then feeds each SM's miss stream through the shared L2 — the exact
///     access order of the old serial replay — so cache state and every
///     KernelMetrics counter are independent of scheduling and of
///     BD_NUM_THREADS.
///
/// Lane-concurrency contract (what kernel bodies must obey, mirroring a
/// real GPU): lanes from *different blocks* may execute concurrently; lanes
/// within one block run serially in lane order on a single thread. A kernel
/// may therefore freely mutate state indexed by block_id / thread_id /
/// global_id, but writes to state shared across blocks (e.g. accumulating
/// into a per-point array when two blocks can touch the same point) must be
/// restructured as per-block or per-item partials reduced serially after
/// launch() returns — see core/rp_kernels.cpp.

#include <cstdint>
#include <functional>

#include "simt/device.hpp"
#include "simt/metrics.hpp"
#include "simt/probe.hpp"
#include "simt/timemodel.hpp"

namespace bd::simt {

/// Kernel launch geometry.
struct LaunchConfig {
  std::uint32_t num_blocks = 1;
  std::uint32_t threads_per_block = 32;
};

/// Identity of the executing thread, mirroring blockIdx/threadIdx.
struct ThreadCtx {
  std::uint32_t block_id = 0;
  std::uint32_t thread_id = 0;   ///< within the block
  std::uint32_t global_id = 0;   ///< block_id * threads_per_block + thread_id
};

/// The kernel body: executed once per thread with its private probe.
using KernelFn = std::function<void(const ThreadCtx&, LaneProbe&)>;

/// Execute the kernel under the SIMT model and return profiler-style
/// metrics with the modeled kernel time already applied.
///
/// Deterministic: identical inputs produce identical metrics — bit for bit,
/// for any BD_NUM_THREADS — because divergence/coalescing counters are
/// integer sums over warps, per-SM L1 replay is self-contained per shard,
/// and the shared-L2 merge always runs serially in the fixed SM-major
/// block order.
///
/// Observability: every launch emits a `simt.launch` trace span (geometry
/// plus the headline KernelMetrics as span args) with `simt.lane_pass` /
/// `simt.cache_replay` child spans for the two passes, and updates the
/// `simt.*` metrics — see docs/METRICS.md. Capture is observational only
/// and never perturbs the returned metrics
/// (tests/test_determinism.cpp).
KernelMetrics launch(const DeviceSpec& spec, const LaunchConfig& config,
                     const KernelFn& kernel);

}  // namespace bd::simt
