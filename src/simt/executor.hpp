#pragma once
/// \file executor.hpp
/// SIMT executor: runs a per-thread kernel function over a (blocks × threads)
/// launch grid on the host while modeling GPU execution. Each lane records a
/// trace; warps are analyzed for divergence and their memory traffic is
/// replayed through per-SM L1 caches and the shared L2. Blocks are assigned
/// to SMs round-robin, matching the hardware's greedy block scheduler
/// closely enough for aggregate cache statistics.

#include <cstdint>
#include <functional>

#include "simt/device.hpp"
#include "simt/metrics.hpp"
#include "simt/probe.hpp"
#include "simt/timemodel.hpp"

namespace bd::simt {

/// Kernel launch geometry.
struct LaunchConfig {
  std::uint32_t num_blocks = 1;
  std::uint32_t threads_per_block = 32;
};

/// Identity of the executing thread, mirroring blockIdx/threadIdx.
struct ThreadCtx {
  std::uint32_t block_id = 0;
  std::uint32_t thread_id = 0;   ///< within the block
  std::uint32_t global_id = 0;   ///< block_id * threads_per_block + thread_id
};

/// The kernel body: executed once per thread with its private probe.
using KernelFn = std::function<void(const ThreadCtx&, LaneProbe&)>;

/// Execute the kernel under the SIMT model and return profiler-style
/// metrics with the modeled kernel time already applied.
///
/// Deterministic: identical inputs produce identical metrics (blocks are
/// processed in a fixed SM-major order).
KernelMetrics launch(const DeviceSpec& spec, const LaunchConfig& config,
                     const KernelFn& kernel);

}  // namespace bd::simt
