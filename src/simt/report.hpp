#pragma once
/// \file report.hpp
/// Profiler-style report rendering: formats KernelMetrics the way the
/// NVIDIA profiler presents them (the source of the paper's Table I), and
/// side-by-side comparisons of several kernels.

#include <string>
#include <vector>

#include "simt/device.hpp"
#include "simt/metrics.hpp"
#include "simt/timemodel.hpp"

namespace bd::simt {

/// One named kernel measurement for a comparison report.
struct KernelReportEntry {
  std::string name;
  KernelMetrics metrics;
};

/// Render a profiler-like single-kernel report: metric name, value, and
/// the hardware context (roofline position, binding resource).
std::string profiler_report(const std::string& kernel_name,
                            const KernelMetrics& metrics,
                            const DeviceSpec& spec);

/// Render a side-by-side comparison table of several kernels (one column
/// per kernel), the layout of the paper's Table I.
std::string comparison_report(const std::vector<KernelReportEntry>& kernels,
                              const DeviceSpec& spec);

/// Short classification of what bounds the kernel ("compute-bound",
/// "L1-bandwidth-bound", "L2-bandwidth-bound", "DRAM-bound").
std::string binding_resource(const KernelMetrics& metrics,
                             const DeviceSpec& spec);

}  // namespace bd::simt
