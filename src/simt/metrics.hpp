#pragma once
/// \file metrics.hpp
/// KernelMetrics — the profiler-style aggregate counters the paper reports
/// (Table I, Fig. 4): warp execution efficiency, global load efficiency,
/// L1 hit rate, DRAM traffic, arithmetic intensity and GFlop/s.

#include <cstdint>
#include <string>

#include "simt/cache.hpp"

namespace bd::simt {

/// Raw counters accumulated by the executor, plus derived metrics.
struct KernelMetrics {
  // --- raw counters -------------------------------------------------------
  std::uint64_t flops = 0;              ///< useful double-precision flops
  std::uint64_t warp_instructions = 0;  ///< issued warp-level instructions
  std::uint64_t active_lane_slots = 0;  ///< sum of active lanes over issues
  std::uint64_t lane_slots = 0;         ///< warp_instructions * warp_size
  std::uint64_t branch_events = 0;      ///< warp-level branch instructions
  std::uint64_t divergent_branches = 0; ///< branches with mixed outcomes
  std::uint64_t load_instructions = 0;  ///< warp-level load instructions
  std::uint64_t bytes_requested = 0;    ///< lane-requested load bytes
  std::uint64_t bytes_transferred = 0;  ///< line transactions * line size
  std::uint64_t l1_transactions = 0;    ///< L1 line accesses
  CacheStats l1;                        ///< per-SM L1, merged over SMs
  CacheStats l2;                        ///< shared L2
  std::uint64_t dram_bytes = 0;         ///< L2 miss traffic to DRAM

  std::uint32_t warp_size = 32;

  // --- timing filled in by the time model / host timers -------------------
  double modeled_seconds = 0.0;         ///< modeled GPU kernel time

  // --- derived metrics -----------------------------------------------------

  /// Ratio of average active threads per warp to the warp size
  /// (profiler: warp_execution_efficiency). 1.0 = no divergence.
  double warp_execution_efficiency() const;

  /// Requested bytes / transferred bytes (profiler: gld_efficiency).
  /// Can exceed 1.0 when lanes of a warp request overlapping words.
  double global_load_efficiency() const;

  /// L1 hit rate for global loads.
  double l1_hit_rate() const { return l1.hit_rate(); }

  /// L2 hit rate.
  double l2_hit_rate() const { return l2.hit_rate(); }

  /// Fraction of branch instructions that diverged.
  double branch_divergence_rate() const;

  /// Flops per DRAM byte accessed.
  double arithmetic_intensity() const;

  /// Achieved GFlop/s given modeled_seconds (0 if no timing yet).
  double gflops() const;

  /// Merge counters from another launch/warp (timings are summed).
  KernelMetrics& operator+=(const KernelMetrics& other);

  /// Multi-line human-readable report.
  std::string summary() const;
};

}  // namespace bd::simt
