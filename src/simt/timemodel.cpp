#include "simt/timemodel.hpp"

#include <algorithm>

namespace bd::simt {

TimeBreakdown model_time(const KernelMetrics& metrics,
                         const DeviceSpec& spec) {
  TimeBreakdown tb;
  const double warp_eff = std::max(1e-6, metrics.warp_execution_efficiency());
  const double effective_gflops =
      spec.peak_dp_gflops * spec.issue_efficiency * warp_eff;
  tb.compute_seconds =
      static_cast<double>(metrics.flops) / (effective_gflops * 1e9);
  tb.l1_seconds =
      static_cast<double>(metrics.bytes_transferred) / (spec.l1_bw_gbs * 1e9);
  tb.l2_seconds =
      static_cast<double>(metrics.l1.misses) * spec.l1_line_bytes /
      (spec.l2_bw_gbs * 1e9);
  tb.memory_seconds =
      static_cast<double>(metrics.dram_bytes) / (spec.measured_bw_gbs * 1e9);
  tb.total_seconds = std::max({tb.compute_seconds, tb.l1_seconds,
                               tb.l2_seconds, tb.memory_seconds});
  tb.memory_bound = tb.total_seconds > tb.compute_seconds;
  return tb;
}

TimeBreakdown apply_time_model(KernelMetrics& metrics,
                               const DeviceSpec& spec) {
  const TimeBreakdown tb = model_time(metrics, spec);
  metrics.modeled_seconds = tb.total_seconds;
  return tb;
}

}  // namespace bd::simt
