#include "simt/coalescer.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace bd::simt {

CoalesceResult coalesce(const std::vector<LaneAccess>& accesses,
                        std::uint32_t line_bytes) {
  BD_CHECK_MSG(line_bytes > 0 && std::has_single_bit(line_bytes),
               "line size must be a power of two");
  const std::uint64_t mask = ~static_cast<std::uint64_t>(line_bytes - 1);

  CoalesceResult result;
  result.line_addrs.reserve(accesses.size());
  for (const LaneAccess& a : accesses) {
    result.bytes_requested += a.bytes;
    if (a.bytes == 0) continue;
    std::uint64_t first = a.addr & mask;
    std::uint64_t last = (a.addr + a.bytes - 1) & mask;
    for (std::uint64_t line = first; line <= last; line += line_bytes) {
      result.line_addrs.push_back(line);
    }
  }
  std::sort(result.line_addrs.begin(), result.line_addrs.end());
  result.line_addrs.erase(
      std::unique(result.line_addrs.begin(), result.line_addrs.end()),
      result.line_addrs.end());
  result.bytes_transferred =
      static_cast<std::uint64_t>(result.line_addrs.size()) * line_bytes;
  return result;
}

}  // namespace bd::simt
