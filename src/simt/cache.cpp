#include "simt/cache.hpp"

#include <bit>

#include "util/check.hpp"

namespace bd::simt {

SetAssocCache::SetAssocCache(std::uint32_t capacity_bytes,
                             std::uint32_t line_bytes, std::uint32_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  BD_CHECK_MSG(line_bytes > 0 && std::has_single_bit(line_bytes),
               "line size must be a power of two");
  BD_CHECK_MSG(ways > 0, "associativity must be positive");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes));
  const std::uint32_t lines = capacity_bytes / line_bytes;
  BD_CHECK_MSG(lines >= ways, "capacity too small for associativity");
  num_sets_ = lines / ways;
  // Round sets down to a power of two for cheap indexing.
  num_sets_ = std::bit_floor(num_sets_);
  BD_CHECK(num_sets_ >= 1);
  ways_storage_.assign(static_cast<std::size_t>(num_sets_) * ways_, Way{});
}

bool SetAssocCache::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = line & (num_sets_ - 1);
  Way* set_begin = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  ++tick_;

  Way* victim = set_begin;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = set_begin[w];
    if (way.valid && way.tag == line) {
      way.lru = tick_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->tag = line;
  victim->valid = true;
  victim->lru = tick_;
  ++stats_.misses;
  return false;
}

void SetAssocCache::flush() {
  for (auto& way : ways_storage_) way = Way{};
}

}  // namespace bd::simt
