#include "simt/roofline.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bd::simt {

double attainable_gflops(const DeviceSpec& spec, double ai) {
  return std::min(spec.peak_dp_gflops, ai * spec.measured_bw_gbs);
}

double attainable_gflops_theoretical(const DeviceSpec& spec, double ai) {
  return std::min(spec.peak_dp_gflops, ai * spec.theoretical_bw_gbs);
}

RooflinePoint make_point(const std::string& label, const KernelMetrics& m,
                         const DeviceSpec& spec) {
  RooflinePoint p;
  p.label = label;
  p.arithmetic_intensity = m.arithmetic_intensity();
  p.gflops = m.gflops();
  p.attainable_gflops = attainable_gflops(spec, p.arithmetic_intensity);
  p.roof_fraction =
      p.attainable_gflops > 0.0 ? p.gflops / p.attainable_gflops : 0.0;
  return p;
}

std::vector<RooflineSample> sample_roofline(const DeviceSpec& spec,
                                            double ai_min, double ai_max,
                                            int count) {
  BD_CHECK(ai_min > 0.0 && ai_max > ai_min && count >= 2);
  std::vector<RooflineSample> samples;
  samples.reserve(static_cast<std::size_t>(count));
  const double log_lo = std::log2(ai_min);
  const double log_hi = std::log2(ai_max);
  for (int i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / (count - 1);
    const double ai = std::exp2(log_lo + t * (log_hi - log_lo));
    samples.push_back(RooflineSample{ai, attainable_gflops(spec, ai),
                                     attainable_gflops_theoretical(spec, ai)});
  }
  return samples;
}

}  // namespace bd::simt
