#pragma once
/// \file roofline.hpp
/// Roofline model utilities (Fig. 4): attainable performance as a function
/// of arithmetic intensity, plus kernel operating points.

#include <string>
#include <vector>

#include "simt/device.hpp"
#include "simt/metrics.hpp"

namespace bd::simt {

/// A kernel's operating point on the roofline plot.
struct RooflinePoint {
  std::string label;
  double arithmetic_intensity = 0.0;  ///< flops / DRAM byte
  double gflops = 0.0;                ///< achieved performance
  double attainable_gflops = 0.0;     ///< roof at this AI
  double roof_fraction = 0.0;         ///< achieved / attainable
};

/// Attainable GFlop/s at arithmetic intensity `ai` using the *measured*
/// bandwidth roof: min(peak, ai * measured_bw).
double attainable_gflops(const DeviceSpec& spec, double ai);

/// Attainable using the theoretical (spec-sheet) bandwidth roof.
double attainable_gflops_theoretical(const DeviceSpec& spec, double ai);

/// Build the operating point for a measured kernel.
RooflinePoint make_point(const std::string& label, const KernelMetrics& m,
                         const DeviceSpec& spec);

/// Sample the roofline curve at log-spaced AI values in [ai_min, ai_max];
/// used by the Fig. 4 bench to print the roof alongside kernel points.
struct RooflineSample {
  double ai;
  double roof_measured;
  double roof_theoretical;
};
std::vector<RooflineSample> sample_roofline(const DeviceSpec& spec,
                                            double ai_min, double ai_max,
                                            int count);

}  // namespace bd::simt
