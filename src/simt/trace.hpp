#pragma once
/// \file trace.hpp
/// LaneTrace — a LaneProbe that records the full per-lane event stream so
/// the warp analyzer can reconstruct lockstep execution afterwards.

#include <cstdint>
#include <vector>

#include "simt/probe.hpp"

namespace bd::simt {

/// One recorded global load.
struct LoadEvent {
  std::uint32_t site;    ///< static call-site id
  std::uint32_t bytes;   ///< access width
  std::uint64_t addr;    ///< virtual address
};

/// One recorded loop execution.
struct LoopEvent {
  std::uint32_t site;
  std::uint64_t trips;
};

/// One recorded data-dependent branch.
struct BranchEvent {
  std::uint32_t site;
  bool taken;
};

/// Records every instrumentation event of a single lane, in program order.
class LaneTrace final : public LaneProbe {
 public:
  void count_flops(std::uint64_t n) override { flops_ += n; }

  void load(std::uint32_t site, const void* addr,
            std::uint32_t bytes) override {
    loads_.push_back(LoadEvent{site, bytes,
                               reinterpret_cast<std::uint64_t>(addr)});
  }

  void loop_trip(std::uint32_t site, std::uint64_t trips) override {
    loops_.push_back(LoopEvent{site, trips});
  }

  void branch(std::uint32_t site, bool taken) override {
    branches_.push_back(BranchEvent{site, taken});
  }

  void load_run(std::uint32_t site, const void* const* addrs,
                std::uint32_t bytes, std::size_t count) override {
    // No reserve: exact-size reserve per run would defeat geometric growth.
    for (std::size_t i = 0; i < count; ++i) {
      loads_.push_back(LoadEvent{
          site, bytes, reinterpret_cast<std::uint64_t>(addrs[i])});
    }
  }

  std::uint64_t flops() const { return flops_; }
  const std::vector<LoadEvent>& loads() const { return loads_; }
  const std::vector<LoopEvent>& loops() const { return loops_; }
  const std::vector<BranchEvent>& branches() const { return branches_; }

  /// Clear all recorded events so the trace can be reused for the next lane.
  void reset();

  /// Approximate memory footprint of the recorded trace (for budget checks).
  std::size_t footprint_bytes() const;

 private:
  std::uint64_t flops_ = 0;
  std::vector<LoadEvent> loads_;
  std::vector<LoopEvent> loops_;
  std::vector<BranchEvent> branches_;
};

}  // namespace bd::simt
