#include "simt/warp.hpp"

#include <algorithm>
#include <unordered_map>

#include "simt/coalescer.hpp"
#include "util/check.hpp"

namespace bd::simt {

namespace {

/// Key identifying one warp-level instruction: the n-th occurrence of a
/// static site across a lane's program order.
struct SiteOcc {
  std::uint32_t site;
  std::uint32_t occ;
  bool operator==(const SiteOcc&) const = default;
};

struct SiteOccHash {
  std::size_t operator()(const SiteOcc& k) const {
    return (static_cast<std::size_t>(k.site) << 32) ^ k.occ;
  }
};

/// A warp-level load instruction being assembled from lane events.
struct LoadGroup {
  std::uint64_t order = 0;  // first-appearance program position
  std::vector<LaneAccess> accesses;
};

/// A warp-level branch instruction.
struct BranchGroup {
  std::uint32_t taken = 0;
  std::uint32_t not_taken = 0;
};

/// A warp-level counted loop.
struct LoopGroup {
  std::uint64_t max_trips = 0;
  std::uint64_t sum_trips = 0;
  std::uint32_t lanes = 0;
};

}  // namespace

WarpReplay analyze_warp_groups(const std::vector<const LaneTrace*>& traces,
                               const DeviceSpec& spec, KernelMetrics& out) {
  BD_CHECK_MSG(!traces.empty() && traces.size() <= spec.warp_size,
               "warp must hold 1..warp_size lanes");
  const std::uint32_t warp_size = spec.warp_size;
  out.warp_size = warp_size;

  // ---- group loads by (site, occurrence) ---------------------------------
  std::unordered_map<SiteOcc, LoadGroup, SiteOccHash> load_groups;
  std::unordered_map<std::uint32_t, std::uint32_t> occ_counter;
  std::uint64_t order = 0;
  for (const LaneTrace* lane : traces) {
    occ_counter.clear();
    std::uint64_t lane_pos = 0;
    for (const LoadEvent& ev : lane->loads()) {
      const std::uint32_t occ = occ_counter[ev.site]++;
      LoadGroup& group = load_groups[SiteOcc{ev.site, occ}];
      if (group.accesses.empty()) group.order = (order << 32) | lane_pos;
      group.accesses.push_back(LaneAccess{ev.addr, ev.bytes});
      ++lane_pos;
    }
    ++order;
  }

  // Program order: order of first appearance in the first lane that
  // executed the instruction.
  std::vector<const LoadGroup*> ordered;
  ordered.reserve(load_groups.size());
  for (const auto& [key, group] : load_groups) ordered.push_back(&group);
  std::sort(ordered.begin(), ordered.end(),
            [](const LoadGroup* a, const LoadGroup* b) {
              return a->order < b->order;
            });

  WarpReplay replay;
  replay.instructions.reserve(ordered.size());
  for (const LoadGroup* group : ordered) {
    CoalesceResult res = coalesce(group->accesses, spec.l1_line_bytes);
    out.load_instructions += 1;
    out.warp_instructions += 1;
    out.active_lane_slots += group->accesses.size();
    out.lane_slots += warp_size;
    out.bytes_requested += res.bytes_requested;
    out.bytes_transferred += res.bytes_transferred;
    out.l1_transactions += res.line_addrs.size();
    replay.instructions.push_back(std::move(res.line_addrs));
  }

  // ---- loops: divergence from trip-count spread --------------------------
  std::unordered_map<SiteOcc, LoopGroup, SiteOccHash> loop_groups;
  for (const LaneTrace* lane : traces) {
    occ_counter.clear();
    for (const LoopEvent& ev : lane->loops()) {
      const std::uint32_t occ = occ_counter[ev.site]++;
      LoopGroup& group = loop_groups[SiteOcc{ev.site, occ}];
      group.max_trips = std::max(group.max_trips, ev.trips);
      group.sum_trips += ev.trips;
      ++group.lanes;
    }
  }
  for (const auto& [key, group] : loop_groups) {
    // The warp executes max_trips iterations; a lane is active only for
    // its own trip count. One issue slot per iteration models the body.
    out.warp_instructions += group.max_trips;
    out.lane_slots += group.max_trips * warp_size;
    out.active_lane_slots += group.sum_trips;
  }

  // ---- branches -----------------------------------------------------------
  std::unordered_map<SiteOcc, BranchGroup, SiteOccHash> branch_groups;
  for (const LaneTrace* lane : traces) {
    occ_counter.clear();
    for (const BranchEvent& ev : lane->branches()) {
      const std::uint32_t occ = occ_counter[ev.site]++;
      BranchGroup& group = branch_groups[SiteOcc{ev.site, occ}];
      if (ev.taken) {
        ++group.taken;
      } else {
        ++group.not_taken;
      }
    }
  }
  for (const auto& [key, group] : branch_groups) {
    out.branch_events += 1;
    out.warp_instructions += 1;
    const std::uint32_t active = group.taken + group.not_taken;
    out.lane_slots += warp_size;
    out.active_lane_slots += active;
    if (group.taken > 0 && group.not_taken > 0) ++out.divergent_branches;
  }

  // ---- flops ---------------------------------------------------------------
  for (const LaneTrace* lane : traces) out.flops += lane->flops();

  return replay;
}

void replay_interleaved_l1(std::vector<WarpReplay>& replays,
                           const DeviceSpec& spec, SetAssocCache& l1,
                           KernelMetrics& out,
                           std::vector<std::uint64_t>& l2_misses) {
  (void)spec;
  std::vector<std::size_t> cursor(replays.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t w = 0; w < replays.size(); ++w) {
      const auto& stream = replays[w].instructions;
      if (cursor[w] >= stream.size()) continue;
      progressed = true;
      for (std::uint64_t line : stream[cursor[w]]) {
        if (l1.access(line)) {
          ++out.l1.hits;
        } else {
          ++out.l1.misses;
          l2_misses.push_back(line);
        }
      }
      ++cursor[w];
    }
  }
}

void replay_l2_lines(const std::vector<std::uint64_t>& lines,
                     const DeviceSpec& spec, SetAssocCache& l2,
                     KernelMetrics& out) {
  for (std::uint64_t line : lines) {
    // An L1 miss fetches the line as L2-sector transactions.
    for (std::uint32_t off = 0; off < spec.l1_line_bytes;
         off += spec.l2_line_bytes) {
      if (l2.access(line + off)) {
        ++out.l2.hits;
      } else {
        ++out.l2.misses;
        out.dram_bytes += spec.l2_line_bytes;
      }
    }
  }
}

void replay_interleaved(std::vector<WarpReplay>& replays,
                        const DeviceSpec& spec, SetAssocCache& l1,
                        SetAssocCache& l2, KernelMetrics& out) {
  std::vector<std::uint64_t> l2_misses;
  replay_interleaved_l1(replays, spec, l1, out, l2_misses);
  replay_l2_lines(l2_misses, spec, l2, out);
}

void analyze_warp(const std::vector<const LaneTrace*>& traces,
                  const DeviceSpec& spec, SetAssocCache& l1,
                  SetAssocCache& l2, KernelMetrics& out) {
  std::vector<WarpReplay> replays;
  replays.push_back(analyze_warp_groups(traces, spec, out));
  replay_interleaved(replays, spec, l1, l2, out);
}

}  // namespace bd::simt
