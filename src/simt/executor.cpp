#include "simt/executor.hpp"

#include <vector>

#include "simt/trace.hpp"
#include "simt/warp.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/telemetry.hpp"

namespace bd::simt {

namespace {

/// Everything pass 1 produces for one block: the analysis counters of its
/// warps and the coalesced transaction streams pass 2 replays. Divergence
/// and coalescing are per-warp properties, so they are computed inside the
/// parallel pass; only the cache state is global and stays serial.
struct BlockOutput {
  KernelMetrics analysis;
  std::vector<WarpReplay> replays;  // one per warp, warp-major order
};

}  // namespace

KernelMetrics launch(const DeviceSpec& spec, const LaunchConfig& config,
                     const KernelFn& kernel) {
  BD_CHECK_MSG(config.num_blocks > 0, "launch needs at least one block");
  BD_CHECK_MSG(config.threads_per_block > 0 &&
                   config.threads_per_block <= spec.max_threads_per_block,
               "threads per block out of range");
  BD_CHECK(kernel != nullptr);

  // Purely observational: spans/counters never feed back into the model,
  // so captured and uncaptured runs produce bit-identical KernelMetrics
  // (asserted by tests/test_determinism.cpp).
  namespace telemetry = util::telemetry;
  telemetry::TraceSpan launch_span("simt.launch", "simt");
  launch_span.arg("blocks", static_cast<std::uint64_t>(config.num_blocks));
  launch_span.arg("threads_per_block",
                  static_cast<std::uint64_t>(config.threads_per_block));
  telemetry::counter_add("simt.launches");

  const std::uint32_t warps_per_block =
      (config.threads_per_block + spec.warp_size - 1) / spec.warp_size;
  const std::uint32_t resident = std::max<std::uint32_t>(
      1, spec.resident_warps_per_sm / warps_per_block);

  // --- Pass 1 (parallel): execute lanes, analyze warps -------------------
  // One task per block. Lanes within a block run serially in lane order on
  // one thread; lanes from different blocks may run concurrently (the
  // contract kernels must obey, see executor.hpp). Each task owns its lane
  // traces and accumulates divergence/coalescing counters into a private
  // KernelMetrics, so pass 1 shares no mutable state between tasks.
  std::vector<BlockOutput> blocks(config.num_blocks);
  telemetry::TraceSession& session = telemetry::current_trace();
  const double lane_pass_start = session.enabled() ? session.now_us() : 0.0;
  util::parallel_for(0, config.num_blocks, [&](std::size_t b) {
    BlockOutput& out = blocks[b];
    const auto block = static_cast<std::uint32_t>(b);
    std::vector<LaneTrace> traces(spec.warp_size);
    out.replays.reserve(warps_per_block);
    for (std::uint32_t warp = 0; warp < warps_per_block; ++warp) {
      const std::uint32_t lane_begin = warp * spec.warp_size;
      const std::uint32_t lane_end = std::min(
          lane_begin + spec.warp_size, config.threads_per_block);
      std::vector<const LaneTrace*> warp_traces;
      warp_traces.reserve(lane_end - lane_begin);
      for (std::uint32_t t = lane_begin; t < lane_end; ++t) {
        LaneTrace& trace = traces[t - lane_begin];
        trace.reset();
        ThreadCtx ctx;
        ctx.block_id = block;
        ctx.thread_id = t;
        ctx.global_id = block * config.threads_per_block + t;
        kernel(ctx, trace);
        warp_traces.push_back(&trace);
      }
      out.replays.push_back(
          analyze_warp_groups(warp_traces, spec, out.analysis));
    }
  });
  if (session.enabled()) {
    session.record_complete("simt.lane_pass", "simt", lane_pass_start,
                            session.now_us() - lane_pass_start, "");
  }
  const double replay_start = session.enabled() ? session.now_us() : 0.0;

  // --- Pass 2 (sharded): replay memory traffic through the caches -------
  // Blocks are distributed round-robin over SMs (block b runs on SM
  // b % num_sms); on each SM, groups of `resident` consecutive blocks are
  // co-resident and their warps' streams interleave in the private L1.
  //
  // Per-SM L1 state is independent, so stage 2a replays every SM's L1 in
  // parallel on the thread pool, each shard accumulating its own metrics
  // partial and recording the line address of every L1 miss in replay
  // order. Stage 2b then merges serially in SM index order: partials are
  // integer sums (order-insensitive), and feeding each SM's miss stream
  // through the shared L2 SM-major reproduces the serial executor's L2
  // access order exactly — the serial replay was SM-major already. Every
  // cache transition, and therefore KernelMetrics, stays bit-for-bit
  // independent of BD_NUM_THREADS and of pass-1/2a scheduling.
  struct SmShard {
    KernelMetrics partial;
    std::vector<std::uint64_t> l2_misses;
  };
  const std::uint32_t num_shards =
      std::min<std::uint32_t>(spec.num_sms, config.num_blocks);
  std::vector<SmShard> shards(spec.num_sms);
  util::parallel_for(0, spec.num_sms, [&](std::size_t sm_idx) {
    const auto sm = static_cast<std::uint32_t>(sm_idx);
    SmShard& shard = shards[sm_idx];
    SetAssocCache l1(spec.l1_bytes, spec.l1_line_bytes, spec.l1_ways);
    std::vector<std::uint32_t> my_blocks;
    for (std::uint32_t block = sm; block < config.num_blocks;
         block += spec.num_sms) {
      my_blocks.push_back(block);
    }
    for (std::size_t chunk = 0; chunk < my_blocks.size();
         chunk += resident) {
      const std::size_t chunk_end =
          std::min(my_blocks.size(), chunk + resident);
      std::vector<WarpReplay> replays;
      replays.reserve((chunk_end - chunk) * warps_per_block);
      for (std::size_t bi = chunk; bi < chunk_end; ++bi) {
        BlockOutput& out = blocks[my_blocks[bi]];
        shard.partial += out.analysis;
        for (WarpReplay& replay : out.replays) {
          replays.push_back(std::move(replay));
        }
        out.replays.clear();
        out.replays.shrink_to_fit();  // free trace memory as we go
      }
      replay_interleaved_l1(replays, spec, l1, shard.partial,
                            shard.l2_misses);
    }
  });

  KernelMetrics metrics;
  metrics.warp_size = spec.warp_size;
  SetAssocCache l2(spec.l2_bytes, spec.l2_line_bytes, spec.l2_ways);
  for (std::uint32_t sm = 0; sm < spec.num_sms; ++sm) {
    metrics += shards[sm].partial;
    replay_l2_lines(shards[sm].l2_misses, spec, l2, metrics);
  }

  if (session.enabled()) {
    session.record_complete("simt.cache_replay", "simt", replay_start,
                            session.now_us() - replay_start, "");
  }
  telemetry::histogram_record("simt.replay_shards",
                              static_cast<double>(num_shards));

  apply_time_model(metrics, spec);

  // KernelMetrics ride along as span args / registry metrics so the trace
  // carries the same profiler aggregates the paper's tables report.
  launch_span.arg("modeled_ms", metrics.modeled_seconds * 1e3);
  launch_span.arg("warp_exec_eff", metrics.warp_execution_efficiency());
  launch_span.arg("l1_hit_rate", metrics.l1_hit_rate());
  launch_span.arg("flops", metrics.flops);
  launch_span.arg("dram_bytes", metrics.dram_bytes);
  telemetry::counter_add("simt.flops", metrics.flops);
  telemetry::histogram_record("simt.modeled_kernel_ms",
                              metrics.modeled_seconds * 1e3);
  return metrics;
}

}  // namespace bd::simt
