#pragma once
/// \file batch_eval.hpp
/// Batched sample evaluation for the quadrature engine.
///
/// The evaluation-engine entry points walk contiguous sample arrays: the
/// shared-sample sweep pays four fresh samples per interval (fm, fb, fl,
/// fr) and the memoized adaptive refinement pays two (fl, fr). Both now
/// hand those samples to `RadialIntegrand::eval_batch` as one block, so an
/// integrand with a vectorized path (beam::WakeIntegrand) evaluates all
/// lanes per call while integrands without one fall back to the default
/// scalar loop defined here.
///
/// Identity contract (enforced by test_eval_engine): eval_batch(r, out, n)
/// must leave out[k] bitwise equal to eval(r[k]) and must emit the same
/// per-site probe-event sequences as n sequential eval() calls. Batching
/// changes how many virtual calls are paid, never which IEEE operations
/// run or what the warp analyzer sees.

#include <cstddef>

#include "quad/integrand.hpp"
#include "quad/rule.hpp"
#include "quad/simpson.hpp"
#include "simt/probe.hpp"

namespace bd::quad {

/// Maximum samples per eval_batch call — one AVX2 register of doubles.
inline constexpr std::size_t kBatchWidth = 4;

/// The memoized-refinement pair: evaluates the two fine points fl, fr of
/// [a, b] as one batch and combines with the known coarse samples.
/// Bit-identical to simpson_estimate_memo's former two scalar evals (same
/// points, same order).
QuadEstimate simpson_refine_batch(const RadialIntegrand& f, double a,
                                  double b, double fa, double fm, double fb,
                                  simt::LaneProbe& probe,
                                  SimpsonSamples& out);

}  // namespace bd::quad
