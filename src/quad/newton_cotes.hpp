#pragma once
/// \file newton_cotes.hpp
/// Closed Newton–Cotes formulas. The inner (angular) integral of the
/// rp-integral is computed with these (paper §II-A); the number of sample
/// points is the constant α that fixes the per-partition memory reference
/// count α·n_i.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace bd::quad {

/// Normalized closed Newton–Cotes weights for `points` sample points on
/// [0, 1]: ∫₀¹ f ≈ Σ w_i f(i/(points-1)). Supported: 2 ≤ points ≤ 9
/// (trapezoid .. 8th order). Throws bd::CheckError otherwise.
std::span<const double> newton_cotes_weights(int points);

/// Integrate a callable over [a, b] with an n-point closed Newton–Cotes
/// rule.
double newton_cotes(const std::function<double(double)>& f, double a, double b,
                    int points);

/// Composite Newton–Cotes: the interval is split into `panels` panels, each
/// integrated with an n-point rule (shared endpoints are re-evaluated; the
/// modeled GPU kernels do the same, which keeps flop counting honest).
double composite_newton_cotes(const std::function<double(double)>& f, double a,
                              double b, int points, int panels);

/// Degree of exactness of the n-point closed rule (highest polynomial degree
/// integrated exactly): n-1 for even n, n for odd n.
int newton_cotes_exactness(int points);

}  // namespace bd::quad
