#include "quad/batch_eval.hpp"

namespace bd::quad {

// The scalar reference semantics of a batch: n sequential eval() calls.
// Every override must be bitwise indistinguishable from this loop (values
// and probe streams alike); it also serves integrands that never grow a
// vectorized path, including test doubles that count eval() calls.
void RadialIntegrand::eval_batch(const double* r, double* out, std::size_t n,
                                 simt::LaneProbe& probe) const {
  for (std::size_t k = 0; k < n; ++k) out[k] = eval(r[k], probe);
}

QuadEstimate simpson_refine_batch(const RadialIntegrand& f, double a,
                                  double b, double fa, double fm, double fb,
                                  simt::LaneProbe& probe,
                                  SimpsonSamples& out) {
  const double m = 0.5 * (a + b);
  out.fa = fa;
  out.fm = fm;
  out.fb = fb;
  const double r[2] = {0.5 * (a + m), 0.5 * (m + b)};
  double fv[2];
  f.eval_batch(r, fv, 2, probe);
  out.fl = fv[0];
  out.fr = fv[1];

  QuadEstimate est = simpson_combine(a, b, out, probe);
  est.evaluations = 2;
  return est;
}

}  // namespace bd::quad
