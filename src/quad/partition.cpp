#include "quad/partition.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bd::quad {

std::vector<double> merge_partitions(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     double eps) {
  std::vector<double> merged;
  merged.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(merged));
  std::vector<double> unique;
  unique.reserve(merged.size());
  for (double x : merged) {
    if (unique.empty() || x - unique.back() > eps) {
      unique.push_back(x);
    }
  }
  return unique;
}

void merge_partitions_into(std::span<const double> a,
                           std::span<const double> b,
                           std::vector<double>& out, double eps) {
  out.clear();
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() || ib < b.size()) {
    // Stable like std::merge: on a tie, take from `a` first.
    double x;
    if (ib >= b.size() || (ia < a.size() && !(b[ib] < a[ia]))) {
      x = a[ia++];
    } else {
      x = b[ib++];
    }
    if (out.empty() || x - out.back() > eps) out.push_back(x);
  }
}

std::vector<std::uint32_t> count_per_subregion(
    const std::vector<double>& breakpoints, double sub_width,
    std::uint32_t num_subregions) {
  BD_CHECK(sub_width > 0.0);
  std::vector<std::uint32_t> counts(num_subregions, 0);
  if (breakpoints.size() < 2 || num_subregions == 0) return counts;
  for (std::size_t i = 0; i + 1 < breakpoints.size(); ++i) {
    const double mid = 0.5 * (breakpoints[i] + breakpoints[i + 1]);
    auto j = static_cast<std::int64_t>(std::floor(mid / sub_width));
    j = std::clamp<std::int64_t>(j, 0, num_subregions - 1);
    ++counts[static_cast<std::size_t>(j)];
  }
  return counts;
}

std::vector<double> partition_from_counts(
    const std::vector<std::uint32_t>& counts, double sub_width, double r_max) {
  BD_CHECK(sub_width > 0.0 && r_max > 0.0);
  std::vector<double> breaks;
  breaks.push_back(0.0);
  for (std::size_t j = 0; j < counts.size(); ++j) {
    const double lo = static_cast<double>(j) * sub_width;
    if (lo >= r_max) break;
    const double hi = std::min(lo + sub_width, r_max);
    const std::uint32_t n = std::max<std::uint32_t>(1, counts[j]);
    for (std::uint32_t i = 1; i <= n; ++i) {
      const double x = lo + (hi - lo) * static_cast<double>(i) / n;
      if (x > breaks.back()) breaks.push_back(x);
    }
    if (hi >= r_max) break;
  }
  if (breaks.back() < r_max) breaks.push_back(r_max);
  return breaks;
}

std::vector<double> refine_partition(const std::vector<double>& previous,
                                     const std::vector<std::uint32_t>& counts,
                                     double sub_width, double r_max) {
  BD_CHECK(sub_width > 0.0 && r_max > 0.0);
  if (previous.size() < 2) {
    return partition_from_counts(counts, sub_width, r_max);
  }
  const std::vector<std::uint32_t> prev_counts = count_per_subregion(
      previous, sub_width, static_cast<std::uint32_t>(counts.size()));

  std::vector<double> breaks;
  breaks.push_back(0.0);
  // Walk previous intervals clipped to [0, r_max]; subdivide each according
  // to the ratio of the target count to the previous count in its subregion.
  const std::vector<double> prev = clip_partition(previous, 0.0, r_max);
  for (std::size_t i = 0; i + 1 < prev.size(); ++i) {
    const double lo = prev[i];
    const double hi = prev[i + 1];
    const double mid = 0.5 * (lo + hi);
    auto j = static_cast<std::int64_t>(std::floor(mid / sub_width));
    j = std::clamp<std::int64_t>(j, 0,
                                 static_cast<std::int64_t>(counts.size()) - 1);
    const std::uint32_t target = std::max<std::uint32_t>(1, counts[static_cast<std::size_t>(j)]);
    const std::uint32_t have =
        std::max<std::uint32_t>(1, prev_counts[static_cast<std::size_t>(j)]);
    const std::uint32_t pieces =
        std::max<std::uint32_t>(1, (target + have - 1) / have);
    for (std::uint32_t s = 1; s <= pieces; ++s) {
      const double x = lo + (hi - lo) * static_cast<double>(s) / pieces;
      if (x > breaks.back()) breaks.push_back(x);
    }
  }
  if (breaks.back() < r_max) breaks.push_back(r_max);
  return breaks;
}

std::vector<double> clip_partition(const std::vector<double>& breakpoints,
                                   double lo, double hi) {
  BD_CHECK(lo <= hi);
  std::vector<double> out;
  if (breakpoints.empty() || breakpoints.front() >= hi ||
      breakpoints.back() <= lo) {
    return out;
  }
  out.push_back(lo);
  for (double x : breakpoints) {
    if (x > lo && x < hi) out.push_back(x);
  }
  if (hi > out.back()) out.push_back(hi);
  return out;
}

bool is_valid_partition(std::span<const double> breakpoints) {
  if (breakpoints.size() < 2) return false;
  for (std::size_t i = 0; i + 1 < breakpoints.size(); ++i) {
    if (!(breakpoints[i] < breakpoints[i + 1])) return false;
  }
  return true;
}

}  // namespace bd::quad
