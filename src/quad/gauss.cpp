#include "quad/gauss.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace bd::quad {

namespace {
/// Legendre P_n(x) and derivative via the three-term recurrence.
std::pair<double, double> legendre(int n, double x) {
  double p0 = 1.0;
  double p1 = x;
  for (int k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = pk;
  }
  const double dp = n * (x * p1 - p0) / (x * x - 1.0);
  return {p1, dp};
}
}  // namespace

GaussRule gauss_legendre(int n) {
  BD_CHECK_MSG(n >= 1, "Gauss rule needs n >= 1");
  GaussRule rule;
  rule.nodes.resize(static_cast<std::size_t>(n));
  rule.weights.resize(static_cast<std::size_t>(n));
  if (n == 1) {
    rule.nodes[0] = 0.0;
    rule.weights[0] = 2.0;
    return rule;
  }
  for (int i = 0; i < (n + 1) / 2; ++i) {
    // Chebyshev-based initial guess, then Newton.
    double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    for (int iter = 0; iter < 100; ++iter) {
      const auto [p, dp] = legendre(n, x);
      const double dx = -p / dp;
      x += dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const auto [p, dp] = legendre(n, x);
    (void)p;
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    rule.nodes[static_cast<std::size_t>(i)] = -x;
    rule.nodes[static_cast<std::size_t>(n - 1 - i)] = x;
    rule.weights[static_cast<std::size_t>(i)] = w;
    rule.weights[static_cast<std::size_t>(n - 1 - i)] = w;
  }
  if (n % 2 == 1) rule.nodes[static_cast<std::size_t>(n / 2)] = 0.0;
  return rule;
}

double gauss_integrate(const std::function<double(double)>& f, double a,
                       double b, int n) {
  const GaussRule rule = gauss_legendre(n);
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += rule.weights[static_cast<std::size_t>(i)] *
           f(mid + half * rule.nodes[static_cast<std::size_t>(i)]);
  }
  return acc * half;
}

namespace {
double gauss_adaptive_impl(const std::function<double(double)>& f, double a,
                           double b, double abs_tol, int depth,
                           int max_depth) {
  const double coarse = gauss_integrate(f, a, b, 15);
  const double fine = gauss_integrate(f, a, b, 31);
  if (std::abs(fine - coarse) <= abs_tol || depth >= max_depth) return fine;
  const double mid = 0.5 * (a + b);
  return gauss_adaptive_impl(f, a, mid, abs_tol * 0.5, depth + 1, max_depth) +
         gauss_adaptive_impl(f, mid, b, abs_tol * 0.5, depth + 1, max_depth);
}
}  // namespace

double gauss_integrate_to_tolerance(const std::function<double(double)>& f,
                                    double a, double b, double abs_tol,
                                    int max_depth) {
  BD_CHECK(abs_tol > 0.0);
  if (a == b) return 0.0;
  return gauss_adaptive_impl(f, a, b, abs_tol, 0, max_depth);
}

}  // namespace bd::quad
