#pragma once
/// \file rule.hpp
/// Common result type for quadrature rule applications.

#include <cstdint>

namespace bd::quad {

/// Integral estimate with an error estimate and evaluation count.
struct QuadEstimate {
  double integral = 0.0;
  double error = 0.0;           ///< estimated absolute error
  std::uint64_t evaluations = 0; ///< integrand evaluations consumed

  QuadEstimate& operator+=(const QuadEstimate& other) {
    integral += other.integral;
    error += other.error;
    evaluations += other.evaluations;
    return *this;
  }
};

}  // namespace bd::quad
