#pragma once
/// \file partition_set.hpp
/// CSR-style storage for a family of partitions — the step-persistent
/// replacement for `vector<vector<double>>` in the rp-solver hot path.
///
/// A PartitionSet separates *entries* (what callers index by: grid points
/// or clusters) from *rows* (distinct breakpoint lists stored back to back
/// in one flat buffer). Several entries may alias one row — the MERGE-LISTS
/// result a whole warp shares, or the single coarse bootstrap partition
/// every point starts from — without duplicating storage.
///
/// Allocation discipline: every call that can allocate (`reset`,
/// `layout_rows`, `add_row`, `copy_from`) is serial; `row_slot` /
/// `set_row_length` / all readers are allocation-free and safe to use from
/// a parallel fill over disjoint rows. Buffers are never shrunk, so a set
/// reused across time steps stops allocating once it reaches its
/// high-water mark — tracked by the grow/reuse event counters that feed
/// the `rp.scratch_grows` / `rp.scratch_reuses` telemetry.

#include <cstdint>
#include <span>
#include <vector>

namespace bd::util {
class BinaryWriter;
class BinaryReader;
}  // namespace bd::util

namespace bd::quad {

class PartitionSet {
 public:
  /// Serial: start a new layout with `entries` entries and no rows.
  /// Capacity is kept from previous use.
  void reset(std::size_t entries);

  /// Serial: plan `capacities.size()` rows with the given per-row slot
  /// capacities and bind entry e -> row e (callers re-bind afterwards if
  /// the identity mapping is wrong). All allocation happens here; the rows
  /// can then be filled in parallel through `row_slot`/`set_row_length`.
  /// Requires entries() == capacities.size().
  void layout_rows(std::span<const std::size_t> capacities);

  /// Parallel-safe: the writable slot of row `row` (capacity-sized).
  std::span<double> row_slot(std::size_t row) {
    return {breaks_.data() + row_start_[row], row_cap_[row]};
  }

  /// Parallel-safe: record how much of row `row`'s slot is actually used.
  void set_row_length(std::size_t row, std::size_t len);

  /// Serial: append one row holding a copy of `breaks`; returns its id.
  /// Usable after `layout_rows` (mixed layouts) or on a fresh `reset`.
  std::size_t add_row(std::span<const double> breaks);

  /// Bind entry -> row.
  void bind(std::size_t entry, std::size_t row) {
    entry_row_[entry] = static_cast<std::uint32_t>(row);
  }
  /// Bind every entry to `row`.
  void bind_all(std::size_t row);

  std::size_t row_of(std::size_t entry) const { return entry_row_[entry]; }
  std::span<const double> row(std::size_t r) const {
    return {breaks_.data() + row_start_[r], row_len_[r]};
  }
  /// The partition of entry `e` (through its row binding).
  std::span<const double> at(std::size_t e) const {
    return row(entry_row_[e]);
  }

  std::size_t entries() const { return entry_row_.size(); }
  std::size_t rows() const { return row_start_.size(); }
  /// Total break slots used by the current layout (Σ row capacities).
  std::size_t used() const { return used_; }

  /// Serial: pre-size the flat break storage for `cap` total slots before
  /// an add_row loop, so an incrementally built layout pays at most one
  /// growth instead of a doubling cascade. Callers pass an upper bound
  /// (e.g. the Σ of the input rows a MERGE-LISTS fold consumes).
  void reserve_breaks(std::size_t cap);

  /// Serial: become a copy of `other` (rows, lengths, bindings), reusing
  /// capacity.
  void copy_from(const PartitionSet& other);

  /// Serial: drop entries and rows, keep capacity.
  void clear();

  /// Drain the allocation instrumentation: number of internal buffer
  /// growths / growth-free reuses since the last take.
  std::uint64_t take_grow_events();
  std::uint64_t take_reuse_events();

 private:
  void ensure_breaks(std::size_t n);
  template <typename T>
  void ensure(std::vector<T>& v, std::size_t n);

  std::vector<std::size_t> row_start_;  ///< slot start per row
  std::vector<std::size_t> row_cap_;    ///< slot capacity per row
  std::vector<std::size_t> row_len_;    ///< used length per row
  std::vector<double> breaks_;          ///< flat slot storage
  std::size_t used_ = 0;                ///< breaks_ high-water of this layout
  std::vector<std::uint32_t> entry_row_;
  std::uint64_t grow_events_ = 0;
  std::uint64_t reuse_events_ = 0;
};

/// Serialize with the exact wire format of util::write_nested_f64 applied
/// to the per-entry partitions (one f64 span per entry — row aliasing is
/// not preserved, values are). Keeps PartitionSet-backed solver state
/// byte-compatible with the previous vector<vector<double>> checkpoints.
void write_partition_set_nested(util::BinaryWriter& out,
                                const PartitionSet& set);
void read_partition_set_nested(util::BinaryReader& in, PartitionSet& set);

}  // namespace bd::quad
