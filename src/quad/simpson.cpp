#include "quad/simpson.hpp"

#include <cmath>

#include "quad/batch_eval.hpp"

namespace bd::quad {

double simpson_value(const RadialIntegrand& f, double a, double b,
                     simt::LaneProbe& probe) {
  const double m = 0.5 * (a + b);
  const double value =
      (b - a) / 6.0 * (f.eval(a, probe) + 4.0 * f.eval(m, probe) +
                       f.eval(b, probe));
  probe.count_flops(6);
  return value;
}

QuadEstimate simpson_combine(double a, double b, const SimpsonSamples& s,
                             simt::LaneProbe& probe) {
  const double h = b - a;
  const double coarse = h / 6.0 * (s.fa + 4.0 * s.fm + s.fb);
  const double fine =
      h / 12.0 * (s.fa + 4.0 * s.fl + 2.0 * s.fm + 4.0 * s.fr + s.fb);
  probe.count_flops(18);

  QuadEstimate est;
  est.error = std::abs(fine - coarse) / 15.0;
  est.integral = fine + (fine - coarse) / 15.0;
  est.evaluations = 0;
  return est;
}

QuadEstimate simpson_estimate(const RadialIntegrand& f, double a, double b,
                              simt::LaneProbe& probe) {
  const double m = 0.5 * (a + b);
  SimpsonSamples s;
  s.fa = f.eval(a, probe);
  s.fm = f.eval(m, probe);
  s.fb = f.eval(b, probe);
  s.fl = f.eval(0.5 * (a + m), probe);
  s.fr = f.eval(0.5 * (m + b), probe);

  QuadEstimate est = simpson_combine(a, b, s, probe);
  est.evaluations = 5;
  return est;
}

QuadEstimate simpson_estimate_memo(const RadialIntegrand& f, double a,
                                   double b, double fa, double fm, double fb,
                                   simt::LaneProbe& probe,
                                   SimpsonSamples& out) {
  // The memoized refinement pair (fl, fr) is one eval_batch block; the
  // adaptive driver inherits the batched path through this delegation.
  return simpson_refine_batch(f, a, b, fa, fm, fb, probe, out);
}

}  // namespace bd::quad
