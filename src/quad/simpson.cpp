#include "quad/simpson.hpp"

#include <cmath>

namespace bd::quad {

double simpson_value(const RadialIntegrand& f, double a, double b,
                     simt::LaneProbe& probe) {
  const double m = 0.5 * (a + b);
  const double value =
      (b - a) / 6.0 * (f.eval(a, probe) + 4.0 * f.eval(m, probe) +
                       f.eval(b, probe));
  probe.count_flops(6);
  return value;
}

QuadEstimate simpson_estimate(const RadialIntegrand& f, double a, double b,
                              simt::LaneProbe& probe) {
  const double m = 0.5 * (a + b);
  const double fa = f.eval(a, probe);
  const double fm = f.eval(m, probe);
  const double fb = f.eval(b, probe);
  const double fl = f.eval(0.5 * (a + m), probe);
  const double fr = f.eval(0.5 * (m + b), probe);

  const double h = b - a;
  const double coarse = h / 6.0 * (fa + 4.0 * fm + fb);
  const double fine =
      h / 12.0 * (fa + 4.0 * fl + 2.0 * fm + 4.0 * fr + fb);
  probe.count_flops(18);

  QuadEstimate est;
  est.error = std::abs(fine - coarse) / 15.0;
  est.integral = fine + (fine - coarse) / 15.0;
  est.evaluations = 5;
  return est;
}

}  // namespace bd::quad
