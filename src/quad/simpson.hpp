#pragma once
/// \file simpson.hpp
/// Simpson quadrature rule with a Richardson error estimate — the
/// RP-QUADRULE of the paper (Listing 1): estimates the rp-integral along
/// one outer subregion, evaluating the inner integral at 5 radii.

#include "quad/integrand.hpp"
#include "quad/rule.hpp"
#include "simt/probe.hpp"

namespace bd::quad {

/// Simpson estimate over [a, b]: compares S(a,b) against
/// S(a,m) + S(m,b) and uses the standard |S2 - S1| / 15 error bound, with
/// the Richardson-extrapolated value returned as the integral.
/// Costs 5 integrand evaluations.
QuadEstimate simpson_estimate(const RadialIntegrand& f, double a, double b,
                              simt::LaneProbe& probe);

/// Plain (non-extrapolated) 3-point Simpson value over [a, b].
double simpson_value(const RadialIntegrand& f, double a, double b,
                     simt::LaneProbe& probe);

}  // namespace bd::quad
