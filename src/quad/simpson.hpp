#pragma once
/// \file simpson.hpp
/// Simpson quadrature rule with a Richardson error estimate — the
/// RP-QUADRULE of the paper (Listing 1): estimates the rp-integral along
/// one outer subregion, evaluating the inner integral at 5 radii.
///
/// The evaluation-engine primitives below all share one arithmetic core
/// (`simpson_combine`), so every entry point — the plain 5-point
/// estimate, the 2-point memoized refinement, and the shared-sample
/// partition sweep — produces bit-identical estimates for the same
/// interval; they differ only in how many integrand evaluations they pay.

#include <cstddef>
#include <cstdint>
#include <span>

#include "quad/integrand.hpp"
#include "quad/rule.hpp"
#include "simt/probe.hpp"

namespace bd::quad {

/// The five samples of one Simpson interval [a, b] with m = (a+b)/2:
/// fa = f(a), fl = f((a+m)/2), fm = f(m), fr = f((m+b)/2), fb = f(b).
struct SimpsonSamples {
  double fa = 0.0;
  double fl = 0.0;
  double fm = 0.0;
  double fr = 0.0;
  double fb = 0.0;
};

/// Richardson-extrapolated Simpson estimate from already-known samples.
/// Costs 0 integrand evaluations (18 flops). `simpson_estimate` and the
/// memoized/sweep variants are thin wrappers over this, which is what
/// guarantees their bit-identity.
QuadEstimate simpson_combine(double a, double b, const SimpsonSamples& s,
                             simt::LaneProbe& probe);

/// Simpson estimate over [a, b]: compares S(a,b) against
/// S(a,m) + S(m,b) and uses the standard |S2 - S1| / 15 error bound, with
/// the Richardson-extrapolated value returned as the integral.
/// Costs 5 integrand evaluations.
QuadEstimate simpson_estimate(const RadialIntegrand& f, double a, double b,
                              simt::LaneProbe& probe);

/// Simpson estimate over [a, b] with the three coarse samples
/// fa = f(a), fm = f((a+b)/2), fb = f(b) already known (the memoized
/// adaptive refinement path): evaluates only the two fine points fl, fr.
/// Costs 2 integrand evaluations; the full sample set is written to `out`
/// so the caller can seed further bisections.
QuadEstimate simpson_estimate_memo(const RadialIntegrand& f, double a,
                                   double b, double fa, double fm, double fb,
                                   simt::LaneProbe& probe,
                                   SimpsonSamples& out);

/// Plain (non-extrapolated) 3-point Simpson value over [a, b].
double simpson_value(const RadialIntegrand& f, double a, double b,
                     simt::LaneProbe& probe);

/// Shared-sample sweep over a whole partition: produces the same estimate
/// for every interval [p[i], p[i+1]] as a naive per-interval
/// `simpson_estimate` loop, but carries f(b_i) into interval i+1, so a
/// partition of n intervals costs 4·n+1 integrand evaluations instead of
/// 5·n. Bit-identical to the naive loop: the integrand is pure and every
/// sample-point expression is unchanged. The four fresh samples per
/// interval are evaluated as one eval_batch block in the same order the
/// scalar loop used (fm, fb, fl, fr), so batching integrands vectorize
/// here without changing values or probe streams. `visit(i, a, b, est,
/// samples)` is called once per interval, in order. Returns total
/// evaluations.
template <typename Visit>
std::uint64_t simpson_sweep(const RadialIntegrand& f,
                            std::span<const double> partition,
                            simt::LaneProbe& probe, Visit&& visit) {
  if (partition.size() < 2) return 0;
  SimpsonSamples s;
  s.fa = f.eval(partition[0], probe);
  std::uint64_t evaluations = 1;
  for (std::size_t i = 0; i + 1 < partition.size(); ++i) {
    const double a = partition[i];
    const double b = partition[i + 1];
    const double m = 0.5 * (a + b);
    const double r[4] = {m, b, 0.5 * (a + m), 0.5 * (m + b)};
    double fv[4];
    f.eval_batch(r, fv, 4, probe);
    s.fm = fv[0];
    s.fb = fv[1];
    s.fl = fv[2];
    s.fr = fv[3];
    evaluations += 4;
    const QuadEstimate est = simpson_combine(a, b, s, probe);
    visit(i, a, b, est, s);
    s.fa = s.fb;  // the shared sample: f(b_i) == f(a_{i+1})
  }
  return evaluations;
}

}  // namespace bd::quad
