#pragma once
/// \file adaptive.hpp
/// Stack-based adaptive Simpson quadrature — the RP-ADAPTIVEQUADRATURE of
/// the paper. In addition to the integral/error estimates it returns the
/// partition it generated along the outer dimension (the breakpoints) so
/// callers can log the observed data-access pattern for the online learner.

#include <cstdint>
#include <vector>

#include "quad/integrand.hpp"
#include "quad/rule.hpp"
#include "simt/probe.hpp"

namespace bd::quad {

/// Tunables for the adaptive driver.
struct AdaptiveOptions {
  int max_depth = 30;           ///< bisection depth limit
  std::uint64_t max_intervals = 1u << 20;  ///< interval budget safety net
};

/// Result of adaptive integration over one interval.
struct AdaptiveResult {
  double integral = 0.0;
  double error = 0.0;               ///< accumulated error estimate
  std::uint64_t evaluations = 0;    ///< integrand evaluations
  bool converged = true;            ///< false if a budget/depth limit hit
  std::vector<double> breakpoints;  ///< sorted partition incl. both endpoints
};

/// Adaptively integrate `f` over [a, b] to absolute tolerance `tol`.
/// Tolerance is distributed proportionally to subinterval width so the
/// total error is bounded by `tol` (the classic adaptive-Simpson policy;
/// identical to the control flow the paper's GPU fallback kernel executes).
/// Loop trip counts and branches are reported through `probe` so the SIMT
/// model sees this routine's data-dependent control flow.
AdaptiveResult adaptive_simpson(const RadialIntegrand& f, double a, double b,
                                double tol, simt::LaneProbe& probe,
                                const AdaptiveOptions& options = {});

}  // namespace bd::quad
