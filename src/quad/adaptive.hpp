#pragma once
/// \file adaptive.hpp
/// Stack-based adaptive Simpson quadrature — the RP-ADAPTIVEQUADRATURE of
/// the paper. In addition to the integral/error estimates it returns the
/// partition it generated along the outer dimension (the breakpoints) so
/// callers can log the observed data-access pattern for the online learner.
///
/// The driver is memoized: each work item carries the samples of its
/// interval that are already known, so a bisection costs 2 new integrand
/// evaluations (the two fine points of each child) instead of 5, and a
/// caller that has just run a Simpson estimate on the root interval (the
/// kernel-1 sweep) can seed the root for free. Accept/poison/depth logic,
/// LIFO traversal order, and all arithmetic are unchanged, so results are
/// bit-identical to the non-memoized driver.

#include <cmath>
#include <cstdint>
#include <vector>

#include "quad/integrand.hpp"
#include "quad/rule.hpp"
#include "quad/simpson.hpp"
#include "simt/probe.hpp"

namespace bd::quad {

/// Tunables for the adaptive driver.
struct AdaptiveOptions {
  int max_depth = 30;           ///< bisection depth limit
  std::uint64_t max_intervals = 1u << 20;  ///< interval budget safety net
};

/// Result of adaptive integration over one interval.
struct AdaptiveResult {
  double integral = 0.0;
  double error = 0.0;               ///< accumulated error estimate
  std::uint64_t evaluations = 0;    ///< integrand evaluations
  std::uint64_t evaluations_saved = 0;  ///< evals avoided by memoization
  bool converged = true;            ///< false if a budget/depth limit hit
  std::vector<double> breakpoints;  ///< sorted partition incl. both endpoints
};

/// One pending interval of the memoized worklist. The three coarse samples
/// are always valid; the fine pair is valid only for a seeded root
/// (`have_fine`), whose five samples the caller already owns.
struct AdaptiveWorkItem {
  double a = 0.0;
  double b = 0.0;
  double fa = 0.0;
  double fm = 0.0;
  double fb = 0.0;
  double fl = 0.0;       ///< valid only when have_fine
  double fr = 0.0;       ///< valid only when have_fine
  double tol = 0.0;
  int depth = 0;
  bool have_fine = false;
};

/// Aggregate outcome of the seeded driver. No breakpoint list — callers
/// that need one collect interval starts through the accept callback.
struct AdaptiveOutcome {
  double integral = 0.0;
  double error = 0.0;
  std::uint64_t evaluations = 0;        ///< new evals paid by the driver
  std::uint64_t evaluations_saved = 0;  ///< 3 per memoized bisection child
  std::uint64_t intervals = 0;          ///< accepted (leaf) intervals
  bool converged = true;
};

namespace detail {
inline constexpr std::uint32_t kAdaptiveLoopSite =
    simt::site_id("quad/adaptive/worklist");
inline constexpr std::uint32_t kAdaptiveAcceptSite =
    simt::site_id("quad/adaptive/accept");
}  // namespace detail

/// Memoized adaptive Simpson over [a, b], seeded with the five samples of
/// the root interval (free when the caller just estimated it, e.g. during
/// the kernel-1 partition sweep). `stack` is caller-provided scratch — it
/// is cleared on entry and reusing it across calls makes the driver
/// allocation-free in steady state. `accept(item, est)` is invoked for
/// every accepted leaf in DFS (left-to-right) order.
///
/// Eval accounting: the driver pays 2 evaluations and books 3 saved per
/// memoized child; the free seeded root books nothing here — the caller
/// decides whether its samples were actually free (+5 saved in the
/// fallback, +0 in the standalone wrapper which paid for them).
template <typename Accept>
AdaptiveOutcome adaptive_simpson_seeded(const RadialIntegrand& f, double a,
                                        double b, double tol,
                                        const SimpsonSamples& root,
                                        simt::LaneProbe& probe,
                                        const AdaptiveOptions& options,
                                        std::vector<AdaptiveWorkItem>& stack,
                                        Accept&& accept) {
  AdaptiveOutcome out;
  stack.clear();
  stack.push_back(AdaptiveWorkItem{a, b, root.fa, root.fm, root.fb, root.fl,
                                   root.fr, tol, 0, true});

  std::uint64_t trips = 0;
  std::uint64_t intervals_created = 1;

  while (!stack.empty()) {
    ++trips;
    const AdaptiveWorkItem item = stack.back();
    stack.pop_back();

    SimpsonSamples s;
    QuadEstimate est;
    if (item.have_fine) {
      s = SimpsonSamples{item.fa, item.fl, item.fm, item.fr, item.fb};
      est = simpson_combine(item.a, item.b, s, probe);
    } else {
      est = simpson_estimate_memo(f, item.a, item.b, item.fa, item.fm,
                                  item.fb, probe, s);
      out.evaluations += 2;
      out.evaluations_saved += 3;
    }

    // A non-finite estimate can never converge — bisecting a NaN integrand
    // yields NaN on both halves — so refining it would only burn the whole
    // interval budget (and, via the breakpoint list, unbounded memory when
    // a poisoned grid taints every point's integrand).
    const bool poisoned =
        !std::isfinite(est.integral) || !std::isfinite(est.error);
    const bool accepted = poisoned || est.error <= item.tol ||
                          item.depth >= options.max_depth ||
                          intervals_created >= options.max_intervals;
    probe.branch(detail::kAdaptiveAcceptSite, accepted);

    if (accepted) {
      if (poisoned || est.error > item.tol) out.converged = false;
      out.integral += est.integral;
      out.error += est.error;
      ++out.intervals;
      accept(item, est);
    } else {
      const double m = 0.5 * (item.a + item.b);
      // LIFO order keeps the scan depth-first, left to right. Each child
      // inherits three of the parent's five samples: the fine pair become
      // the children's midpoints (the sample points coincide exactly).
      stack.push_back(AdaptiveWorkItem{m, item.b, s.fm, s.fr, s.fb, 0.0, 0.0,
                                       0.5 * item.tol, item.depth + 1,
                                       false});
      stack.push_back(AdaptiveWorkItem{item.a, m, s.fa, s.fl, s.fm, 0.0, 0.0,
                                       0.5 * item.tol, item.depth + 1,
                                       false});
      ++intervals_created;
      probe.count_flops(4);
    }
  }
  probe.loop_trip(detail::kAdaptiveLoopSite, trips);
  return out;
}

/// Adaptively integrate `f` over [a, b] to absolute tolerance `tol`.
/// Tolerance is distributed proportionally to subinterval width so the
/// total error is bounded by `tol` (the classic adaptive-Simpson policy;
/// identical to the control flow the paper's GPU fallback kernel executes).
/// Loop trip counts and branches are reported through `probe` so the SIMT
/// model sees this routine's data-dependent control flow.
AdaptiveResult adaptive_simpson(const RadialIntegrand& f, double a, double b,
                                double tol, simt::LaneProbe& probe,
                                const AdaptiveOptions& options = {});

}  // namespace bd::quad
