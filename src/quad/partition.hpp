#pragma once
/// \file partition.hpp
/// Partition algebra for the outer dimension of the rp-integral.
///
/// A partition is a sorted list of breakpoints r_0 < r_1 < ... < r_n over
/// an integration region. The paper represents each grid point's data
/// access pattern by the number of partition intervals n_j that fall inside
/// each radial subregion S_j = [j·w, (j+1)·w] (w = cΔt), and reconstructs
/// partitions from (predicted) patterns with the transforms of §III-C2.

#include <cstdint>
#include <span>
#include <vector>

namespace bd::quad {

/// Sorted-unique merge of two sorted breakpoint lists — the paper's
/// MERGE-LISTS. Values closer than `eps` are considered duplicates.
std::vector<double> merge_partitions(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     double eps = 1e-12);

/// Allocation-reusing MERGE-LISTS: writes the sorted-unique merge of `a`
/// and `b` into `out` (cleared first, capacity reused). Produces exactly
/// the same breakpoints as `merge_partitions`. `out` must not alias the
/// inputs.
void merge_partitions_into(std::span<const double> a,
                           std::span<const double> b,
                           std::vector<double>& out, double eps = 1e-12);

/// Count partition intervals per subregion: subregion j covers
/// [j·sub_width, (j+1)·sub_width). An interval is attributed to the
/// subregion containing its midpoint. Breakpoints beyond
/// num_subregions·sub_width are attributed to the last subregion.
std::vector<std::uint32_t> count_per_subregion(
    const std::vector<double>& breakpoints, double sub_width,
    std::uint32_t num_subregions);

/// Uniform partitioning transform (paper §III-C2, method 1): subregion j is
/// divided into counts[j] equal intervals (0 counts produce the bare
/// subregion boundary). Returns the global partition over
/// [0, num_subregions·sub_width] clipped to [0, r_max].
std::vector<double> partition_from_counts(
    const std::vector<std::uint32_t>& counts, double sub_width, double r_max);

/// Adaptive partitioning transform (paper §III-C2, method 2): each interval
/// of `previous` that lies in subregion j is subdivided into
/// ceil(counts[j] / d_j) equal pieces, where d_j is the number of previous
/// intervals in that subregion. Falls back to the uniform transform for
/// subregions where the previous partition has no interval.
std::vector<double> refine_partition(const std::vector<double>& previous,
                                     const std::vector<std::uint32_t>& counts,
                                     double sub_width, double r_max);

/// Restrict a global partition to the part inside [lo, hi]; endpoints are
/// inserted if missing. Returns an empty vector when the partition does not
/// overlap the window.
std::vector<double> clip_partition(const std::vector<double>& breakpoints,
                                   double lo, double hi);

/// True if breakpoints are strictly increasing.
bool is_valid_partition(std::span<const double> breakpoints);

}  // namespace bd::quad
