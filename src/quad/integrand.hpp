#pragma once
/// \file integrand.hpp
/// Integrand interfaces for the rp-integral machinery.
///
/// The rp-integral (paper Eq. 1) is a nested integral: an outer integration
/// over retarded radius r' and an inner integration over angle θ'. The
/// outer quadrature algorithms in this library operate on a RadialIntegrand,
/// whose eval(r) is understood to *be* the inner integral at radius r
/// (computed by the implementation with Newton–Cotes, reporting its memory
/// traffic through the LaneProbe).

#include <functional>

#include "simt/probe.hpp"

namespace bd::quad {

/// Abstract outer-dimension integrand f(r) = ∫ f(r, θ) dθ.
class RadialIntegrand {
 public:
  virtual ~RadialIntegrand() = default;

  /// Evaluate the inner integral at radius `r`, reporting flops and global
  /// loads through `probe`.
  virtual double eval(double r, simt::LaneProbe& probe) const = 0;

  /// Evaluate `n` radii in one call (n ≤ quad::kBatchWidth). The contract
  /// is strict batch-of-eval semantics: out[k] must be bitwise identical to
  /// eval(r[k], probe), and probe events must be emitted per sample in
  /// index order with the same per-site sequences the scalar path produces.
  /// The default implementation (batch_eval.cpp) is exactly that loop;
  /// integrands with a vectorized path (beam::WakeIntegrand) override it.
  virtual void eval_batch(const double* r, double* out, std::size_t n,
                          simt::LaneProbe& probe) const;
};

/// Adapter turning any callable double(double) into a RadialIntegrand.
/// Used by tests and by analytic reference computations; reports `flops_per
/// _eval` flops and no loads.
class FunctionIntegrand final : public RadialIntegrand {
 public:
  explicit FunctionIntegrand(std::function<double(double)> fn,
                             std::uint64_t flops_per_eval = 8)
      : fn_(std::move(fn)), flops_per_eval_(flops_per_eval) {}

  double eval(double r, simt::LaneProbe& probe) const override {
    probe.count_flops(flops_per_eval_);
    return fn_(r);
  }

 private:
  std::function<double(double)> fn_;
  std::uint64_t flops_per_eval_;
};

}  // namespace bd::quad
