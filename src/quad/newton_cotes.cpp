#include "quad/newton_cotes.hpp"

#include <array>

#include "util/check.hpp"

namespace bd::quad {

namespace {
// Normalized weights (sum to 1) for the closed rules on [0,1].
constexpr std::array<double, 2> kW2 = {0.5, 0.5};
constexpr std::array<double, 3> kW3 = {1.0 / 6, 4.0 / 6, 1.0 / 6};
constexpr std::array<double, 4> kW4 = {1.0 / 8, 3.0 / 8, 3.0 / 8, 1.0 / 8};
constexpr std::array<double, 5> kW5 = {7.0 / 90, 32.0 / 90, 12.0 / 90,
                                       32.0 / 90, 7.0 / 90};
constexpr std::array<double, 6> kW6 = {19.0 / 288, 75.0 / 288, 50.0 / 288,
                                       50.0 / 288, 75.0 / 288, 19.0 / 288};
constexpr std::array<double, 7> kW7 = {41.0 / 840,  216.0 / 840, 27.0 / 840,
                                       272.0 / 840, 27.0 / 840,  216.0 / 840,
                                       41.0 / 840};
constexpr std::array<double, 8> kW8 = {
    751.0 / 17280,  3577.0 / 17280, 1323.0 / 17280, 2989.0 / 17280,
    2989.0 / 17280, 1323.0 / 17280, 3577.0 / 17280, 751.0 / 17280};
constexpr std::array<double, 9> kW9 = {
    989.0 / 28350,   5888.0 / 28350, -928.0 / 28350,
    10496.0 / 28350, -4540.0 / 28350, 10496.0 / 28350,
    -928.0 / 28350,  5888.0 / 28350, 989.0 / 28350};
}  // namespace

std::span<const double> newton_cotes_weights(int points) {
  switch (points) {
    case 2: return kW2;
    case 3: return kW3;
    case 4: return kW4;
    case 5: return kW5;
    case 6: return kW6;
    case 7: return kW7;
    case 8: return kW8;
    case 9: return kW9;
    default:
      BD_CHECK_MSG(false, "Newton–Cotes supports 2..9 points, got " << points);
  }
}

double newton_cotes(const std::function<double(double)>& f, double a, double b,
                    int points) {
  const auto weights = newton_cotes_weights(points);
  const double h = b - a;
  double acc = 0.0;
  for (int i = 0; i < points; ++i) {
    const double x = a + h * static_cast<double>(i) / (points - 1);
    acc += weights[static_cast<std::size_t>(i)] * f(x);
  }
  return acc * h;
}

double composite_newton_cotes(const std::function<double(double)>& f, double a,
                              double b, int points, int panels) {
  BD_CHECK_MSG(panels >= 1, "need at least one panel");
  const double w = (b - a) / panels;
  double acc = 0.0;
  for (int p = 0; p < panels; ++p) {
    acc += newton_cotes(f, a + p * w, a + (p + 1) * w, points);
  }
  return acc;
}

int newton_cotes_exactness(int points) {
  BD_CHECK(points >= 2 && points <= 9);
  // n points -> degree n-1 rule; even-point counts gain one extra degree
  // when the point count is odd (symmetry).
  return (points % 2 == 1) ? points : points - 1;
}

}  // namespace bd::quad
