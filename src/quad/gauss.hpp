#pragma once
/// \file gauss.hpp
/// Gauss–Legendre quadrature (nodes via Newton iteration on Legendre
/// polynomials). Used as an ablation alternative to Newton–Cotes for the
/// inner integral, and in the analytic reference computations where high
/// order pays off.

#include <functional>
#include <vector>

namespace bd::quad {

/// Nodes and weights on [-1, 1].
struct GaussRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Compute the n-point Gauss–Legendre rule (n >= 1). Accurate to machine
/// precision for n up to several hundred.
GaussRule gauss_legendre(int n);

/// Integrate f over [a, b] with the n-point Gauss–Legendre rule.
double gauss_integrate(const std::function<double(double)>& f, double a,
                       double b, int n);

/// Adaptive-panel Gauss–Legendre to absolute tolerance: the interval is
/// bisected until two consecutive orders agree. Intended for computing
/// analytic reference values (slow, very accurate).
double gauss_integrate_to_tolerance(const std::function<double(double)>& f,
                                    double a, double b, double abs_tol,
                                    int max_depth = 48);

}  // namespace bd::quad
