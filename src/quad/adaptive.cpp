#include "quad/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "quad/simpson.hpp"
#include "util/check.hpp"

namespace bd::quad {

namespace {
constexpr std::uint32_t kLoopSite = simt::site_id("quad/adaptive/worklist");
constexpr std::uint32_t kBranchSite = simt::site_id("quad/adaptive/accept");

struct WorkItem {
  double a;
  double b;
  double tol;
  int depth;
};
}  // namespace

AdaptiveResult adaptive_simpson(const RadialIntegrand& f, double a, double b,
                                double tol, simt::LaneProbe& probe,
                                const AdaptiveOptions& options) {
  BD_CHECK_MSG(tol > 0.0, "tolerance must be positive");
  AdaptiveResult result;
  if (a == b) {
    result.breakpoints = {a, b};
    return result;
  }
  BD_CHECK_MSG(a < b, "interval must be ordered");

  std::vector<WorkItem> stack;
  stack.push_back(WorkItem{a, b, tol, 0});
  std::vector<double> interior;  // accepted breakpoints (excluding a, b)

  std::uint64_t trips = 0;
  std::uint64_t intervals_created = 1;

  while (!stack.empty()) {
    ++trips;
    const WorkItem item = stack.back();
    stack.pop_back();

    const QuadEstimate est = simpson_estimate(f, item.a, item.b, probe);
    result.evaluations += est.evaluations;

    // A non-finite estimate can never converge — bisecting a NaN integrand
    // yields NaN on both halves — so refining it would only burn the whole
    // interval budget (and, via the breakpoint list, unbounded memory when
    // a poisoned grid taints every point's integrand).
    const bool poisoned =
        !std::isfinite(est.integral) || !std::isfinite(est.error);
    const bool accept = poisoned || est.error <= item.tol ||
                        item.depth >= options.max_depth ||
                        intervals_created >= options.max_intervals;
    probe.branch(kBranchSite, accept);

    if (accept) {
      if (poisoned || est.error > item.tol) result.converged = false;
      result.integral += est.integral;
      result.error += est.error;
      if (item.a != a) interior.push_back(item.a);
    } else {
      const double m = 0.5 * (item.a + item.b);
      // LIFO order keeps the scan depth-first, left to right.
      stack.push_back(WorkItem{m, item.b, 0.5 * item.tol, item.depth + 1});
      stack.push_back(WorkItem{item.a, m, 0.5 * item.tol, item.depth + 1});
      ++intervals_created;
      probe.count_flops(4);
    }
  }
  probe.loop_trip(kLoopSite, trips);

  std::sort(interior.begin(), interior.end());
  result.breakpoints.reserve(interior.size() + 2);
  result.breakpoints.push_back(a);
  for (double x : interior) result.breakpoints.push_back(x);
  result.breakpoints.push_back(b);
  return result;
}

}  // namespace bd::quad
