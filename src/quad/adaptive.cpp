#include "quad/adaptive.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bd::quad {

AdaptiveResult adaptive_simpson(const RadialIntegrand& f, double a, double b,
                                double tol, simt::LaneProbe& probe,
                                const AdaptiveOptions& options) {
  BD_CHECK_MSG(tol > 0.0, "tolerance must be positive");
  AdaptiveResult result;
  if (a == b) {
    result.breakpoints = {a, b};
    return result;
  }
  BD_CHECK_MSG(a < b, "interval must be ordered");

  // Pay for the root's five samples up front (same points, same order as
  // the historical per-item simpson_estimate), then run the memoized
  // driver seeded with them. Since the wrapper paid full price, the root
  // books no saved evaluations.
  const double m = 0.5 * (a + b);
  SimpsonSamples root;
  root.fa = f.eval(a, probe);
  root.fm = f.eval(m, probe);
  root.fb = f.eval(b, probe);
  root.fl = f.eval(0.5 * (a + m), probe);
  root.fr = f.eval(0.5 * (m + b), probe);

  std::vector<AdaptiveWorkItem> stack;
  std::vector<double> interior;  // accepted breakpoints (excluding a, b)
  const AdaptiveOutcome out = adaptive_simpson_seeded(
      f, a, b, tol, root, probe, options, stack,
      [&](const AdaptiveWorkItem& item, const QuadEstimate&) {
        if (item.a != a) interior.push_back(item.a);
      });

  result.integral = out.integral;
  result.error = out.error;
  result.evaluations = 5 + out.evaluations;
  result.evaluations_saved = out.evaluations_saved;
  result.converged = out.converged;

  std::sort(interior.begin(), interior.end());
  result.breakpoints.reserve(interior.size() + 2);
  result.breakpoints.push_back(a);
  for (double x : interior) result.breakpoints.push_back(x);
  result.breakpoints.push_back(b);
  return result;
}

}  // namespace bd::quad
