#include "quad/partition_set.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/serialize.hpp"

namespace bd::quad {

template <typename T>
void PartitionSet::ensure(std::vector<T>& v, std::size_t n) {
  if (n > v.capacity()) {
    ++grow_events_;
    // 2x headroom: a drifting workload must double its demand before the
    // next growth, so grow events die out instead of trailing the drift.
    v.reserve(2 * n);
  } else {
    ++reuse_events_;
  }
  v.resize(n);
}

void PartitionSet::ensure_breaks(std::size_t n) { ensure(breaks_, n); }

void PartitionSet::reset(std::size_t entries) {
  ensure(entry_row_, entries);
  row_start_.clear();
  row_cap_.clear();
  row_len_.clear();
  used_ = 0;
}

void PartitionSet::layout_rows(std::span<const std::size_t> capacities) {
  BD_CHECK(capacities.size() == entry_row_.size());
  const std::size_t rows = capacities.size();
  ensure(row_start_, rows);
  ensure(row_cap_, rows);
  ensure(row_len_, rows);
  std::size_t offset = used_;
  for (std::size_t r = 0; r < rows; ++r) {
    row_start_[r] = offset;
    row_cap_[r] = capacities[r];
    row_len_[r] = 0;
    offset += capacities[r];
    entry_row_[r] = static_cast<std::uint32_t>(r);
  }
  used_ = offset;
  ensure_breaks(used_);
}

void PartitionSet::reserve_breaks(std::size_t cap) {
  if (cap <= used_) return;
  ensure_breaks(cap);
  // ensure() sized breaks_ to `cap`; the layout still only uses `used_`
  // slots and add_row keeps appending from there.
}

void PartitionSet::set_row_length(std::size_t row, std::size_t len) {
  BD_DCHECK(len <= row_cap_[row]);
  row_len_[row] = len;
}

std::size_t PartitionSet::add_row(std::span<const double> breaks) {
  const std::size_t row = row_start_.size();
  const std::size_t start = used_;
  used_ += breaks.size();
  ensure_breaks(used_);
  std::copy(breaks.begin(), breaks.end(), breaks_.begin() + start);
  row_start_.push_back(start);
  row_cap_.push_back(breaks.size());
  row_len_.push_back(breaks.size());
  return row;
}

void PartitionSet::bind_all(std::size_t row) {
  std::fill(entry_row_.begin(), entry_row_.end(),
            static_cast<std::uint32_t>(row));
}

void PartitionSet::copy_from(const PartitionSet& other) {
  ensure(entry_row_, other.entry_row_.size());
  std::copy(other.entry_row_.begin(), other.entry_row_.end(),
            entry_row_.begin());
  ensure(row_start_, other.row_start_.size());
  ensure(row_cap_, other.row_cap_.size());
  ensure(row_len_, other.row_len_.size());
  std::copy(other.row_start_.begin(), other.row_start_.end(),
            row_start_.begin());
  std::copy(other.row_cap_.begin(), other.row_cap_.end(), row_cap_.begin());
  std::copy(other.row_len_.begin(), other.row_len_.end(), row_len_.begin());
  used_ = other.used_;
  ensure_breaks(other.used_);
  std::copy(other.breaks_.begin(),
            other.breaks_.begin() + static_cast<std::ptrdiff_t>(other.used_),
            breaks_.begin());
}

void PartitionSet::clear() {
  entry_row_.clear();
  row_start_.clear();
  row_cap_.clear();
  row_len_.clear();
  used_ = 0;
}

std::uint64_t PartitionSet::take_grow_events() {
  const std::uint64_t n = grow_events_;
  grow_events_ = 0;
  return n;
}

std::uint64_t PartitionSet::take_reuse_events() {
  const std::uint64_t n = reuse_events_;
  reuse_events_ = 0;
  return n;
}

void write_partition_set_nested(util::BinaryWriter& out,
                                const PartitionSet& set) {
  out.write_u64(set.entries());
  for (std::size_t e = 0; e < set.entries(); ++e) {
    out.write_f64_span(set.at(e));
  }
}

void read_partition_set_nested(util::BinaryReader& in, PartitionSet& set) {
  const std::uint64_t entries = in.read_u64();
  set.reset(entries);
  std::vector<double> row;
  for (std::uint64_t e = 0; e < entries; ++e) {
    row = in.read_f64_vector();
    const std::size_t r = set.add_row(row);
    set.bind(e, r);
  }
}

}  // namespace bd::quad
