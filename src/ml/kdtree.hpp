#pragma once
/// \file kdtree.hpp
/// kd-tree for exact k-nearest-neighbor queries in low dimension (the
/// predictor's feature space is 2–3 dimensional grid coordinates).

#include <cstdint>
#include <span>
#include <vector>

namespace bd::ml {

/// One neighbor result.
struct Neighbor {
  std::size_t index;      ///< index into the point set the tree was built on
  double squared_dist;
};

/// Static kd-tree built once over a point set; supports k-NN queries.
class KdTree {
 public:
  KdTree() = default;

  /// Build from `count` points of dimension `dim` stored row-major in
  /// `points`. The data is copied.
  void build(std::span<const double> points, std::size_t count,
             std::size_t dim);

  /// The k nearest neighbors of `query` (ties broken by index order),
  /// sorted by ascending distance. k is clamped to the point count.
  std::vector<Neighbor> query(std::span<const double> query,
                              std::size_t k) const;

  std::size_t size() const { return count_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return count_ == 0; }

 private:
  struct Node {
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t axis = 0;
    std::uint32_t point = 0;  ///< index into points_
    double split = 0.0;
  };

  std::int32_t build_recursive(std::span<std::uint32_t> indices, int depth);
  void search(std::int32_t node, std::span<const double> q, std::size_t k,
              std::vector<Neighbor>& heap) const;

  std::span<const double> point(std::uint32_t i) const {
    return std::span<const double>(points_.data() + i * dim_, dim_);
  }

  std::size_t count_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> points_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace bd::ml
