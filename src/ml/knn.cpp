#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "ml/linalg.hpp"
#include "util/check.hpp"

namespace bd::ml {

void KNNRegressor::fit(const Dataset& data) {
  BD_CHECK_MSG(!data.empty(), "kNN fit on empty dataset");
  train_ = data;
  if (config_.standardize) {
    scaler_.fit(train_);
  }
  if (config_.use_kdtree) {
    scaled_features_.clear();
    scaled_features_.reserve(train_.size() * train_.feature_dim());
    for (std::size_t i = 0; i < train_.size(); ++i) {
      auto row = train_.features(i);
      std::vector<double> f(row.begin(), row.end());
      if (config_.standardize) scaler_.transform(f);
      scaled_features_.insert(scaled_features_.end(), f.begin(), f.end());
    }
    tree_.build(scaled_features_, train_.size(), train_.feature_dim());
  }
}

void KNNRegressor::predict_into(std::span<const double> features,
                                std::span<double> out) const {
  BD_CHECK_MSG(fitted(), "predict before fit");
  BD_CHECK(features.size() == train_.feature_dim());
  BD_CHECK(out.size() == train_.target_dim());

  std::vector<double> query(features.begin(), features.end());
  if (config_.standardize) scaler_.transform(query);

  std::vector<Neighbor> neighbors;
  if (config_.use_kdtree) {
    neighbors = tree_.query(query, config_.k);
  } else {
    neighbors.reserve(train_.size());
    for (std::size_t i = 0; i < train_.size(); ++i) {
      auto row = train_.features(i);
      std::vector<double> f(row.begin(), row.end());
      if (config_.standardize) scaler_.transform(f);
      neighbors.push_back(Neighbor{i, squared_distance(f, query)});
    }
    const std::size_t k = std::min(config_.k, neighbors.size());
    std::partial_sort(neighbors.begin(), neighbors.begin() + static_cast<std::ptrdiff_t>(k),
                      neighbors.end(), [](const Neighbor& a, const Neighbor& b) {
                        if (a.squared_dist != b.squared_dist) {
                          return a.squared_dist < b.squared_dist;
                        }
                        return a.index < b.index;
                      });
    neighbors.resize(k);
  }

  std::fill(out.begin(), out.end(), 0.0);
  double weight_sum = 0.0;
  for (const Neighbor& n : neighbors) {
    double w = 1.0;
    if (config_.distance_weighted) {
      const double d = std::sqrt(n.squared_dist);
      if (d < 1e-12) {
        // Exact match: return its target directly.
        const auto target = train_.targets(n.index);
        std::copy(target.begin(), target.end(), out.begin());
        return;
      }
      w = 1.0 / d;
    }
    const auto target = train_.targets(n.index);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += w * target[c];
    weight_sum += w;
  }
  BD_CHECK(weight_sum > 0.0);
  for (double& v : out) v /= weight_sum;
}

std::vector<double> KNNRegressor::predict(
    std::span<const double> features) const {
  std::vector<double> out(train_.target_dim());
  predict_into(features, out);
  return out;
}

}  // namespace bd::ml
