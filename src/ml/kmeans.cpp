#include "ml/kmeans.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/linalg.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/telemetry.hpp"

namespace bd::ml {

namespace {

/// Fixed parallel grain for the pruned engine: chunk boundaries must not
/// depend on the thread count (determinism), and the per-chunk prune
/// counters are flushed once per chunk.
constexpr std::size_t kGrain = 1024;

/// Multiplicative guards that round the Hamerly bounds conservatively
/// outward. sqrt() is correctly rounded, which can still land *below* the
/// true root; a 1e-12 relative margin dwarfs that half-ulp so a strict
/// upper < lower comparison never claims a prune the exact engine would
/// contradict.
constexpr double kUpperGuard = 1.0 + 1e-12;
constexpr double kLowerGuard = 1.0 - 1e-12;

std::span<const double> point_at(std::span<const double> points,
                                 std::size_t dim, std::size_t i) {
  return points.subspan(i * dim, dim);
}

/// k-means++ seeding: first centroid uniform, then proportional to
/// (weight ×) D². The per-point D² refresh runs on the thread pool
/// (disjoint writes), the prefix sum is accumulated serially in point
/// order, and the weighted pick is a binary search on that prefix — so
/// the seeding is bit-identical at any thread count and costs O(log n)
/// per draw instead of a linear scan.
std::vector<double> kmeanspp_init(std::span<const double> points,
                                  std::size_t count, std::size_t dim,
                                  std::size_t k,
                                  std::span<const double> weights,
                                  util::Rng& rng) {
  const bool has_weights = !weights.empty();
  std::vector<double> centroids;
  centroids.reserve(k * dim);
  std::vector<double> d2(count, std::numeric_limits<double>::max());
  std::vector<double> prefix(count);

  std::size_t first = rng.uniform_index(count);
  auto p0 = point_at(points, dim, first);
  centroids.insert(centroids.end(), p0.begin(), p0.end());

  for (std::size_t c = 1; c < k; ++c) {
    auto last = std::span<const double>(centroids).subspan((c - 1) * dim, dim);
    util::parallel_for(0, count, [&](std::size_t i) {
      const double d = squared_distance(point_at(points, dim, i), last);
      d2[i] = std::min(d2[i], d);
    });
    double run = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      run += has_weights ? weights[i] * d2[i] : d2[i];
      prefix[i] = run;
    }
    std::size_t chosen = 0;
    if (run <= 0.0) {
      chosen = rng.uniform_index(count);
    } else {
      const double target = rng.uniform() * run;
      chosen = static_cast<std::size_t>(
          std::lower_bound(prefix.begin(), prefix.end(), target) -
          prefix.begin());
      if (chosen >= count) chosen = count - 1;
    }
    auto pc = point_at(points, dim, chosen);
    centroids.insert(centroids.end(), pc.begin(), pc.end());
  }
  return centroids;
}

/// Lloyd update step shared by the exact and pruned engines: centroids
/// move to the (weighted) mean of their members, summed in point order.
/// Empty clusters re-seed from the farthest points — ascending cluster
/// order, reusing the assignment pass's best distances, one *distinct*
/// point per empty cluster (first-max tie-break).
void update_centroids(std::span<const double> points, std::size_t count,
                      std::size_t dim, std::size_t k,
                      std::span<const double> weights,
                      std::span<const double> best_d, KMeansResult& result) {
  const bool has_weights = !weights.empty();
  std::vector<double> sums(k * dim, 0.0);
  std::vector<double> wsum(has_weights ? k : 0, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    auto p = point_at(points, dim, i);
    const std::uint32_t c = result.assignment[i];
    if (has_weights) {
      const double w = weights[i];
      for (std::size_t d = 0; d < dim; ++d) sums[c * dim + d] += w * p[d];
      wsum[c] += w;
    } else {
      for (std::size_t d = 0; d < dim; ++d) sums[c * dim + d] += p[d];
    }
  }
  std::vector<char> taken;
  for (std::size_t c = 0; c < k; ++c) {
    if (result.sizes[c] == 0) {
      if (taken.empty()) taken.assign(count, 0);
      std::size_t far = 0;
      double far_d = -1.0;
      for (std::size_t i = 0; i < count; ++i) {
        if (taken[i]) continue;
        if (best_d[i] > far_d) {
          far_d = best_d[i];
          far = i;
        }
      }
      taken[far] = 1;
      auto p = point_at(points, dim, far);
      std::copy(p.begin(), p.end(),
                result.centroids.begin() +
                    static_cast<std::ptrdiff_t>(c * dim));
      continue;
    }
    const double denom =
        has_weights ? wsum[c] : static_cast<double>(result.sizes[c]);
    for (std::size_t d = 0; d < dim; ++d) {
      result.centroids[c * dim + d] = sums[c * dim + d] / denom;
    }
  }
}

/// Exact Lloyd engine (the bitwise reference): every point scans all k
/// centroids per iteration. Handles both the plain and the balanced
/// (capacity-constrained) assignment.
void lloyd_exact(std::span<const double> points, std::size_t count,
                 std::size_t dim, std::span<const double> weights,
                 const KMeansConfig& config, KMeansResult& result) {
  const std::size_t k = config.clusters;
  const bool has_weights = !weights.empty();
  const std::size_t capacity = config.balanced
                                   ? (count + k - 1) / k
                                   : std::numeric_limits<std::size_t>::max();
  std::vector<double> best_d(count);

  double prev_inertia = std::numeric_limits<double>::max();
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::fill(result.sizes.begin(), result.sizes.end(), 0u);
    result.inertia = 0.0;

    if (!config.balanced) {
      // Assignment: each point's nearest centroid is independent, so it
      // runs on the thread pool; sizes and inertia are reduced serially in
      // point order afterwards (deterministic for any thread count).
      util::parallel_for(0, count, [&](std::size_t i) {
        auto p = point_at(points, dim, i);
        double best = std::numeric_limits<double>::max();
        std::uint32_t best_c = 0;
        for (std::size_t c = 0; c < k; ++c) {
          auto centroid =
              std::span<const double>(result.centroids).subspan(c * dim, dim);
          const double d = squared_distance(p, centroid);
          if (d < best) {
            best = d;
            best_c = static_cast<std::uint32_t>(c);
          }
        }
        result.assignment[i] = best_c;
        best_d[i] = best;
      });
      for (std::size_t i = 0; i < count; ++i) {
        ++result.sizes[result.assignment[i]];
        result.inertia += has_weights ? weights[i] * best_d[i] : best_d[i];
      }
    } else {
      // Balanced assignment: process points in order of how much they care
      // (max-min distance gap), each going to the nearest non-full cluster.
      std::vector<std::size_t> order(count);
      std::iota(order.begin(), order.end(), 0);
      std::vector<double> urgency(count);
      util::parallel_for(0, count, [&](std::size_t i) {
        double best = std::numeric_limits<double>::max();
        double second = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < k; ++c) {
          auto centroid =
              std::span<const double>(result.centroids).subspan(c * dim, dim);
          const double d = squared_distance(point_at(points, dim, i), centroid);
          if (d < best) {
            second = best;
            best = d;
          } else if (d < second) {
            second = d;
          }
        }
        urgency[i] = second - best;
      });
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return urgency[a] > urgency[b];
                       });
      std::vector<std::size_t> load(k, 0);
      for (std::size_t oi : order) {
        auto p = point_at(points, dim, oi);
        double best = std::numeric_limits<double>::max();
        std::uint32_t best_c = 0;
        for (std::size_t c = 0; c < k; ++c) {
          if (load[c] >= capacity) continue;
          auto centroid =
              std::span<const double>(result.centroids).subspan(c * dim, dim);
          const double d = squared_distance(p, centroid);
          if (d < best) {
            best = d;
            best_c = static_cast<std::uint32_t>(c);
          }
        }
        result.assignment[oi] = best_c;
        best_d[oi] = best;
        ++load[best_c];
        ++result.sizes[best_c];
        result.inertia += best;
      }
    }

    update_centroids(points, count, dim, k, weights, best_d, result);

    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          std::abs(prev_inertia - result.inertia) /
          std::max(1e-30, prev_inertia);
      if (rel < config.tolerance) break;
    }
    prev_inertia = result.inertia;
  }
}

/// Hamerly-pruned Lloyd engine. Per point it keeps an upper bound on the
/// distance to its assigned centroid and a lower bound on the distance to
/// every *other* centroid; after each centroid move the bounds widen by
/// the per-centroid drift (upper) and the max drift (lower). When
/// upper < lower strictly, the assigned centroid is provably the unique
/// nearest, so the k-centroid scan is skipped — only the exact d² to the
/// assigned centroid is recomputed (the same expression the exact engine
/// feeds into the inertia sum, so inertia, centroids, iteration count and
/// assignment all stay bit-identical to lloyd_exact).
void lloyd_pruned(std::span<const double> points, std::size_t count,
                  std::size_t dim, std::span<const double> weights,
                  const KMeansConfig& config, KMeansResult& result) {
  const std::size_t k = config.clusters;
  const bool has_weights = !weights.empty();

  std::vector<double> upper(count, std::numeric_limits<double>::max());
  std::vector<double> lower(count, 0.0);  // forces a full first pass
  std::vector<double> best_d(count);
  std::vector<double> old_centroids(k * dim);
  std::vector<double> drift(k);
  std::atomic<std::uint64_t> full_count{0};
  std::atomic<std::uint64_t> pruned_count{0};

  double prev_inertia = std::numeric_limits<double>::max();
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::fill(result.sizes.begin(), result.sizes.end(), 0u);
    result.inertia = 0.0;

    util::parallel_for_chunked(0, count, kGrain, [&](std::size_t lo,
                                                     std::size_t hi) {
      std::uint64_t local_full = 0;
      std::uint64_t local_pruned = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        auto p = point_at(points, dim, i);
        if (upper[i] < lower[i]) {
          const std::uint32_t c = result.assignment[i];
          const double best = squared_distance(
              p,
              std::span<const double>(result.centroids).subspan(c * dim, dim));
          best_d[i] = best;
          upper[i] = std::sqrt(best) * kUpperGuard;
          local_full += 1;
          local_pruned += k - 1;
          continue;
        }
        double best = std::numeric_limits<double>::max();
        double second = std::numeric_limits<double>::max();
        std::uint32_t best_c = 0;
        for (std::size_t c = 0; c < k; ++c) {
          auto centroid =
              std::span<const double>(result.centroids).subspan(c * dim, dim);
          const double d = squared_distance(p, centroid);
          if (d < best) {
            second = best;
            best = d;
            best_c = static_cast<std::uint32_t>(c);
          } else if (d < second) {
            second = d;
          }
        }
        result.assignment[i] = best_c;
        best_d[i] = best;
        upper[i] = std::sqrt(best) * kUpperGuard;
        lower[i] = second < std::numeric_limits<double>::max()
                       ? std::sqrt(second) * kLowerGuard
                       : std::numeric_limits<double>::max();
        local_full += k;
      }
      if (local_full != 0) {
        full_count.fetch_add(local_full, std::memory_order_relaxed);
      }
      if (local_pruned != 0) {
        pruned_count.fetch_add(local_pruned, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < count; ++i) {
      ++result.sizes[result.assignment[i]];
      result.inertia += has_weights ? weights[i] * best_d[i] : best_d[i];
    }

    std::copy(result.centroids.begin(), result.centroids.end(),
              old_centroids.begin());
    update_centroids(points, count, dim, k, weights, best_d, result);

    double max_drift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      drift[c] = std::sqrt(squared_distance(
          std::span<const double>(old_centroids).subspan(c * dim, dim),
          std::span<const double>(result.centroids).subspan(c * dim, dim)));
      max_drift = std::max(max_drift, drift[c]);
    }
    util::parallel_for_chunked(0, count, kGrain,
                               [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        upper[i] = (upper[i] + drift[result.assignment[i]]) * kUpperGuard;
        lower[i] = std::max(0.0, lower[i] - max_drift) * kLowerGuard;
      }
    });

    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          std::abs(prev_inertia - result.inertia) /
          std::max(1e-30, prev_inertia);
      if (rel < config.tolerance) break;
    }
    prev_inertia = result.inertia;
  }

  util::telemetry::counter_add("kmeans.full_distances",
                               full_count.load(std::memory_order_relaxed));
  util::telemetry::counter_add("kmeans.pruned_distances",
                               pruned_count.load(std::memory_order_relaxed));
}

}  // namespace

KMeansResult kmeans(std::span<const double> points, std::size_t count,
                    std::size_t dim, const KMeansConfig& config) {
  return kmeans_weighted(points, count, dim, {}, {}, config);
}

KMeansResult kmeans_weighted(std::span<const double> points,
                             std::size_t count, std::size_t dim,
                             std::span<const double> weights,
                             std::span<const double> initial_centroids,
                             const KMeansConfig& config) {
  BD_CHECK(dim > 0);
  BD_CHECK_MSG(points.size() == count * dim, "points size mismatch");
  const std::size_t k = config.clusters;
  BD_CHECK_MSG(k >= 1 && k <= count, "clusters must be in [1, count]");
  BD_CHECK_MSG(weights.empty() || weights.size() == count,
               "weights must be empty or one per point");
  for (const double w : weights) {
    BD_CHECK_MSG(w > 0.0, "weights must be positive");
  }
  BD_CHECK_MSG(!config.balanced || (weights.empty() && !config.pruned),
               "balanced mode supports neither weights nor pruning");
  BD_CHECK_MSG(initial_centroids.empty() ||
                   initial_centroids.size() == k * dim,
               "initial centroids must be empty or clusters x dim");

  KMeansResult result;
  if (!initial_centroids.empty()) {
    result.centroids.assign(initial_centroids.begin(),
                            initial_centroids.end());
  } else {
    util::Rng rng(config.seed);
    result.centroids = kmeanspp_init(points, count, dim, k, weights, rng);
  }
  result.assignment.assign(count, 0);
  result.sizes.assign(k, 0);

  if (config.pruned) {
    lloyd_pruned(points, count, dim, weights, config, result);
  } else {
    lloyd_exact(points, count, dim, weights, config, result);
  }
  return result;
}

std::vector<std::uint32_t> assign_balanced(std::span<const double> points,
                                           std::size_t count, std::size_t dim,
                                           std::span<const double> centroids,
                                           std::size_t k,
                                           std::size_t capacity) {
  BD_CHECK(dim > 0 && points.size() == count * dim);
  BD_CHECK(k >= 1 && centroids.size() == k * dim);
  if (capacity == 0) capacity = count;
  BD_CHECK_MSG(capacity * k >= count, "capacity too small to place all points");

  std::vector<std::uint32_t> assignment(count, 0);
  std::vector<double> urgency(count);
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  util::parallel_for(0, count, [&](std::size_t i) {
    double best = std::numeric_limits<double>::max();
    double second = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      const double d = squared_distance(point_at(points, dim, i),
                                        centroids.subspan(c * dim, dim));
      if (d < best) {
        second = best;
        best = d;
      } else if (d < second) {
        second = d;
      }
    }
    urgency[i] = second - best;
  });
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return urgency[a] > urgency[b];
                   });
  std::vector<std::size_t> load(k, 0);
  for (std::size_t oi : order) {
    auto p = point_at(points, dim, oi);
    double best = std::numeric_limits<double>::max();
    std::uint32_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (load[c] >= capacity) continue;
      const double d = squared_distance(p, centroids.subspan(c * dim, dim));
      if (d < best) {
        best = d;
        best_c = static_cast<std::uint32_t>(c);
      }
    }
    assignment[oi] = best_c;
    ++load[best_c];
  }
  return assignment;
}

std::vector<std::vector<std::uint32_t>> members_by_cluster(
    const KMeansResult& result, std::size_t clusters) {
  std::vector<std::vector<std::uint32_t>> members(clusters);
  for (std::size_t c = 0; c < clusters && c < result.sizes.size(); ++c) {
    members[c].reserve(result.sizes[c]);
  }
  for (std::size_t i = 0; i < result.assignment.size(); ++i) {
    const std::uint32_t c = result.assignment[i];
    BD_CHECK(c < clusters);
    members[c].push_back(static_cast<std::uint32_t>(i));
  }
  return members;
}

}  // namespace bd::ml
