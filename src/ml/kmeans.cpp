#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/linalg.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace bd::ml {

namespace {

std::span<const double> point_at(std::span<const double> points,
                                 std::size_t dim, std::size_t i) {
  return points.subspan(i * dim, dim);
}

/// k-means++ seeding: first centroid uniform, then proportional to D².
std::vector<double> kmeanspp_init(std::span<const double> points,
                                  std::size_t count, std::size_t dim,
                                  std::size_t k, util::Rng& rng) {
  std::vector<double> centroids;
  centroids.reserve(k * dim);
  std::vector<double> d2(count, std::numeric_limits<double>::max());

  std::size_t first = rng.uniform_index(count);
  auto p0 = point_at(points, dim, first);
  centroids.insert(centroids.end(), p0.begin(), p0.end());

  for (std::size_t c = 1; c < k; ++c) {
    auto last = std::span<const double>(centroids).subspan((c - 1) * dim, dim);
    double total = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const double d = squared_distance(point_at(points, dim, i), last);
      d2[i] = std::min(d2[i], d);
      total += d2[i];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      chosen = rng.uniform_index(count);
    } else {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < count; ++i) {
        target -= d2[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    auto pc = point_at(points, dim, chosen);
    centroids.insert(centroids.end(), pc.begin(), pc.end());
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(std::span<const double> points, std::size_t count,
                    std::size_t dim, const KMeansConfig& config) {
  BD_CHECK(dim > 0);
  BD_CHECK_MSG(points.size() == count * dim, "points size mismatch");
  const std::size_t k = config.clusters;
  BD_CHECK_MSG(k >= 1 && k <= count, "clusters must be in [1, count]");

  util::Rng rng(config.seed);
  KMeansResult result;
  result.centroids = kmeanspp_init(points, count, dim, k, rng);
  result.assignment.assign(count, 0);
  result.sizes.assign(k, 0);

  const std::size_t capacity =
      config.balanced ? (count + k - 1) / k : std::numeric_limits<std::size_t>::max();

  double prev_inertia = std::numeric_limits<double>::max();
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::fill(result.sizes.begin(), result.sizes.end(), 0u);
    result.inertia = 0.0;

    if (!config.balanced) {
      // Assignment: each point's nearest centroid is independent, so it
      // runs on the thread pool; sizes and inertia are reduced serially in
      // point order afterwards (deterministic for any thread count).
      std::vector<double> best_d(count);
      util::parallel_for(0, count, [&](std::size_t i) {
        auto p = point_at(points, dim, i);
        double best = std::numeric_limits<double>::max();
        std::uint32_t best_c = 0;
        for (std::size_t c = 0; c < k; ++c) {
          auto centroid =
              std::span<const double>(result.centroids).subspan(c * dim, dim);
          const double d = squared_distance(p, centroid);
          if (d < best) {
            best = d;
            best_c = static_cast<std::uint32_t>(c);
          }
        }
        result.assignment[i] = best_c;
        best_d[i] = best;
      });
      for (std::size_t i = 0; i < count; ++i) {
        ++result.sizes[result.assignment[i]];
        result.inertia += best_d[i];
      }
    } else {
      // Balanced assignment: process points in order of how much they care
      // (max-min distance gap), each going to the nearest non-full cluster.
      std::vector<std::size_t> order(count);
      std::iota(order.begin(), order.end(), 0);
      std::vector<double> urgency(count);
      util::parallel_for(0, count, [&](std::size_t i) {
        double best = std::numeric_limits<double>::max();
        double second = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < k; ++c) {
          auto centroid =
              std::span<const double>(result.centroids).subspan(c * dim, dim);
          const double d = squared_distance(point_at(points, dim, i), centroid);
          if (d < best) {
            second = best;
            best = d;
          } else if (d < second) {
            second = d;
          }
        }
        urgency[i] = second - best;
      });
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return urgency[a] > urgency[b];
                       });
      std::vector<std::size_t> load(k, 0);
      for (std::size_t oi : order) {
        auto p = point_at(points, dim, oi);
        double best = std::numeric_limits<double>::max();
        std::uint32_t best_c = 0;
        for (std::size_t c = 0; c < k; ++c) {
          if (load[c] >= capacity) continue;
          auto centroid =
              std::span<const double>(result.centroids).subspan(c * dim, dim);
          const double d = squared_distance(p, centroid);
          if (d < best) {
            best = d;
            best_c = static_cast<std::uint32_t>(c);
          }
        }
        result.assignment[oi] = best_c;
        ++load[best_c];
        ++result.sizes[best_c];
        result.inertia += best;
      }
    }

    // Update step.
    std::vector<double> sums(k * dim, 0.0);
    for (std::size_t i = 0; i < count; ++i) {
      auto p = point_at(points, dim, i);
      const std::uint32_t c = result.assignment[i];
      for (std::size_t d = 0; d < dim; ++d) sums[c * dim + d] += p[d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (result.sizes[c] == 0) {
        // Re-seed empty cluster from the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < count; ++i) {
          auto centroid = std::span<const double>(result.centroids)
                              .subspan(result.assignment[i] * dim, dim);
          const double d = squared_distance(point_at(points, dim, i), centroid);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        auto p = point_at(points, dim, far);
        std::copy(p.begin(), p.end(), result.centroids.begin() + static_cast<std::ptrdiff_t>(c * dim));
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c * dim + d] =
            sums[c * dim + d] / static_cast<double>(result.sizes[c]);
      }
    }

    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          std::abs(prev_inertia - result.inertia) /
          std::max(1e-30, prev_inertia);
      if (rel < config.tolerance) break;
    }
    prev_inertia = result.inertia;
  }
  return result;
}

std::vector<std::uint32_t> assign_balanced(std::span<const double> points,
                                           std::size_t count, std::size_t dim,
                                           std::span<const double> centroids,
                                           std::size_t k,
                                           std::size_t capacity) {
  BD_CHECK(dim > 0 && points.size() == count * dim);
  BD_CHECK(k >= 1 && centroids.size() == k * dim);
  if (capacity == 0) capacity = count;
  BD_CHECK_MSG(capacity * k >= count, "capacity too small to place all points");

  std::vector<std::uint32_t> assignment(count, 0);
  std::vector<double> urgency(count);
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  util::parallel_for(0, count, [&](std::size_t i) {
    double best = std::numeric_limits<double>::max();
    double second = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      const double d = squared_distance(point_at(points, dim, i),
                                        centroids.subspan(c * dim, dim));
      if (d < best) {
        second = best;
        best = d;
      } else if (d < second) {
        second = d;
      }
    }
    urgency[i] = second - best;
  });
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return urgency[a] > urgency[b];
                   });
  std::vector<std::size_t> load(k, 0);
  for (std::size_t oi : order) {
    auto p = point_at(points, dim, oi);
    double best = std::numeric_limits<double>::max();
    std::uint32_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (load[c] >= capacity) continue;
      const double d = squared_distance(p, centroids.subspan(c * dim, dim));
      if (d < best) {
        best = d;
        best_c = static_cast<std::uint32_t>(c);
      }
    }
    assignment[oi] = best_c;
    ++load[best_c];
  }
  return assignment;
}

std::vector<std::vector<std::uint32_t>> members_by_cluster(
    const KMeansResult& result, std::size_t clusters) {
  std::vector<std::vector<std::uint32_t>> members(clusters);
  for (std::size_t c = 0; c < clusters && c < result.sizes.size(); ++c) {
    members[c].reserve(result.sizes[c]);
  }
  for (std::size_t i = 0; i < result.assignment.size(); ++i) {
    const std::uint32_t c = result.assignment[i];
    BD_CHECK(c < clusters);
    members[c].push_back(static_cast<std::uint32_t>(i));
  }
  return members;
}

}  // namespace bd::ml
