#include "ml/coreset.hpp"

#include <algorithm>
#include <numeric>

#include "ml/linalg.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bd::ml {

namespace {

/// Fixed parallel grain: chunk boundaries must not depend on the thread
/// count or the serial chunk-order reduction would change with it.
constexpr std::size_t kChunk = 2048;

std::span<const double> row_at(std::span<const double> points,
                               std::size_t dim, std::size_t i) {
  return points.subspan(i * dim, dim);
}

}  // namespace

Coreset d2_coreset(std::span<const double> points, std::size_t count,
                   std::size_t dim, const CoresetConfig& config) {
  BD_CHECK(dim > 0);
  BD_CHECK_MSG(points.size() == count * dim, "points size mismatch");
  BD_CHECK(count > 0);

  Coreset out;
  if (config.target_size == 0 || count <= config.target_size) {
    out.indices.resize(count);
    std::iota(out.indices.begin(), out.indices.end(), 0u);
    out.weights.assign(count, 1.0);
    return out;
  }

  // Mean point: per-chunk partial sums, reduced serially in chunk order.
  const std::size_t chunks = (count + kChunk - 1) / kChunk;
  std::vector<double> partial(chunks * dim, 0.0);
  util::parallel_for_chunked(0, count, kChunk,
                             [&](std::size_t lo, std::size_t hi) {
    double* acc = partial.data() + (lo / kChunk) * dim;
    for (std::size_t i = lo; i < hi; ++i) {
      const auto p = row_at(points, dim, i);
      for (std::size_t d = 0; d < dim; ++d) acc[d] += p[d];
    }
  });
  std::vector<double> mean(dim, 0.0);
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t d = 0; d < dim; ++d) mean[d] += partial[c * dim + d];
  }
  for (double& m : mean) m /= static_cast<double>(count);

  // D² of every point to the mean (disjoint writes, any thread count).
  std::vector<double> d2(count);
  util::parallel_for(0, count, [&](std::size_t i) {
    d2[i] = squared_distance(row_at(points, dim, i), mean);
  });
  double total_d2 = 0.0;
  for (std::size_t i = 0; i < count; ++i) total_d2 += d2[i];

  // q_i = 1/(2n) + d²_i / (2·Σd²): the D² term concentrates draws on the
  // points that dominate the objective, the uniform term keeps every
  // region sampleable (and is the whole distribution when the data is
  // degenerate, Σd² = 0).
  const double uniform = 0.5 / static_cast<double>(count);
  std::vector<double> q(count);
  std::vector<double> prefix(count);
  double run = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    q[i] = total_d2 > 0.0 ? uniform + 0.5 * d2[i] / total_d2 : 2.0 * uniform;
    run += q[i];
    prefix[i] = run;
  }

  // m draws with replacement via prefix-sum binary search; duplicates
  // compact into one index with summed weight. Each draw carries weight
  // 1/(m·q) so Σ weights estimates n.
  const std::size_t draws = std::max(config.target_size, std::size_t{1});
  util::Rng rng(config.seed);
  std::vector<std::uint32_t> sampled;
  sampled.reserve(draws);
  for (std::size_t s = 0; s < draws; ++s) {
    const double target = rng.uniform() * run;
    std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(prefix.begin(), prefix.end(), target) -
        prefix.begin());
    if (idx >= count) idx = count - 1;
    sampled.push_back(static_cast<std::uint32_t>(idx));
  }
  std::sort(sampled.begin(), sampled.end());
  const double scale = 1.0 / static_cast<double>(draws);
  for (std::size_t s = 0; s < sampled.size();) {
    std::size_t e = s;
    while (e < sampled.size() && sampled[e] == sampled[s]) ++e;
    out.indices.push_back(sampled[s]);
    out.weights.push_back(static_cast<double>(e - s) * scale / q[sampled[s]]);
    s = e;
  }

  // Top up with the lowest unsampled indices when the caller needs more
  // distinct points than the draws produced (k close to target_size).
  if (out.size() < config.min_size) {
    std::vector<std::uint32_t> extra;
    std::size_t cursor = 0;
    for (std::uint32_t i = 0; i < count && out.size() + extra.size() <
                                               config.min_size; ++i) {
      while (cursor < out.indices.size() && out.indices[cursor] < i) ++cursor;
      if (cursor < out.indices.size() && out.indices[cursor] == i) continue;
      extra.push_back(i);
    }
    for (std::uint32_t i : extra) {
      const auto at = std::lower_bound(out.indices.begin(), out.indices.end(),
                                       i);
      const std::size_t pos =
          static_cast<std::size_t>(at - out.indices.begin());
      out.indices.insert(at, i);
      out.weights.insert(out.weights.begin() +
                             static_cast<std::ptrdiff_t>(pos), 1.0);
    }
  }
  return out;
}

std::vector<double> gather_rows(std::span<const double> points,
                                std::size_t dim,
                                std::span<const std::uint32_t> indices) {
  BD_CHECK(dim > 0 && points.size() % dim == 0);
  std::vector<double> rows;
  rows.reserve(indices.size() * dim);
  for (const std::uint32_t i : indices) {
    const auto p = row_at(points, dim, i);
    rows.insert(rows.end(), p.begin(), p.end());
  }
  return rows;
}

}  // namespace bd::ml
