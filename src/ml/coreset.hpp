#pragma once
/// \file coreset.hpp
/// D²-weighted coresets for k-means (the RP-CLUSTERING accelerator).
///
/// Lloyd iterations cost O(n·k·d); RP-CLUSTERING pays that every step on a
/// point set whose size scales with grid area. A *coreset* is a small
/// weighted subsample on which the weighted k-means objective estimates
/// the full-set objective, so Lloyd runs on m ≪ n points without changing
/// what it optimizes. We use D² importance sampling against the global
/// mean (the "lightweight coreset" construction): points far from the
/// mean — the ones that dominate the objective — are sampled with
/// probability proportional to their squared distance, and every sampled
/// point carries weight 1/(m·q) so the estimate stays unbiased. A uniform
/// mixture term keeps dense regions represented even when a few outliers
/// hold most of the variance.
///
/// Sampling is deterministic for a fixed seed and bit-identical at any
/// BD_NUM_THREADS: the mean and the per-point D² terms are computed on the
/// thread pool with fixed-size chunks reduced serially in chunk order, and
/// the draws themselves walk a serial prefix-sum binary search.

#include <cstdint>
#include <span>
#include <vector>

namespace bd::ml {

/// Coreset sampling parameters.
struct CoresetConfig {
  std::size_t target_size = 512;  ///< sample draws (0 = keep the full set)
  std::size_t min_size = 0;       ///< top up to at least this many distinct
                                  ///< points (needed when k is close to m)
  std::uint64_t seed = 9001;
};

/// A weighted coreset: distinct sampled point indices (ascending) and one
/// importance weight per index. Σ weights ≈ n, so weighted inertia on the
/// coreset is an estimate of full-set inertia at the same scale.
struct Coreset {
  std::vector<std::uint32_t> indices;
  std::vector<double> weights;
  std::size_t size() const { return indices.size(); }
};

/// Sample a D² coreset of `config.target_size` draws from `count` points
/// of dimension `dim` (row-major in `points`). Duplicate draws are
/// compacted into one index with summed weight. When `count` is already
/// within the target (or the target is 0) the full set is returned with
/// unit weights.
Coreset d2_coreset(std::span<const double> points, std::size_t count,
                   std::size_t dim, const CoresetConfig& config);

/// Gather the selected rows of `points` into a dense row-major matrix
/// (the coreset's feature matrix for k-means).
std::vector<double> gather_rows(std::span<const double> points,
                                std::size_t dim,
                                std::span<const std::uint32_t> indices);

}  // namespace bd::ml
