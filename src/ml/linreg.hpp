#pragma once
/// \file linreg.hpp
/// Multi-output ridge (linear) regression via normal equations — the
/// alternative predictor the paper experimented with (§III-B1). Optionally
/// expands features with degree-2 polynomial terms, which the smooth
/// spatial variation of the access patterns rewards.

#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/linalg.hpp"
#include "ml/scaler.hpp"

namespace bd::ml {

/// Ridge regression hyperparameters.
struct LinRegConfig {
  double ridge = 1e-6;       ///< L2 regularization strength
  bool standardize = true;   ///< scale features first
  int poly_degree = 2;       ///< 1 = plain linear, 2 adds squares & products
};

/// Multi-output linear model Y ≈ Φ(X)·W, solved in closed form.
class RidgeRegressor {
 public:
  explicit RidgeRegressor(LinRegConfig config = {}) : config_(config) {}

  /// Fit weights from the dataset.
  void fit(const Dataset& data);

  /// Predict the target vector for one query point.
  std::vector<double> predict(std::span<const double> features) const;

  /// Predict into a caller-provided buffer.
  void predict_into(std::span<const double> features,
                    std::span<double> out) const;

  bool fitted() const { return weights_.rows() > 0; }
  std::size_t target_dim() const { return weights_.cols(); }
  const LinRegConfig& config() const { return config_; }

 private:
  std::vector<double> expand(std::span<const double> features) const;

  LinRegConfig config_;
  StandardScaler scaler_;
  Matrix weights_;  // (expanded_dim x target_dim)
  std::size_t feature_dim_ = 0;
};

}  // namespace bd::ml
