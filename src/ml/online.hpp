#pragma once
/// \file online.hpp
/// Online predictor: a supervised model retrained each simulation step
/// from a sliding window of recently observed (grid point → access pattern)
/// examples. This realizes the paper's ONLINE-LEARNING procedure: the
/// predictor g_k is learned from the patterns observed at step k (plus a
/// short window of history) without unbounded memory growth.

#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/knn.hpp"
#include "ml/linreg.hpp"

namespace bd::util {
class BinaryWriter;
class BinaryReader;
}  // namespace bd::util

namespace bd::ml {

/// Uniform interface over the interchangeable predictors.
class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void fit(const Dataset& data) = 0;
  virtual void predict_into(std::span<const double> features,
                            std::span<double> out) const = 0;
  virtual bool fitted() const = 0;
  virtual const char* name() const = 0;
};

/// kNN-backed Regressor.
class KnnModel final : public Regressor {
 public:
  explicit KnnModel(KnnConfig config = {}) : impl_(config) {}
  void fit(const Dataset& data) override { impl_.fit(data); }
  void predict_into(std::span<const double> features,
                    std::span<double> out) const override {
    impl_.predict_into(features, out);
  }
  bool fitted() const override { return impl_.fitted(); }
  const char* name() const override { return "knn"; }

 private:
  KNNRegressor impl_;
};

/// Ridge-regression-backed Regressor.
class RidgeModel final : public Regressor {
 public:
  explicit RidgeModel(LinRegConfig config = {}) : impl_(config) {}
  void fit(const Dataset& data) override { impl_.fit(data); }
  void predict_into(std::span<const double> features,
                    std::span<double> out) const override {
    impl_.predict_into(features, out);
  }
  bool fitted() const override { return impl_.fitted(); }
  const char* name() const override { return "ridge"; }

 private:
  RidgeRegressor impl_;
};

/// Which predictor to instantiate.
enum class PredictorKind { kKnn, kRidge };

/// Sliding-window online trainer around a Regressor.
class OnlinePredictor {
 public:
  /// \param window number of most recent steps whose observations are kept
  ///        as training data (the paper uses the latest observations plus
  ///        the previous predictor; window=1 reproduces that memory bound).
  OnlinePredictor(PredictorKind kind, std::size_t feature_dim,
                  std::size_t target_dim, std::size_t window = 1,
                  KnnConfig knn = {}, LinRegConfig ridge = {});

  /// Ingest one step's observations and refit the model.
  /// `features`/`targets` are row-major with the constructor's dims.
  void observe_step(std::span<const double> features,
                    std::span<const double> targets, std::size_t count);

  /// Forecast the access pattern for one grid point. Requires ready().
  void predict_into(std::span<const double> features,
                    std::span<double> out) const;

  /// True once at least one step has been observed.
  bool ready() const { return model_ && model_->fitted(); }

  std::size_t feature_dim() const { return feature_dim_; }
  std::size_t target_dim() const { return target_dim_; }
  std::size_t window() const { return window_; }
  const char* model_name() const { return model_ ? model_->name() : "none"; }

  /// Seconds spent in the most recent refit (model training cost — the
  /// paper's Table II reports this overhead).
  double last_train_seconds() const { return last_train_seconds_; }

  /// Checkpoint the sliding window. The fitted model itself is not
  /// serialized — load() refits from the restored window, which is
  /// deterministic for both backing regressors.
  void save(util::BinaryWriter& out) const;

  /// Restore a window written by save() with matching kind/dims/window.
  void load(util::BinaryReader& in);

 private:
  void refit();

  PredictorKind kind_;
  std::size_t feature_dim_;
  std::size_t target_dim_;
  std::size_t window_;
  KnnConfig knn_config_;
  LinRegConfig ridge_config_;
  std::unique_ptr<Regressor> model_;
  std::vector<Dataset> history_;  // ring of recent step datasets
  std::size_t next_slot_ = 0;
  std::size_t steps_seen_ = 0;
  double last_train_seconds_ = 0.0;
};

}  // namespace bd::ml
