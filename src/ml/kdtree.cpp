#include "ml/kdtree.hpp"

#include <algorithm>
#include <numeric>

#include "ml/linalg.hpp"
#include "util/check.hpp"

namespace bd::ml {

void KdTree::build(std::span<const double> points, std::size_t count,
                   std::size_t dim) {
  BD_CHECK(dim > 0);
  BD_CHECK_MSG(points.size() == count * dim, "points size mismatch");
  count_ = count;
  dim_ = dim;
  points_.assign(points.begin(), points.end());
  nodes_.clear();
  nodes_.reserve(count);
  root_ = -1;
  if (count == 0) return;
  std::vector<std::uint32_t> indices(count);
  std::iota(indices.begin(), indices.end(), 0u);
  root_ = build_recursive(indices, 0);
}

std::int32_t KdTree::build_recursive(std::span<std::uint32_t> indices,
                                     int depth) {
  if (indices.empty()) return -1;
  const auto axis = static_cast<std::uint32_t>(depth % static_cast<int>(dim_));
  const std::size_t mid = indices.size() / 2;
  std::nth_element(indices.begin(), indices.begin() + mid, indices.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const double va = point(a)[axis];
                     const double vb = point(b)[axis];
                     return va < vb || (va == vb && a < b);
                   });
  const std::uint32_t median = indices[mid];
  Node node;
  node.axis = axis;
  node.point = median;
  node.split = point(median)[axis];
  const auto self = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);
  const std::int32_t left = build_recursive(indices.subspan(0, mid), depth + 1);
  const std::int32_t right =
      build_recursive(indices.subspan(mid + 1), depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

namespace {
// Max-heap ordering on squared distance; ties broken toward larger index so
// smaller indices are kept.
bool heap_less(const Neighbor& a, const Neighbor& b) {
  if (a.squared_dist != b.squared_dist) {
    return a.squared_dist < b.squared_dist;
  }
  return a.index < b.index;
}
}  // namespace

void KdTree::search(std::int32_t node_id, std::span<const double> q,
                    std::size_t k, std::vector<Neighbor>& heap) const {
  if (node_id < 0) return;
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  const double d2 = squared_distance(point(node.point), q);
  const Neighbor candidate{node.point, d2};
  if (heap.size() < k) {
    heap.push_back(candidate);
    std::push_heap(heap.begin(), heap.end(), heap_less);
  } else if (heap_less(candidate, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    heap.back() = candidate;
    std::push_heap(heap.begin(), heap.end(), heap_less);
  }

  const double delta = q[node.axis] - node.split;
  const std::int32_t near = delta <= 0.0 ? node.left : node.right;
  const std::int32_t far = delta <= 0.0 ? node.right : node.left;
  search(near, q, k, heap);
  if (heap.size() < k || delta * delta <= heap.front().squared_dist) {
    search(far, q, k, heap);
  }
}

std::vector<Neighbor> KdTree::query(std::span<const double> query,
                                    std::size_t k) const {
  BD_CHECK_MSG(!empty(), "query on an empty kd-tree");
  BD_CHECK(query.size() == dim_);
  k = std::min(k, count_);
  BD_CHECK_MSG(k > 0, "k must be positive");
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  search(root_, query, k, heap);
  std::sort_heap(heap.begin(), heap.end(), heap_less);
  return heap;
}

}  // namespace bd::ml
