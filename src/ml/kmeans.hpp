#pragma once
/// \file kmeans.hpp
/// k-means clustering (k-means++ initialization, Lloyd iterations) — the
/// paper's RP-CLUSTERING groups grid points by access-pattern similarity.
/// The paper notes k-means "prefers clusters of approximately similar size";
/// a balanced assignment option enforces a hard per-cluster capacity so
/// clusters map cleanly onto fixed-size thread blocks.
///
/// Two Lloyd engines sit behind the same entry points:
///  * the **exact** engine (default) scans all k centroids per point per
///    iteration — the bitwise reference;
///  * the **pruned** engine (`KMeansConfig::pruned`) keeps Hamerly-style
///    upper/lower distance bounds per point, updated by per-iteration
///    centroid drift, and skips the k-centroid scan whenever the bounds
///    prove the nearest centroid cannot have changed. Bounds are rounded
///    conservatively outward, so the pruned engine produces bit-identical
///    assignments, centroids, inertia and iteration counts to the exact
///    engine (tests/test_kmeans.cpp locks this in across seeds and dims) —
///    it only skips arithmetic whose outcome is already decided.
///
/// `kmeans_weighted` additionally accepts per-point weights (so a D²
/// coreset optimizes the same objective as the full set — see
/// ml/coreset.hpp) and warm-start centroids (skipping k-means++, the
/// cross-step accelerator used by RP-CLUSTERING).

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace bd::ml {

/// k-means hyperparameters.
struct KMeansConfig {
  std::size_t clusters = 8;
  std::size_t max_iterations = 25;
  double tolerance = 1e-6;       ///< relative inertia improvement to stop
  bool balanced = false;         ///< enforce ceil(n/k) capacity per cluster
  bool pruned = false;           ///< triangle-inequality-pruned Lloyd engine
  std::uint64_t seed = 1234;
};

/// Clustering result.
struct KMeansResult {
  std::vector<std::uint32_t> assignment;  ///< point -> cluster
  std::vector<double> centroids;          ///< clusters x dim, row-major
  std::vector<std::uint32_t> sizes;       ///< points per cluster
  double inertia = 0.0;                   ///< (weighted) sum of squared dists
  std::size_t iterations = 0;
};

/// Cluster `count` points of dimension `dim` (row-major in `points`).
/// Deterministic for a fixed seed. Empty clusters are re-seeded from the
/// farthest points (distinct per empty cluster). Requires
/// count >= clusters >= 1.
KMeansResult kmeans(std::span<const double> points, std::size_t count,
                    std::size_t dim, const KMeansConfig& config);

/// Weighted k-means with optional warm-start seeds. `weights` (empty =
/// unit weights, else one positive weight per point) scale each point's
/// contribution to the objective and the centroid update, so a weighted
/// coreset optimizes the full-set objective. `initial_centroids` (empty =
/// k-means++ seeding, else clusters × dim row-major) start Lloyd from the
/// given centroids without spending any RNG draws — the warm-start path.
/// Balanced mode supports neither weights nor pruning.
KMeansResult kmeans_weighted(std::span<const double> points,
                             std::size_t count, std::size_t dim,
                             std::span<const double> weights,
                             std::span<const double> initial_centroids,
                             const KMeansConfig& config);

/// Group point indices by cluster (cluster id -> member list), preserving
/// point order within each cluster.
std::vector<std::vector<std::uint32_t>> members_by_cluster(
    const KMeansResult& result, std::size_t clusters);

/// Capacity-constrained assignment of points to fixed centroids: points
/// are processed in order of decreasing urgency (gap between their best
/// and second-best centroid) and go to the nearest centroid with room.
/// Used to balance clusters trained on a subsample across the full point
/// set. Capacity 0 means unconstrained nearest-centroid assignment.
std::vector<std::uint32_t> assign_balanced(std::span<const double> points,
                                           std::size_t count, std::size_t dim,
                                           std::span<const double> centroids,
                                           std::size_t k,
                                           std::size_t capacity);

}  // namespace bd::ml
