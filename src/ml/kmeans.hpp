#pragma once
/// \file kmeans.hpp
/// k-means clustering (k-means++ initialization, Lloyd iterations) — the
/// paper's RP-CLUSTERING groups grid points by access-pattern similarity.
/// The paper notes k-means "prefers clusters of approximately similar size";
/// a balanced assignment option enforces a hard per-cluster capacity so
/// clusters map cleanly onto fixed-size thread blocks.

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace bd::ml {

/// k-means hyperparameters.
struct KMeansConfig {
  std::size_t clusters = 8;
  std::size_t max_iterations = 25;
  double tolerance = 1e-6;       ///< relative inertia improvement to stop
  bool balanced = false;         ///< enforce ceil(n/k) capacity per cluster
  std::uint64_t seed = 1234;
};

/// Clustering result.
struct KMeansResult {
  std::vector<std::uint32_t> assignment;  ///< point -> cluster
  std::vector<double> centroids;          ///< clusters x dim, row-major
  std::vector<std::uint32_t> sizes;       ///< points per cluster
  double inertia = 0.0;                   ///< sum of squared distances
  std::size_t iterations = 0;
};

/// Cluster `count` points of dimension `dim` (row-major in `points`).
/// Deterministic for a fixed seed. Empty clusters are re-seeded from the
/// farthest point. Requires count >= clusters >= 1.
KMeansResult kmeans(std::span<const double> points, std::size_t count,
                    std::size_t dim, const KMeansConfig& config);

/// Group point indices by cluster (cluster id -> member list), preserving
/// point order within each cluster.
std::vector<std::vector<std::uint32_t>> members_by_cluster(
    const KMeansResult& result, std::size_t clusters);

/// Capacity-constrained assignment of points to fixed centroids: points
/// are processed in order of decreasing urgency (gap between their best
/// and second-best centroid) and go to the nearest centroid with room.
/// Used to balance clusters trained on a subsample across the full point
/// set. Capacity 0 means unconstrained nearest-centroid assignment.
std::vector<std::uint32_t> assign_balanced(std::span<const double> points,
                                           std::size_t count, std::size_t dim,
                                           std::span<const double> centroids,
                                           std::size_t k,
                                           std::size_t capacity);

}  // namespace bd::ml
