#pragma once
/// \file dataset.hpp
/// Supervised-learning dataset: paired feature and target matrices.
/// Features are grid-point coordinates (x, y[, t]); targets are the
/// per-subregion partition counts (the access pattern).

#include <cstdint>
#include <vector>

#include "ml/linalg.hpp"
#include "util/rng.hpp"

namespace bd::ml {

/// Paired (X, Y) with X: n×d features and Y: n×m targets.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::size_t feature_dim, std::size_t target_dim)
      : feature_dim_(feature_dim), target_dim_(target_dim) {}

  /// Append one example. Feature/target sizes must match the dataset dims.
  void add(std::span<const double> features, std::span<const double> targets);

  /// Reserve capacity for n examples.
  void reserve(std::size_t n);

  std::size_t size() const { return features_.size() / std::max<std::size_t>(1, feature_dim_); }
  std::size_t feature_dim() const { return feature_dim_; }
  std::size_t target_dim() const { return target_dim_; }
  bool empty() const { return features_.empty(); }

  std::span<const double> features(std::size_t i) const {
    return std::span<const double>(features_.data() + i * feature_dim_,
                                   feature_dim_);
  }
  std::span<const double> targets(std::size_t i) const {
    return std::span<const double>(targets_.data() + i * target_dim_,
                                   target_dim_);
  }

  /// Materialize the feature matrix (n×d).
  Matrix feature_matrix() const;

  /// Materialize the target matrix (n×m).
  Matrix target_matrix() const;

  /// Deterministic shuffled split into (train, test) with `test_fraction`
  /// of the examples in the test set.
  std::pair<Dataset, Dataset> split(double test_fraction,
                                    util::Rng& rng) const;

  /// Remove all examples (dims preserved).
  void clear();

  /// Flat row-major storage, for serialization.
  const std::vector<double>& raw_features() const { return features_; }
  const std::vector<double>& raw_targets() const { return targets_; }

  /// Replace the contents wholesale (deserialization). Sizes must be
  /// consistent multiples of the dataset dims.
  void assign_raw(std::vector<double> features, std::vector<double> targets);

 private:
  std::size_t feature_dim_ = 0;
  std::size_t target_dim_ = 0;
  std::vector<double> features_;
  std::vector<double> targets_;
};

}  // namespace bd::ml
