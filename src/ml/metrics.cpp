#include "ml/metrics.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace bd::ml {

double mse(std::span<const double> predicted, std::span<const double> truth) {
  return util::mean_squared_error(predicted, truth);
}

double mae(std::span<const double> predicted, std::span<const double> truth) {
  BD_CHECK(predicted.size() == truth.size());
  if (predicted.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += std::abs(predicted[i] - truth[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double r2_score(std::span<const double> predicted,
                std::span<const double> truth) {
  BD_CHECK(predicted.size() == truth.size());
  BD_CHECK_MSG(!truth.empty(), "r2 of empty data");
  const double mu = util::mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mu) * (truth[i] - mu);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace bd::ml
