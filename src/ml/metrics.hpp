#pragma once
/// \file metrics.hpp
/// Regression quality metrics used to evaluate the access-pattern
/// predictors (MSE, MAE, R²) — reported by the forecast-quality benches.

#include <span>

namespace bd::ml {

/// Mean squared error between prediction and truth.
double mse(std::span<const double> predicted, std::span<const double> truth);

/// Mean absolute error.
double mae(std::span<const double> predicted, std::span<const double> truth);

/// Coefficient of determination R² (1 = perfect; can be negative).
double r2_score(std::span<const double> predicted,
                std::span<const double> truth);

}  // namespace bd::ml
