#pragma once
/// \file knn.hpp
/// k-nearest-neighbor regression (multi-output) — the paper's choice for
/// the online access-pattern predictor (§III-B1). Supports uniform and
/// inverse-distance weighting and brute-force or kd-tree backends.

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/kdtree.hpp"
#include "ml/scaler.hpp"

namespace bd::ml {

/// kNN hyperparameters.
struct KnnConfig {
  std::size_t k = 4;
  bool distance_weighted = true;  ///< 1/d weights (uniform otherwise)
  bool use_kdtree = true;         ///< brute force when false (for testing)
  bool standardize = true;        ///< scale features before distances
};

/// Multi-output kNN regressor.
class KNNRegressor {
 public:
  explicit KNNRegressor(KnnConfig config = {}) : config_(config) {}

  /// Fit from a dataset (copies the data; kNN is instance-based).
  void fit(const Dataset& data);

  /// Predict the target vector for one query point.
  std::vector<double> predict(std::span<const double> features) const;

  /// Predict into a caller-provided buffer (avoids allocation in loops).
  void predict_into(std::span<const double> features,
                    std::span<double> out) const;

  bool fitted() const { return !train_.empty(); }
  std::size_t target_dim() const { return train_.target_dim(); }
  const KnnConfig& config() const { return config_; }

 private:
  KnnConfig config_;
  Dataset train_;
  StandardScaler scaler_;
  KdTree tree_;
  std::vector<double> scaled_features_;  // scratch for fit
};

}  // namespace bd::ml
