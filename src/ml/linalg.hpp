#pragma once
/// \file linalg.hpp
/// Minimal dense linear algebra for the regression models: row-major
/// matrix, matrix products, Cholesky factorization/solve. Feature
/// dimensions in this library are tiny (grid point coordinates), so no
/// blocking or vectorization heroics are needed.

#include <cstddef>
#include <span>
#include <vector>

namespace bd::ml {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return std::span<double>(data_.data() + r * cols_, cols_);
  }
  std::span<const double> row(std::size_t r) const {
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  /// A^T * A (cols x cols).
  static Matrix gram(const Matrix& a);

  /// A^T * B where a.rows() == b.rows().
  static Matrix at_b(const Matrix& a, const Matrix& b);

  /// A * B.
  static Matrix multiply(const Matrix& a, const Matrix& b);

  /// Identity matrix.
  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place Cholesky factorization A = L·Lᵀ of a symmetric positive-definite
/// matrix. Returns false if the matrix is not (numerically) SPD.
bool cholesky_factor(Matrix& a);

/// Solve L·Lᵀ x = b for one right-hand side, where `l` holds the Cholesky
/// factor in its lower triangle.
std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b);

/// Solve (A + ridge·I) X = B for symmetric positive-definite A with
/// multiple right-hand sides (columns of B). Throws on failure.
Matrix spd_solve(Matrix a, const Matrix& b, double ridge = 0.0);

/// Squared Euclidean distance between two equally-sized vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace bd::ml
