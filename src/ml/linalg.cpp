#include "ml/linalg.hpp"

#include <cmath>

#include "util/check.hpp"

namespace bd::ml {

Matrix Matrix::gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (std::size_t p = 0; p < a.cols(); ++p) {
      for (std::size_t q = p; q < a.cols(); ++q) {
        g(p, q) += row[p] * row[q];
      }
    }
  }
  for (std::size_t p = 0; p < a.cols(); ++p) {
    for (std::size_t q = 0; q < p; ++q) g(p, q) = g(q, p);
  }
  return g;
}

Matrix Matrix::at_b(const Matrix& a, const Matrix& b) {
  BD_CHECK(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto ra = a.row(i);
    const auto rb = b.row(i);
    for (std::size_t p = 0; p < a.cols(); ++p) {
      const double ap = ra[p];
      if (ap == 0.0) continue;
      for (std::size_t q = 0; q < b.cols(); ++q) {
        out(p, q) += ap * rb[q];
      }
    }
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& a, const Matrix& b) {
  BD_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

bool cholesky_factor(Matrix& a) {
  BD_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
  }
  return true;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  const std::size_t n = l.rows();
  BD_CHECK(b.size() == n);
  std::vector<double> y(n);
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  // Backward substitution Lᵀ x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l(k, ii) * x[k];
    x[ii] = v / l(ii, ii);
  }
  return x;
}

Matrix spd_solve(Matrix a, const Matrix& b, double ridge) {
  BD_CHECK(a.rows() == a.cols() && a.rows() == b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += ridge;
  BD_CHECK_MSG(cholesky_factor(a), "matrix is not positive definite");
  Matrix x(b.rows(), b.cols());
  std::vector<double> rhs(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) rhs[r] = b(r, c);
    const std::vector<double> col = cholesky_solve(a, rhs);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

double squared_distance(std::span<const double> a,
                        std::span<const double> b) {
  BD_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace bd::ml
