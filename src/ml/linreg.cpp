#include "ml/linreg.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bd::ml {

std::vector<double> RidgeRegressor::expand(
    std::span<const double> features) const {
  std::vector<double> f(features.begin(), features.end());
  if (config_.standardize && scaler_.fitted()) scaler_.transform(f);
  std::vector<double> phi;
  phi.push_back(1.0);  // bias
  phi.insert(phi.end(), f.begin(), f.end());
  if (config_.poly_degree >= 2) {
    for (std::size_t i = 0; i < f.size(); ++i) {
      for (std::size_t j = i; j < f.size(); ++j) {
        phi.push_back(f[i] * f[j]);
      }
    }
  }
  return phi;
}

void RidgeRegressor::fit(const Dataset& data) {
  BD_CHECK_MSG(!data.empty(), "ridge fit on empty dataset");
  feature_dim_ = data.feature_dim();
  if (config_.standardize) scaler_.fit(data);

  // Build the design matrix Φ.
  const std::vector<double> probe = expand(data.features(0));
  const std::size_t expanded = probe.size();
  Matrix phi(data.size(), expanded);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::vector<double> row = expand(data.features(i));
    std::copy(row.begin(), row.end(), phi.row(i).begin());
  }
  const Matrix y = data.target_matrix();
  const Matrix gram = Matrix::gram(phi);
  const Matrix rhs = Matrix::at_b(phi, y);
  weights_ = spd_solve(gram, rhs, config_.ridge);
}

void RidgeRegressor::predict_into(std::span<const double> features,
                                  std::span<double> out) const {
  BD_CHECK_MSG(fitted(), "predict before fit");
  BD_CHECK(features.size() == feature_dim_);
  BD_CHECK(out.size() == weights_.cols());
  const std::vector<double> phi = expand(features);
  BD_CHECK(phi.size() == weights_.rows());
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t r = 0; r < phi.size(); ++r) {
    const double v = phi[r];
    if (v == 0.0) continue;
    for (std::size_t c = 0; c < out.size(); ++c) {
      out[c] += v * weights_(r, c);
    }
  }
}

std::vector<double> RidgeRegressor::predict(
    std::span<const double> features) const {
  std::vector<double> out(weights_.cols());
  predict_into(features, out);
  return out;
}

}  // namespace bd::ml
