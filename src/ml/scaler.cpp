#include "ml/scaler.hpp"

#include <cmath>

#include "ml/dataset.hpp"
#include "util/check.hpp"

namespace bd::ml {

void StandardScaler::fit(const Dataset& data) {
  BD_CHECK_MSG(!data.empty(), "cannot fit scaler on an empty dataset");
  const std::size_t dim = data.feature_dim();
  means_.assign(dim, 0.0);
  stds_.assign(dim, 0.0);
  const auto n = static_cast<double>(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.features(i);
    for (std::size_t c = 0; c < dim; ++c) means_[c] += row[c];
  }
  for (double& m : means_) m /= n;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.features(i);
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = row[c] - means_[c];
      stds_[c] += d * d;
    }
  }
  for (double& s : stds_) {
    s = std::sqrt(s / n);
    if (s < 1e-12) s = 1.0;  // constant column: leave unscaled
  }
}

void StandardScaler::fit_rows(std::span<const double> rows, std::size_t dim) {
  BD_CHECK(dim > 0 && rows.size() % dim == 0 && !rows.empty());
  const std::size_t n = rows.size() / dim;
  means_.assign(dim, 0.0);
  stds_.assign(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < dim; ++c) means_[c] += rows[i * dim + c];
  }
  for (double& m : means_) m /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = rows[i * dim + c] - means_[c];
      stds_[c] += d * d;
    }
  }
  for (double& s : stds_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;
  }
}

void StandardScaler::transform(std::span<double> features) const {
  BD_CHECK_MSG(fitted(), "scaler not fitted");
  BD_CHECK(features.size() == means_.size());
  for (std::size_t c = 0; c < features.size(); ++c) {
    features[c] = (features[c] - means_[c]) / stds_[c];
  }
}

std::vector<double> StandardScaler::transformed(
    std::span<const double> features) const {
  std::vector<double> out(features.begin(), features.end());
  transform(out);
  return out;
}

void StandardScaler::inverse_transform(std::span<double> features) const {
  BD_CHECK_MSG(fitted(), "scaler not fitted");
  BD_CHECK(features.size() == means_.size());
  for (std::size_t c = 0; c < features.size(); ++c) {
    features[c] = features[c] * stds_[c] + means_[c];
  }
}

}  // namespace bd::ml
