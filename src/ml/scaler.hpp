#pragma once
/// \file scaler.hpp
/// Feature standardization (zero mean, unit variance per column). kNN is
/// distance-based, so features on different scales (grid index vs time)
/// must be normalized before training.

#include <span>
#include <vector>

namespace bd::ml {

class Dataset;

/// Per-column standardizer: z = (x - mean) / std.
class StandardScaler {
 public:
  /// Fit means/stds from the dataset's features.
  void fit(const Dataset& data);

  /// Fit from raw rows.
  void fit_rows(std::span<const double> rows, std::size_t dim);

  /// Transform one feature vector in place.
  void transform(std::span<double> features) const;

  /// Transform into a new vector.
  std::vector<double> transformed(std::span<const double> features) const;

  /// Inverse transform (for reporting).
  void inverse_transform(std::span<double> features) const;

  bool fitted() const { return !means_.empty(); }
  std::span<const double> means() const { return means_; }
  std::span<const double> stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace bd::ml
