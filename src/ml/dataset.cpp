#include "ml/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace bd::ml {

void Dataset::add(std::span<const double> features,
                  std::span<const double> targets) {
  BD_CHECK_MSG(features.size() == feature_dim_,
               "feature size mismatch: " << features.size() << " vs "
                                         << feature_dim_);
  BD_CHECK_MSG(targets.size() == target_dim_,
               "target size mismatch: " << targets.size() << " vs "
                                        << target_dim_);
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.insert(targets_.end(), targets.begin(), targets.end());
}

void Dataset::reserve(std::size_t n) {
  features_.reserve(n * feature_dim_);
  targets_.reserve(n * target_dim_);
}

Matrix Dataset::feature_matrix() const {
  Matrix x(size(), feature_dim_);
  std::copy(features_.begin(), features_.end(), x.data().begin());
  return x;
}

Matrix Dataset::target_matrix() const {
  Matrix y(size(), target_dim_);
  std::copy(targets_.begin(), targets_.end(), y.data().begin());
  return y;
}

std::pair<Dataset, Dataset> Dataset::split(double test_fraction,
                                           util::Rng& rng) const {
  BD_CHECK(test_fraction >= 0.0 && test_fraction <= 1.0);
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher–Yates with our deterministic RNG.
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(order[i - 1], order[j]);
  }
  const auto test_count =
      static_cast<std::size_t>(test_fraction * static_cast<double>(size()));
  Dataset train(feature_dim_, target_dim_);
  Dataset test(feature_dim_, target_dim_);
  train.reserve(size() - test_count);
  test.reserve(test_count);
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& dst = (i < test_count) ? test : train;
    dst.add(features(order[i]), targets(order[i]));
  }
  return {std::move(train), std::move(test)};
}

void Dataset::clear() {
  features_.clear();
  targets_.clear();
}

void Dataset::assign_raw(std::vector<double> features,
                         std::vector<double> targets) {
  BD_CHECK(feature_dim_ > 0 && target_dim_ > 0);
  BD_CHECK_MSG(features.size() % feature_dim_ == 0,
               "raw feature size " << features.size()
                                   << " not a multiple of dim "
                                   << feature_dim_);
  BD_CHECK_MSG(targets.size() % target_dim_ == 0,
               "raw target size " << targets.size()
                                  << " not a multiple of dim " << target_dim_);
  BD_CHECK_MSG(features.size() / feature_dim_ == targets.size() / target_dim_,
               "raw feature/target row counts disagree");
  features_ = std::move(features);
  targets_ = std::move(targets);
}

}  // namespace bd::ml
