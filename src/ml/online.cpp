#include "ml/online.hpp"

#include "util/check.hpp"
#include "util/serialize.hpp"
#include "util/timer.hpp"

namespace bd::ml {

OnlinePredictor::OnlinePredictor(PredictorKind kind, std::size_t feature_dim,
                                 std::size_t target_dim, std::size_t window,
                                 KnnConfig knn, LinRegConfig ridge)
    : kind_(kind),
      feature_dim_(feature_dim),
      target_dim_(target_dim),
      window_(window),
      knn_config_(knn),
      ridge_config_(ridge) {
  BD_CHECK(feature_dim > 0 && target_dim > 0 && window > 0);
  history_.resize(window_, Dataset(feature_dim_, target_dim_));
}

void OnlinePredictor::observe_step(std::span<const double> features,
                                   std::span<const double> targets,
                                   std::size_t count) {
  BD_CHECK(features.size() == count * feature_dim_);
  BD_CHECK(targets.size() == count * target_dim_);
  Dataset& slot = history_[next_slot_];
  slot.clear();
  slot.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    slot.add(features.subspan(i * feature_dim_, feature_dim_),
             targets.subspan(i * target_dim_, target_dim_));
  }
  next_slot_ = (next_slot_ + 1) % window_;
  ++steps_seen_;
  refit();
}

void OnlinePredictor::refit() {
  util::WallTimer timer;
  Dataset merged(feature_dim_, target_dim_);
  std::size_t total = 0;
  const std::size_t used = std::min(steps_seen_, window_);
  for (std::size_t w = 0; w < used; ++w) total += history_[w].size();
  merged.reserve(total);
  for (std::size_t w = 0; w < used; ++w) {
    const Dataset& d = history_[w];
    for (std::size_t i = 0; i < d.size(); ++i) {
      merged.add(d.features(i), d.targets(i));
    }
  }
  if (merged.empty()) return;
  switch (kind_) {
    case PredictorKind::kKnn:
      model_ = std::make_unique<KnnModel>(knn_config_);
      break;
    case PredictorKind::kRidge:
      model_ = std::make_unique<RidgeModel>(ridge_config_);
      break;
  }
  model_->fit(merged);
  last_train_seconds_ = timer.seconds();
}

void OnlinePredictor::save(util::BinaryWriter& out) const {
  out.write_u8(static_cast<std::uint8_t>(kind_));
  out.write_u64(feature_dim_);
  out.write_u64(target_dim_);
  out.write_u64(window_);
  out.write_u64(steps_seen_);
  out.write_u64(next_slot_);
  for (const Dataset& slot : history_) {
    out.write_f64_span(slot.raw_features());
    out.write_f64_span(slot.raw_targets());
  }
}

void OnlinePredictor::load(util::BinaryReader& in) {
  const auto kind = static_cast<PredictorKind>(in.read_u8());
  BD_CHECK_MSG(kind == kind_, "predictor kind mismatch in checkpoint");
  const std::uint64_t fd = in.read_u64();
  const std::uint64_t td = in.read_u64();
  const std::uint64_t win = in.read_u64();
  BD_CHECK_MSG(fd == feature_dim_ && td == target_dim_ && win == window_,
               "predictor shape mismatch: checkpoint ("
                   << fd << "x" << td << ", window " << win
                   << ") vs simulation (" << feature_dim_ << "x" << target_dim_
                   << ", window " << window_ << ")");
  steps_seen_ = in.read_u64();
  next_slot_ = in.read_u64();
  BD_CHECK_MSG(next_slot_ < window_, "corrupt predictor slot index");
  for (Dataset& slot : history_) {
    std::vector<double> features = in.read_f64_vector();
    std::vector<double> targets = in.read_f64_vector();
    slot.assign_raw(std::move(features), std::move(targets));
  }
  model_.reset();
  if (steps_seen_ > 0) refit();
}

void OnlinePredictor::predict_into(std::span<const double> features,
                                   std::span<double> out) const {
  BD_CHECK_MSG(ready(), "predictor not trained yet");
  model_->predict_into(features, out);
}

}  // namespace bd::ml
