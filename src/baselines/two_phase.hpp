#pragma once
/// \file two_phase.hpp
/// Two-Phase-RP kernel (paper ref [9]) — the first high-performance
/// parallel algorithm for this computation: a globally adaptive parallel
/// quadrature. Phase 1 evaluates a fixed first-level subdivision (one
/// Simpson interval per radial subregion) at every grid point, thread =
/// point in row-major order. Phase 2 processes all non-converged intervals
/// with per-thread adaptive quadrature — the divergent, irregular pass that
/// dominates its runtime. The solver keeps no cross-step state; every step
/// pays the full adaptive cost.

#include "core/solver.hpp"

namespace bd::baselines {

/// Options of the Two-Phase baseline.
struct TwoPhaseOptions {
  std::uint32_t block_size = 128;  ///< threads per block in phase 1
};

class TwoPhaseSolver final : public core::RpSolver {
 public:
  explicit TwoPhaseSolver(simt::DeviceSpec device, TwoPhaseOptions options = {})
      : device_(std::move(device)), options_(options) {}

  core::SolveResult solve(const core::RpProblem& problem) override;
  const char* name() const override { return "two-phase-rp"; }
  void reset() override {}

 private:
  simt::DeviceSpec device_;
  TwoPhaseOptions options_;
};

}  // namespace bd::baselines
