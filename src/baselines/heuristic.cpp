#include "baselines/heuristic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/forecast.hpp"
#include "core/rp_kernels.hpp"
#include "quad/partition.hpp"
#include "util/serialize.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace bd::baselines {

namespace telemetry = bd::util::telemetry;

void HeuristicSolver::save_state(util::BinaryWriter& out) const {
  util::write_nested_f64(out, previous_partitions_);
}

void HeuristicSolver::load_state(util::BinaryReader& in) {
  previous_partitions_ = util::read_nested_f64(in);
}

core::SolveResult HeuristicSolver::solve(const core::RpProblem& problem) {
  util::WallTimer wall;
  const std::size_t num_points = problem.num_points();
  const bool bootstrap = previous_partitions_.size() != num_points;

  telemetry::TraceSession& session = telemetry::TraceSession::global();

  // Heuristic 1: start from last step's partitions.
  util::WallTimer forecast_timer;
  const double reuse_start = session.enabled() ? session.now_us() : 0.0;
  std::vector<std::vector<double>> point_partitions;
  if (bootstrap) {
    const std::vector<double> coarse = core::pattern_to_partition(
        std::vector<double>(problem.num_subregions, 1.0), problem.sub_width,
        problem.r_max(), /*headroom=*/1.0);
    point_partitions.assign(num_points, coarse);
  } else {
    point_partitions = previous_partitions_;
  }
  const double forecast_seconds = forecast_timer.seconds();
  if (session.enabled()) {
    session.record_complete("heuristic.partition_reuse", "baselines",
                            reuse_start, session.now_us() - reuse_start, "");
  }

  // Heuristic 2: coarse workload buckets (log2 of the partition size),
  // row-major within each bucket.
  util::WallTimer cluster_timer;
  const double sort_start = session.enabled() ? session.now_us() : 0.0;
  core::ClusterAssignment blocks;
  if (bootstrap || !options_.workload_sort) {
    blocks = core::chunk_clustering(num_points, options_.block_size);
  } else {
    std::vector<std::uint32_t> order(num_points);
    std::iota(order.begin(), order.end(), 0u);
    std::vector<std::uint32_t> bucket(num_points);
    for (std::size_t p = 0; p < num_points; ++p) {
      const double w = static_cast<double>(point_partitions[p].size());
      bucket[p] = static_cast<std::uint32_t>(std::lround(std::log2(w)));
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return bucket[a] > bucket[b];
                     });
    blocks = core::ordered_clustering(order, options_.block_size);
  }
  const double clustering_seconds = cluster_timer.seconds();
  if (session.enabled()) {
    session.record_complete("heuristic.bucket_sort", "baselines", sort_start,
                            session.now_us() - sort_start, "");
  }

  core::RpKernelInput input;
  input.problem = &problem;
  input.clusters = &blocks;
  input.source = core::PartitionSource::kPerPoint;
  input.point_partitions = &point_partitions;

  core::RpKernelOutput kernel1 = core::run_compute_rp_integral(device_, input);

  // Remember the failed intervals before the fallback consumes them: the
  // refinements they generate are folded into the stored partitions.
  const std::vector<core::FailedInterval> failed = kernel1.failed;
  const core::FallbackOutput kernel2 = core::run_adaptive_fallback(
      device_, problem, kernel1.failed, kernel1.integral, kernel1.error,
      kernel1.contributions);

  // Update stored partitions: refinement only (no coarsening) — the
  // partition a point keeps is what it used, subdivided wherever the
  // tolerance was missed, into as many pieces as the fallback's adaptive
  // pass actually generated there.
  previous_partitions_ = std::move(point_partitions);
  for (std::size_t i = 0; i < failed.size(); ++i) {
    const core::FailedInterval& item = failed[i];
    auto& partition = previous_partitions_[item.point];
    const std::uint32_t pieces =
        std::max<std::uint32_t>(2, kernel2.intervals_per_item[i]);
    std::vector<double> refined;
    refined.reserve(pieces + 1);
    for (std::uint32_t piece = 0; piece <= pieces; ++piece) {
      refined.push_back(
          item.a + (item.b - item.a) * static_cast<double>(piece) / pieces);
    }
    partition = quad::merge_partitions(partition, refined);
  }

  simt::KernelMetrics metrics = kernel1.metrics;
  metrics += kernel2.metrics;

  core::SolveResult result = core::detail::make_result(
      problem, std::move(kernel1.integral), std::move(kernel1.error),
      std::move(kernel1.contributions), std::move(metrics));
  result.fallback_items = failed.size();
  result.kernel_intervals = kernel1.intervals;
  result.clustering_seconds = clustering_seconds;
  result.forecast_seconds = forecast_seconds;
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace bd::baselines
