#include "baselines/heuristic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/forecast.hpp"
#include "core/rp_kernels.hpp"
#include "core/solver_scratch.hpp"
#include "quad/partition.hpp"
#include "util/serialize.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace bd::baselines {

namespace telemetry = bd::util::telemetry;

namespace {
/// point_run sentinel: this point has no failed intervals this step.
constexpr std::uint32_t kNoRun = 0xffffffffu;
}  // namespace

void HeuristicSolver::save_state(util::BinaryWriter& out) const {
  quad::write_partition_set_nested(out, previous_partitions_);
}

void HeuristicSolver::load_state(util::BinaryReader& in) {
  quad::read_partition_set_nested(in, previous_partitions_);
}

core::SolveResult HeuristicSolver::solve(const core::RpProblem& problem) {
  util::WallTimer wall;
  core::SolverScratch& scratch = scratch_for(problem);
  const std::size_t num_points = problem.num_points();
  const bool bootstrap = previous_partitions_.entries() != num_points;

  telemetry::TraceSession& session = telemetry::current_trace();

  // Heuristic 1: start from last step's partitions. The carried
  // PartitionSet is the kernel's input directly — no per-step copy.
  util::WallTimer forecast_timer;
  const double reuse_start = session.enabled() ? session.now_us() : 0.0;
  if (bootstrap) {
    const auto ones = scratch.acquire_fill(scratch.ones,
                                           problem.num_subregions, 1.0);
    previous_partitions_.reset(num_points);
    const auto slot = scratch.acquire(
        scratch.merge_a,
        core::pattern_to_partition_bound(ones, /*headroom=*/1.0));
    const std::size_t len = core::pattern_to_partition_into(
        ones, problem.sub_width, problem.r_max(), slot, /*headroom=*/1.0);
    previous_partitions_.bind_all(
        previous_partitions_.add_row(slot.first(len)));
  }
  const double forecast_seconds = forecast_timer.seconds();
  if (session.enabled()) {
    session.record_complete("heuristic.partition_reuse", "baselines",
                            reuse_start, session.now_us() - reuse_start, "");
  }

  // Heuristic 2: coarse workload buckets (log2 of the partition size),
  // row-major within each bucket.
  util::WallTimer cluster_timer;
  const double sort_start = session.enabled() ? session.now_us() : 0.0;
  core::ClusterAssignment blocks;
  if (bootstrap || !options_.workload_sort) {
    blocks = core::chunk_clustering(num_points, options_.block_size);
  } else {
    std::vector<std::uint32_t> order(num_points);
    std::iota(order.begin(), order.end(), 0u);
    std::vector<std::uint32_t> bucket(num_points);
    for (std::size_t p = 0; p < num_points; ++p) {
      const double w =
          static_cast<double>(previous_partitions_.at(p).size());
      bucket[p] = static_cast<std::uint32_t>(std::lround(std::log2(w)));
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return bucket[a] > bucket[b];
                     });
    blocks = core::ordered_clustering(order, options_.block_size);
  }
  const double clustering_seconds = cluster_timer.seconds();
  if (session.enabled()) {
    session.record_complete("heuristic.bucket_sort", "baselines", sort_start,
                            session.now_us() - sort_start, "");
  }

  core::RpKernelInput input;
  input.problem = &problem;
  input.clusters = &blocks;
  input.source = core::PartitionSource::kPerPoint;
  input.partitions = &previous_partitions_;

  core::RpKernelOutput kernel1 =
      core::run_compute_rp_integral(device_, input, scratch);

  // The fallback does not touch the kernel's failure list, so the span
  // stays valid for the refinement fold below.
  const std::span<const core::FailedInterval> failed = kernel1.failed;
  const core::FallbackOutput kernel2 = core::run_adaptive_fallback(
      device_, problem, kernel1.failed, kernel1.integral, kernel1.error,
      kernel1.contributions, scratch);

  // Update stored partitions: refinement only (no coarsening) — the
  // partition a point keeps is what it used, subdivided wherever the
  // tolerance was missed, into as many pieces as the fallback's adaptive
  // pass actually generated there. A point's failed intervals form one
  // contiguous run of `failed` (one lane per point, lanes serial per
  // block), so a single scan finds each point's run start and the fold
  // below replays the historical per-point merge chains exactly.
  quad::PartitionSet& next = scratch.merged;
  next.reset(num_points);
  const auto run_of = scratch.acquire_fill(scratch.point_run, num_points,
                                           kNoRun);
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i == 0 || failed[i].point != failed[i - 1].point) {
      run_of[failed[i].point] = static_cast<std::uint32_t>(i);
    }
  }
  // Pre-size: the fold appends at most the previous per-point breaks plus
  // one refined partition per failed item (one reserve instead of a
  // doubling cascade of add_row growths when refinement sets a record).
  std::size_t bound = 0;
  for (std::size_t p = 0; p < num_points; ++p) {
    bound += previous_partitions_.at(p).size();
  }
  std::uint32_t max_pieces = 2;
  for (std::size_t i = 0; i < failed.size(); ++i) {
    const std::uint32_t pieces =
        std::max<std::uint32_t>(2, kernel2.intervals_per_item[i]);
    bound += pieces + 1;
    max_pieces = std::max(max_pieces, pieces);
  }
  next.reserve_breaks(bound);
  const auto refined_slot =
      scratch.acquire(scratch.refined, std::size_t{max_pieces} + 1);
  for (std::size_t p = 0; p < num_points; ++p) {
    if (run_of[p] == kNoRun) {
      next.bind(p, next.add_row(previous_partitions_.at(p)));
      continue;
    }
    std::span<const double> acc = previous_partitions_.at(p);
    std::vector<double>* front = &scratch.merge_a;
    std::vector<double>* spare = &scratch.merge_b;
    for (std::size_t i = run_of[p];
         i < failed.size() && failed[i].point == p; ++i) {
      const core::FailedInterval& item = failed[i];
      const std::uint32_t pieces =
          std::max<std::uint32_t>(2, kernel2.intervals_per_item[i]);
      const auto refined = refined_slot.first(std::size_t{pieces} + 1);
      for (std::uint32_t piece = 0; piece <= pieces; ++piece) {
        refined[piece] =
            item.a + (item.b - item.a) * static_cast<double>(piece) / pieces;
      }
      quad::merge_partitions_into(acc, refined, *front);
      acc = *front;
      std::swap(front, spare);
    }
    next.bind(p, next.add_row(acc));
  }
  std::swap(previous_partitions_, next);
  scratch.absorb(previous_partitions_);

  simt::KernelMetrics metrics = kernel1.metrics;
  metrics += kernel2.metrics;
  scratch.flush_metrics();

  core::SolveResult result = core::detail::make_result(
      problem, std::move(kernel1.integral), std::move(kernel1.error),
      std::move(kernel1.contributions), std::move(metrics));
  result.fallback_items = failed.size();
  result.kernel_intervals = kernel1.intervals;
  result.clustering_seconds = clustering_seconds;
  result.forecast_seconds = forecast_seconds;
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace bd::baselines
