#include "baselines/two_phase.hpp"

#include "core/forecast.hpp"
#include "core/rp_kernels.hpp"
#include "core/solver_scratch.hpp"
#include "util/timer.hpp"

namespace bd::baselines {

core::SolveResult TwoPhaseSolver::solve(const core::RpProblem& problem) {
  util::WallTimer wall;
  core::SolverScratch& scratch = scratch_for(problem);

  // Phase 1: fixed first-level partition — one interval per subregion,
  // identical for every grid point (a single row aliased by every entry).
  const auto ones = scratch.acquire_fill(scratch.ones,
                                         problem.num_subregions, 1.0);
  quad::PartitionSet& parts = scratch.point_partitions;
  parts.reset(problem.num_points());
  const auto slot = scratch.acquire(
      scratch.merge_a,
      core::pattern_to_partition_bound(ones, /*headroom=*/1.0));
  const std::size_t len = core::pattern_to_partition_into(
      ones, problem.sub_width, problem.r_max(), slot, /*headroom=*/1.0);
  parts.bind_all(parts.add_row(slot.first(len)));

  const core::ClusterAssignment blocks =
      core::chunk_clustering(problem.num_points(), options_.block_size);

  core::RpKernelInput input;
  input.problem = &problem;
  input.clusters = &blocks;
  input.source = core::PartitionSource::kPerPoint;
  input.partitions = &parts;

  core::RpKernelOutput phase1 =
      core::run_compute_rp_integral(device_, input, scratch);

  // Phase 2: globally adaptive pass over every non-converged interval.
  const core::FallbackOutput phase2 = core::run_adaptive_fallback(
      device_, problem, phase1.failed, phase1.integral, phase1.error,
      phase1.contributions, scratch);

  simt::KernelMetrics metrics = phase1.metrics;
  metrics += phase2.metrics;
  scratch.flush_metrics();

  core::SolveResult result = core::detail::make_result(
      problem, std::move(phase1.integral), std::move(phase1.error),
      std::move(phase1.contributions), std::move(metrics));
  result.fallback_items = phase1.failed.size();
  result.kernel_intervals = phase1.intervals;
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace bd::baselines
