#include "baselines/two_phase.hpp"

#include "core/forecast.hpp"
#include "core/rp_kernels.hpp"
#include "util/timer.hpp"

namespace bd::baselines {

core::SolveResult TwoPhaseSolver::solve(const core::RpProblem& problem) {
  util::WallTimer wall;

  // Phase 1: fixed first-level partition — one interval per subregion,
  // identical for every grid point.
  const std::vector<double> coarse = core::pattern_to_partition(
      std::vector<double>(problem.num_subregions, 1.0), problem.sub_width,
      problem.r_max(), /*headroom=*/1.0);
  std::vector<std::vector<double>> point_partitions(problem.num_points(),
                                                    coarse);

  const core::ClusterAssignment blocks =
      core::chunk_clustering(problem.num_points(), options_.block_size);

  core::RpKernelInput input;
  input.problem = &problem;
  input.clusters = &blocks;
  input.source = core::PartitionSource::kPerPoint;
  input.point_partitions = &point_partitions;

  core::RpKernelOutput phase1 = core::run_compute_rp_integral(device_, input);

  // Phase 2: globally adaptive pass over every non-converged interval.
  const core::FallbackOutput phase2 = core::run_adaptive_fallback(
      device_, problem, phase1.failed, phase1.integral, phase1.error,
      phase1.contributions);

  simt::KernelMetrics metrics = phase1.metrics;
  metrics += phase2.metrics;

  core::SolveResult result = core::detail::make_result(
      problem, std::move(phase1.integral), std::move(phase1.error),
      std::move(phase1.contributions), std::move(metrics));
  result.fallback_items = phase1.failed.size();
  result.kernel_intervals = phase1.intervals;
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace bd::baselines
