#pragma once
/// \file heuristic.hpp
/// Heuristic-RP kernel (paper ref [10]) — previously the fastest known GPU
/// implementation, which the paper's Predictive-RP is measured against.
/// Two heuristics reduce the Two-Phase algorithm's irregularity:
///
///  1. *Partition reuse / data locality*: each grid point starts from the
///     exact partition it used at the previous time step (patterns between
///     steps are loosely similar), so most intervals pass immediately;
///     intervals that fail are refined by the adaptive fallback and the
///     refinement is folded into the stored partition.
///  2. *Workload balance*: points are bucketed by the coarse size of their
///     partition (log2) before being chunked into thread blocks, so lanes
///     of a warp execute similar trip counts; row-major order within a
///     bucket preserves spatial locality.
///
/// Unlike Predictive-RP there is no learned model and no coarsening
/// estimate: reuse is strictly per-point history, refinement-only — the
/// partition converges onto (a superset of) what adaptive quadrature
/// needed, which is exactly the behaviour of [10].

#include <vector>

#include "core/solver.hpp"
#include "quad/partition_set.hpp"

namespace bd::baselines {

/// Options of the Heuristic baseline.
struct HeuristicOptions {
  std::uint32_t block_size = 128;   ///< threads per block
  bool workload_sort = true;        ///< heuristic 2 (off = row-major blocks)
};

class HeuristicSolver final : public core::RpSolver {
 public:
  explicit HeuristicSolver(simt::DeviceSpec device,
                           HeuristicOptions options = {})
      : device_(std::move(device)), options_(options) {}

  core::SolveResult solve(const core::RpProblem& problem) override;
  const char* name() const override { return "heuristic-rp"; }
  void reset() override { previous_partitions_.clear(); }

  /// Checkpoint the carried per-point partitions (heuristic 1's state).
  void save_state(util::BinaryWriter& out) const override;
  void load_state(util::BinaryReader& in) override;

 private:
  simt::DeviceSpec device_;
  HeuristicOptions options_;
  /// Per-point partitions carried between steps (heuristic 1).
  quad::PartitionSet previous_partitions_;
};

}  // namespace bd::baselines
