#include "beam/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bd::beam {

namespace {
PlaneMoments plane_moments(std::span<const double> x,
                           std::span<const double> p) {
  PlaneMoments m;
  const std::size_t n = x.size();
  if (n == 0) return m;
  for (std::size_t i = 0; i < n; ++i) {
    m.mean_position += x[i];
    m.mean_momentum += p[i];
  }
  m.mean_position /= static_cast<double>(n);
  m.mean_momentum /= static_cast<double>(n);
  double xx = 0.0, pp = 0.0, xp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - m.mean_position;
    const double dp = p[i] - m.mean_momentum;
    xx += dx * dx;
    pp += dp * dp;
    xp += dx * dp;
  }
  xx /= static_cast<double>(n);
  pp /= static_cast<double>(n);
  xp /= static_cast<double>(n);
  m.sigma_position = std::sqrt(xx);
  m.sigma_momentum = std::sqrt(pp);
  m.correlation = xp;
  const double det = xx * pp - xp * xp;
  m.emittance = det > 0.0 ? std::sqrt(det) : 0.0;
  return m;
}
}  // namespace

PlaneMoments longitudinal_moments(const ParticleSet& particles) {
  return plane_moments(particles.s(), particles.ps());
}

PlaneMoments transverse_moments(const ParticleSet& particles) {
  return plane_moments(particles.y(), particles.py());
}

std::vector<double> line_density(const ParticleSet& particles, double lo,
                                 double hi, std::size_t bins) {
  BD_CHECK(hi > lo && bins > 0);
  std::vector<double> density(bins, 0.0);
  const double width = (hi - lo) / static_cast<double>(bins);
  const double per_particle = particles.weight() / width;
  for (double s : particles.s()) {
    if (s < lo || s >= hi) continue;
    const auto bin = static_cast<std::size_t>((s - lo) / width);
    density[std::min(bin, bins - 1)] += per_particle;
  }
  return density;
}

std::vector<double> project_longitudinal(const Grid2D& grid) {
  const GridSpec& spec = grid.spec();
  std::vector<double> out(spec.nx, 0.0);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      out[ix] += grid.at(ix, iy) * spec.dy;
    }
  }
  return out;
}

std::vector<double> project_transverse(const Grid2D& grid) {
  const GridSpec& spec = grid.spec();
  std::vector<double> out(spec.ny, 0.0);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      out[iy] += grid.at(ix, iy) * spec.dx;
    }
  }
  return out;
}

double grid_charge(const Grid2D& rho) {
  const GridSpec& spec = rho.spec();
  return rho.sum() * spec.dx * spec.dy;
}

double fraction_in_interior(const ParticleSet& particles,
                            const GridSpec& spec) {
  if (particles.empty()) return 1.0;
  const double x_lo = spec.x_at(1);
  const double x_hi = spec.x_at(spec.nx - 2);
  const double y_lo = spec.y_at(1);
  const double y_hi = spec.y_at(spec.ny - 2);
  std::size_t inside = 0;
  const auto s = particles.s();
  const auto y = particles.y();
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (s[i] >= x_lo && s[i] <= x_hi && y[i] >= y_lo && y[i] <= y_hi) {
      ++inside;
    }
  }
  return static_cast<double>(inside) / static_cast<double>(particles.size());
}

}  // namespace bd::beam
