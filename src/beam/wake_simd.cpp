/// \file wake_simd.cpp
/// Batched (SoA) WakeIntegrand evaluation — see wake_simd.hpp for the
/// dispatch policy and the bitwise-identity contract with eval().
///
/// Structure of a batch:
///  1. Per-sample geometry pass (scalar): range test, x grid index, TSC
///     x-weights, time clamp + Lagrange weights, plane base pointers and
///     the radial-kernel pow — everything eval() recomputes per inner node
///     is computed once per sample here. Probe events are emitted lane by
///     lane with the same per-site sequences as sequential eval() calls
///     (flops totals are order-insensitive sums, so one count_flops per
///     sample carries the same information).
///  2. Inner 27-point accumulation: four samples wide through the AVX2
///     kernel when every lane is in range and in x-bounds and dispatch
///     allows, else the scalar reference loop per lane. Both run the exact
///     IEEE op sequence of eval(); the AVX2 kernel is compiled with a
///     per-function target attribute (no global -mavx2 needed) and
///     deliberately without "fma" in the target set, so the compiler
///     cannot contract the mul/add pairs into fused ops that would round
///     differently from the scalar reference.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "beam/grid.hpp"
#include "beam/history.hpp"
#include "beam/stencil.hpp"
#include "beam/wake.hpp"
#include "beam/wake_simd.hpp"
#include "quad/batch_eval.hpp"
#include "util/check.hpp"

#if BD_SIMD_X86
#include <immintrin.h>
#endif

namespace bd::beam {

simd::Level wake_batch_level() { return simd::active_level(); }

namespace {

constexpr std::size_t kW = quad::kBatchWidth;
constexpr std::size_t kMaxRows =
    static_cast<std::size_t>(kMaxInnerPoints) * kLoadsPerSample;

/// Geometry of one sample, hoisted out of the inner-node loop. Every field
/// is produced by the same expression the scalar path evaluates (per inner
/// node there), so consuming it yields the same bits.
struct LaneGeom {
  bool in_range = false;
  bool ix_ok = false;
  double wx[3] = {0.0, 0.0, 0.0};
  double l0 = 0.0, l1 = 0.0, l2 = 0.0;
  double kernel = 0.0;
  // Row pointers of every in-bounds inner node, in the scalar path's
  // (node, plane, row) order; 9 per node.
  const double* rows[kMaxRows];
  std::size_t num_rows = 0;
};

/// Scalar reference inner accumulation for one lane: the exact op sequence
/// of eval()'s inner loop, reading hoisted geometry. Always built; the
/// AVX2 kernel below must match it bitwise.
double lane_inner_scalar(const LaneGeom& g, const double* inner_w,
                         const double* inner_wy, const bool* iy_ok, int ic) {
  double inner = 0.0;
  std::size_t j = 0;
  for (int i = 0; i < ic; ++i) {
    double f = 0.0;
    if (g.ix_ok && iy_ok[i]) {
      const double* const* rr = g.rows + 9 * j;
      double fp[3];
      for (int p = 0; p < 3; ++p) {
        double acc = 0.0;
        for (int dy = 0; dy < 3; ++dy) {
          const double* row = rr[3 * p + dy];
          acc += inner_wy[3 * i + dy] *
                 (g.wx[0] * row[0] + g.wx[1] * row[1] + g.wx[2] * row[2]);
        }
        fp[p] = acc;
      }
      f = g.l0 * fp[0] + g.l1 * fp[1] + g.l2 * fp[2];
      ++j;
    }
    inner += inner_w[i] * f;
  }
  return inner;
}

#if BD_SIMD_X86
/// AVX2 inner accumulation across four lanes that are all in range and in
/// x-bounds (y-bounds are per-node and lane-independent, handled inside).
/// Each vector lane runs lane_inner_scalar's op sequence: _mm256_add_pd /
/// _mm256_mul_pd are lane-wise identical to scalar + and *, and with "fma"
/// absent from the target set no contraction can occur.
__attribute__((target("avx2"))) void inner_sums_avx2(
    const LaneGeom* g, const double* inner_w, const double* inner_wy,
    const bool* iy_ok, int ic, double amplitude, double* out) {
  const __m256d wx0 =
      _mm256_setr_pd(g[0].wx[0], g[1].wx[0], g[2].wx[0], g[3].wx[0]);
  const __m256d wx1 =
      _mm256_setr_pd(g[0].wx[1], g[1].wx[1], g[2].wx[1], g[3].wx[1]);
  const __m256d wx2 =
      _mm256_setr_pd(g[0].wx[2], g[1].wx[2], g[2].wx[2], g[3].wx[2]);
  const __m256d l0 = _mm256_setr_pd(g[0].l0, g[1].l0, g[2].l0, g[3].l0);
  const __m256d l1 = _mm256_setr_pd(g[0].l1, g[1].l1, g[2].l1, g[3].l1);
  const __m256d l2 = _mm256_setr_pd(g[0].l2, g[1].l2, g[2].l2, g[3].l2);
  const __m256d zero = _mm256_setzero_pd();
  __m256d inner = zero;
  std::size_t j = 0;
  for (int i = 0; i < ic; ++i) {
    const __m256d wi = _mm256_set1_pd(inner_w[i]);
    if (!iy_ok[i]) {
      // Scalar path does inner += w_i * 0.0 for out-of-bounds nodes; keep
      // the identical operation (w_i * 0.0 may be a signed zero).
      inner = _mm256_add_pd(inner, _mm256_mul_pd(wi, zero));
      continue;
    }
    __m256d fp[3];
    for (int p = 0; p < 3; ++p) {
      __m256d acc = zero;
      for (int dy = 0; dy < 3; ++dy) {
        const std::size_t r = 9 * j + 3 * static_cast<std::size_t>(p) +
                              static_cast<std::size_t>(dy);
        const double* ra = g[0].rows[r];
        const double* rb = g[1].rows[r];
        const double* rc = g[2].rows[r];
        const double* rd = g[3].rows[r];
        const __m256d e0 = _mm256_setr_pd(ra[0], rb[0], rc[0], rd[0]);
        const __m256d e1 = _mm256_setr_pd(ra[1], rb[1], rc[1], rd[1]);
        const __m256d e2 = _mm256_setr_pd(ra[2], rb[2], rc[2], rd[2]);
        // (wx0*e0 + wx1*e1) + wx2*e2, then acc += wy_dy * dot — the scalar
        // association order.
        const __m256d dot = _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(wx0, e0), _mm256_mul_pd(wx1, e1)),
            _mm256_mul_pd(wx2, e2));
        const __m256d wy = _mm256_set1_pd(inner_wy[3 * i + dy]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(wy, dot));
      }
      fp[p] = acc;
    }
    const __m256d f = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(l0, fp[0]), _mm256_mul_pd(l1, fp[1])),
        _mm256_mul_pd(l2, fp[2]));
    inner = _mm256_add_pd(inner, _mm256_mul_pd(wi, f));
    ++j;
  }
  const __m256d kern =
      _mm256_setr_pd(g[0].kernel, g[1].kernel, g[2].kernel, g[3].kernel);
  const __m256d amp = _mm256_set1_pd(amplitude);
  // amplitude * kernel * inner, left-associated like the scalar return.
  _mm256_storeu_pd(out, _mm256_mul_pd(_mm256_mul_pd(amp, kern), inner));
}
#endif  // BD_SIMD_X86

}  // namespace

void WakeIntegrand::eval_batch(const double* u, double* out, std::size_t n,
                               simt::LaneProbe& probe) const {
  BD_DCHECK(n <= kW);
  const GridSpec& spec = history_.spec();
  const int ic = inner_count_;
  const std::size_t nx = spec.nx;
  const std::int64_t nx_hi = static_cast<std::int64_t>(spec.nx) - 2;
  const bool* iy_ok = inner_iy_ok_.data();
  bool any_iy_ok = false;
  for (int i = 0; i < ic; ++i) any_iy_ok |= iy_ok[i];

  // Clamp bounds are per-history, not per-sample.
  const std::int64_t newest = history_.latest_step();
  const std::int64_t oldest =
      newest - static_cast<std::int64_t>(history_.depth()) + 1;

  LaneGeom g[kW];
  const void* addrs[kMaxRows];

  for (std::size_t k = 0; k < n; ++k) {
    LaneGeom& lane = g[k];
    const double s = s_point_ - u[k];
    const bool in_range =
        s >= spec.x0 - spec.dx && s <= spec.x_max() + spec.dx;
    lane.in_range = in_range;
    probe.branch(kWakeRangeSite, in_range);
    if (!in_range) {
      probe.count_flops(4);
      out[k] = 0.0;
      continue;
    }
    std::uint64_t flops = 4;
    const double gx = spec.gx(s);
    const auto ix = static_cast<std::int64_t>(std::lround(gx));
    lane.ix_ok = ix >= 1 && ix <= nx_hi;
    const double t_steps = static_cast<double>(step_) - u[k] / sub_width_;
    if (lane.ix_ok && any_iy_ok) {
      tsc_weights(gx - static_cast<double>(ix), lane.wx);
      std::int64_t b = static_cast<std::int64_t>(std::floor(t_steps));
      if (b > newest) b = newest;
      if (b - 2 < oldest) b = oldest + 2;
      BD_DCHECK(history_.has_step(b) && history_.has_step(b - 2));
      const double ut = t_steps - static_cast<double>(b);
      lane.l0 = 0.5 * (ut + 1.0) * (ut + 2.0);
      lane.l1 = -ut * (ut + 2.0);
      lane.l2 = 0.5 * ut * (ut + 1.0);
      const double* planes[3] = {history_.plane(b, channel_),
                                 history_.plane(b - 1, channel_),
                                 history_.plane(b - 2, channel_)};
      for (int i = 0; i < ic; ++i) {
        if (!iy_ok[i]) continue;
        const std::int64_t iy = inner_iy_[static_cast<std::size_t>(i)];
        for (int p = 0; p < 3; ++p) {
          const double* base =
              planes[p] + static_cast<std::size_t>(iy - 1) * nx +
              static_cast<std::size_t>(ix - 1);
          lane.rows[lane.num_rows++] = base;
          lane.rows[lane.num_rows++] = base + nx;
          lane.rows[lane.num_rows++] = base + 2 * nx;
        }
      }
    }
    // Per-node bounds branches in node order, then the row loads in the
    // scalar (node, plane, row) order — per-site sequences identical to
    // sequential eval() calls.
    for (int i = 0; i < ic; ++i) {
      const bool inside = lane.ix_ok && iy_ok[i];
      probe.branch(kStencilBoundsSite, inside);
      if (inside) flops += 12 + 10 + 3 * 18 + 5;
    }
    if (lane.num_rows != 0) {
      for (std::size_t q = 0; q < lane.num_rows; ++q) {
        addrs[q] = history_.probe_address(lane.rows[q]);
      }
      probe.load_run(kStencilRowSite, addrs, 3 * sizeof(double),
                     lane.num_rows);
    }
    flops += 2 * static_cast<std::uint64_t>(ic) + 12;
    probe.count_flops(flops);
    // Radial kernel: scalar per lane — there is no bitwise-matching vector
    // pow. Same compile-time-exponent dispatch as eval().
    const double base = u[k] + regularization_;
    switch (pow_kind_) {
      case PowKind::kLongitudinal:
        lane.kernel = std::pow(base, kLongitudinalKernelPower);
        break;
      case PowKind::kTransverse:
        lane.kernel = std::pow(base, kTransverseKernelPower);
        break;
      default:
        lane.kernel = std::pow(base, kernel_power_);
        break;
    }
  }

#if BD_SIMD_X86
  if (n == kW && simd::active_level() == simd::Level::kAvx2 &&
      g[0].in_range && g[0].ix_ok && g[1].in_range && g[1].ix_ok &&
      g[2].in_range && g[2].ix_ok && g[3].in_range && g[3].ix_ok) {
    inner_sums_avx2(g, inner_w_.data(), inner_wy_.data(), iy_ok, ic,
                    amplitude_, out);
    return;
  }
#endif
  for (std::size_t k = 0; k < n; ++k) {
    if (!g[k].in_range) continue;  // out[k] already 0.0
    const double inner =
        lane_inner_scalar(g[k], inner_w_.data(), inner_wy_.data(), iy_ok, ic);
    out[k] = amplitude_ * g[k].kernel * inner;
  }
}

}  // namespace bd::beam
