#pragma once
/// \file history.hpp
/// Ring buffer of moment grids over past time steps — the paper's list D of
/// 2-D data grids "stored linearly on the device memory". A single flat
/// allocation backs all slots so the SIMT cache model sees stable,
/// realistic addresses (reuse across lanes and across time steps).

#include <cstdint>
#include <span>
#include <vector>

#include "beam/grid.hpp"

namespace bd::util {
class BinaryWriter;
class BinaryReader;
}  // namespace bd::util

namespace bd::beam {

/// Moment channel indices within a history slot.
enum MomentChannel : std::uint32_t {
  kChannelRho = 0,      ///< deposited charge density
  kChannelDrhoDs = 1,   ///< longitudinal density gradient (current-like)
  kNumChannels = 2,
};

/// Fixed-depth ring of per-step moment grids.
class GridHistory {
 public:
  /// \param depth number of past steps retained; must cover κ+3 so all
  ///        radial subregions can interpolate in time.
  GridHistory(const GridSpec& spec, std::uint32_t depth);

  const GridSpec& spec() const { return spec_; }
  std::uint32_t depth() const { return depth_; }

  /// Steps currently retrievable: (latest_step - depth, latest_step].
  std::int64_t latest_step() const { return latest_step_; }
  bool has_step(std::int64_t step) const;

  /// Copy the given channel grids in as the data for step `step`. Steps
  /// must be pushed in increasing order (gaps are not allowed).
  void push_step(std::int64_t step, const Grid2D& rho, const Grid2D& drho_ds);

  /// Convenience for warm-up: pre-fill every slot (steps
  /// first_step-depth+1 .. first_step) with the same grids — the beam
  /// "arrived in steady state".
  void fill_all(std::int64_t latest_step, const Grid2D& rho,
                const Grid2D& drho_ds);

  /// Base pointer of one channel plane for a retained step.
  const double* plane(std::int64_t step, MomentChannel channel) const;

  /// Pointer to a grid row within a plane (iy row, starting at ix).
  const double* row_ptr(std::int64_t step, MomentChannel channel,
                        std::uint32_t ix, std::uint32_t iy) const;

  /// Stable "device" address of a buffer location for the SIMT cache
  /// replay: a fixed line-aligned base plus the element's offset within
  /// the ring. Identically-configured histories map a location to the
  /// same address no matter where the host allocator (or which thread's
  /// arena) placed the buffer — so modeled coalescing/cache metrics are
  /// bit-identical across Simulation objects, which the fleet's
  /// fleet-vs-solo determinism contract relies on.
  const void* probe_address(const double* element) const {
    constexpr std::uintptr_t kDeviceBase = 0x4000'0000;  // 128B-aligned
    return reinterpret_cast<const void*>(
        kDeviceBase +
        sizeof(double) *
            static_cast<std::uintptr_t>(element - buffer_.data()));
  }

  /// Node value accessor (bounds-checked in debug builds).
  double value(std::int64_t step, MomentChannel channel, std::uint32_t ix,
               std::uint32_t iy) const;

  /// Total buffer footprint in bytes (the "device memory" the kernels see).
  std::size_t footprint_bytes() const { return buffer_.size() * sizeof(double); }

  /// Checkpoint the ring (latest step + every retained plane).
  void save(util::BinaryWriter& out) const;

  /// Restore a checkpointed ring in place. The stored depth and plane size
  /// must match this instance; the backing buffer is not reallocated, so
  /// the SIMT cache model keeps seeing the same addresses after a restore.
  void load(util::BinaryReader& in);

 private:
  std::size_t slot_offset(std::int64_t step, MomentChannel channel) const;

  GridSpec spec_;
  std::uint32_t depth_;
  std::size_t plane_nodes_;
  std::int64_t latest_step_ = -1;
  bool initialized_ = false;
  std::vector<double> buffer_;  // depth * channels * ny * nx
};

}  // namespace bd::beam
