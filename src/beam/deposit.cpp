#include "beam/deposit.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace bd::beam {

namespace {

/// Deposit one particle with TSC weights; returns dropped charge.
inline double deposit_tsc(Grid2D& rho, const GridSpec& spec, double x,
                          double y, double value) {
  const double gx = spec.gx(x);
  const double gy = spec.gy(y);
  const auto ix = static_cast<std::int64_t>(std::lround(gx));
  const auto iy = static_cast<std::int64_t>(std::lround(gy));
  if (ix < 1 || iy < 1 || ix > spec.nx - 2 || iy > spec.ny - 2) return value;
  double wx[3], wy[3];
  tsc_weights(gx - static_cast<double>(ix), wx);
  tsc_weights(gy - static_cast<double>(iy), wy);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      rho.at(static_cast<std::uint32_t>(ix + dx),
             static_cast<std::uint32_t>(iy + dy)) +=
          value * wx[dx + 1] * wy[dy + 1];
    }
  }
  return 0.0;
}

inline double deposit_cic(Grid2D& rho, const GridSpec& spec, double x,
                          double y, double value) {
  const double gx = spec.gx(x);
  const double gy = spec.gy(y);
  if (gx < 0.0 || gy < 0.0 || gx > spec.nx - 1 || gy > spec.ny - 1) {
    return value;
  }
  const auto ix = static_cast<std::uint32_t>(
      std::min<double>(gx, spec.nx - 2));
  const auto iy = static_cast<std::uint32_t>(
      std::min<double>(gy, spec.ny - 2));
  const double fx = gx - ix;
  const double fy = gy - iy;
  rho.at(ix, iy) += value * (1 - fx) * (1 - fy);
  rho.at(ix + 1, iy) += value * fx * (1 - fy);
  rho.at(ix, iy + 1) += value * (1 - fx) * fy;
  rho.at(ix + 1, iy + 1) += value * fx * fy;
  return 0.0;
}

inline double deposit_ngp(Grid2D& rho, const GridSpec& spec, double x,
                          double y, double value) {
  const auto ix = static_cast<std::int64_t>(std::lround(spec.gx(x)));
  const auto iy = static_cast<std::int64_t>(std::lround(spec.gy(y)));
  if (ix < 0 || iy < 0 || ix > spec.nx - 1 || iy > spec.ny - 1) return value;
  rho.at(static_cast<std::uint32_t>(ix), static_cast<std::uint32_t>(iy)) +=
      value;
  return 0.0;
}

/// Deposit particles [begin, end) into `rho` in particle order.
double deposit_range(const ParticleSet& particles, DepositScheme scheme,
                     const GridSpec& spec, double density, std::size_t begin,
                     std::size_t end, Grid2D& rho) {
  const auto s = particles.s();
  const auto y = particles.y();
  double dropped = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    switch (scheme) {
      case DepositScheme::kNGP:
        dropped += deposit_ngp(rho, spec, s[i], y[i], density);
        break;
      case DepositScheme::kCIC:
        dropped += deposit_cic(rho, spec, s[i], y[i], density);
        break;
      case DepositScheme::kTSC:
        dropped += deposit_tsc(rho, spec, s[i], y[i], density);
        break;
    }
  }
  return dropped;
}

/// Particles per parallel deposition chunk. Fixed (not derived from the
/// thread count) so the chunk boundaries — and therefore the floating-point
/// summation tree — are identical for any BD_NUM_THREADS.
constexpr std::size_t kDepositChunk = 16384;

}  // namespace

double deposit(const ParticleSet& particles, DepositScheme scheme,
               Grid2D& rho) {
  const GridSpec& spec = rho.spec();
  BD_CHECK(spec.nodes() > 0);
  const double density = particles.weight() / (spec.dx * spec.dy);
  const std::size_t count = particles.size();

  const std::size_t num_chunks = (count + kDepositChunk - 1) / kDepositChunk;
  if (num_chunks <= 1) {
    return deposit_range(particles, scheme, spec, density, 0, count, rho);
  }

  // Scatter with conflicts: chunks deposit into private partial grids in
  // parallel, then the partials are reduced into `rho` serially in chunk
  // order. Chunking is fixed, so the result is bit-identical for any
  // thread count (though the partial-sum tree differs from a single serial
  // pass by FP rounding).
  std::vector<Grid2D> partial(num_chunks, Grid2D(spec));
  std::vector<double> dropped_per_chunk(num_chunks, 0.0);
  util::parallel_for(0, num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * kDepositChunk;
    const std::size_t end = std::min(count, begin + kDepositChunk);
    dropped_per_chunk[c] = deposit_range(particles, scheme, spec, density,
                                         begin, end, partial[c]);
  });

  double dropped = 0.0;
  auto rho_data = rho.data();
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const auto chunk_data = partial[c].data();
    for (std::size_t n = 0; n < rho_data.size(); ++n) {
      rho_data[n] += chunk_data[n];
    }
    dropped += dropped_per_chunk[c];
  }
  return dropped;
}

void longitudinal_gradient(const Grid2D& rho, Grid2D& out) {
  const GridSpec& spec = rho.spec();
  BD_CHECK(out.spec() == spec);
  const double inv2dx = 1.0 / (2.0 * spec.dx);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    out.at(0, iy) = (rho.at(1, iy) - rho.at(0, iy)) * 2.0 * inv2dx;
    for (std::uint32_t ix = 1; ix + 1 < spec.nx; ++ix) {
      out.at(ix, iy) = (rho.at(ix + 1, iy) - rho.at(ix - 1, iy)) * inv2dx;
    }
    out.at(spec.nx - 1, iy) =
        (rho.at(spec.nx - 1, iy) - rho.at(spec.nx - 2, iy)) * 2.0 * inv2dx;
  }
}

void transverse_gradient(const Grid2D& rho, Grid2D& out) {
  const GridSpec& spec = rho.spec();
  BD_CHECK(out.spec() == spec);
  const double inv2dy = 1.0 / (2.0 * spec.dy);
  for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
    out.at(ix, 0) = (rho.at(ix, 1) - rho.at(ix, 0)) * 2.0 * inv2dy;
    for (std::uint32_t iy = 1; iy + 1 < spec.ny; ++iy) {
      out.at(ix, iy) = (rho.at(ix, iy + 1) - rho.at(ix, iy - 1)) * inv2dy;
    }
    out.at(ix, spec.ny - 1) =
        (rho.at(ix, spec.ny - 1) - rho.at(ix, spec.ny - 2)) * 2.0 * inv2dy;
  }
}

}  // namespace bd::beam
