#pragma once
/// \file wake_simd.hpp
/// Batched (SoA) evaluation of the wake integrand — the dispatch surface of
/// WakeIntegrand::eval_batch, whose kernels live in wake_simd.cpp.
///
/// The batched path restructures eval()'s per-sample work into structure-
/// of-arrays form: everything the 27-point stencil recomputes per inner
/// node but that only depends on the integrand (y index, y bounds, TSC
/// y-weights) is precomputed at construction, everything that only depends
/// on the sample u (x index, TSC x-weights, time clamp, Lagrange weights,
/// radial kernel) is computed once per sample instead of once per inner
/// node, and the remaining 27-point accumulation — the actual flops — runs
/// four samples wide through an AVX2 kernel when dispatch allows.
///
/// Identity contract: the batched path is bitwise identical to sequential
/// eval() calls at every dispatch level. Vector lanes execute the same
/// IEEE-754 operation sequence as the scalar reference (lane-wise add/mul
/// are exact matches; FMA contraction is never used because a fused
/// multiply-add rounds once where the reference rounds twice), `std::pow`
/// and `std::lround` stay scalar per lane, and probe events are emitted
/// with the same per-site sequences the scalar path produces.

#include "util/simd.hpp"

namespace bd::beam {

/// The SIMD level WakeIntegrand::eval_batch dispatches to right now —
/// simd::active_level(), i.e. compile-time support ∧ runtime CPU support ∧
/// not disabled via BD_SIMD=off. Exposed so solvers can record it as
/// telemetry and tests/benches can assert which path they exercised.
simd::Level wake_batch_level();

}  // namespace bd::beam
