#include "beam/grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bd::beam {

GridSpec make_centered_grid(std::uint32_t nx, std::uint32_t ny,
                            double half_extent_x, double half_extent_y) {
  BD_CHECK(nx >= 2 && ny >= 2);
  BD_CHECK(half_extent_x > 0.0 && half_extent_y > 0.0);
  GridSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  spec.x0 = -half_extent_x;
  spec.y0 = -half_extent_y;
  spec.dx = 2.0 * half_extent_x / (nx - 1);
  spec.dy = 2.0 * half_extent_y / (ny - 1);
  return spec;
}

void Grid2D::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Grid2D::bilinear(double x, double y) const {
  const double gx = spec_.gx(x);
  const double gy = spec_.gy(y);
  if (gx < 0.0 || gy < 0.0 || gx > spec_.nx - 1 || gy > spec_.ny - 1) {
    return 0.0;
  }
  const auto ix = static_cast<std::uint32_t>(
      std::min<double>(gx, spec_.nx - 2));
  const auto iy = static_cast<std::uint32_t>(
      std::min<double>(gy, spec_.ny - 2));
  const double fx = gx - ix;
  const double fy = gy - iy;
  return (1 - fx) * (1 - fy) * at(ix, iy) + fx * (1 - fy) * at(ix + 1, iy) +
         (1 - fx) * fy * at(ix, iy + 1) + fx * fy * at(ix + 1, iy + 1);
}

double Grid2D::sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Grid2D::max_abs() const {
  double worst = 0.0;
  for (double v : data_) worst = std::max(worst, std::abs(v));
  return worst;
}

}  // namespace bd::beam
