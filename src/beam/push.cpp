#include "beam/push.hpp"

#include "util/check.hpp"

namespace bd::beam {

void leapfrog_push(ParticleSet& particles, std::span<const double> force_s,
                   std::span<const double> force_y, double dt) {
  const std::size_t n = particles.size();
  BD_CHECK(force_s.empty() || force_s.size() == n);
  BD_CHECK(force_y.empty() || force_y.size() == n);
  auto s = particles.s();
  auto y = particles.y();
  auto ps = particles.ps();
  auto py = particles.py();
  for (std::size_t i = 0; i < n; ++i) {
    if (!force_s.empty()) ps[i] += force_s[i] * dt;
    if (!force_y.empty()) py[i] += force_y[i] * dt;
    s[i] += ps[i] * dt;
    y[i] += py[i] * dt;
  }
}

}  // namespace bd::beam
