#pragma once
/// \file push.hpp
/// Step 4 of the simulation loop: advance particles by Δt with the
/// leap-frog (kick–drift) scheme.

#include <span>

#include "beam/particles.hpp"

namespace bd::beam {

/// Leap-frog push: momenta are kicked by the gathered forces, then
/// positions drift with the updated momenta.
///   p ← p + F·Δt ;  x ← x + p·Δt
/// Pass empty spans to skip a force component (e.g. longitudinal-only
/// performance runs).
void leapfrog_push(ParticleSet& particles, std::span<const double> force_s,
                   std::span<const double> force_y, double dt);

/// Rigid-bunch "push": the validation case — nothing moves in the
/// co-moving frame. Provided for symmetry and to document intent.
inline void rigid_push(ParticleSet& /*particles*/, double /*dt*/) {}

}  // namespace bd::beam
