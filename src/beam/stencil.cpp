#include "beam/stencil.hpp"

#include <cmath>

#include "util/check.hpp"

namespace bd::beam {

namespace {
constexpr std::uint32_t kBoundsSite = kStencilBoundsSite;
constexpr std::uint32_t kRowSite = kStencilRowSite;

/// TSC 3×3 spatial sample on one time plane. Caller has validated bounds.
inline double sample_plane(const GridHistory& history, MomentChannel channel,
                           std::int64_t step, std::uint32_t ix,
                           std::uint32_t iy, const double wx[3],
                           const double wy[3], simt::LaneProbe& probe) {
  double acc = 0.0;
  for (int dy = -1; dy <= 1; ++dy) {
    const double* row =
        history.row_ptr(step, channel, ix - 1,
                        static_cast<std::uint32_t>(iy + dy));
    probe.load(kRowSite, history.probe_address(row), 3 * sizeof(double));
    const double wrow = wy[dy + 1];
    acc += wrow * (wx[0] * row[0] + wx[1] * row[1] + wx[2] * row[2]);
  }
  probe.count_flops(18);
  return acc;
}
}  // namespace

double sample_spacetime(const GridHistory& history, MomentChannel channel,
                        double x, double y, double t_steps,
                        simt::LaneProbe& probe) {
  const GridSpec& spec = history.spec();
  const double gx = spec.gx(x);
  const double gy = spec.gy(y);
  const auto ix = static_cast<std::int64_t>(std::lround(gx));
  const auto iy = static_cast<std::int64_t>(std::lround(gy));

  const bool inside = ix >= 1 && iy >= 1 &&
                      ix <= static_cast<std::int64_t>(spec.nx) - 2 &&
                      iy <= static_cast<std::int64_t>(spec.ny) - 2;
  probe.branch(kBoundsSite, inside);
  if (!inside) return 0.0;

  double wx[3], wy[3];
  tsc_weights(gx - static_cast<double>(ix), wx);
  tsc_weights(gy - static_cast<double>(iy), wy);
  probe.count_flops(12);

  // Backward quadratic time interpolation through b, b-1, b-2.
  std::int64_t b = static_cast<std::int64_t>(std::floor(t_steps));
  // Clamp so all three planes are retained (warm-up fills the deep end).
  const std::int64_t newest = history.latest_step();
  const std::int64_t oldest =
      newest - static_cast<std::int64_t>(history.depth()) + 1;
  if (b > newest) b = newest;
  if (b - 2 < oldest) b = oldest + 2;
  BD_DCHECK(history.has_step(b) && history.has_step(b - 2));
  const double u = t_steps - static_cast<double>(b);  // in [0, 1) typically
  // Lagrange weights at nodes 0, -1, -2 evaluated at u.
  const double l0 = 0.5 * (u + 1.0) * (u + 2.0);
  const double l1 = -u * (u + 2.0);
  const double l2 = 0.5 * u * (u + 1.0);
  probe.count_flops(10);

  const auto uix = static_cast<std::uint32_t>(ix);
  const auto uiy = static_cast<std::uint32_t>(iy);
  const double f0 =
      sample_plane(history, channel, b, uix, uiy, wx, wy, probe);
  const double f1 =
      sample_plane(history, channel, b - 1, uix, uiy, wx, wy, probe);
  const double f2 =
      sample_plane(history, channel, b - 2, uix, uiy, wx, wy, probe);
  probe.count_flops(5);
  return l0 * f0 + l1 * f1 + l2 * f2;
}

double sample_spatial(const GridHistory& history, MomentChannel channel,
                      std::int64_t step, double x, double y,
                      simt::LaneProbe& probe) {
  const GridSpec& spec = history.spec();
  const double gx = spec.gx(x);
  const double gy = spec.gy(y);
  const auto ix = static_cast<std::int64_t>(std::lround(gx));
  const auto iy = static_cast<std::int64_t>(std::lround(gy));
  const bool inside = ix >= 1 && iy >= 1 &&
                      ix <= static_cast<std::int64_t>(spec.nx) - 2 &&
                      iy <= static_cast<std::int64_t>(spec.ny) - 2;
  probe.branch(kBoundsSite, inside);
  if (!inside) return 0.0;
  double wx[3], wy[3];
  tsc_weights(gx - static_cast<double>(ix), wx);
  tsc_weights(gy - static_cast<double>(iy), wy);
  probe.count_flops(12);
  return sample_plane(history, channel, step, static_cast<std::uint32_t>(ix),
                      static_cast<std::uint32_t>(iy), wx, wy, probe);
}

}  // namespace bd::beam
