#include "beam/bunch.hpp"

#include "util/check.hpp"

namespace bd::beam {

ParticleSet sample_gaussian_bunch(std::size_t count, const BeamParams& params,
                                  util::Rng& rng, double momentum_spread) {
  BD_CHECK(count > 0);
  BD_CHECK(params.sigma_s > 0.0 && params.sigma_y > 0.0);
  ParticleSet particles(count);
  auto s = particles.s();
  auto y = particles.y();
  auto ps = particles.ps();
  auto py = particles.py();
  for (std::size_t i = 0; i < count; ++i) {
    s[i] = rng.normal(0.0, params.sigma_s);
    y[i] = rng.normal(0.0, params.sigma_y);
    if (momentum_spread > 0.0) {
      ps[i] = rng.normal(0.0, momentum_spread * params.sigma_s);
      py[i] = rng.normal(0.0, momentum_spread * params.sigma_y);
    }
  }
  particles.set_weight(params.charge / static_cast<double>(count));
  return particles;
}

ParticleSet sample_rigid_line_bunch(std::size_t count,
                                    const BeamParams& params,
                                    util::Rng& rng) {
  BD_CHECK(count > 0);
  ParticleSet particles(count);
  auto s = particles.s();
  for (std::size_t i = 0; i < count; ++i) {
    s[i] = rng.normal(0.0, params.sigma_s);
  }
  particles.set_weight(params.charge / static_cast<double>(count));
  return particles;
}

}  // namespace bd::beam
