#pragma once
/// \file particles.hpp
/// Structure-of-arrays macro-particle container. Coordinates are the
/// co-moving longitudinal deviation s and the transverse offset y (the 2-D
/// plane of the bend); momenta are the normalized conjugates.

#include <cstddef>
#include <span>
#include <vector>

namespace bd::beam {

/// SoA particle set. All arrays always share the same length.
class ParticleSet {
 public:
  ParticleSet() = default;
  explicit ParticleSet(std::size_t count) { resize(count); }

  void resize(std::size_t count);
  std::size_t size() const { return s_.size(); }
  bool empty() const { return s_.empty(); }

  std::span<double> s() { return s_; }
  std::span<double> y() { return y_; }
  std::span<double> ps() { return ps_; }
  std::span<double> py() { return py_; }
  std::span<const double> s() const { return s_; }
  std::span<const double> y() const { return y_; }
  std::span<const double> ps() const { return ps_; }
  std::span<const double> py() const { return py_; }

  /// Per-macro-particle charge weight (total charge / N).
  double weight() const { return weight_; }
  void set_weight(double w) { weight_ = w; }

  /// First/second moments of the longitudinal coordinate (diagnostics).
  double mean_s() const;
  double rms_s() const;
  double mean_y() const;
  double rms_y() const;

 private:
  std::vector<double> s_, y_, ps_, py_;
  double weight_ = 1.0;
};

}  // namespace bd::beam
