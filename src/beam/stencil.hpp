#pragma once
/// \file stencil.hpp
/// The 27-point space–time interpolation of the rp-integrand (paper §II-A:
/// "f(p) is approximated using 27 neighboring points from the data grids
/// D_{i-1}, D_i, D_{i+1}"): a 3×3 TSC spatial stencil on each of three
/// consecutive history grids, combined by quadratic (backward-Lagrange)
/// interpolation in time. Every grid row touched is reported to the
/// LaneProbe as one global load (3 contiguous doubles), so the SIMT model
/// sees 9 loads per sample — 3 rows × 3 time planes.

#include "beam/history.hpp"
#include "simt/probe.hpp"

namespace bd::beam {

/// Interpolate moment `channel` at physical position (x, y) and continuous
/// time `t_steps` (in units of the simulation step). Time interpolation is
/// quadratic through steps b, b-1, b-2 with b = floor(t_steps) — the grids
/// D_{k-j-1}, D_{k-j-2}, D_{k-j-3} the paper prescribes for subregion S_j.
/// Returns 0 without loads when the spatial stencil would leave the grid
/// (reported as a branch at a dedicated site).
double sample_spacetime(const GridHistory& history, MomentChannel channel,
                        double x, double y, double t_steps,
                        simt::LaneProbe& probe);

/// Spatial-only TSC sample of one retained step (used by tests and by the
/// force gather).
double sample_spatial(const GridHistory& history, MomentChannel channel,
                      std::int64_t step, double x, double y,
                      simt::LaneProbe& probe);

/// Probe sites the space–time stencil reports at. Public because the
/// batched wake path (wake_simd.cpp) must emit the identical event stream
/// from the identical sites.
inline constexpr std::uint32_t kStencilBoundsSite =
    simt::site_id("beam/stencil/bounds");
inline constexpr std::uint32_t kStencilRowSite =
    simt::site_id("beam/stencil/row");

/// Number of global loads one in-bounds space–time sample issues.
inline constexpr int kLoadsPerSample = 9;

/// Number of grid values one in-bounds space–time sample reads.
inline constexpr int kPointsPerSample = 27;

}  // namespace bd::beam
