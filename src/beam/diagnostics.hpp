#pragma once
/// \file diagnostics.hpp
/// Beam diagnostics: bunch moments, emittance, line-density projections
/// and grid↔particle consistency measures — the quantities accelerator
/// simulations report per step alongside the fields.

#include <cstdint>
#include <span>
#include <vector>

#include "beam/grid.hpp"
#include "beam/particles.hpp"

namespace bd::beam {

/// Second-moment summary of a bunch in one plane.
struct PlaneMoments {
  double mean_position = 0.0;
  double mean_momentum = 0.0;
  double sigma_position = 0.0;   ///< rms size
  double sigma_momentum = 0.0;   ///< rms momentum spread
  double correlation = 0.0;      ///< <x·p> − <x><p>
  /// rms emittance: sqrt(<x²><p²> − <x·p>²) with centered moments.
  double emittance = 0.0;
};

/// Moments of the longitudinal (s, ps) plane.
PlaneMoments longitudinal_moments(const ParticleSet& particles);

/// Moments of the transverse (y, py) plane.
PlaneMoments transverse_moments(const ParticleSet& particles);

/// Histogram the longitudinal line density λ(s) onto `bins` equal bins
/// over [lo, hi]; each entry is charge per unit length.
std::vector<double> line_density(const ParticleSet& particles, double lo,
                                 double hi, std::size_t bins);

/// Project a 2-D grid onto its s axis: out[ix] = Σ_iy grid(ix,iy) · dy.
std::vector<double> project_longitudinal(const Grid2D& grid);

/// Project a 2-D grid onto its y axis: out[iy] = Σ_ix grid(ix,iy) · dx.
std::vector<double> project_transverse(const Grid2D& grid);

/// Total charge represented by a deposited density grid (∫ρ dA).
double grid_charge(const Grid2D& rho);

/// Fraction of particles inside the grid's interpolable interior
/// (TSC needs one guard node on each side).
double fraction_in_interior(const ParticleSet& particles,
                            const GridSpec& spec);

}  // namespace bd::beam
