#pragma once
/// \file force.hpp
/// Step 3 of the simulation loop: interpolate self-forces from the
/// computed force/potential grids back to the particles.

#include <span>

#include "beam/grid.hpp"
#include "beam/particles.hpp"

namespace bd::beam {

/// Gather the grid field at each particle position with TSC (quadratic)
/// interpolation, consistent with the deposition order. Particles outside
/// the interpolable region receive 0.
/// `out` must have particles.size() entries.
void gather_forces(const Grid2D& field, const ParticleSet& particles,
                   std::span<double> out);

/// TSC interpolation of a grid at one physical point (0 outside).
double interpolate_tsc(const Grid2D& field, double x, double y);

}  // namespace bd::beam
