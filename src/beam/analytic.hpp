#pragma once
/// \file analytic.hpp
/// Continuum analytic reference for the rigid Gaussian bunch — the "exact
/// analytical results" of the paper's validation (§V-A). For the separable
/// continuum density ρ(s, y) = λ_σs(s)·g_σy(y), the effective force
/// factorizes into a 1-D radial wake integral (computed here to 1e-12 by
/// adaptive Gauss quadrature; the Gaussian-convolution transverse factor is
/// closed-form).

#include "beam/units.hpp"
#include "beam/wake.hpp"

namespace bd::beam {

/// Gaussian pdf value.
double gaussian_pdf(double x, double sigma);

/// d/dx of the Gaussian pdf.
double gaussian_pdf_prime(double x, double sigma);

/// Radial wake factor W(s) = ∫₀ᴿ (u+u0)^p q(s-u) du, where q = λ' for the
/// gradient channel and q = λ for the density channel.
double analytic_radial_factor(double s, const WakeModel& model,
                              const BeamParams& params, double r_max,
                              double abs_tol = 1e-12);

/// Transverse factor T(y): the coupling kernel convolved with the bunch's
/// transverse profile — a Gaussian (or its derivative) of width
/// sqrt(σ_c² + σ_y²), in closed form (full, un-windowed convolution).
double analytic_transverse_factor(double y, const WakeModel& model,
                                  const BeamParams& params);

/// Transverse factor restricted to the integrand's finite inner window
/// [y - w, y + w] (w = inner_halfwidth_sigmas·σ_c) — the operator the
/// kernels actually evaluate. Computed by high-order quadrature to
/// `abs_tol`.
double analytic_transverse_factor_windowed(double y, const WakeModel& model,
                                           const BeamParams& params,
                                           double abs_tol = 1e-12);

/// Full continuum force F(s, y) = amplitude · W(s) · T(y) for the given
/// model (matches the WakeIntegrand's value in the continuum limit).
double analytic_force(double s, double y, const WakeModel& model,
                      const BeamParams& params, double r_max,
                      double abs_tol = 1e-12);

}  // namespace bd::beam
