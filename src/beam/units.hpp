#pragma once
/// \file units.hpp
/// Normalized unit system and the physical setup of the validation case.
///
/// The simulation works in bunch-normalized units: c = 1, the longitudinal
/// rms bunch size σ_s = 1, and time is measured so that one radial
/// subregion S_j of the rp-integral spans exactly c·Δt. The LCLS-bend
/// validation parameters of the paper (R0 = 25.13 m, θ_b = 11.4°,
/// σ_s = 50 µm, Q = 1 nC) fix the conversion factors recorded here for
/// reporting; all numerics run in normalized units.

namespace bd::beam {

/// Physical constants / conversions for the LCLS bend validation case.
struct LclsBend {
  double bend_radius_m = 25.13;     ///< R0
  double bend_angle_deg = 11.4;     ///< θ_b
  double sigma_s_m = 50e-6;         ///< longitudinal rms bunch size
  double emittance_nm = 1.0;        ///< transverse emittance
  double charge_nC = 1.0;           ///< total bunch charge Q
};

/// Normalized model parameters shared by samplers, integrands and the
/// analytic reference.
struct BeamParams {
  double sigma_s = 1.0;     ///< longitudinal rms size (normalization)
  double sigma_y = 1.0;     ///< transverse rms size, in σ_s units
  double charge = 1.0;      ///< total normalized charge
  double beta = 0.999;      ///< rigid drift velocity (c = 1)
};

}  // namespace bd::beam
