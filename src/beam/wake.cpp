#include "beam/wake.hpp"

#include <cmath>

#include "beam/stencil.hpp"
#include "quad/gauss.hpp"
#include "quad/newton_cotes.hpp"
#include "util/check.hpp"

namespace bd::beam {

namespace {
constexpr std::uint32_t kRangeSite = simt::site_id("beam/wake/s-range");
}  // namespace

WakeModel WakeModel::longitudinal() { return WakeModel{}; }

WakeModel WakeModel::transverse() {
  WakeModel m;
  m.kernel_power = kTransverseKernelPower;
  m.coupling_derivative = true;
  m.channel = kChannelRho;
  return m;
}

WakeIntegrand::WakeIntegrand(const GridHistory& history,
                             const WakeModel& model, double s_point,
                             double y_point, std::int64_t step,
                             double sub_width)
    : history_(history),
      amplitude_(model.amplitude),
      kernel_power_(model.kernel_power),
      regularization_(model.regularization),
      channel_(model.channel),
      s_point_(s_point),
      y_point_(y_point),
      step_(step),
      sub_width_(sub_width) {
  BD_CHECK(sub_width > 0.0);
  BD_CHECK(model.inner_points >= 2 && model.inner_points <= kMaxInnerPoints);
  pow_kind_ = model.kernel_power == kLongitudinalKernelPower
                  ? PowKind::kLongitudinal
                  : model.kernel_power == kTransverseKernelPower
                        ? PowKind::kTransverse
                        : PowKind::kGeneric;
  const double w = model.inner_halfwidth_sigmas * model.coupling_sigma;
  inner_lo_ = y_point - w;
  inner_width_ = 2.0 * w;
  inner_count_ = model.inner_points;
  if (model.inner_rule == InnerRule::kNewtonCotes) {
    const auto nc = quad::newton_cotes_weights(model.inner_points);
    for (int i = 0; i < model.inner_points; ++i) {
      inner_y_[static_cast<std::size_t>(i)] =
          inner_lo_ + inner_width_ * static_cast<double>(i) /
                          (model.inner_points - 1);
      inner_w_[static_cast<std::size_t>(i)] =
          nc[static_cast<std::size_t>(i)] * inner_width_;
    }
  } else {
    const quad::GaussRule rule = quad::gauss_legendre(model.inner_points);
    for (int i = 0; i < model.inner_points; ++i) {
      inner_y_[static_cast<std::size_t>(i)] =
          y_point + w * rule.nodes[static_cast<std::size_t>(i)];
      inner_w_[static_cast<std::size_t>(i)] =
          rule.weights[static_cast<std::size_t>(i)] * w;
    }
  }
  // Fold the (fixed per grid point) coupling factor into the weights. The
  // Gaussian normalization σ√2π and σ² are hoisted out of the node loop —
  // same expressions, evaluated once.
  const double sigma = model.coupling_sigma;
  const double norm = sigma * std::sqrt(2.0 * M_PI);
  const double sigma_sq = sigma * sigma;
  for (int i = 0; i < model.inner_points; ++i) {
    const double delta = y_point - inner_y_[static_cast<std::size_t>(i)];
    const double z = delta / sigma;
    const double kernel = std::exp(-0.5 * z * z) / norm;
    const double coupling =
        model.coupling_derivative ? -delta / sigma_sq * kernel : kernel;
    inner_w_[static_cast<std::size_t>(i)] *= coupling;
  }
  // Hoisted stencil geometry for the batched path (wake_simd.cpp). The
  // inner nodes are fixed per integrand, so the per-node y index, bounds
  // flag and TSC weights sample_spacetime recomputes on every sample can
  // be evaluated once here — same expressions, so same bits.
  const GridSpec& spec = history.spec();
  for (int i = 0; i < model.inner_points; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double gy = spec.gy(inner_y_[idx]);
    const auto iy = static_cast<std::int64_t>(std::lround(gy));
    inner_iy_[idx] = iy;
    inner_iy_ok_[idx] =
        iy >= 1 && iy <= static_cast<std::int64_t>(spec.ny) - 2;
    tsc_weights(gy - static_cast<double>(iy), &inner_wy_[3 * idx]);
  }
}

double WakeIntegrand::eval(double u, simt::LaneProbe& probe) const {
  const GridSpec& spec = history_.spec();
  const double s = s_point_ - u;
  // Fast reject: the retarded sample sits entirely outside the grid.
  const bool in_range = s >= spec.x0 - spec.dx && s <= spec.x_max() + spec.dx;
  probe.branch(kRangeSite, in_range);
  probe.count_flops(4);
  if (!in_range) return 0.0;

  const double t_steps = static_cast<double>(step_) - u / sub_width_;
  double inner = 0.0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(inner_count_); ++i) {
    const double f =
        sample_spacetime(history_, channel_, s, inner_y_[i], t_steps, probe);
    inner += inner_w_[i] * f;
  }
  probe.count_flops(2 * static_cast<std::size_t>(inner_count_) + 12);
  // Dispatch the radial kernel on the two paper exponents so std::pow sees
  // a compile-time constant (identical value → bit-identical result).
  const double base = u + regularization_;
  double kernel;
  switch (pow_kind_) {
    case PowKind::kLongitudinal:
      kernel = std::pow(base, kLongitudinalKernelPower);
      break;
    case PowKind::kTransverse:
      kernel = std::pow(base, kTransverseKernelPower);
      break;
    default:
      kernel = std::pow(base, kernel_power_);
      break;
  }
  return amplitude_ * kernel * inner;
}

}  // namespace bd::beam
