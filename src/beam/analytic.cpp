#include "beam/analytic.hpp"

#include <cmath>

#include "quad/gauss.hpp"
#include "util/check.hpp"

namespace bd::beam {

double gaussian_pdf(double x, double sigma) {
  const double z = x / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * M_PI));
}

double gaussian_pdf_prime(double x, double sigma) {
  return -x / (sigma * sigma) * gaussian_pdf(x, sigma);
}

double analytic_radial_factor(double s, const WakeModel& model,
                              const BeamParams& params, double r_max,
                              double abs_tol) {
  BD_CHECK(r_max > 0.0);
  const double sigma = params.sigma_s;
  auto q = [&](double arg) {
    return model.channel == kChannelDrhoDs ? gaussian_pdf_prime(arg, sigma)
                                           : gaussian_pdf(arg, sigma);
  };
  auto integrand = [&](double u) {
    return std::pow(u + model.regularization, model.kernel_power) * q(s - u);
  };
  return quad::gauss_integrate_to_tolerance(integrand, 0.0, r_max, abs_tol);
}

double analytic_transverse_factor(double y, const WakeModel& model,
                                  const BeamParams& params) {
  const double sigma_t = std::sqrt(model.coupling_sigma *
                                       model.coupling_sigma +
                                   params.sigma_y * params.sigma_y);
  return model.coupling_derivative ? gaussian_pdf_prime(y, sigma_t)
                                   : gaussian_pdf(y, sigma_t);
}

double analytic_transverse_factor_windowed(double y, const WakeModel& model,
                                           const BeamParams& params,
                                           double abs_tol) {
  const double w = model.inner_halfwidth_sigmas * model.coupling_sigma;
  auto integrand = [&](double yp) {
    const double delta = y - yp;
    const double coupling =
        model.coupling_derivative
            ? gaussian_pdf_prime(delta, model.coupling_sigma)
            : gaussian_pdf(delta, model.coupling_sigma);
    return coupling * gaussian_pdf(yp, params.sigma_y);
  };
  return quad::gauss_integrate_to_tolerance(integrand, y - w, y + w, abs_tol);
}

double analytic_force(double s, double y, const WakeModel& model,
                      const BeamParams& params, double r_max,
                      double abs_tol) {
  return model.amplitude *
         analytic_radial_factor(s, model, params, r_max, abs_tol) *
         analytic_transverse_factor_windowed(y, model, params, abs_tol);
}

}  // namespace bd::beam
