#include "beam/history.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/serialize.hpp"

namespace bd::beam {

GridHistory::GridHistory(const GridSpec& spec, std::uint32_t depth)
    : spec_(spec), depth_(depth), plane_nodes_(spec.nodes()) {
  BD_CHECK(depth >= 1);
  BD_CHECK(plane_nodes_ > 0);
  buffer_.assign(static_cast<std::size_t>(depth_) * kNumChannels *
                     plane_nodes_,
                 0.0);
}

bool GridHistory::has_step(std::int64_t step) const {
  return initialized_ && step <= latest_step_ &&
         step > latest_step_ - static_cast<std::int64_t>(depth_);
}

std::size_t GridHistory::slot_offset(std::int64_t step,
                                     MomentChannel channel) const {
  BD_CHECK_MSG(has_step(step), "step " << step << " not retained (latest "
                                       << latest_step_ << ", depth "
                                       << depth_ << ")");
  const auto slot = static_cast<std::size_t>(
      ((step % depth_) + depth_) % depth_);
  return (slot * kNumChannels + channel) * plane_nodes_;
}

void GridHistory::push_step(std::int64_t step, const Grid2D& rho,
                            const Grid2D& drho_ds) {
  BD_CHECK(rho.spec() == spec_ && drho_ds.spec() == spec_);
  BD_CHECK_MSG(!initialized_ || step == latest_step_ + 1,
               "steps must be pushed consecutively");
  latest_step_ = step;
  initialized_ = true;
  std::copy(rho.data().begin(), rho.data().end(),
            buffer_.begin() +
                static_cast<std::ptrdiff_t>(slot_offset(step, kChannelRho)));
  std::copy(
      drho_ds.data().begin(), drho_ds.data().end(),
      buffer_.begin() +
          static_cast<std::ptrdiff_t>(slot_offset(step, kChannelDrhoDs)));
}

void GridHistory::fill_all(std::int64_t latest_step, const Grid2D& rho,
                           const Grid2D& drho_ds) {
  BD_CHECK(rho.spec() == spec_ && drho_ds.spec() == spec_);
  initialized_ = true;
  latest_step_ = latest_step;
  for (std::uint32_t slot = 0; slot < depth_; ++slot) {
    const std::int64_t step = latest_step - static_cast<std::int64_t>(slot);
    std::copy(rho.data().begin(), rho.data().end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(
                                    slot_offset(step, kChannelRho)));
    std::copy(drho_ds.data().begin(), drho_ds.data().end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(
                                    slot_offset(step, kChannelDrhoDs)));
  }
}

const double* GridHistory::plane(std::int64_t step,
                                 MomentChannel channel) const {
  return buffer_.data() + slot_offset(step, channel);
}

const double* GridHistory::row_ptr(std::int64_t step, MomentChannel channel,
                                   std::uint32_t ix, std::uint32_t iy) const {
  BD_DCHECK(ix < spec_.nx && iy < spec_.ny);
  return plane(step, channel) + static_cast<std::size_t>(iy) * spec_.nx + ix;
}

void GridHistory::save(util::BinaryWriter& out) const {
  out.write_u32(depth_);
  out.write_u64(plane_nodes_);
  out.write_i64(latest_step_);
  out.write_bool(initialized_);
  out.write_f64_span(buffer_);
}

void GridHistory::load(util::BinaryReader& in) {
  const std::uint32_t depth = in.read_u32();
  BD_CHECK_MSG(depth == depth_, "history depth mismatch: checkpoint has "
                                    << depth << ", simulation has " << depth_);
  const std::uint64_t nodes = in.read_u64();
  BD_CHECK_MSG(nodes == plane_nodes_,
               "history plane size mismatch: checkpoint has "
                   << nodes << " nodes, simulation has " << plane_nodes_);
  latest_step_ = in.read_i64();
  initialized_ = in.read_bool();
  in.read_f64_into(buffer_);
}

double GridHistory::value(std::int64_t step, MomentChannel channel,
                          std::uint32_t ix, std::uint32_t iy) const {
  return *row_ptr(step, channel, ix, iy);
}

}  // namespace bd::beam
