#include "beam/history.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bd::beam {

GridHistory::GridHistory(const GridSpec& spec, std::uint32_t depth)
    : spec_(spec), depth_(depth), plane_nodes_(spec.nodes()) {
  BD_CHECK(depth >= 1);
  BD_CHECK(plane_nodes_ > 0);
  buffer_.assign(static_cast<std::size_t>(depth_) * kNumChannels *
                     plane_nodes_,
                 0.0);
}

bool GridHistory::has_step(std::int64_t step) const {
  return initialized_ && step <= latest_step_ &&
         step > latest_step_ - static_cast<std::int64_t>(depth_);
}

std::size_t GridHistory::slot_offset(std::int64_t step,
                                     MomentChannel channel) const {
  BD_CHECK_MSG(has_step(step), "step " << step << " not retained (latest "
                                       << latest_step_ << ", depth "
                                       << depth_ << ")");
  const auto slot = static_cast<std::size_t>(
      ((step % depth_) + depth_) % depth_);
  return (slot * kNumChannels + channel) * plane_nodes_;
}

void GridHistory::push_step(std::int64_t step, const Grid2D& rho,
                            const Grid2D& drho_ds) {
  BD_CHECK(rho.spec() == spec_ && drho_ds.spec() == spec_);
  BD_CHECK_MSG(!initialized_ || step == latest_step_ + 1,
               "steps must be pushed consecutively");
  latest_step_ = step;
  initialized_ = true;
  std::copy(rho.data().begin(), rho.data().end(),
            buffer_.begin() +
                static_cast<std::ptrdiff_t>(slot_offset(step, kChannelRho)));
  std::copy(
      drho_ds.data().begin(), drho_ds.data().end(),
      buffer_.begin() +
          static_cast<std::ptrdiff_t>(slot_offset(step, kChannelDrhoDs)));
}

void GridHistory::fill_all(std::int64_t latest_step, const Grid2D& rho,
                           const Grid2D& drho_ds) {
  BD_CHECK(rho.spec() == spec_ && drho_ds.spec() == spec_);
  initialized_ = true;
  latest_step_ = latest_step;
  for (std::uint32_t slot = 0; slot < depth_; ++slot) {
    const std::int64_t step = latest_step - static_cast<std::int64_t>(slot);
    std::copy(rho.data().begin(), rho.data().end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(
                                    slot_offset(step, kChannelRho)));
    std::copy(drho_ds.data().begin(), drho_ds.data().end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(
                                    slot_offset(step, kChannelDrhoDs)));
  }
}

const double* GridHistory::plane(std::int64_t step,
                                 MomentChannel channel) const {
  return buffer_.data() + slot_offset(step, channel);
}

const double* GridHistory::row_ptr(std::int64_t step, MomentChannel channel,
                                   std::uint32_t ix, std::uint32_t iy) const {
  BD_DCHECK(ix < spec_.nx && iy < spec_.ny);
  return plane(step, channel) + static_cast<std::size_t>(iy) * spec_.nx + ix;
}

double GridHistory::value(std::int64_t step, MomentChannel channel,
                          std::uint32_t ix, std::uint32_t iy) const {
  return *row_ptr(step, channel, ix, iy);
}

}  // namespace bd::beam
