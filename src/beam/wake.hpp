#pragma once
/// \file wake.hpp
/// The retarded-interaction integrand family — our instantiation of the
/// paper's rp-integral (Eq. 1). The outer dimension is the retarded
/// separation u (time-retarded by u/c into the grid history); the inner
/// dimension is the transverse coordinate y', integrated with an α-point
/// Newton–Cotes rule. The radial kernel (u + u0)^p carries the steady-state
/// CSR wake singularity (p = -1/3 longitudinal, -2/3 transverse; Derbenev
/// et al. / Murphy et al. — the paper's validation references [24], [25]).

#include <array>
#include <cstdint>

#include "beam/history.hpp"
#include "beam/units.hpp"
#include "quad/integrand.hpp"

namespace bd::beam {

/// The paper's two radial-kernel exponents. Kept as named constants so the
/// per-eval kernel dispatch can hand `std::pow` a compile-time exponent
/// (same double value as the model field — bit-identical results).
inline constexpr double kLongitudinalKernelPower = -1.0 / 3;
inline constexpr double kTransverseKernelPower = -2.0 / 3;

/// Which quadrature rule samples the inner (transverse) integral. The
/// paper uses Newton–Cotes; at the small α a GPU kernel can afford, NC
/// under-resolves a Gaussian transverse profile, so Gauss–Legendre nodes
/// (same number of samples → identical memory-reference count α·n_i) are
/// the default. The ablation bench quantifies the difference.
enum class InnerRule { kNewtonCotes, kGaussLegendre };

/// Parameters of one retarded-interaction component.
struct WakeModel {
  double amplitude = 0.05;        ///< overall strength C
  double kernel_power = kLongitudinalKernelPower; ///< radial kernel exponent p
  double regularization = 0.05;   ///< u0 — keeps (u+u0)^p finite at u=0
  double coupling_sigma = 1.0;    ///< σ_c of the transverse coupling
  bool coupling_derivative = false; ///< use G'σc (transverse force) if true
  MomentChannel channel = kChannelDrhoDs; ///< which moment is integrated
  int inner_points = 7;           ///< α — inner sample points per radius
  double inner_halfwidth_sigmas = 3.0; ///< inner window ±w in σ_c units
  InnerRule inner_rule = InnerRule::kGaussLegendre;

  /// Longitudinal effective-force model: (u+u0)^{-1/3} against ∂ρ/∂s.
  static WakeModel longitudinal();

  /// Transverse effective-force model: (u+u0)^{-2/3}, derivative coupling,
  /// against ρ.
  static WakeModel transverse();
};

/// Maximum inner sample points a WakeIntegrand supports. The model asserts
/// inner_points ≤ 9, which lets the integrand keep its node/weight tables
/// in fixed arrays — constructing one allocates nothing.
inline constexpr int kMaxInnerPoints = 9;

/// Probe site of the fast-reject range branch in WakeIntegrand::eval.
/// Public because the batched path (wake_simd.cpp) reports at the same
/// site.
inline constexpr std::uint32_t kWakeRangeSite =
    simt::site_id("beam/wake/s-range");

/// rp-integrand for one grid point at one time step. eval(u) computes the
/// inner Newton–Cotes integral at retarded separation u, sampling the
/// moment history through the 27-point space–time stencil.
///
/// Construction copies the model scalars it needs (no reference retained)
/// and performs no heap allocation, so hot paths can build one per grid
/// point on the stack.
class WakeIntegrand final : public quad::RadialIntegrand {
 public:
  /// \param sub_width c·Δt — the radial subregion width; converts u to a
  ///        retarded offset in time steps.
  WakeIntegrand(const GridHistory& history, const WakeModel& model,
                double s_point, double y_point, std::int64_t step,
                double sub_width);

  double eval(double u, simt::LaneProbe& probe) const override;

  /// Batched evaluation (wake_simd.cpp): evaluates up to quad::kBatchWidth
  /// retarded separations per call with the per-sample stencil geometry
  /// hoisted into SoA form and the inner 27-point accumulation dispatched
  /// to an AVX2 kernel when simd::active_level() allows. Bitwise identical
  /// to n sequential eval() calls — values and probe streams alike.
  void eval_batch(const double* u, double* out, std::size_t n,
                  simt::LaneProbe& probe) const override;

  double s_point() const { return s_point_; }
  double y_point() const { return y_point_; }

 private:
  /// Which compile-time exponent the radial kernel dispatch can use.
  enum class PowKind : std::uint8_t { kLongitudinal, kTransverse, kGeneric };

  const GridHistory& history_;
  double amplitude_;
  double kernel_power_;
  double regularization_;
  MomentChannel channel_;
  PowKind pow_kind_;
  double s_point_;
  double y_point_;
  std::int64_t step_;
  double sub_width_;
  // Precomputed inner nodes/weights (fixed per grid point).
  double inner_lo_;
  double inner_width_;
  int inner_count_;
  std::array<double, kMaxInnerPoints> inner_y_;
  std::array<double, kMaxInnerPoints> inner_w_;  // NC weight × coupling
  // Batched-path SoA geometry, precomputed once per integrand. These are
  // the per-inner-node quantities sample_spacetime recomputes on every
  // sample (identical expressions, so identical bits): the y grid index,
  // its in-bounds flag, and the TSC y-weights.
  std::array<std::int64_t, kMaxInnerPoints> inner_iy_;
  std::array<double, 3 * kMaxInnerPoints> inner_wy_;
  std::array<bool, kMaxInnerPoints> inner_iy_ok_;
};

}  // namespace bd::beam
