#include "beam/particles.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace bd::beam {

void ParticleSet::resize(std::size_t count) {
  s_.resize(count, 0.0);
  y_.resize(count, 0.0);
  ps_.resize(count, 0.0);
  py_.resize(count, 0.0);
}

double ParticleSet::mean_s() const { return util::mean(s_); }

double ParticleSet::rms_s() const {
  const double mu = mean_s();
  double acc = 0.0;
  for (double v : s_) acc += (v - mu) * (v - mu);
  return s_.empty() ? 0.0 : std::sqrt(acc / static_cast<double>(s_.size()));
}

double ParticleSet::mean_y() const { return util::mean(y_); }

double ParticleSet::rms_y() const {
  const double mu = mean_y();
  double acc = 0.0;
  for (double v : y_) acc += (v - mu) * (v - mu);
  return y_.empty() ? 0.0 : std::sqrt(acc / static_cast<double>(y_.size()));
}

}  // namespace bd::beam
