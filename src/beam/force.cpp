#include "beam/force.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace bd::beam {

double interpolate_tsc(const Grid2D& field, double x, double y) {
  const GridSpec& spec = field.spec();
  const double gx = spec.gx(x);
  const double gy = spec.gy(y);
  const auto ix = static_cast<std::int64_t>(std::lround(gx));
  const auto iy = static_cast<std::int64_t>(std::lround(gy));
  if (ix < 1 || iy < 1 || ix > static_cast<std::int64_t>(spec.nx) - 2 ||
      iy > static_cast<std::int64_t>(spec.ny) - 2) {
    return 0.0;
  }
  double wx[3], wy[3];
  tsc_weights(gx - static_cast<double>(ix), wx);
  tsc_weights(gy - static_cast<double>(iy), wy);
  double acc = 0.0;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      acc += wx[dx + 1] * wy[dy + 1] *
             field.at(static_cast<std::uint32_t>(ix + dx),
                      static_cast<std::uint32_t>(iy + dy));
    }
  }
  return acc;
}

void gather_forces(const Grid2D& field, const ParticleSet& particles,
                   std::span<double> out) {
  BD_CHECK(out.size() == particles.size());
  const auto s = particles.s();
  const auto y = particles.y();
  // Each particle writes only out[i]; reads are const. Bit-identical for
  // any thread count.
  util::parallel_for(0, particles.size(), [&](std::size_t i) {
    out[i] = interpolate_tsc(field, s[i], y[i]);
  });
}

}  // namespace bd::beam
