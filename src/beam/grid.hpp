#pragma once
/// \file grid.hpp
/// 2-D data grid of moments (paper's D_k). Row-major storage, rows along
/// the longitudinal coordinate s (fast axis) so stencil rows are
/// contiguous — the layout the GPU kernels coalesce over.

#include <cstdint>
#include <span>
#include <vector>

namespace bd::beam {

/// Geometry of a 2-D grid: N_X × N_Y nodes covering
/// [x0, x0 + (nx-1)·dx] × [y0, y0 + (ny-1)·dy].
struct GridSpec {
  std::uint32_t nx = 0;  ///< nodes along s (fast axis)
  std::uint32_t ny = 0;  ///< nodes along y
  double x0 = 0.0;
  double y0 = 0.0;
  double dx = 0.0;
  double dy = 0.0;

  std::size_t nodes() const {
    return static_cast<std::size_t>(nx) * ny;
  }
  double x_max() const { return x0 + (nx - 1) * dx; }
  double y_max() const { return y0 + (ny - 1) * dy; }
  double x_at(std::uint32_t ix) const { return x0 + ix * dx; }
  double y_at(std::uint32_t iy) const { return y0 + iy * dy; }
  /// Continuous grid coordinate of physical position x (0 at node 0).
  double gx(double x) const { return (x - x0) / dx; }
  double gy(double y) const { return (y - y0) / dy; }
  bool operator==(const GridSpec&) const = default;
};

/// Build a symmetric grid covering ±half_extent in each direction.
GridSpec make_centered_grid(std::uint32_t nx, std::uint32_t ny,
                            double half_extent_x, double half_extent_y);

/// One scalar field on a GridSpec.
class Grid2D {
 public:
  Grid2D() = default;
  explicit Grid2D(const GridSpec& spec)
      : spec_(spec), data_(spec.nodes(), 0.0) {}

  const GridSpec& spec() const { return spec_; }

  double& at(std::uint32_t ix, std::uint32_t iy) {
    return data_[static_cast<std::size_t>(iy) * spec_.nx + ix];
  }
  double at(std::uint32_t ix, std::uint32_t iy) const {
    return data_[static_cast<std::size_t>(iy) * spec_.nx + ix];
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  void fill(double value);

  /// Bilinear interpolation at physical (x, y); zero outside the grid.
  double bilinear(double x, double y) const;

  /// Sum of all node values (≈ integral / (dx·dy) for deposited charge).
  double sum() const;

  /// Maximum absolute node value.
  double max_abs() const;

 private:
  GridSpec spec_;
  std::vector<double> data_;
};

/// Triangular-shaped-cloud (quadratic B-spline) weights for the offset
/// f ∈ [-0.5, 0.5] from the nearest node: w[0] is the node below, w[1] the
/// nearest, w[2] the node above. Weights sum to 1.
inline void tsc_weights(double f, double w[3]) {
  w[0] = 0.5 * (0.5 - f) * (0.5 - f);
  w[1] = 0.75 - f * f;
  w[2] = 0.5 * (0.5 + f) * (0.5 + f);
}

}  // namespace bd::beam
