#pragma once
/// \file deposit.hpp
/// Particle-in-cell deposition (step 1 of the simulation loop): spread each
/// macro-particle's charge onto grid nodes. Supports NGP (nearest grid
/// point), CIC (cloud-in-cell, linear) and TSC (triangular-shaped cloud,
/// quadratic — the 3×3 stencil matching the 27-point space-time
/// interpolation of the rp-integrand).

#include "beam/grid.hpp"
#include "beam/particles.hpp"

namespace bd::beam {

/// Deposition kernel order.
enum class DepositScheme { kNGP, kCIC, kTSC };

/// Deposit particle charge onto `rho` (values are *added*; clear first for
/// a fresh deposit). Charge landing outside the grid is dropped and its
/// total returned (diagnostic: should be ~0 for a well-sized grid).
/// Deposited values are densities: weight / (dx·dy) per unit cell area.
double deposit(const ParticleSet& particles, DepositScheme scheme,
               Grid2D& rho);

/// Central-difference longitudinal derivative: out(ix,iy) ≈ ∂ρ/∂s.
/// One-sided at the s boundaries. `out` must share `rho`'s spec.
void longitudinal_gradient(const Grid2D& rho, Grid2D& out);

/// Central-difference transverse derivative ∂ρ/∂y (same conventions).
void transverse_gradient(const Grid2D& rho, Grid2D& out);

}  // namespace bd::beam
