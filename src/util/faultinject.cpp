#include "util/faultinject.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace bd::util::faultinject {

namespace {

struct Entry {
  FaultClass cls;
  std::int64_t step = -1;  ///< -1 = wildcard (any step)
  std::uint32_t count = 1;
  std::uint64_t seed = 0;
  bool fired = false;
};

FaultClass parse_class(const std::string& token) {
  if (token == "grid_nan") return FaultClass::kGridNan;
  if (token == "forecast") return FaultClass::kForecastCorrupt;
  if (token == "checkpoint_truncate") return FaultClass::kCheckpointTruncate;
  if (token == "pool_throw") return FaultClass::kPoolThrow;
  if (token == "slow_step") return FaultClass::kSlowStep;
  BD_CHECK_MSG(false, "BD_FAULT: unknown fault class '"
                          << token
                          << "' (want grid_nan|forecast|checkpoint_truncate|"
                             "pool_throw|slow_step)");
  return FaultClass::kGridNan;  // unreachable
}

std::int64_t parse_int(const std::string& token, const char* what,
                       const std::string& fault) {
  // Digits only: strtoll would silently accept leading whitespace or '+',
  // which in a BD_FAULT spec is far more likely a typo than intent.
  bool digits_only = !token.empty();
  for (const char c : token) digits_only &= (c >= '0' && c <= '9');
  BD_CHECK_MSG(digits_only, "BD_FAULT: bad " << what << " '" << token
                                             << "' in fault '" << fault
                                             << "' (want a non-negative "
                                                "decimal integer)");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  BD_CHECK_MSG(errno != ERANGE && end == token.c_str() + token.size() &&
                   v >= 0,
               "BD_FAULT: " << what << " '" << token << "' in fault '" << fault
                            << "' is out of range");
  return static_cast<std::int64_t>(v);
}

/// fault := class [ '@' step ] [ ':' count ]
Entry parse_fault(const std::string& token, std::size_t index,
                  std::uint64_t seed_base) {
  std::string body = token;
  Entry entry;
  if (const auto colon = body.find(':'); colon != std::string::npos) {
    const std::int64_t count = parse_int(body.substr(colon + 1), "count",
                                         token);
    BD_CHECK_MSG(count > 0, "BD_FAULT: count must be > 0 in fault '" << token
                                                                     << "'");
    BD_CHECK_MSG(count <= 0xFFFFFFFFll,
                 "BD_FAULT: count '" << count << "' in fault '" << token
                                     << "' exceeds the u32 limit");
    entry.count = static_cast<std::uint32_t>(count);
    body = body.substr(0, colon);
  }
  if (const auto at = body.find('@'); at != std::string::npos) {
    entry.step = parse_int(body.substr(at + 1), "step", token);
    body = body.substr(0, at);
  }
  entry.cls = parse_class(body);
  // Fixed per-entry seed: the same spec corrupts the same cells every run.
  // seed_base = 0 (the default harness) reproduces the historical values;
  // per-sim harnesses fold in the sim's own seed so concurrent sims with
  // identical specs corrupt different cells.
  SplitMix64 mix(0xBDFA117Bu + static_cast<std::uint64_t>(index));
  entry.seed = mix.next();
  if (seed_base != 0) entry.seed ^= SplitMix64(seed_base).next();
  return entry;
}

}  // namespace

struct FaultHarness::Impl {
  mutable std::mutex mutex;
  std::vector<Entry> entries;
  std::uint64_t fired = 0;
  /// Relaxed gate mirrored from the entry list under the mutex.
  std::atomic<bool> armed{false};
};

FaultHarness::FaultHarness() : impl_(std::make_unique<Impl>()) {}
FaultHarness::~FaultHarness() = default;

FaultHarness& FaultHarness::default_harness() {
  // Leaked on purpose: fire() may run from pool workers during atexit paths.
  static FaultHarness* harness = new FaultHarness();
  static std::once_flag bootstrapped;
  std::call_once(bootstrapped, [] {
    if (const char* spec = std::getenv("BD_FAULT"); spec && *spec) {
      harness->install(spec);
    }
  });
  return *harness;
}

void FaultHarness::install(const std::string& spec, std::uint64_t seed_base) {
  // Parse into a scratch list first so a malformed spec throws without
  // half-installing a plan (the previous plan is replaced only on success).
  std::vector<Entry> parsed;
  std::size_t begin = 0;
  std::size_t index = 0;
  while (begin <= spec.size() && !spec.empty()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(begin, end - begin);
    // An empty entry ("grid_nan;;pool_throw", or a trailing ';') is a
    // mangled spec, not a no-op — failing silently here reads as "fault
    // armed" when nothing is.
    BD_CHECK_MSG(!token.empty(), "BD_FAULT: empty fault entry #"
                                     << (index + 1) << " in spec '" << spec
                                     << "'");
    parsed.push_back(parse_fault(token, index++, seed_base));
    if (end == spec.size()) break;
    begin = end + 1;
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->entries = std::move(parsed);
  impl_->armed.store(!impl_->entries.empty(), std::memory_order_relaxed);
}

void FaultHarness::clear() { install(""); }

bool FaultHarness::armed() const {
  return impl_->armed.load(std::memory_order_relaxed);
}

std::optional<Injection> FaultHarness::fire(FaultClass cls,
                                            std::int64_t step) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (Entry& entry : impl_->entries) {
    if (entry.fired || entry.cls != cls) continue;
    // A site that does not know the step (e.g. the serialize layer) passes
    // step = -1 and matches entries armed for any step.
    if (entry.step >= 0 && step >= 0 && entry.step != step) continue;
    entry.fired = true;
    ++impl_->fired;
    bool any_pending = false;
    for (const Entry& e : impl_->entries) any_pending |= !e.fired;
    impl_->armed.store(any_pending, std::memory_order_relaxed);
    telemetry::counter_add("faultinject.injections");
    return Injection{entry.count, entry.seed};
  }
  return std::nullopt;
}

std::uint64_t FaultHarness::fired_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->fired;
}

// ---------------------------------------------------------------------------
// FaultScope + free functions
// ---------------------------------------------------------------------------

namespace {
thread_local FaultHarness* tls_harness = nullptr;
}  // namespace

FaultScope::FaultScope(FaultHarness* harness) : prev_(tls_harness) {
  if (harness != nullptr) tls_harness = harness;
}

FaultScope::~FaultScope() { tls_harness = prev_; }

FaultHarness* scoped_harness() { return tls_harness; }

FaultHarness& current_harness() {
  return tls_harness != nullptr ? *tls_harness
                                : FaultHarness::default_harness();
}

bool enabled() { return current_harness().armed(); }

void install(const std::string& spec) {
  FaultHarness::default_harness().install(spec);
}

void clear() { FaultHarness::default_harness().clear(); }

std::uint64_t fired_count() {
  return FaultHarness::default_harness().fired_count();
}

std::optional<Injection> fire(FaultClass cls, std::int64_t step) {
  return current_harness().fire(cls, step);
}

}  // namespace bd::util::faultinject
