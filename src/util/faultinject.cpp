#include "util/faultinject.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace bd::util::faultinject {

namespace {

struct Entry {
  FaultClass cls;
  std::int64_t step = -1;  ///< -1 = wildcard (any step)
  std::uint32_t count = 1;
  std::uint64_t seed = 0;
  bool fired = false;
};

struct Plan {
  std::mutex mutex;
  std::vector<Entry> entries;
  std::uint64_t fired = 0;
};

// Leaked on purpose: fire() may run from pool workers during atexit paths.
Plan& plan() {
  static Plan* p = new Plan;
  return *p;
}

/// Relaxed gate mirrored from the entry list under the plan mutex.
std::atomic<bool> g_armed{false};

FaultClass parse_class(const std::string& token) {
  if (token == "grid_nan") return FaultClass::kGridNan;
  if (token == "forecast") return FaultClass::kForecastCorrupt;
  if (token == "checkpoint_truncate") return FaultClass::kCheckpointTruncate;
  if (token == "pool_throw") return FaultClass::kPoolThrow;
  BD_CHECK_MSG(false, "BD_FAULT: unknown fault class '"
                          << token
                          << "' (want grid_nan|forecast|checkpoint_truncate|"
                             "pool_throw)");
  return FaultClass::kGridNan;  // unreachable
}

std::int64_t parse_int(const std::string& token, const char* what) {
  BD_CHECK_MSG(!token.empty(), "BD_FAULT: empty " << what);
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  BD_CHECK_MSG(end == token.c_str() + token.size() && v >= 0,
               "BD_FAULT: bad " << what << " '" << token << "'");
  return static_cast<std::int64_t>(v);
}

/// fault := class [ '@' step ] [ ':' count ]
Entry parse_fault(const std::string& token, std::size_t index) {
  std::string body = token;
  Entry entry;
  if (const auto colon = body.find(':'); colon != std::string::npos) {
    entry.count =
        static_cast<std::uint32_t>(parse_int(body.substr(colon + 1), "count"));
    BD_CHECK_MSG(entry.count > 0, "BD_FAULT: count must be > 0 in '" << token
                                                                     << "'");
    body = body.substr(0, colon);
  }
  if (const auto at = body.find('@'); at != std::string::npos) {
    entry.step = parse_int(body.substr(at + 1), "step");
    body = body.substr(0, at);
  }
  entry.cls = parse_class(body);
  // Fixed per-entry seed: the same spec corrupts the same cells every run.
  SplitMix64 mix(0xBDFA117Bu + static_cast<std::uint64_t>(index));
  entry.seed = mix.next();
  return entry;
}

void install_locked(Plan& p, const std::string& spec) {
  p.entries.clear();
  std::size_t begin = 0;
  while (begin <= spec.size() && !spec.empty()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(begin, end - begin);
    if (!token.empty()) p.entries.push_back(parse_fault(token, p.entries.size()));
    if (end == spec.size()) break;
    begin = end + 1;
  }
  g_armed.store(!p.entries.empty(), std::memory_order_relaxed);
}

void install_env_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    if (const char* spec = std::getenv("BD_FAULT"); spec && *spec) {
      Plan& p = plan();
      std::lock_guard<std::mutex> lock(p.mutex);
      install_locked(p, spec);
    }
  });
}

}  // namespace

bool enabled() {
  install_env_once();
  return g_armed.load(std::memory_order_relaxed);
}

void install(const std::string& spec) {
  install_env_once();  // env plan, if any, is replaced below
  Plan& p = plan();
  std::lock_guard<std::mutex> lock(p.mutex);
  install_locked(p, spec);
}

void clear() { install(""); }

std::optional<Injection> fire(FaultClass cls, std::int64_t step) {
  Plan& p = plan();
  std::lock_guard<std::mutex> lock(p.mutex);
  for (Entry& entry : p.entries) {
    if (entry.fired || entry.cls != cls) continue;
    // A site that does not know the step (e.g. the serialize layer) passes
    // step = -1 and matches entries armed for any step.
    if (entry.step >= 0 && step >= 0 && entry.step != step) continue;
    entry.fired = true;
    ++p.fired;
    bool any_pending = false;
    for (const Entry& e : p.entries) any_pending |= !e.fired;
    g_armed.store(any_pending, std::memory_order_relaxed);
    telemetry::counter_add("faultinject.injections");
    return Injection{entry.count, entry.seed};
  }
  return std::nullopt;
}

std::uint64_t fired_count() {
  Plan& p = plan();
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.fired;
}

}  // namespace bd::util::faultinject
