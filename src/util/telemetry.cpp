#include "util/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "util/table.hpp"

namespace bd::util::telemetry {

namespace {

/// JSON string escaper for names/args we do not control byte-for-byte.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------------

std::size_t histogram_bucket_index(double value) {
  if (!(value >= 1.0)) return 0;  // < 1, negative, NaN
  int exp = 0;
  // frexp: value = m * 2^exp with m in [0.5, 1) — so value lies in
  // [2^(exp-1), 2^exp) and the bucket index is exactly exp.
  std::frexp(value, &exp);
  if (exp < 1) return 0;
  const auto b = static_cast<std::size_t>(exp);
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

double histogram_bucket_lower_bound(std::size_t b) {
  if (b == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(b) - 1);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {
enum class MetricKind { kCounter, kGauge, kHistogram };

struct Cell {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  std::uint64_t gauge_seq = 0;  // registry write sequence; highest wins
  HistogramSnapshot hist;
};
}  // namespace

namespace {
/// Unique ids for registry/session instances. Ids are never reused, so a
/// thread-local (id → shard/lane) cache entry can never alias a new
/// instance that happens to be allocated at a destroyed one's address.
std::atomic<std::uint64_t> g_instance_ids{0};

std::uint64_t next_instance_id() {
  return g_instance_ids.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Small per-thread most-recent-first cache of (instance id → storage).
/// Entries for destroyed instances are harmless (their ids never match
/// again) and are evicted by the size cap.
struct InstanceCache {
  struct Entry {
    std::uint64_t id;
    void* storage;
  };
  std::vector<Entry> entries;

  void* find(std::uint64_t id) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].id != id) continue;
      if (i != 0) std::swap(entries[0], entries[i]);
      return entries[0].storage;
    }
    return nullptr;
  }

  void remember(std::uint64_t id, void* storage) {
    entries.insert(entries.begin(), Entry{id, storage});
    if (entries.size() > 16) entries.pop_back();
  }
};
}  // namespace

/// One thread's private metric storage. The mutex is only ever contended
/// by snapshot()/reset() — the owning thread is the sole writer.
struct MetricsRegistry::Shard {
  std::mutex mu;
  std::map<std::string, Cell, std::less<>> cells;
};

struct MetricsRegistry::Impl {
  const std::uint64_t id = next_instance_id();
  std::mutex mu;  // guards shards/by_thread (the containers, not contents)
  std::vector<std::unique_ptr<Shard>> shards;
  std::map<std::thread::id, Shard*> by_thread;
  std::atomic<std::uint64_t> gauge_seq{0};
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
  thread_local InstanceCache cache;
  if (void* hit = cache.find(impl_->id)) return *static_cast<Shard*>(hit);
  Shard* shard = nullptr;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    Shard*& slot = impl_->by_thread[std::this_thread::get_id()];
    if (slot == nullptr) {
      impl_->shards.push_back(std::make_unique<Shard>());
      slot = impl_->shards.back().get();  // registry owns it for its lifetime
    }
    shard = slot;
  }
  cache.remember(impl_->id, shard);
  return *shard;
}

void MetricsRegistry::counter_add(std::string_view name, std::uint64_t delta) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.cells.find(name);
  if (it == shard.cells.end()) {
    it = shard.cells.emplace(std::string(name), Cell{}).first;
    it->second.kind = MetricKind::kCounter;
  }
  it->second.counter += delta;
}

void MetricsRegistry::gauge_set(std::string_view name, double value) {
  const std::uint64_t seq =
      impl_->gauge_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.cells.find(name);
  if (it == shard.cells.end()) {
    it = shard.cells.emplace(std::string(name), Cell{}).first;
    it->second.kind = MetricKind::kGauge;
  }
  it->second.gauge = value;
  it->second.gauge_seq = seq;
}

void MetricsRegistry::histogram_record(std::string_view name, double value) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.cells.find(name);
  if (it == shard.cells.end()) {
    it = shard.cells.emplace(std::string(name), Cell{}).first;
    it->second.kind = MetricKind::kHistogram;
  }
  HistogramSnapshot& h = it->second.hist;
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  ++h.count;
  h.sum += value;
  ++h.buckets[histogram_bucket_index(value)];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  // Shards are merged in creation order; counters and bucket counts are
  // integer sums (order-independent), gauges resolve by write sequence,
  // and histogram double-sums see a fixed merge order — so a deterministic
  // program produces a deterministic snapshot.
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    shards.reserve(impl_->shards.size());
    for (const auto& s : impl_->shards) shards.push_back(s.get());
  }
  std::map<std::string, std::uint64_t> gauge_seqs;
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lk(shard->mu);
    for (const auto& [name, cell] : shard->cells) {
      switch (cell.kind) {
        case MetricKind::kCounter:
          snap.counters[name] += cell.counter;
          break;
        case MetricKind::kGauge: {
          auto [it, inserted] = gauge_seqs.emplace(name, cell.gauge_seq);
          if (inserted || cell.gauge_seq >= it->second) {
            it->second = cell.gauge_seq;
            snap.gauges[name] = cell.gauge;
          }
          break;
        }
        case MetricKind::kHistogram: {
          HistogramSnapshot& h = snap.histograms[name];
          const HistogramSnapshot& other = cell.hist;
          if (other.count == 0) break;
          if (h.count == 0 || other.min < h.min) h.min = other.min;
          if (h.count == 0 || other.max > h.max) h.max = other.max;
          h.count += other.count;
          h.sum += other.sum;
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            h.buckets[b] += other.buckets[b];
          }
          break;
        }
      }
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const auto& s : impl_->shards) shards.push_back(s.get());
  }
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lk(shard->mu);
    shard->cells.clear();
  }
}

std::string MetricsRegistry::summary() const {
  const MetricsSnapshot snap = snapshot();
  ConsoleTable table({"metric", "kind", "count", "value/sum", "mean", "min",
                      "max"});
  for (const auto& [name, value] : snap.counters) {
    table.cell(name).cell("counter").cell(std::int64_t(value))
        .cell(std::int64_t(value)).cell("-").cell("-").cell("-");
    table.end_row();
  }
  for (const auto& [name, value] : snap.gauges) {
    table.cell(name).cell("gauge").cell("-").cell(format_number(value))
        .cell("-").cell("-").cell("-");
    table.end_row();
  }
  for (const auto& [name, h] : snap.histograms) {
    table.cell(name).cell("histogram").cell(std::int64_t(h.count))
        .cell(format_number(h.sum)).cell(format_number(h.mean()))
        .cell(format_number(h.min)).cell(format_number(h.max));
    table.end_row();
  }
  return table.str();
}

std::string MetricsRegistry::summary_csv() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  os << "name,kind,count,sum_or_value,mean,min,max\n";
  for (const auto& [name, value] : snap.counters) {
    os << name << ",counter," << value << "," << value << ",,,\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    os << name << ",gauge,," << format_number(value) << ",,,\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    os << name << ",histogram," << h.count << "," << format_number(h.sum)
       << "," << format_number(h.mean()) << "," << format_number(h.min)
       << "," << format_number(h.max) << "\n";
  }
  return os.str();
}

namespace {
std::atomic<bool>& metrics_flag() {
  static std::atomic<bool> enabled{[] {
    const char* env = std::getenv("BD_METRICS");
    return !(env && env[0] == '0' && env[1] == '\0');
  }()};
  return enabled;
}
}  // namespace

bool metrics_enabled() {
  return metrics_flag().load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  metrics_flag().store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TelemetryScope
// ---------------------------------------------------------------------------

namespace {
thread_local MetricsRegistry* tls_metrics = nullptr;
thread_local TraceSession* tls_trace = nullptr;
}  // namespace

TelemetryScope::TelemetryScope(MetricsRegistry* metrics, TraceSession* trace)
    : prev_metrics_(tls_metrics), prev_trace_(tls_trace) {
  if (metrics != nullptr) tls_metrics = metrics;
  if (trace != nullptr) tls_trace = trace;
}

TelemetryScope::~TelemetryScope() {
  tls_metrics = prev_metrics_;
  tls_trace = prev_trace_;
}

MetricsRegistry* scoped_metrics() { return tls_metrics; }
TraceSession* scoped_trace() { return tls_trace; }

MetricsRegistry& current_metrics() {
  return tls_metrics != nullptr ? *tls_metrics : MetricsRegistry::global();
}

TraceSession& current_trace() {
  return tls_trace != nullptr ? *tls_trace : TraceSession::global();
}

void counter_add(std::string_view name, std::uint64_t delta) {
  if (!metrics_enabled()) return;
  current_metrics().counter_add(name, delta);
}
void gauge_set(std::string_view name, double value) {
  if (!metrics_enabled()) return;
  current_metrics().gauge_set(name, value);
}
void histogram_record(std::string_view name, double value) {
  if (!metrics_enabled()) return;
  current_metrics().histogram_record(name, value);
}

// ---------------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------------

/// One thread's span storage lane. Like metric shards, lanes are owned by
/// the session and outlive their thread (pool rebuilds keep their data).
struct TraceSession::Lane {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::string thread_name;
  std::vector<TraceEvent> events;
};

struct TraceSession::Impl {
  const std::uint64_t id = next_instance_id();
  std::atomic<bool> enabled{false};
  std::chrono::steady_clock::time_point epoch;
  mutable std::mutex mu;  // guards lanes vector, output path, flushed flag
  std::vector<std::unique_ptr<Lane>> lanes;
  std::map<std::thread::id, Lane*> by_thread;
  std::uint32_t next_tid = 1;
  std::string output_path;
  bool flushed = false;
};

TraceSession::TraceSession() : impl_(std::make_unique<Impl>()) {
  impl_->epoch = std::chrono::steady_clock::now();
}

TraceSession::~TraceSession() = default;

TraceSession& TraceSession::global() {
  static TraceSession* instance = new TraceSession();  // never destroyed
  static std::once_flag bootstrapped;
  std::call_once(bootstrapped, [] {
    if (const char* path = std::getenv("BD_TRACE"); path && *path) {
      instance->set_output_path(path);
      instance->start();
      std::atexit([] { TraceSession::global().flush(); });
    }
  });
  return *instance;
}

namespace {
// Captured during static initialization, which runs on the process's main
// thread — lane naming must not depend on which thread records first.
const std::thread::id g_main_thread_id = std::this_thread::get_id();
}  // namespace

TraceSession::Lane& TraceSession::local_lane() const {
  thread_local InstanceCache cache;
  if (void* hit = cache.find(impl_->id)) return *static_cast<Lane*>(hit);
  Lane* lane = nullptr;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    Lane*& slot = impl_->by_thread[std::this_thread::get_id()];
    if (slot == nullptr) {
      auto owned = std::make_unique<Lane>();
      owned->tid = impl_->next_tid++;
      if (std::this_thread::get_id() == g_main_thread_id) {
        owned->thread_name = "main";
      }
      slot = owned.get();  // session owns it for its lifetime
      impl_->lanes.push_back(std::move(owned));
    }
    lane = slot;
  }
  cache.remember(impl_->id, lane);
  return *lane;
}

bool TraceSession::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void TraceSession::start() {
  impl_->enabled.store(true, std::memory_order_relaxed);
}

void TraceSession::stop() {
  impl_->enabled.store(false, std::memory_order_relaxed);
}

void TraceSession::clear() {
  std::vector<Lane*> lanes;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const auto& l : impl_->lanes) lanes.push_back(l.get());
  }
  for (Lane* lane : lanes) {
    std::lock_guard<std::mutex> lk(lane->mu);
    lane->events.clear();
  }
}

void TraceSession::set_output_path(std::string path) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->output_path = std::move(path);
  impl_->flushed = false;
}

const std::string& TraceSession::output_path() const {
  // Callers treat the returned reference as read-only and short-lived;
  // the path only changes from set_output_path (startup / tests).
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->output_path;
}

double TraceSession::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - impl_->epoch)
      .count();
}

void TraceSession::set_current_thread_name(std::string name) {
  Lane& lane = local_lane();
  std::lock_guard<std::mutex> lk(lane.mu);
  lane.thread_name = std::move(name);
}

void TraceSession::record_complete(std::string name, const char* category,
                                   double ts_us, double dur_us,
                                   std::string args) {
  Lane& lane = local_lane();
  std::lock_guard<std::mutex> lk(lane.mu);
  lane.events.push_back(TraceEvent{std::move(name), category, ts_us, dur_us,
                                   std::move(args)});
}

std::size_t TraceSession::event_count() const {
  std::size_t n = 0;
  std::vector<Lane*> lanes;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const auto& l : impl_->lanes) lanes.push_back(l.get());
  }
  for (Lane* lane : lanes) {
    std::lock_guard<std::mutex> lk(lane->mu);
    n += lane->events.size();
  }
  return n;
}

std::string TraceSession::chrome_json() const {
  std::vector<Lane*> lanes;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const auto& l : impl_->lanes) lanes.push_back(l.get());
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (Lane* lane : lanes) {
    std::lock_guard<std::mutex> lk(lane->mu);
    if (!lane->thread_name.empty()) {
      os << (first ? "" : ",");
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << lane->tid << ",\"args\":{\"name\":\""
         << json_escape(lane->thread_name) << "\"}}";
    }
    for (const TraceEvent& e : lane->events) {
      os << (first ? "" : ",");
      first = false;
      os << "\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
         << json_escape(e.category) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
         << lane->tid;
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", e.ts_us,
                    e.dur_us);
      os << buf;
      if (!e.args.empty()) os << ",\"args\":{" << e.args << "}";
      os << "}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool TraceSession::write_chrome_json(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

namespace {
struct SpanAggregate {
  const char* category = "";
  std::uint64_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
};

std::map<std::string, SpanAggregate> aggregate_spans(
    const std::vector<std::vector<TraceEvent>>& per_lane) {
  std::map<std::string, SpanAggregate> agg;
  for (const auto& events : per_lane) {
    for (const TraceEvent& e : events) {
      SpanAggregate& a = agg[e.name];
      a.category = e.category;
      if (a.count == 0 || e.dur_us < a.min_us) a.min_us = e.dur_us;
      if (a.count == 0 || e.dur_us > a.max_us) a.max_us = e.dur_us;
      ++a.count;
      a.total_us += e.dur_us;
    }
  }
  return agg;
}
}  // namespace

std::string TraceSession::summary() const {
  std::vector<Lane*> lanes;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const auto& l : impl_->lanes) lanes.push_back(l.get());
  }
  std::vector<std::vector<TraceEvent>> per_lane;
  for (Lane* lane : lanes) {
    std::lock_guard<std::mutex> lk(lane->mu);
    per_lane.push_back(lane->events);
  }
  ConsoleTable table(
      {"span", "cat", "count", "total ms", "mean ms", "min ms", "max ms"});
  for (const auto& [name, a] : aggregate_spans(per_lane)) {
    table.cell(name).cell(a.category).cell(std::int64_t(a.count))
        .cell(a.total_us / 1e3, 3)
        .cell(a.total_us / 1e3 / static_cast<double>(a.count), 3)
        .cell(a.min_us / 1e3, 3).cell(a.max_us / 1e3, 3);
    table.end_row();
  }
  return table.str();
}

std::string TraceSession::summary_csv() const {
  std::vector<Lane*> lanes;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const auto& l : impl_->lanes) lanes.push_back(l.get());
  }
  std::vector<std::vector<TraceEvent>> per_lane;
  for (Lane* lane : lanes) {
    std::lock_guard<std::mutex> lk(lane->mu);
    per_lane.push_back(lane->events);
  }
  std::ostringstream os;
  os << "name,category,count,total_ms,mean_ms,min_ms,max_ms\n";
  for (const auto& [name, a] : aggregate_spans(per_lane)) {
    os << name << "," << a.category << "," << a.count << ","
       << format_number(a.total_us / 1e3) << ","
       << format_number(a.total_us / 1e3 / static_cast<double>(a.count))
       << "," << format_number(a.min_us / 1e3) << ","
       << format_number(a.max_us / 1e3) << "\n";
  }
  return os.str();
}

void TraceSession::flush() {
  std::string path;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (impl_->flushed || impl_->output_path.empty()) return;
    impl_->flushed = true;
    path = impl_->output_path;
  }
  if (!write_chrome_json(path)) {
    std::fprintf(stderr, "telemetry: cannot write trace to %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(stderr, "\ntelemetry: wrote %zu trace events to %s\n",
               event_count(), path.c_str());
  std::fputs(summary().c_str(), stderr);
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

TraceSpan::TraceSpan(const char* name, const char* category)
    : session_(&current_trace()),
      active_(session_->enabled()),
      name_(name),
      category_(category) {
  if (active_) start_us_ = session_->now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const double end_us = session_->now_us();
  session_->record_complete(name_, category_, start_us_, end_us - start_us_,
                            std::move(args_));
}

void TraceSpan::arg(const char* key, double value) {
  if (!active_) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += json_escape(key);
  args_ += "\":";
  args_ += buf;
}

void TraceSpan::arg(const char* key, std::uint64_t value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += json_escape(key);
  args_ += "\":";
  args_ += std::to_string(value);
}

void TraceSpan::arg(const char* key, std::int64_t value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += json_escape(key);
  args_ += "\":";
  args_ += std::to_string(value);
}

void TraceSpan::arg(const char* key, const char* value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += json_escape(key);
  args_ += "\":\"";
  args_ += json_escape(value);
  args_ += '"';
}

}  // namespace bd::util::telemetry
