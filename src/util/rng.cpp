#include "util/rng.hpp"

#include <cmath>

namespace bd::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull, 0xA9582618E03FC9AAull,
      0x39ABDC4529B1661Cull};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ull << b)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      next();
    }
  }
  s_ = acc;
}

double Rng::uniform() {
  // 53-bit mantissa from the top bits.
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t draw;
  do {
    draw = gen_.next();
  } while (draw >= limit);
  return draw % n;
}

Rng Rng::split() {
  Rng child = *this;
  child.gen_.jump();
  child.has_cached_normal_ = false;
  // Advance the parent so repeated splits differ.
  gen_.next();
  return child;
}

}  // namespace bd::util
