#include "util/stats.hpp"

#include <cmath>

#include "util/check.hpp"

namespace bd::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double mean_squared_error(std::span<const double> a,
                          std::span<const double> b) {
  BD_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double max_abs_error(std::span<const double> a, std::span<const double> b) {
  BD_CHECK(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  BD_CHECK(xs.size() == ys.size());
  BD_CHECK_MSG(xs.size() >= 2, "line fit needs at least two points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  BD_CHECK_MSG(sxx > 0.0, "degenerate x values in line fit");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double correlation(std::span<const double> a, std::span<const double> b) {
  BD_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double saa = 0.0, sbb = 0.0, sab = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace bd::util
