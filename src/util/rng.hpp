#pragma once
/// \file rng.hpp
/// Deterministic, seedable random number generation: xoshiro256++ core with
/// SplitMix64 seeding, plus uniform / normal / integer draws. The simulation
/// relies on reproducible streams, so no std::random_device anywhere.

#include <array>
#include <cstdint>

namespace bd::util {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
/// Also a perfectly fine standalone generator for tests.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  /// Next 64 pseudo-random bits.
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next 64 pseudo-random bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface so <random> distributions work too.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Jump ahead 2^128 draws — gives independent parallel streams.
  void jump();

  /// Raw generator state, for checkpoint/restart (util/serialize).
  std::array<std::uint64_t, 4> state() const { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& s) { s_ = s; }

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Convenience RNG bundling the common draws used across the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 12345) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Raw 64 random bits.
  std::uint64_t bits() { return gen_.next(); }

  /// Independent child stream (jump-based, deterministic).
  Rng split();

  /// Complete stream state (generator + Box–Muller cache) so a restored
  /// checkpoint resumes the exact draw sequence.
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State state() const { return {gen_.state(), has_cached_normal_, cached_normal_}; }
  void set_state(const State& state) {
    gen_.set_state(state.s);
    has_cached_normal_ = state.has_cached_normal;
    cached_normal_ = state.cached_normal;
  }

 private:
  Xoshiro256 gen_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bd::util
