#pragma once
/// \file serialize.hpp
/// Versioned, checksummed binary serialization for checkpoint/restart.
///
/// A checkpoint is a *checked file*:
///
///   [magic u32][version u32][payload_size u64][crc32 u32][payload bytes]
///
/// written atomically (temp file + rename) so a crash mid-write can never
/// corrupt the previous snapshot, and validated on read (magic, size and
/// CRC32 of the payload) so a truncated or bit-flipped file raises
/// bd::CheckError instead of resurrecting garbage state.
///
/// BinaryWriter/BinaryReader provide the typed little-endian payload
/// encoding. Every read is bounds-checked; running off the end of a
/// payload throws bd::CheckError. All multi-byte values are encoded
/// little-endian regardless of host order, so snapshots are portable.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bd::util {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG flavor) of `data`.
/// Chain blocks by feeding the previous result as `seed`.
std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

/// Append-only typed encoder for a checkpoint payload.
class BinaryWriter {
 public:
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  void write_bool(bool v);
  /// Length-prefixed UTF-8 string.
  void write_string(std::string_view s);
  /// Length-prefixed array of doubles (bit-exact, NaN-safe).
  void write_f64_span(std::span<const double> values);
  /// Length-prefixed raw byte block (for nested / opaque payloads).
  void write_bytes(std::span<const std::byte> bytes);

  std::span<const std::byte> payload() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Bounds-checked typed decoder over a payload. Reads must mirror the
/// writes exactly; any overrun or length mismatch throws bd::CheckError.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> payload)
      : payload_(payload) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_f64();
  bool read_bool();
  std::string read_string();
  /// Read a length-prefixed f64 array into a fresh vector.
  std::vector<double> read_f64_vector();
  /// Read a length-prefixed f64 array into `out`; the stored length must
  /// equal out.size() (in-place restore without reallocation).
  void read_f64_into(std::span<double> out);
  /// Read a length-prefixed raw byte block.
  std::vector<std::byte> read_bytes();

  std::size_t remaining() const { return payload_.size() - offset_; }
  bool done() const { return remaining() == 0; }

 private:
  const std::byte* take(std::size_t n);

  std::span<const std::byte> payload_;
  std::size_t offset_ = 0;
};

/// Nested vector-of-vectors of doubles (per-point quadrature partitions).
void write_nested_f64(BinaryWriter& out,
                      const std::vector<std::vector<double>>& values);
std::vector<std::vector<double>> read_nested_f64(BinaryReader& in);

/// Atomically write a checked file: the header+payload go to a unique
/// `path + ".tmp.<pid>.<seq>"` sibling first and are renamed over `path`
/// only once fully flushed, so `path` always holds either the previous
/// snapshot or the complete new one — and concurrent writers (two sims
/// checkpointing into one directory, or two processes sharing a spool)
/// can never clobber each other's in-flight temp file.
/// Throws bd::CheckError on I/O failure (the previous file is untouched
/// and the temp file is removed).
void write_checked_file(const std::string& path, std::uint32_t magic,
                        std::uint32_t version,
                        std::span<const std::byte> payload);

/// Read and validate a checked file: magic, declared payload size and
/// CRC32 must all match or bd::CheckError is thrown. Returns the payload;
/// `version_out` receives the stored format version (callers dispatch on
/// it — see docs/ROBUSTNESS.md for the version policy).
std::vector<std::byte> read_checked_file(const std::string& path,
                                         std::uint32_t magic,
                                         std::uint32_t& version_out);

// ---------------------------------------------------------------------------
// Append-only CRC-framed journal (write-ahead log)
// ---------------------------------------------------------------------------
//
// A journal is a sequence of independently validated record frames:
//
//   [marker u32][payload_size u32][crc32 u32][payload bytes]
//
// appended (and flushed) one frame at a time, so a crash mid-append can
// only ever damage the *last* frame. Readers therefore tolerate a
// truncated or corrupt tail frame — the torn write a crash leaves behind
// — but treat any damaged frame *followed by more bytes* as real
// corruption and throw. The payload encoding is the caller's
// (BinaryWriter/BinaryReader); see docs/ROBUSTNESS.md for the fleet
// journal's record layout.

/// Frame marker "BDJL" (little-endian on disk).
inline constexpr std::uint32_t kJournalMarker = 0x4C4A4442u;

/// Append one framed record to the journal at `path` (created when
/// missing) and flush it. Throws bd::CheckError on I/O failure.
void append_journal_record(const std::string& path,
                           std::span<const std::byte> payload);

/// Every record payload recovered from a journal, in append order.
struct JournalReadResult {
  std::vector<std::vector<std::byte>> records;
  /// True when the file ended in a torn frame (crash mid-append). The
  /// complete prefix in `records` is still valid.
  bool truncated_tail = false;
};

/// Read and validate a journal. A missing file yields zero records; a
/// torn tail frame sets `truncated_tail`; a damaged frame with more data
/// after it throws bd::CheckError naming the byte offset.
JournalReadResult read_journal_records(const std::string& path);

}  // namespace bd::util
