#pragma once
/// \file table.hpp
/// Console table renderer. Benchmark binaries use this to print the same
/// rows the paper's tables report.

#include <string>
#include <vector>

namespace bd::util {

/// Builds a fixed-column text table and renders it with aligned columns.
class ConsoleTable {
 public:
  /// Construct with column headings.
  explicit ConsoleTable(std::vector<std::string> headings);

  /// Append a full row; must match the number of headings.
  void add_row(std::vector<std::string> cells);

  /// Convenience: start a row cell-by-cell.
  ConsoleTable& cell(const std::string& value);
  ConsoleTable& cell(double value, int precision = 3);
  ConsoleTable& cell(std::int64_t value);
  ConsoleTable& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
  ConsoleTable& cell(std::size_t value) {
    return cell(static_cast<std::int64_t>(value));
  }
  void end_row();

  /// Render to a string (also used by tests).
  std::string str() const;

  /// Render to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headings_.size(); }

 private:
  std::vector<std::string> headings_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

/// Format a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision);

}  // namespace bd::util
