#include "util/serialize.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/check.hpp"
#include "util/faultinject.hpp"

namespace bd::util {

namespace {

/// CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  const std::uint32_t* table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// BinaryWriter
// ---------------------------------------------------------------------------

void BinaryWriter::write_u8(std::uint8_t v) {
  buffer_.push_back(static_cast<std::byte>(v));
}

void BinaryWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::write_i64(std::int64_t v) {
  write_u64(static_cast<std::uint64_t>(v));
}

void BinaryWriter::write_f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  write_u64(bits);
}

void BinaryWriter::write_bool(bool v) { write_u8(v ? 1 : 0); }

void BinaryWriter::write_string(std::string_view s) {
  write_u64(s.size());
  for (char c : s) buffer_.push_back(static_cast<std::byte>(c));
}

void BinaryWriter::write_f64_span(std::span<const double> values) {
  write_u64(values.size());
  for (double v : values) write_f64(v);
}

void BinaryWriter::write_bytes(std::span<const std::byte> bytes) {
  write_u64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

// ---------------------------------------------------------------------------
// BinaryReader
// ---------------------------------------------------------------------------

const std::byte* BinaryReader::take(std::size_t n) {
  BD_CHECK_MSG(remaining() >= n, "truncated payload: need "
                                     << n << " bytes, have " << remaining());
  const std::byte* p = payload_.data() + offset_;
  offset_ += n;
  return p;
}

std::uint8_t BinaryReader::read_u8() {
  return static_cast<std::uint8_t>(*take(1));
}

std::uint32_t BinaryReader::read_u32() {
  const std::byte* p = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  const std::byte* p = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::int64_t BinaryReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

double BinaryReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

bool BinaryReader::read_bool() { return read_u8() != 0; }

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  BD_CHECK_MSG(n <= remaining(), "truncated payload: string of " << n
                                     << " bytes, have " << remaining());
  const std::byte* p = take(static_cast<std::size_t>(n));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(n));
}

std::vector<double> BinaryReader::read_f64_vector() {
  const std::uint64_t n = read_u64();
  BD_CHECK_MSG(n * sizeof(double) <= remaining(),
               "truncated payload: f64 array of " << n << " elements");
  std::vector<double> out(static_cast<std::size_t>(n));
  for (double& v : out) v = read_f64();
  return out;
}

void BinaryReader::read_f64_into(std::span<double> out) {
  const std::uint64_t n = read_u64();
  BD_CHECK_MSG(n == out.size(), "f64 array size mismatch: stored "
                                    << n << ", expected " << out.size());
  for (double& v : out) v = read_f64();
}

std::vector<std::byte> BinaryReader::read_bytes() {
  const std::uint64_t n = read_u64();
  BD_CHECK_MSG(n <= remaining(), "truncated payload: byte block of " << n
                                     << " bytes, have " << remaining());
  const std::byte* p = take(static_cast<std::size_t>(n));
  return std::vector<std::byte>(p, p + n);
}

void write_nested_f64(BinaryWriter& out,
                      const std::vector<std::vector<double>>& values) {
  out.write_u64(values.size());
  for (const auto& v : values) out.write_f64_span(v);
}

std::vector<std::vector<double>> read_nested_f64(BinaryReader& in) {
  const std::uint64_t n = in.read_u64();
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(in.read_f64_vector());
  return out;
}

// ---------------------------------------------------------------------------
// Checked files
// ---------------------------------------------------------------------------

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

void append_header(std::vector<std::byte>& out, std::uint32_t magic,
                   std::uint32_t version, std::uint64_t payload_size,
                   std::uint32_t crc) {
  BinaryWriter header;
  header.write_u32(magic);
  header.write_u32(version);
  header.write_u64(payload_size);
  header.write_u32(crc);
  const auto bytes = header.payload();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

}  // namespace

void write_checked_file(const std::string& path, std::uint32_t magic,
                        std::uint32_t version,
                        std::span<const std::byte> payload) {
  std::vector<std::byte> file;
  file.reserve(payload.size() + 20);
  append_header(file, magic, version, payload.size(), crc32(payload));
  file.insert(file.end(), payload.begin(), payload.end());

  // Deterministic crash-mid-write fault: flush only a prefix of the temp
  // file and bail before the rename — the previous snapshot must survive.
  std::size_t write_size = file.size();
  const bool truncate_fault =
      faultinject::enabled() &&
      faultinject::fire(faultinject::FaultClass::kCheckpointTruncate, -1)
          .has_value();
  if (truncate_fault) write_size = file.size() / 2;

  // The temp name must be unique per process *and* per writer: two sims
  // checkpointing into the same directory (or two processes sharing a
  // spool) must never write the same tmp file, or one rename publishes
  // the other's half-written bytes. The final rename stays atomic because
  // the tmp lives in the destination directory.
  static std::atomic<std::uint64_t> g_tmp_seq{0};
  const std::uint64_t seq =
      g_tmp_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(seq);
  {
    FileHandle f(std::fopen(tmp.c_str(), "wb"));
    BD_CHECK_MSG(f != nullptr, "cannot open " << tmp << " for writing");
    const std::size_t written =
        std::fwrite(file.data(), 1, write_size, f.get());
    if (written != write_size || std::fflush(f.get()) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      BD_CHECK_MSG(false, "short write to " << tmp);
    }
  }
  if (truncate_fault) {
    std::remove(tmp.c_str());
    BD_CHECK_MSG(false, "fault injected: checkpoint write to "
                            << path << " truncated mid-file");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    BD_CHECK_MSG(false, "cannot rename " << tmp << " over " << path);
  }
}

std::vector<std::byte> read_checked_file(const std::string& path,
                                         std::uint32_t magic,
                                         std::uint32_t& version_out) {
  FileHandle f(std::fopen(path.c_str(), "rb"));
  BD_CHECK_MSG(f != nullptr, "cannot open checkpoint file: " << path);
  std::vector<std::byte> file;
  std::byte chunk[65536];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f.get())) > 0) {
    file.insert(file.end(), chunk, chunk + n);
  }
  BD_CHECK_MSG(std::ferror(f.get()) == 0, "read error on " << path);

  constexpr std::size_t kHeaderSize = 20;  // magic + version + size + crc
  BD_CHECK_MSG(file.size() >= kHeaderSize,
               path << ": too short to be a checkpoint (" << file.size()
                    << " bytes)");
  BinaryReader header(std::span<const std::byte>(file.data(), kHeaderSize));
  const std::uint32_t stored_magic = header.read_u32();
  BD_CHECK_MSG(stored_magic == magic,
               path << ": bad magic 0x" << std::hex << stored_magic
                    << ", expected 0x" << magic);
  version_out = header.read_u32();
  const std::uint64_t payload_size = header.read_u64();
  const std::uint32_t stored_crc = header.read_u32();
  BD_CHECK_MSG(file.size() - kHeaderSize == payload_size,
               path << ": truncated payload — header declares " << payload_size
                    << " bytes, file holds " << (file.size() - kHeaderSize));
  const std::span<const std::byte> payload(file.data() + kHeaderSize,
                                           static_cast<std::size_t>(payload_size));
  const std::uint32_t actual_crc = crc32(payload);
  BD_CHECK_MSG(actual_crc == stored_crc,
               path << ": CRC mismatch — stored 0x" << std::hex << stored_crc
                    << ", computed 0x" << actual_crc);
  return std::vector<std::byte>(payload.begin(), payload.end());
}

// ---------------------------------------------------------------------------
// Append-only CRC-framed journal
// ---------------------------------------------------------------------------

void append_journal_record(const std::string& path,
                           std::span<const std::byte> payload) {
  BinaryWriter frame;
  frame.write_u32(kJournalMarker);
  frame.write_u32(static_cast<std::uint32_t>(payload.size()));
  frame.write_u32(crc32(payload));
  FileHandle f(std::fopen(path.c_str(), "ab"));
  BD_CHECK_MSG(f != nullptr, "cannot open journal " << path << " for append");
  const auto header = frame.payload();
  const bool ok =
      std::fwrite(header.data(), 1, header.size(), f.get()) == header.size() &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), f.get()) ==
           payload.size()) &&
      std::fflush(f.get()) == 0;
  BD_CHECK_MSG(ok, "short append to journal " << path);
}

JournalReadResult read_journal_records(const std::string& path) {
  JournalReadResult result;
  FileHandle f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return result;  // no journal yet: zero records
  std::vector<std::byte> file;
  std::byte chunk[65536];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f.get())) > 0) {
    file.insert(file.end(), chunk, chunk + n);
  }
  BD_CHECK_MSG(std::ferror(f.get()) == 0, "read error on journal " << path);

  constexpr std::size_t kFrameHeader = 12;  // marker + size + crc
  std::size_t offset = 0;
  while (offset < file.size()) {
    // A frame that cannot fully fit in the remaining bytes is a torn tail
    // append — tolerated. Anything else inconsistent is corruption.
    if (file.size() - offset < kFrameHeader) {
      result.truncated_tail = true;
      break;
    }
    BinaryReader header(
        std::span<const std::byte>(file.data() + offset, kFrameHeader));
    const std::uint32_t marker = header.read_u32();
    BD_CHECK_MSG(marker == kJournalMarker,
                 path << ": bad journal frame marker 0x" << std::hex << marker
                      << " at byte offset " << std::dec << offset);
    const std::uint32_t size = header.read_u32();
    const std::uint32_t stored_crc = header.read_u32();
    if (file.size() - offset - kFrameHeader < size) {
      result.truncated_tail = true;
      break;
    }
    const std::span<const std::byte> payload(file.data() + offset +
                                                 kFrameHeader,
                                             size);
    const std::uint32_t actual_crc = crc32(payload);
    if (actual_crc != stored_crc) {
      // A torn write can flush a full-length frame with garbage bytes; a
      // CRC mismatch on the very last frame is that case. Mid-file, it is
      // corruption and must fail loudly.
      if (offset + kFrameHeader + size == file.size()) {
        result.truncated_tail = true;
        break;
      }
      BD_CHECK_MSG(false, path << ": journal frame CRC mismatch at byte offset "
                               << offset << " — stored 0x" << std::hex
                               << stored_crc << ", computed 0x" << actual_crc);
    }
    result.records.emplace_back(payload.begin(), payload.end());
    offset += kFrameHeader + size;
  }
  return result;
}

}  // namespace bd::util
