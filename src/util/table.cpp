#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace bd::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

ConsoleTable::ConsoleTable(std::vector<std::string> headings)
    : headings_(std::move(headings)) {
  BD_CHECK_MSG(!headings_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  BD_CHECK_MSG(cells.size() == headings_.size(),
               "row has " << cells.size() << " cells, expected "
                          << headings_.size());
  rows_.push_back(std::move(cells));
}

ConsoleTable& ConsoleTable::cell(const std::string& value) {
  pending_.push_back(value);
  return *this;
}

ConsoleTable& ConsoleTable::cell(double value, int precision) {
  pending_.push_back(format_double(value, precision));
  return *this;
}

ConsoleTable& ConsoleTable::cell(std::int64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

void ConsoleTable::end_row() {
  add_row(pending_);
  pending_.clear();
}

std::string ConsoleTable::str() const {
  std::vector<std::size_t> widths(headings_.size());
  for (std::size_t c = 0; c < headings_.size(); ++c) {
    widths[c] = headings_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&]() {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  emit_rule();
  emit_row(headings_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

void ConsoleTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace bd::util
