#pragma once
/// \file faultinject.hpp
/// Deterministic fault-injection harness (off by default). Robustness
/// claims are only testable if each failure class can be provoked on
/// demand, at a chosen step, reproducibly — so the guarded-simulation
/// tests install a *fault plan* and assert that the health monitor and
/// degradation ladder actually contain every class.
///
/// A plan is a spec string, from the `BD_FAULT` environment variable or
/// `install()` (tests):
///
///   spec   := fault (';' fault)*
///   fault  := class [ '@' step ] [ ':' count ]
///   class  := grid_nan | forecast | checkpoint_truncate | pool_throw
///           | slow_step
///
/// e.g. `BD_FAULT="grid_nan@3:8;pool_throw@5"` poisons 8 moment-grid cells
/// with NaN at step 3 and throws from a pool job at step 5. Each fault
/// entry fires exactly once (one-shot); omitting `@step` arms the fault
/// for the next matching site regardless of step. Injection indices are
/// derived from a fixed per-entry seed, so a given spec perturbs the
/// simulation identically on every run.
///
/// Plans live in a **FaultHarness**. The process-wide default harness is
/// what `BD_FAULT` bootstraps and what the free functions target, so a
/// single simulation behaves exactly as before. Concurrent simulations
/// each get their own harness (core/fleet seeds it from the sim's own
/// seed) installed with a **FaultScope** — a thread-local RAII override,
/// propagated to pool workers for the duration of each parallel job —
/// so one sim's `class[@step][:count]` budget can never be consumed by a
/// neighbour's step loop.
///
/// Cost when idle: call sites gate on `enabled()`, a single relaxed
/// atomic load that is false unless a plan with unfired entries is
/// installed — the defaults-off hot path stays branch-predictable.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace bd::util::faultinject {

/// The supported failure classes and where they are injected.
enum class FaultClass : std::uint8_t {
  kGridNan = 0,          ///< NaN-poison deposited moment grids (simulation)
  kForecastCorrupt = 1,  ///< scramble forecast patterns (predictive solver)
  kCheckpointTruncate = 2,  ///< crash mid-checkpoint-write (serialize)
  kPoolThrow = 3,        ///< throw from a thread-pool job body (forecast)
  kSlowStep = 4,  ///< stall a step by `count` milliseconds (simulation) —
                  ///< exercises the fleet quantum watchdog deterministically
};

/// Parameters of a fired fault.
struct Injection {
  std::uint32_t count = 1;  ///< how many cells/values to corrupt
  std::uint64_t seed = 0;   ///< deterministic per-entry RNG seed
};

/// One fault plan: a set of one-shot entries plus the fired tally.
/// Instances are independent; all methods are thread-safe.
class FaultHarness {
 public:
  FaultHarness();
  ~FaultHarness();
  FaultHarness(const FaultHarness&) = delete;
  FaultHarness& operator=(const FaultHarness&) = delete;

  /// The process-wide default harness (never destroyed). First call
  /// lazily installs the `BD_FAULT` environment spec into it.
  static FaultHarness& default_harness();

  /// Replace the plan with `spec` (grammar above; "" clears). Entry seeds
  /// mix in `seed_base` so two harnesses running the same spec corrupt
  /// different cells; `seed_base = 0` reproduces the historical seeds
  /// bit-for-bit. Throws bd::CheckError on a malformed spec.
  void install(const std::string& spec, std::uint64_t seed_base = 0);

  /// Remove all faults (fired and pending).
  void clear();

  /// True while the plan has unfired entries (one relaxed atomic load).
  bool armed() const;

  /// One-shot trigger: if an unfired fault of `cls` is armed for `step`
  /// (or armed step-wildcard), consume it and return its parameters.
  /// Thread-safe; exactly one caller wins a given entry.
  std::optional<Injection> fire(FaultClass cls, std::int64_t step);

  /// Total entries fired since the plan was installed (mirrors the
  /// `faultinject.injections` telemetry counter).
  std::uint64_t fired_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Thread-local RAII override of the harness the free functions use.
/// A null harness keeps the previous target. Scopes nest; util/parallel
/// snapshots the submitting thread's scope into every pool job, exactly
/// like telemetry::TelemetryScope.
class FaultScope {
 public:
  explicit FaultScope(FaultHarness* harness);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultHarness* prev_;
};

/// The innermost scoped override on this thread (nullptr = none).
FaultHarness* scoped_harness();

/// The harness the free functions resolve to: the scoped override when
/// one is installed, else the default harness.
FaultHarness& current_harness();

/// Fast gate on the *current* harness (scoped else default). The first
/// call lazily installs the `BD_FAULT` environment spec into the default
/// harness.
bool enabled();

/// install/clear/fired_count of the **default** harness — the historical
/// process-wide API the guarded-simulation tests drive. Scoped harnesses
/// are managed through their owning object instead.
void install(const std::string& spec);
void clear();
std::uint64_t fired_count();

/// fire() on the current harness (scoped else default).
std::optional<Injection> fire(FaultClass cls, std::int64_t step);

}  // namespace bd::util::faultinject
