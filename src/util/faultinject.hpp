#pragma once
/// \file faultinject.hpp
/// Deterministic fault-injection harness (off by default). Robustness
/// claims are only testable if each failure class can be provoked on
/// demand, at a chosen step, reproducibly — so the guarded-simulation
/// tests install a *fault plan* and assert that the health monitor and
/// degradation ladder actually contain every class.
///
/// A plan is a spec string, from the `BD_FAULT` environment variable or
/// `install()` (tests):
///
///   spec   := fault (';' fault)*
///   fault  := class [ '@' step ] [ ':' count ]
///   class  := grid_nan | forecast | checkpoint_truncate | pool_throw
///
/// e.g. `BD_FAULT="grid_nan@3:8;pool_throw@5"` poisons 8 moment-grid cells
/// with NaN at step 3 and throws from a pool job at step 5. Each fault
/// entry fires exactly once (one-shot); omitting `@step` arms the fault
/// for the next matching site regardless of step. Injection indices are
/// derived from a fixed per-entry seed, so a given spec perturbs the
/// simulation identically on every run.
///
/// Cost when idle: call sites gate on `enabled()`, a single relaxed
/// atomic load that is false unless a plan with unfired entries is
/// installed — the defaults-off hot path stays branch-predictable.

#include <cstdint>
#include <optional>
#include <string>

namespace bd::util::faultinject {

/// The supported failure classes and where they are injected.
enum class FaultClass : std::uint8_t {
  kGridNan = 0,          ///< NaN-poison deposited moment grids (simulation)
  kForecastCorrupt = 1,  ///< scramble forecast patterns (predictive solver)
  kCheckpointTruncate = 2,  ///< crash mid-checkpoint-write (serialize)
  kPoolThrow = 3,        ///< throw from a thread-pool job body (forecast)
};

/// Fast gate: true only while a plan with unfired entries is installed.
/// The first call lazily installs the `BD_FAULT` environment spec.
bool enabled();

/// Replace the current plan with `spec` (see the grammar above; "" clears).
/// Throws bd::CheckError on a malformed spec.
void install(const std::string& spec);

/// Remove all faults (fired and pending).
void clear();

/// Parameters of a fired fault.
struct Injection {
  std::uint32_t count = 1;  ///< how many cells/values to corrupt
  std::uint64_t seed = 0;   ///< deterministic per-entry RNG seed
};

/// One-shot trigger: if an unfired fault of `cls` is armed for `step`
/// (or armed step-wildcard), consume it and return its parameters.
/// Thread-safe; exactly one caller wins a given entry.
std::optional<Injection> fire(FaultClass cls, std::int64_t step);

/// Total entries fired since the plan was installed (mirrors the
/// `faultinject.injections` telemetry counter).
std::uint64_t fired_count();

}  // namespace bd::util::faultinject
