#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/telemetry.hpp"

namespace bd::util {

namespace {
/// Set while a thread is executing pool work; nested loops detect it and
/// run serially instead of re-entering the pool.
thread_local bool tls_in_pool_work = false;
}  // namespace

unsigned configured_threads() {
  if (const char* env = std::getenv("BD_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// One fork-join loop in flight. `next` hands out chunks; `active` counts
/// workers currently inside work_on (guarded by the pool mutex).
struct ThreadPool::Job {
  std::size_t end = 0;
  std::size_t grain = 1;
  const ChunkFn* body = nullptr;
  // The submitting thread's telemetry/fault scopes, installed on every
  // worker for the duration of this job so a scoped simulation stays
  // scoped across its own parallel loops (see telemetry::TelemetryScope).
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::TraceSession* trace = nullptr;
  faultinject::FaultHarness* harness = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  int active = 0;                 // guarded by Impl::mu
  std::exception_ptr error;       // guarded by Impl::mu
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable wake;   // workers: new job or shutdown
  std::condition_variable done;   // caller: job quiesced
  Job* job = nullptr;             // guarded by mu
  std::uint64_t generation = 0;   // guarded by mu; bumps per job
  bool stop = false;              // guarded by mu
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(unsigned threads) : impl_(std::make_unique<Impl>()) {
  const unsigned lanes = threads > 0 ? threads : 1;
  impl_->workers.reserve(lanes - 1);
  for (unsigned i = 0; i + 1 < lanes; ++i) {
    impl_->workers.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

unsigned ThreadPool::num_threads() const {
  return static_cast<unsigned>(impl_->workers.size()) + 1;
}

std::size_t ThreadPool::work_on(Job& job) {
  std::size_t claimed = 0;
  for (;;) {
    if (job.abort.load(std::memory_order_relaxed)) break;
    const std::size_t lo =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (lo >= job.end) break;
    const std::size_t hi = std::min(job.end, lo + job.grain);
    ++claimed;
    (*job.body)(lo, hi);
  }
  return claimed;
}

void ThreadPool::worker_loop(unsigned index) {
  tls_in_pool_work = true;
  telemetry::TraceSession::global().set_current_thread_name(
      "pool-worker-" + std::to_string(index));
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(impl_->mu);
  for (;;) {
    impl_->wake.wait(
        lk, [&] { return impl_->stop || impl_->generation != seen; });
    if (impl_->stop) return;
    seen = impl_->generation;
    Job* job = impl_->job;
    if (job == nullptr) continue;  // job already quiesced
    ++job->active;
    lk.unlock();
    std::exception_ptr err;
    std::size_t claimed = 0;
    try {
      const telemetry::TelemetryScope scope(job->metrics, job->trace);
      const faultinject::FaultScope fault_scope(job->harness);
      telemetry::TraceSpan span("pool.work", "pool");
      claimed = work_on(*job);
      span.arg("chunks", static_cast<std::uint64_t>(claimed));
    } catch (...) {
      err = std::current_exception();
    }
    if (claimed > 0) {
      telemetry::counter_add("pool.chunks_claimed.worker", claimed);
    }
    lk.lock();
    if (err) {
      if (!job->error) job->error = err;
      job->abort.store(true, std::memory_order_relaxed);
    }
    if (--job->active == 0) impl_->done.notify_all();
  }
}

void ThreadPool::for_chunks(std::size_t begin, std::size_t end,
                            std::size_t grain, const ChunkFn& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  // Serial fast paths: one lane, a nested call from inside pool work, or a
  // range that fits in a single chunk anyway.
  if (impl_->workers.empty() || tls_in_pool_work || end - begin <= grain) {
    std::size_t lo = begin;
    while (lo < end) {
      const std::size_t hi = std::min(end, lo + grain);
      body(lo, hi);
      lo = hi;
    }
    if (!tls_in_pool_work) telemetry::counter_add("pool.serial_loops");
    return;
  }

  telemetry::counter_add("pool.jobs");
  telemetry::TraceSpan job_span("pool.job", "pool");
  job_span.arg("items", static_cast<std::uint64_t>(end - begin));
  job_span.arg("grain", static_cast<std::uint64_t>(grain));

  Job job;
  job.end = end;
  job.grain = grain;
  job.body = &body;
  job.metrics = telemetry::scoped_metrics();
  job.trace = telemetry::scoped_trace();
  job.harness = faultinject::scoped_harness();
  job.next.store(begin, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->wake.notify_all();

  const bool was_in_pool_work = tls_in_pool_work;
  tls_in_pool_work = true;
  std::exception_ptr caller_err;
  std::size_t caller_claimed = 0;
  try {
    caller_claimed = work_on(job);
  } catch (...) {
    caller_err = std::current_exception();
  }
  tls_in_pool_work = was_in_pool_work;
  if (caller_claimed > 0) {
    telemetry::counter_add("pool.chunks_claimed.caller", caller_claimed);
  }

  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    if (caller_err) {
      if (!job.error) job.error = caller_err;
      job.abort.store(true, std::memory_order_relaxed);
    }
    impl_->done.wait(lk, [&] {
      return job.active == 0 &&
             (job.next.load(std::memory_order_relaxed) >= job.end ||
              job.abort.load(std::memory_order_relaxed));
    });
    impl_->job = nullptr;  // late wakers see no job and go back to sleep
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(configured_threads());
  return *g_pool;
}

void ThreadPool::set_global_threads(unsigned threads) {
  BD_CHECK_MSG(!tls_in_pool_work,
               "cannot resize the global pool from inside pool work");
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool.reset();  // joins the old workers before the new pool spawns
  g_pool = std::make_unique<ThreadPool>(
      threads > 0 ? threads : configured_threads());
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t n = end - begin;
  const std::size_t grain =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(
                                        pool.num_threads()) *
                                    4));
  pool.for_chunks(begin, end, grain,
                  [&fn](std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) fn(i);
                  });
}

void parallel_for_chunked(std::size_t begin, std::size_t end,
                          std::size_t grain,
                          const ThreadPool::ChunkFn& body) {
  if (end <= begin) return;
  ThreadPool& pool = ThreadPool::global();
  if (grain == 0) {
    grain = std::max<std::size_t>(
        1, (end - begin) /
               (static_cast<std::size_t>(pool.num_threads()) * 4));
  }
  pool.for_chunks(begin, end, grain, body);
}

}  // namespace bd::util
