#pragma once
/// \file simd.hpp
/// Compile-time + runtime SIMD dispatch for the batched evaluation engine.
///
/// Policy (see docs/ARCHITECTURE.md, "The SIMD evaluation engine"):
///  - Compile time: AVX2 kernels are compiled only on x86-64 GCC/Clang,
///    using per-function `__attribute__((target("avx2")))` so the rest of
///    the translation unit — and the rest of the build — needs no global
///    `-mavx2`. Other architectures get the scalar batched path.
///  - Run time: the AVX2 path is taken only if the CPU reports AVX2 and the
///    `BD_SIMD` environment variable does not force it off. `BD_SIMD=off`
///    (or `scalar` / `0`) is the escape hatch: it pins every batched
///    evaluation to the scalar reference path.
///  - Identity contract: whichever level is active, batched results are
///    bitwise identical to the scalar `eval()` reference — vector lanes run
///    the same IEEE op sequence per sample, and FMA contraction is never
///    used on the identity path (a fused multiply-add rounds once, the
///    scalar reference rounds twice).
///
/// The active level is resolved once per process (first query) and cached;
/// tests and benches that need to exercise a specific path use
/// override_level(), which is not thread-safe and intended for
/// single-threaded setup code only.

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BD_SIMD_X86 1
#else
#define BD_SIMD_X86 0
#endif

namespace bd::simd {

/// Instruction-set level a batched kernel can dispatch to.
enum class Level : int {
  kScalar = 0,  ///< scalar reference path (always available)
  kAvx2 = 1,    ///< 4-lane double AVX2 path (x86-64, runtime-checked)
};

inline const char* level_name(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

/// True if this binary contains the AVX2 kernels at all.
constexpr bool compiled_with_avx2() { return BD_SIMD_X86 != 0; }

/// True if the CPU this process runs on supports AVX2.
inline bool cpu_supports_avx2() {
#if BD_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace detail {
// 0 = unresolved, 1 = scalar, 2 = avx2; resolved on first active_level().
inline std::atomic<int>& level_state() {
  static std::atomic<int> state{0};
  return state;
}

inline Level resolve_level() {
  if (const char* env = std::getenv("BD_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
        std::strcmp(env, "0") == 0) {
      return Level::kScalar;
    }
  }
  return (compiled_with_avx2() && cpu_supports_avx2()) ? Level::kAvx2
                                                       : Level::kScalar;
}
}  // namespace detail

/// The level batched kernels dispatch to right now (cached after first call).
inline Level active_level() {
  int state = detail::level_state().load(std::memory_order_relaxed);
  if (state == 0) {
    state = static_cast<int>(detail::resolve_level()) + 1;
    detail::level_state().store(state, std::memory_order_relaxed);
  }
  return static_cast<Level>(state - 1);
}

/// Force a specific level (tests/benches only; call from single-threaded
/// setup). Forcing kAvx2 on a CPU without AVX2 falls back to scalar.
inline void override_level(Level level) {
  if (level == Level::kAvx2 && !cpu_supports_avx2()) level = Level::kScalar;
  detail::level_state().store(static_cast<int>(level) + 1,
                              std::memory_order_relaxed);
}

/// Drop any override / cached value; the next active_level() re-reads the
/// environment and CPU.
inline void reset_level() {
  detail::level_state().store(0, std::memory_order_relaxed);
}

}  // namespace bd::simd
