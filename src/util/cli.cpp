#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace bd::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_string("trace", "",
             "capture telemetry spans and write chrome://tracing JSON to "
             "this path at exit (same as BD_TRACE=<path>)");
  add_string("checkpoint", "",
             "write simulation checkpoints to this path (atomic snapshot; "
             "see docs/ROBUSTNESS.md)");
  add_int("checkpoint-every", 0,
          "checkpoint every N simulation steps (0 = off; needs --checkpoint)");
  add_string("resume", "",
             "restore the simulation from this checkpoint before stepping");
}

const std::string& ArgParser::checkpoint_path() const {
  return get_string("checkpoint");
}

std::int64_t ArgParser::checkpoint_every() const {
  return get_int("checkpoint-every");
}

const std::string& ArgParser::resume_path() const {
  return get_string("resume");
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  options_[name] =
      Option{Kind::kInt, help, std::to_string(default_value),
             std::to_string(default_value)};
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  std::ostringstream os;
  os << default_value;
  options_[name] = Option{Kind::kDouble, help, os.str(), os.str()};
}

void ArgParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{Kind::kString, help, default_value, default_value};
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::kFlag, help, "0", "0"};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(),
                   arg.c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option '--%s'\n", program_.c_str(),
                   name.c_str());
      return false;
    }
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      opt.value = has_value ? value : "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '--%s' needs a value\n",
                     program_.c_str(), name.c_str());
        return false;
      }
      value = argv[++i];
    }
    opt.value = value;
  }
  if (const std::string& path = get_string("trace"); !path.empty()) {
    telemetry::TraceSession& session = telemetry::TraceSession::global();
    session.set_output_path(path);
    session.start();
    static bool flush_registered = false;
    if (!flush_registered) {
      flush_registered = true;
      std::atexit([] { telemetry::TraceSession::global().flush(); });
    }
  }
  return true;
}

const ArgParser::Option& ArgParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  BD_CHECK_MSG(it != options_.end(), "option not registered: " << name);
  BD_CHECK_MSG(it->second.kind == kind, "option type mismatch: " << name);
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool ArgParser::get_flag(const std::string& name) const {
  const std::string& v = find(name, Kind::kFlag).value;
  return v == "1" || v == "true" || v == "yes";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::kInt: os << " <int>"; break;
      case Kind::kDouble: os << " <float>"; break;
      case Kind::kString: os << " <string>"; break;
      case Kind::kFlag: break;
    }
    os << "\n      " << opt.help;
    if (opt.kind != Kind::kFlag) os << " (default: " << opt.default_value << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace bd::util
