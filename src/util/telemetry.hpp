#pragma once
/// \file telemetry.hpp
/// Observability: a metrics registry and a span tracer.
///
/// The paper's whole argument is quantitative — per-phase wall time,
/// forecast quality, cluster balance — so every subsystem reports into one
/// uniform substrate instead of ad-hoc timers:
///
///  * **MetricsRegistry** — named counters (monotonic u64), gauges
///    (last-written double) and histograms (fixed log-2 buckets). Updates
///    go to per-thread shards (one uncontended mutex each); a snapshot
///    merges the shards in a deterministic order, so integer aggregates are
///    bit-identical for any thread count (see docs/METRICS.md).
///
///  * **TraceSession** — nestable wall-clock spans (`BD_TRACE_SPAN("x")`)
///    recorded per thread and exported as (a) a per-name aggregate table /
///    CSV via util/table, and (b) Chrome `trace_events` JSON that
///    `chrome://tracing` and https://ui.perfetto.dev load directly,
///    including the thread-pool worker lanes of util/parallel.
///
/// Both are ordinary instantiable classes; `global()` returns the
/// process-wide default instance the free functions and `BD_TRACE` /
/// `BD_METRICS` bootstrap use. Code that must keep several simulations'
/// telemetry apart (core/fleet) creates one registry/session per
/// simulation and routes the existing call sites to it with a
/// **TelemetryScope** — a thread-local RAII override picked up by the free
/// functions and by TraceSpan, and propagated to pool workers for the
/// duration of each parallel job (util/parallel). Every instance owns its
/// own shards, lanes, clock epoch and gauge write sequence, so concurrent
/// simulations can never interleave metrics — in particular the "last
/// write wins" gauge rule is resolved per registry, not process-wide.
///
/// Capture is off by default and costs one relaxed atomic load per
/// would-be span. Turn it on with the `BD_TRACE=out.json` environment
/// variable (every binary; the file and a summary are emitted at exit) or
/// the `--trace=out.json` flag that util/cli adds to every ArgParser
/// binary. Metric counters are on by default; they are a handful of shard
/// updates per solver step, not per-particle work. They can be disabled
/// process-wide with `BD_METRICS=0` (or set_metrics_enabled(false)), which
/// turns the free-function update paths into early returns so benchmarks
/// can measure the solve path with zero telemetry overhead.
///
/// Span and metric *names* are literal strings by convention — the CI
/// consistency check (tools/check_docs.sh) greps them out of the source
/// and requires each one to be documented in docs/METRICS.md.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace bd::util::telemetry {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Number of log-2 histogram buckets. Bucket 0 holds values < 1 (and any
/// non-finite ones); bucket b in [1, kHistogramBuckets-2] holds
/// [2^(b-1), 2^b); the last bucket holds everything at or above
/// 2^(kHistogramBuckets-2).
inline constexpr std::size_t kHistogramBuckets = 40;

/// Bucket index for a value (see kHistogramBuckets for the edges).
std::size_t histogram_bucket_index(double value);

/// Inclusive lower bound of bucket `b` (0 for bucket 0).
double histogram_bucket_lower_bound(std::size_t b);

/// Merged state of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;  ///< total recorded values
  double sum = 0.0;         ///< sum of recorded values
  double min = 0.0;         ///< smallest recorded value (0 if count == 0)
  double max = 0.0;         ///< largest recorded value (0 if count == 0)
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// A deterministic merge of every per-thread shard at one point in time.
/// Maps are keyed by metric name (sorted), so iteration order — and the
/// rendered summaries — are reproducible.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Metrics registry. All methods are thread-safe; updates touch only the
/// calling thread's shard of this instance (one uncontended mutex), so
/// concurrent writers never contend with each other. Instances are
/// independent: each owns its shards and its gauge write sequence.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default instance (never destroyed — safe from
  /// atexit hooks).
  static MetricsRegistry& global();

  /// Add `delta` to counter `name` (creates it at 0 on first use).
  void counter_add(std::string_view name, std::uint64_t delta = 1);

  /// Set gauge `name` to `value` (last write across all threads wins;
  /// "last" is defined by this registry's write sequence, so the merge is
  /// deterministic for a deterministic program order and independent
  /// registries never perturb each other's gauges).
  void gauge_set(std::string_view name, double value);

  /// Record `value` into histogram `name`.
  void histogram_record(std::string_view name, double value);

  /// Merge every shard (in shard-creation order) into one snapshot.
  MetricsSnapshot snapshot() const;

  /// Zero every metric in every shard (shards themselves persist).
  void reset();

  /// Aligned-text summary of all metrics, rendered with util::ConsoleTable.
  std::string summary() const;

  /// CSV summary: name,kind,count,sum_or_value,mean,min,max.
  std::string summary_csv() const;

 private:
  struct Shard;
  struct Impl;
  Shard& local_shard() const;

  std::unique_ptr<Impl> impl_;
};

/// Convenience free functions on the *current* registry — the innermost
/// TelemetryScope override on this thread, else the global instance (these
/// exact spellings are what tools/check_docs.sh greps for). They
/// early-return when metric capture is disabled (see metrics_enabled).
void counter_add(std::string_view name, std::uint64_t delta = 1);
void gauge_set(std::string_view name, double value);
void histogram_record(std::string_view name, double value);

/// Whether the free-function metric updates are live. Defaults to true;
/// bootstrapped from the BD_METRICS environment variable ("0" disables).
/// Hot loops can check this once to skip metric preparation work entirely.
bool metrics_enabled();

/// Enable/disable metric capture process-wide.
void set_metrics_enabled(bool enabled);

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// One finished span, as stored per thread.
struct TraceEvent {
  std::string name;      ///< span name ("sim.deposit", "simt.launch", ...)
  const char* category;  ///< coarse grouping ("sim", "simt", "pool", ...)
  double ts_us;          ///< start, microseconds since session epoch
  double dur_us;         ///< duration in microseconds
  std::string args;      ///< pre-rendered JSON object body ("" = no args)
};

/// Span capture session. Disabled by default; when disabled, spans cost
/// one relaxed atomic load and record nothing. Instances are independent
/// (own lanes, own clock epoch); TraceSpan records into the innermost
/// TelemetryScope session on the current thread, else the global one.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The process-wide default instance. First call also bootstraps from
  /// the BD_TRACE environment variable: if set (to an output path),
  /// capture starts immediately and an atexit hook writes the JSON file
  /// plus a per-name summary (to stderr) when the process ends.
  static TraceSession& global();

  /// Whether spans are being recorded.
  bool enabled() const;

  /// Start capturing (idempotent).
  void start();

  /// Stop capturing (already-recorded events are kept until clear()).
  void stop();

  /// Drop all recorded events (thread ids and names are kept).
  void clear();

  /// Where the atexit hook (or flush()) writes the chrome-trace JSON.
  void set_output_path(std::string path);
  const std::string& output_path() const;

  /// Microseconds since the session epoch (process-wide monotonic clock).
  double now_us() const;

  /// Name the calling thread in the exported trace ("pool-worker-3", ...).
  void set_current_thread_name(std::string name);

  /// Record one complete span on the calling thread's lane. `args` must be
  /// empty or a JSON object body without the surrounding braces
  /// (`"k":1,"s":"v"`). Used by TraceSpan; callable directly for
  /// out-of-band events.
  void record_complete(std::string name, const char* category, double ts_us,
                       double dur_us, std::string args);

  /// All events of all threads in (thread, record) order.
  std::size_t event_count() const;

  /// Chrome `trace_events` JSON document (JSON Object Format: a
  /// {"traceEvents": [...], "displayTimeUnit": "ms"} object with "X"
  /// complete events and "M" thread_name metadata).
  std::string chrome_json() const;

  /// Write chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  /// Per-span-name aggregate (count, total/mean/min/max ms) as an aligned
  /// text table via util::ConsoleTable.
  std::string summary() const;

  /// CSV flavor of summary(): name,category,count,total_ms,mean_ms,min_ms,max_ms.
  std::string summary_csv() const;

  /// Write the JSON file (if an output path is set) and print the summary
  /// table to stderr. Called by the BD_TRACE atexit hook; idempotent.
  void flush();

 private:
  struct Lane;
  struct Impl;
  Lane& local_lane() const;

  std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// Scoped injection
// ---------------------------------------------------------------------------

/// Thread-local RAII override of the registry/session the free functions
/// and TraceSpan use. A null pointer keeps the previous target for that
/// slot (so a scope can redirect metrics without touching tracing).
/// Scopes nest; each destructor restores what it replaced. util/parallel
/// snapshots the submitting thread's scope into every pool job and
/// installs it on the participating workers, so a simulation whose
/// telemetry is scoped stays scoped across its own parallel loops.
class TelemetryScope {
 public:
  TelemetryScope(MetricsRegistry* metrics, TraceSession* trace);
  ~TelemetryScope();

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  MetricsRegistry* prev_metrics_;
  TraceSession* prev_trace_;
};

/// The innermost scoped override on this thread (nullptr = none).
MetricsRegistry* scoped_metrics();
TraceSession* scoped_trace();

/// The registry/session the free functions and TraceSpan resolve to:
/// the scoped override when one is installed, else the global instance.
MetricsRegistry& current_metrics();
TraceSession& current_trace();

/// RAII span: records [construction, destruction) on the calling thread
/// when the current TraceSession (scoped else global) is enabled; a no-op
/// otherwise. The session is resolved once at construction. Name and
/// category must outlive the span (string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "bd");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach an argument shown in the trace viewer's span details.
  void arg(const char* key, double value);
  void arg(const char* key, std::uint64_t value);
  void arg(const char* key, std::int64_t value);
  void arg(const char* key, const char* value);

  /// Whether this span is actually recording.
  bool active() const { return active_; }

 private:
  TraceSession* session_;  ///< resolved at construction (scoped else global)
  bool active_;
  double start_us_ = 0.0;
  const char* name_;
  const char* category_;
  std::string args_;
};

}  // namespace bd::util::telemetry

/// Shorthand for a scoped span with a unique local name.
#define BD_TRACE_SPAN_CONCAT2(a, b) a##b
#define BD_TRACE_SPAN_CONCAT(a, b) BD_TRACE_SPAN_CONCAT2(a, b)
#define BD_TRACE_SPAN(...)                                   \
  ::bd::util::telemetry::TraceSpan BD_TRACE_SPAN_CONCAT(     \
      bd_trace_span_, __LINE__)(__VA_ARGS__)
