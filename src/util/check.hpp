#pragma once
/// \file check.hpp
/// Lightweight precondition / invariant checking used across the library.
/// Checks are always on: this is simulation infrastructure, not a hot inner
/// loop (hot loops use BD_DCHECK which compiles out in release builds).

#include <sstream>
#include <stdexcept>
#include <string>

namespace bd {

/// Exception thrown when a BD_CHECK / BD_REQUIRE fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace bd

/// Verify a precondition; throws bd::CheckError on failure.
#define BD_CHECK(expr)                                                  \
  do {                                                                  \
    if (!(expr)) ::bd::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Verify a precondition with an explanatory message.
#define BD_CHECK_MSG(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream bd_os_;                                     \
      bd_os_ << msg;                                                 \
      ::bd::detail::check_failed(#expr, __FILE__, __LINE__, bd_os_.str()); \
    }                                                                \
  } while (0)

/// Debug-only check, removed when NDEBUG is defined.
#ifdef NDEBUG
#define BD_DCHECK(expr) ((void)0)
#else
#define BD_DCHECK(expr) BD_CHECK(expr)
#endif
