#pragma once
/// \file timer.hpp
/// Wall-clock timer for host-side phase timing (clustering, training, ...).

#include <chrono>

namespace bd::util {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows.
class AccumTimer {
 public:
  void start() { timer_.reset(); }
  void stop() { total_ += timer_.seconds(); }
  double total_seconds() const { return total_; }
  void reset() { total_ = 0.0; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

}  // namespace bd::util
