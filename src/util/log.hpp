#pragma once
/// \file log.hpp
/// Minimal leveled logger. Single global sink (stderr) with a runtime level.
/// Thread-safe at the line level (each log call formats then writes once).

#include <sstream>
#include <string>

namespace bd::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);

/// Current global level.
LogLevel log_level();

/// Write one formatted line to the sink if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace bd::util

#define BD_LOG_DEBUG ::bd::util::detail::LogStream(::bd::util::LogLevel::kDebug)
#define BD_LOG_INFO ::bd::util::detail::LogStream(::bd::util::LogLevel::kInfo)
#define BD_LOG_WARN ::bd::util::detail::LogStream(::bd::util::LogLevel::kWarn)
#define BD_LOG_ERROR ::bd::util::detail::LogStream(::bd::util::LogLevel::kError)
