#pragma once
/// \file parallel.hpp
/// The one host-parallelism primitive of the codebase: a persistent
/// fork-join thread pool with atomic-counter chunk scheduling.
///
/// Every parallel host phase — the SIMT executor's lane-execution pass,
/// force gathering, pattern forecasting, k-means assignment, particle
/// deposition — runs through `parallel_for` / `parallel_for_chunked` on the
/// process-wide pool, so thread budget and scheduling policy live in one
/// place.
///
/// Thread count: `BD_NUM_THREADS` environment variable if set (> 0),
/// otherwise `std::thread::hardware_concurrency()`. At 1 thread every loop
/// degenerates to a plain serial loop on the calling thread (no pool
/// traffic at all), so single-threaded runs carry no synchronization cost.
///
/// Guarantees:
///  * The calling thread participates in the work (a pool of N threads is
///    the caller plus N-1 workers).
///  * Exceptions thrown by the body are captured (first one wins), the
///    remaining chunks are abandoned, and the exception is rethrown on the
///    calling thread once the loop has quiesced.
///  * Nested parallel loops (a body issuing another parallel_for) execute
///    the inner loop serially on the calling worker — no deadlock, no
///    oversubscription.
///  * Scheduling is chunked by an atomic counter; *which* thread runs a
///    chunk is nondeterministic, so bodies must only write state disjoint
///    per index/chunk. Callers that need bit-for-bit reproducible floating
///    point reductions across thread counts must pick chunk boundaries
///    independent of the thread count and reduce the per-chunk partials
///    serially (see beam/deposit.cpp).
///
/// Observability: each parallel job emits a `pool.job` trace span on the
/// submitting thread and a `pool.work` span per participating worker, and
/// the pool maintains the `pool.*` counters (jobs, serial loops, chunks
/// claimed by caller vs workers) — see docs/METRICS.md. Workers name their
/// trace lanes `pool-worker-<n>`.

#include <cstddef>
#include <functional>
#include <memory>

namespace bd::util {

/// Thread count the process is configured for: BD_NUM_THREADS if set and
/// positive, else std::thread::hardware_concurrency() (min 1).
unsigned configured_threads();

class ThreadPool {
 public:
  /// Body of a chunked loop: invoked as body(lo, hi) over [lo, hi).
  using ChunkFn = std::function<void(std::size_t, std::size_t)>;

  /// Spawns `threads - 1` workers (the caller is the remaining lane).
  explicit ThreadPool(unsigned threads = configured_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes including the calling thread (>= 1).
  unsigned num_threads() const;

  /// Run body over [begin, end) in chunks of at most `grain` indices.
  /// Chunks are claimed from an atomic counter in ascending order; the
  /// caller participates and the call returns only after every chunk has
  /// finished (or been abandoned after an exception).
  void for_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                  const ChunkFn& body);

  /// The process-wide pool (lazily built with configured_threads()).
  static ThreadPool& global();

  /// Replace the global pool with one of `threads` lanes (0 = re-read the
  /// environment). Only safe while no parallel work is in flight; intended
  /// for tests and benchmark drivers that sweep thread counts.
  static void set_global_threads(unsigned threads);

 private:
  struct Job;
  struct Impl;

  void worker_loop(unsigned index);
  static std::size_t work_on(Job& job);

  std::unique_ptr<Impl> impl_;
};

/// parallel_for over the global pool: fn(i) for every i in [begin, end).
/// fn must be safe to call concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Chunked parallel_for over the global pool: body(lo, hi) for consecutive
/// subranges of [begin, end) of at most `grain` indices. With grain == 0 a
/// grain is chosen from the pool size.
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          std::size_t grain, const ThreadPool::ChunkFn& body);

}  // namespace bd::util
