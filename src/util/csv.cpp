#include "util/csv.hpp"

#include <charconv>
#include <cstdio>

#include "util/check.hpp"

namespace bd::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  BD_CHECK_MSG(out_.good(), "cannot open CSV file: " << path);
}

void CsvWriter::header(const std::vector<std::string>& names) {
  BD_CHECK_MSG(!header_written_ && rows_ == 0 && pending_.empty(),
               "header() must be the first write");
  write_row(names);
  header_written_ = true;
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  pending_.push_back(value);
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  pending_.emplace_back(buf);
  return *this;
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::cell(std::uint64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  BD_CHECK_MSG(!pending_.empty(), "end_row() with no cells");
  write_row(pending_);
  pending_.clear();
  ++rows_;
}

void CsvWriter::close() {
  BD_CHECK_MSG(pending_.empty(), "close() with an unfinished row");
  out_.close();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& raw) {
  if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
  std::string quoted = "\"";
  for (char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace bd::util
