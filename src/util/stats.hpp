#pragma once
/// \file stats.hpp
/// Small statistics helpers: moments, RMS error, least-squares line fit
/// (used e.g. to verify the MSE ∝ 1/N slope of Fig. 3).

#include <cstddef>
#include <span>

namespace bd::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance; returns 0 for fewer than two samples.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// sqrt(mean(x_i^2)).
double rms(std::span<const double> xs);

/// Mean squared difference between two equally-sized spans.
double mean_squared_error(std::span<const double> a, std::span<const double> b);

/// Maximum absolute difference between two equally-sized spans.
double max_abs_error(std::span<const double> a, std::span<const double> b);

/// Result of a least-squares straight-line fit y = slope*x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least-squares fit. Requires xs.size() == ys.size() >= 2.
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient.
double correlation(std::span<const double> a, std::span<const double> b);

}  // namespace bd::util
