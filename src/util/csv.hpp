#pragma once
/// \file csv.hpp
/// CSV writer used by benchmark harnesses to dump the series behind each
/// reproduced table/figure, so results can be re-plotted externally.

#include <fstream>
#include <string>
#include <vector>

namespace bd::util {

/// Streams rows of mixed string/number cells to a CSV file.
/// Quotes cells containing separators; numbers are written with
/// round-trippable precision.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws bd::CheckError if the file cannot open.
  explicit CsvWriter(const std::string& path);

  /// Write the header row. Must be the first row written, at most once.
  void header(const std::vector<std::string>& names);

  /// Begin accumulating a new row.
  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(const char* value) { return cell(std::string(value)); }
  CsvWriter& cell(double value);
  CsvWriter& cell(std::int64_t value);
  CsvWriter& cell(std::uint64_t value);
  CsvWriter& cell(int value) { return cell(static_cast<std::int64_t>(value)); }

  /// Finish the current row (writes it out).
  void end_row();

  /// Number of data rows written so far (excludes the header).
  std::size_t rows_written() const { return rows_; }

  /// Flush and close; further writes are invalid.
  void close();

 private:
  void write_row(const std::vector<std::string>& cells);
  static std::string escape(const std::string& raw);

  std::ofstream out_;
  std::vector<std::string> pending_;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

}  // namespace bd::util
