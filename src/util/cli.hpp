#pragma once
/// \file cli.hpp
/// Tiny command-line option parser for examples and benchmark binaries.
/// Supports --name=value, --name value, and boolean --flag forms.

#include <map>
#include <string>
#include <vector>

namespace bd::util {

/// Declarative option registry + parser.
///
///   ArgParser args("bench_table1", "Reproduces Table I");
///   args.add_int("particles", 100000, "number of macro-particles");
///   args.add_flag("full", "run the paper-scale sweep");
///   args.parse(argc, argv);            // exits on --help / parse error
///   int n = args.get_int("particles");
///
/// Every parser also registers a built-in `--trace=<out.json>` option: when
/// given, telemetry span capture (util/telemetry) starts and the chrome-
/// trace JSON plus a per-span summary are emitted when the process exits —
/// the CLI spelling of the `BD_TRACE=<out.json>` environment variable.
///
/// Simulation drivers additionally get built-in checkpoint/restart options
/// (see docs/ROBUSTNESS.md): `--checkpoint=<path>` with
/// `--checkpoint-every=<N>` periodically snapshots the simulation, and
/// `--resume=<path>` restores one before stepping. Binaries that do not
/// run a Simulation simply ignore them.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false (after printing usage) on --help or error;
  /// callers typically `if (!args.parse(...)) return 0;`.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Built-in checkpoint/restart options (empty / 0 when not given).
  const std::string& checkpoint_path() const;
  std::int64_t checkpoint_every() const;
  const std::string& resume_path() const;

  /// Usage text (also printed on --help).
  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;     // current (default or parsed) textual value
    std::string default_value;
  };
  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
};

}  // namespace bd::util
