#pragma once
/// \file problem.hpp
/// The shared problem description every rp-solver consumes, and the result
/// type they all produce (including the timing breakdown of Table II and
/// the profiler metrics of Table I).

#include <cstdint>

#include "beam/grid.hpp"
#include "beam/history.hpp"
#include "beam/wake.hpp"
#include "core/access_pattern.hpp"
#include "simt/metrics.hpp"

namespace bd::core {

struct SolverScratch;

/// One compute-retarded-potentials task: evaluate the rp-integral at every
/// node of the output grid for time step `step`.
struct RpProblem {
  const beam::GridHistory* history = nullptr;
  const beam::WakeModel* model = nullptr;
  std::int64_t step = 0;          ///< current time step k
  double sub_width = 1.0;         ///< c·Δt — width of each radial subregion
  std::uint32_t num_subregions = 12;  ///< κ
  double tolerance = 1e-6;        ///< τ

  /// Optional step-persistent scratch arena shared by the owning
  /// Simulation across steps (and across solvers — solve() calls are
  /// sequential). Null means the solver lazily creates and owns its own
  /// arena; either way hot-path buffers are reused, not reallocated.
  SolverScratch* scratch = nullptr;

  double r_max() const { return sub_width * num_subregions; }
  const beam::GridSpec& grid() const { return history->spec(); }
  std::size_t num_points() const { return grid().nodes(); }

  /// Physical coordinates of grid point `p` (row-major node index).
  void point_coords(std::size_t p, double& x, double& y) const {
    const beam::GridSpec& g = grid();
    x = g.x_at(static_cast<std::uint32_t>(p % g.nx));
    y = g.y_at(static_cast<std::uint32_t>(p / g.nx));
  }
};

/// What a solver returns.
struct SolveResult {
  beam::Grid2D values;    ///< rp-integral estimate at every node
  beam::Grid2D errors;    ///< accumulated error estimates
  PatternField observed;  ///< per-point observed access patterns
  simt::KernelMetrics metrics;  ///< merged over the solver's kernel launches

  double gpu_seconds = 0.0;         ///< modeled kernel time
  double clustering_seconds = 0.0;  ///< host clustering (Table II column)
  double train_seconds = 0.0;       ///< host model training
  double forecast_seconds = 0.0;    ///< host prediction + partition build
  double wall_seconds = 0.0;        ///< total host wall time of solve()

  std::uint64_t fallback_items = 0;  ///< intervals sent to the adaptive pass
  std::uint64_t kernel_intervals = 0;  ///< intervals evaluated in kernel 1

  /// Mean absolute error of the forecast access pattern against the
  /// observed one (0 for solvers that do not forecast / bootstrap steps).
  double forecast_mae = 0.0;

  /// Forecast values rewritten by the hint-boundary sanitizer (non-finite,
  /// negative or absurdly large predictions clipped before partition
  /// building). Nonzero values mean the predictor emitted garbage that was
  /// contained; the health monitor flags the step when the fraction is
  /// large (see docs/ROBUSTNESS.md).
  std::uint64_t sanitized_forecasts = 0;

  /// Sum of modeled GPU time and host overheads (the paper's overall time).
  double overall_seconds() const {
    return gpu_seconds + clustering_seconds + train_seconds +
           forecast_seconds;
  }
};

}  // namespace bd::core
