#include "core/forecast.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "quad/partition.hpp"
#include "util/check.hpp"

namespace bd::core {

std::uint32_t round_pow2(double count) {
  if (!(count > 1.0)) return 1;
  const double level = std::round(std::log2(count));
  return static_cast<std::uint32_t>(std::exp2(level));
}

std::vector<double> pattern_to_partition(std::span<const double> pattern,
                                         double sub_width, double r_max,
                                         double headroom) {
  BD_CHECK(sub_width > 0.0 && r_max > 0.0 && headroom > 0.0);
  std::vector<std::uint32_t> counts;
  counts.reserve(pattern.size());
  for (double n : pattern) counts.push_back(round_pow2(headroom * n));
  return quad::partition_from_counts(counts, sub_width, r_max);
}

std::vector<double> pattern_to_partition_adaptive(
    std::span<const double> pattern, const std::vector<double>& previous,
    double sub_width, double r_max, double headroom) {
  if (previous.size() < 2) {
    return pattern_to_partition(pattern, sub_width, r_max, headroom);
  }
  std::vector<std::uint32_t> counts;
  counts.reserve(pattern.size());
  for (double n : pattern) counts.push_back(round_pow2(headroom * n));
  return quad::refine_partition(previous, counts, sub_width, r_max);
}

}  // namespace bd::core
