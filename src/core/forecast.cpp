#include "core/forecast.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "quad/partition.hpp"
#include "util/check.hpp"

namespace bd::core {

std::uint32_t round_pow2(double count) {
  if (!(count > 1.0)) return 1;
  const double level = std::round(std::log2(count));
  return static_cast<std::uint32_t>(std::exp2(level));
}

std::vector<double> pattern_to_partition(std::span<const double> pattern,
                                         double sub_width, double r_max,
                                         double headroom) {
  BD_CHECK(sub_width > 0.0 && r_max > 0.0 && headroom > 0.0);
  std::vector<std::uint32_t> counts;
  counts.reserve(pattern.size());
  for (double n : pattern) counts.push_back(round_pow2(headroom * n));
  return quad::partition_from_counts(counts, sub_width, r_max);
}

std::vector<double> pattern_to_partition_adaptive(
    std::span<const double> pattern, const std::vector<double>& previous,
    double sub_width, double r_max, double headroom) {
  if (previous.size() < 2) {
    return pattern_to_partition(pattern, sub_width, r_max, headroom);
  }
  std::vector<std::uint32_t> counts;
  counts.reserve(pattern.size());
  for (double n : pattern) counts.push_back(round_pow2(headroom * n));
  return quad::refine_partition(previous, counts, sub_width, r_max);
}

namespace {

/// Virtual view of quad::clip_partition(previous, 0, r_max) — the sequence
/// [0.0] ++ {x in previous : 0 < x < r_max} ++ [r_max] — without
/// materializing it.
struct ClippedPrev {
  std::span<const double> prev;
  std::size_t first = 0;     ///< index of the first interior element
  std::size_t interior = 0;  ///< number of interior elements
  double r_max = 0.0;
  bool empty = false;        ///< clip had no overlap

  std::size_t size() const { return interior + 2; }
  double at(std::size_t k) const {
    if (k == 0) return 0.0;
    if (k <= interior) return prev[first + k - 1];
    return r_max;
  }
};

ClippedPrev clip_view(std::span<const double> prev, double r_max) {
  ClippedPrev v;
  v.prev = prev;
  v.r_max = r_max;
  v.empty = prev.empty() || prev.front() >= r_max || prev.back() <= 0.0;
  if (v.empty) return v;
  std::size_t i = 0;
  while (i < prev.size() && !(prev[i] > 0.0)) ++i;
  v.first = i;
  while (i < prev.size() && prev[i] < r_max) ++i;
  v.interior = i - v.first;
  return v;
}

/// Walk the clipped previous partition exactly like quad::refine_partition,
/// deriving each subregion's previous-interval count from its run length:
/// interval midpoints increase, so the (floor/clamped) subregion index is
/// non-decreasing and all of a subregion's intervals form one contiguous
/// run. Valid whenever `previous` spans [0, r_max] — true for every
/// solver-built partition; the vector transforms remain the general path.
/// emit(lo, hi, pieces) is called once per previous interval, in order.
template <typename Emit>
void refine_walk(std::span<const double> pattern, const ClippedPrev& c,
                 double sub_width, double headroom, Emit&& emit) {
  const std::size_t nint = c.size() - 1;
  const auto kappa = static_cast<std::int64_t>(pattern.size());
  const auto subregion = [&](std::size_t i) {
    const double mid = 0.5 * (c.at(i) + c.at(i + 1));
    auto j = static_cast<std::int64_t>(std::floor(mid / sub_width));
    return std::clamp<std::int64_t>(j, 0, kappa - 1);
  };
  std::size_t i = 0;
  while (i < nint) {
    const std::int64_t j = subregion(i);
    std::size_t run_end = i + 1;
    while (run_end < nint && subregion(run_end) == j) ++run_end;
    const std::uint32_t target = std::max<std::uint32_t>(
        1, round_pow2(headroom * pattern[static_cast<std::size_t>(j)]));
    const auto have = static_cast<std::uint32_t>(run_end - i);
    const std::uint32_t pieces =
        std::max<std::uint32_t>(1, (target + have - 1) / have);
    for (; i < run_end; ++i) emit(c.at(i), c.at(i + 1), pieces);
  }
}

}  // namespace

std::size_t pattern_to_partition_bound(std::span<const double> pattern,
                                       double headroom) {
  std::size_t bound = 2;
  for (double n : pattern) {
    bound += std::max<std::uint32_t>(1, round_pow2(headroom * n));
  }
  return bound;
}

std::size_t pattern_to_partition_into(std::span<const double> pattern,
                                      double sub_width, double r_max,
                                      std::span<double> out,
                                      double headroom) {
  BD_CHECK(sub_width > 0.0 && r_max > 0.0 && headroom > 0.0);
  std::size_t len = 0;
  out[len++] = 0.0;
  for (std::size_t j = 0; j < pattern.size(); ++j) {
    const double lo = static_cast<double>(j) * sub_width;
    if (lo >= r_max) break;
    const double hi = std::min(lo + sub_width, r_max);
    const std::uint32_t n =
        std::max<std::uint32_t>(1, round_pow2(headroom * pattern[j]));
    for (std::uint32_t i = 1; i <= n; ++i) {
      const double x = lo + (hi - lo) * static_cast<double>(i) / n;
      if (x > out[len - 1]) out[len++] = x;
    }
    if (hi >= r_max) break;
  }
  if (out[len - 1] < r_max) out[len++] = r_max;
  return len;
}

std::size_t pattern_to_partition_adaptive_bound(
    std::span<const double> pattern, std::span<const double> previous,
    double sub_width, double r_max, double headroom) {
  if (previous.size() < 2) return pattern_to_partition_bound(pattern, headroom);
  BD_CHECK(sub_width > 0.0 && r_max > 0.0 && headroom > 0.0);
  const ClippedPrev c = clip_view(previous, r_max);
  std::size_t bound = 2;
  if (!c.empty) {
    refine_walk(pattern, c, sub_width, headroom,
                [&](double, double, std::uint32_t pieces) { bound += pieces; });
  }
  return bound;
}

std::size_t pattern_to_partition_adaptive_into(
    std::span<const double> pattern, std::span<const double> previous,
    double sub_width, double r_max, std::span<double> out, double headroom) {
  if (previous.size() < 2) {
    return pattern_to_partition_into(pattern, sub_width, r_max, out,
                                     headroom);
  }
  BD_CHECK(sub_width > 0.0 && r_max > 0.0 && headroom > 0.0);
  std::size_t len = 0;
  out[len++] = 0.0;
  const ClippedPrev c = clip_view(previous, r_max);
  if (!c.empty) {
    refine_walk(pattern, c, sub_width, headroom,
                [&](double lo, double hi, std::uint32_t pieces) {
                  for (std::uint32_t s = 1; s <= pieces; ++s) {
                    const double x =
                        lo + (hi - lo) * static_cast<double>(s) / pieces;
                    if (x > out[len - 1]) out[len++] = x;
                  }
                });
  }
  if (out[len - 1] < r_max) out[len++] = r_max;
  return len;
}

}  // namespace bd::core
