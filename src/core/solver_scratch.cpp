#include "core/solver_scratch.hpp"

#include "util/telemetry.hpp"

namespace bd::core {

void SolverScratch::flush_metrics() {
  absorb(point_partitions);
  absorb(merged);
  namespace telemetry = util::telemetry;
  if (grow_events > 0) {
    telemetry::counter_add("rp.scratch_grows", grow_events);
  }
  if (reuse_events > 0) {
    telemetry::counter_add("rp.scratch_reuses", reuse_events);
  }
  grow_events = 0;
  reuse_events = 0;
}

}  // namespace bd::core
