#include "core/clustering.hpp"

#include <algorithm>
#include <cmath>

#include "ml/coreset.hpp"
#include "ml/kmeans.hpp"
#include "ml/linalg.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace bd::core {

namespace {

/// Fixed grain for the inertia reduction (thread-count-independent chunk
/// boundaries, partials reduced serially in chunk order).
constexpr std::size_t kInertiaChunk = 2048;

/// Full-set inertia of a fixed assignment: Σ‖x_i − c_{a(i)}‖². This is
/// the figure of merit both training paths are compared on (the coreset
/// path optimizes a weighted estimate of it, the stride path a subsample
/// of it), so ClusterAssignment reports it rather than either training
/// surrogate. Deterministic at any thread count.
double assignment_inertia(std::span<const double> features, std::size_t n,
                          std::size_t dim, std::span<const double> centroids,
                          std::span<const std::uint32_t> assignment) {
  const std::size_t chunks = (n + kInertiaChunk - 1) / kInertiaChunk;
  std::vector<double> partial(chunks, 0.0);
  util::parallel_for_chunked(0, n, kInertiaChunk,
                             [&](std::size_t lo, std::size_t hi) {
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      acc += ml::squared_distance(
          features.subspan(i * dim, dim),
          centroids.subspan(assignment[i] * dim, dim));
    }
    partial[lo / kInertiaChunk] = acc;
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

/// Centroid training shared by rp_clustering and rp_clustering_tiled.
struct TrainedCentroids {
  ml::KMeansResult result;
  std::size_t coreset_size = 0;  ///< 0 = legacy stride path
  bool warm_started = false;
};

TrainedCentroids train_centroids(std::span<const double> features,
                                 std::size_t n, std::size_t dim,
                                 std::size_t k, std::uint64_t seed,
                                 std::size_t train_subsample,
                                 const ClusteringAccel& accel) {
  TrainedCentroids out;
  ml::KMeansConfig config;
  config.clusters = k;
  config.balanced = false;
  config.seed = seed;
  config.max_iterations = 15;

  if (!accel.enabled) {
    // Legacy path, kept bitwise unchanged: train on a stride subsample.
    const std::size_t sample_target =
        std::max<std::size_t>(k, std::min(n, train_subsample));
    const std::size_t stride = std::max<std::size_t>(1, n / sample_target);
    std::vector<double> sample;
    sample.reserve((n / stride + 1) * dim);
    std::size_t sample_count = 0;
    for (std::size_t i = 0; i < n; i += stride) {
      sample.insert(sample.end(),
                    features.begin() + static_cast<std::ptrdiff_t>(i * dim),
                    features.begin() +
                        static_cast<std::ptrdiff_t>((i + 1) * dim));
      ++sample_count;
    }
    out.result = ml::kmeans(sample, sample_count, dim, config);
    return out;
  }

  // Accelerated path: D² weighted coreset + pruned Lloyd + warm seeds.
  config.pruned = true;
  ml::CoresetConfig coreset_config;
  coreset_config.target_size = accel.coreset_size;
  coreset_config.min_size = k;
  coreset_config.seed = seed ^ 0x9E3779B97F4A7C15ull;
  const ml::Coreset coreset = ml::d2_coreset(features, n, dim, coreset_config);
  const std::vector<double> rows =
      ml::gather_rows(features, dim, coreset.indices);
  out.coreset_size = coreset.size();

  ClusteringCache* cache = accel.cache;
  const bool can_warm = cache != nullptr && cache->valid() &&
                        cache->dim == dim &&
                        cache->centroids.size() == k * dim;
  if (can_warm) {
    out.result = ml::kmeans_weighted(rows, coreset.size(), dim,
                                     coreset.weights, cache->centroids,
                                     config);
    out.warm_started = true;
    if (out.result.inertia > cache->inertia * accel.warm_inertia_growth) {
      // The patterns drifted too far for the cached centroids to be
      // useful seeds — fall back to k-means++ on the same coreset.
      out.result = ml::kmeans_weighted(rows, coreset.size(), dim,
                                       coreset.weights, {}, config);
      out.warm_started = false;
    }
  } else {
    out.result = ml::kmeans_weighted(rows, coreset.size(), dim,
                                     coreset.weights, {}, config);
  }
  if (cache != nullptr) {
    cache->centroids = out.result.centroids;
    cache->dim = dim;
    cache->inertia = out.result.inertia;
  }
  return out;
}

/// Build the (pattern ⊕ weighted coordinates) feature matrix.
std::vector<double> build_features(const PatternField& patterns,
                                   std::span<const double> xs,
                                   std::span<const double> ys,
                                   double spatial_weight, std::size_t& dim) {
  const std::size_t n = patterns.points();
  const std::size_t pdim = patterns.subregions();
  const bool with_coords =
      spatial_weight > 0.0 && xs.size() == n && ys.size() == n;
  dim = pdim + (with_coords ? 2 : 0);

  std::vector<double> features(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = patterns.at(i);
    std::copy(p.begin(), p.end(), features.begin() + static_cast<std::ptrdiff_t>(i * dim));
  }
  if (!with_coords) return features;

  // Total pattern variance (summed over dimensions).
  std::vector<double> means(pdim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = patterns.at(i);
    for (std::size_t d = 0; d < pdim; ++d) means[d] += p[d];
  }
  for (double& m : means) m /= static_cast<double>(n);
  double total_var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = patterns.at(i);
    for (std::size_t d = 0; d < pdim; ++d) {
      total_var += (p[d] - means[d]) * (p[d] - means[d]);
    }
  }
  total_var /= static_cast<double>(n);
  if (total_var <= 0.0) total_var = 1.0;

  // Each coordinate feature gets spatial_weight² × half the pattern
  // variance, after normalizing the coordinate to unit variance.
  auto coord_stats = [&](std::span<const double> v, double& mean,
                         double& std) {
    mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(n);
    std = 0.0;
    for (double x : v) std += (x - mean) * (x - mean);
    std = std::sqrt(std / static_cast<double>(n));
    if (std < 1e-12) std = 1.0;
  };
  double mx, sx, my, sy;
  coord_stats(xs, mx, sx);
  coord_stats(ys, my, sy);
  const double scale = spatial_weight * std::sqrt(0.5 * total_var);
  for (std::size_t i = 0; i < n; ++i) {
    features[i * dim + pdim] = (xs[i] - mx) / sx * scale;
    features[i * dim + pdim + 1] = (ys[i] - my) / sy * scale;
  }
  return features;
}

}  // namespace

ClusterAssignment rp_clustering(const PatternField& patterns,
                                std::span<const double> xs,
                                std::span<const double> ys,
                                const RpClusteringOptions& options) {
  BD_CHECK(!patterns.empty());
  const std::size_t n = patterns.points();
  const std::size_t k = options.clusters;
  BD_CHECK(k >= 1 && k <= n);

  std::size_t dim = 0;
  const std::vector<double> features =
      build_features(patterns, xs, ys, options.spatial_weight, dim);

  // Train centroids (stride subsample, or coreset/warm-start when the
  // acceleration is enabled).
  const TrainedCentroids trained = train_centroids(
      features, n, dim, k, options.seed, options.train_subsample,
      options.accel);

  // Balance-assign the full point set to the trained centroids.
  const std::size_t capacity =
      options.balanced ? (n + k - 1) / k : 0;
  const std::vector<std::uint32_t> assignment = ml::assign_balanced(
      features, n, dim, trained.result.centroids, k, capacity);

  ClusterAssignment result;
  result.members.resize(k);
  result.inertia = assignment_inertia(features, n, dim,
                                      trained.result.centroids, assignment);
  result.kmeans_iterations = trained.result.iterations;
  result.coreset_size = trained.coreset_size;
  result.warm_started = trained.warm_started;
  for (std::size_t i = 0; i < n; ++i) {
    result.members[assignment[i]].push_back(static_cast<std::uint32_t>(i));
  }
  for (const auto& m : result.members) {
    result.max_cluster_size = std::max(result.max_cluster_size, m.size());
  }
  return result;
}

ClusterAssignment rp_clustering_tiled(const PatternField& patterns,
                                      const beam::GridSpec& spec,
                                      const TiledClusteringOptions& options) {
  BD_CHECK(!patterns.empty());
  BD_CHECK(patterns.points() == spec.nodes());
  BD_CHECK(options.tile_w >= 1 && options.tile_h >= 1);
  const std::size_t pdim = patterns.subregions();

  // Build tiles and their mean patterns.
  const std::uint32_t tiles_x = (spec.nx + options.tile_w - 1) / options.tile_w;
  const std::uint32_t tiles_y = (spec.ny + options.tile_h - 1) / options.tile_h;
  const std::size_t num_tiles = static_cast<std::size_t>(tiles_x) * tiles_y;
  const bool with_coords = options.spatial_weight > 0.0;
  const std::size_t fdim = pdim + (with_coords ? 2 : 0);
  std::vector<std::vector<std::uint32_t>> tile_points(num_tiles);
  std::vector<double> tile_features(num_tiles * fdim, 0.0);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      const std::size_t tile =
          static_cast<std::size_t>(iy / options.tile_h) * tiles_x +
          ix / options.tile_w;
      const std::uint32_t point = iy * spec.nx + ix;
      tile_points[tile].push_back(point);
      const auto p = patterns.at(point);
      for (std::size_t d = 0; d < pdim; ++d) {
        tile_features[tile * fdim + d] += p[d];
      }
    }
  }
  for (std::size_t t = 0; t < num_tiles; ++t) {
    const auto n = static_cast<double>(tile_points[t].size());
    for (std::size_t d = 0; d < pdim; ++d) tile_features[t * fdim + d] /= n;
  }
  if (with_coords) {
    // Total pattern variance over tiles (for scaling the coordinates).
    std::vector<double> means(pdim, 0.0);
    for (std::size_t t = 0; t < num_tiles; ++t) {
      for (std::size_t d = 0; d < pdim; ++d) {
        means[d] += tile_features[t * fdim + d];
      }
    }
    for (double& m2 : means) m2 /= static_cast<double>(num_tiles);
    double total_var = 0.0;
    for (std::size_t t = 0; t < num_tiles; ++t) {
      for (std::size_t d = 0; d < pdim; ++d) {
        const double dv = tile_features[t * fdim + d] - means[d];
        total_var += dv * dv;
      }
    }
    total_var /= static_cast<double>(num_tiles);
    if (total_var <= 0.0) total_var = 1.0;
    // Unit-variance tile coordinates, scaled so the two coordinate
    // features carry spatial_weight² × the total pattern variance.
    const double scale =
        options.spatial_weight * std::sqrt(0.5 * total_var);
    const double sx = std::max(1.0, (tiles_x - 1) / std::sqrt(12.0));
    const double sy = std::max(1.0, (tiles_y - 1) / std::sqrt(12.0));
    for (std::size_t t = 0; t < num_tiles; ++t) {
      const double tx = static_cast<double>(t % tiles_x);
      const double ty = static_cast<double>(t / tiles_x);
      tile_features[t * fdim + pdim] =
          (tx - 0.5 * (tiles_x - 1)) / sx * scale;
      tile_features[t * fdim + pdim + 1] =
          (ty - 0.5 * (tiles_y - 1)) / sy * scale;
    }
  }

  const std::size_t k = std::min(options.clusters, num_tiles);
  BD_CHECK(k >= 1);
  const std::size_t capacity =
      std::min(options.max_tiles_per_cluster, (num_tiles + k - 1) / k);
  BD_CHECK_MSG(capacity * k >= num_tiles,
               "tile capacity insufficient: increase clusters");

  // Train centroids on the tiles (stride subsample, or coreset/warm-start
  // when the acceleration is enabled), then balance-assign all tiles.
  const TrainedCentroids trained = train_centroids(
      tile_features, num_tiles, fdim, k, options.seed,
      options.train_subsample, options.accel);
  const std::vector<std::uint32_t> tile_assignment = ml::assign_balanced(
      tile_features, num_tiles, fdim, trained.result.centroids, k, capacity);

  ClusterAssignment result;
  result.members.resize(k);
  result.inertia =
      assignment_inertia(tile_features, num_tiles, fdim,
                         trained.result.centroids, tile_assignment);
  result.kmeans_iterations = trained.result.iterations;
  result.coreset_size = trained.coreset_size;
  result.warm_started = trained.warm_started;
  for (std::size_t t = 0; t < num_tiles; ++t) {
    auto& members = result.members[tile_assignment[t]];
    members.insert(members.end(), tile_points[t].begin(),
                   tile_points[t].end());
  }
  for (const auto& m : result.members) {
    result.max_cluster_size = std::max(result.max_cluster_size, m.size());
  }
  return result;
}

ClusterAssignment chunk_clustering(std::size_t points, std::size_t chunk) {
  BD_CHECK(points > 0 && chunk > 0);
  ClusterAssignment assignment;
  const std::size_t blocks = (points + chunk - 1) / chunk;
  assignment.members.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(points, lo + chunk);
    auto& m = assignment.members[b];
    m.reserve(hi - lo);
    for (std::size_t p = lo; p < hi; ++p) {
      m.push_back(static_cast<std::uint32_t>(p));
    }
    assignment.max_cluster_size = std::max(assignment.max_cluster_size,
                                           m.size());
  }
  return assignment;
}

ClusterAssignment ordered_clustering(
    const std::vector<std::uint32_t>& ordering, std::size_t chunk) {
  BD_CHECK(!ordering.empty() && chunk > 0);
  ClusterAssignment assignment;
  const std::size_t blocks = (ordering.size() + chunk - 1) / chunk;
  assignment.members.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(ordering.size(), lo + chunk);
    auto& m = assignment.members[b];
    m.assign(ordering.begin() + static_cast<std::ptrdiff_t>(lo),
             ordering.begin() + static_cast<std::ptrdiff_t>(hi));
    assignment.max_cluster_size = std::max(assignment.max_cluster_size,
                                           m.size());
  }
  return assignment;
}

}  // namespace bd::core
