#pragma once
/// \file access_pattern.hpp
/// The data-access-pattern representation (paper §III-A): for each grid
/// point, the list [n_0, n_1, ..., n_{Ns-1}] of partition counts per radial
/// subregion S_j. Counts are fractional: the kernels report 0.5 for an
/// interval whose Simpson error was ≤ τ_local/16 (a Richardson coarsening
/// hint — two such intervals could be merged), which keeps the online
/// learner self-correcting instead of ratcheting partitions finer.

#include <cstdint>
#include <span>
#include <vector>

namespace bd::core {

/// Per-subregion partition counts for one grid point.
using AccessPattern = std::vector<double>;

/// Flat row-major storage of one pattern per grid point.
class PatternField {
 public:
  PatternField() = default;
  PatternField(std::size_t points, std::size_t subregions)
      : points_(points),
        subregions_(subregions),
        data_(points * subregions, 0.0) {}

  std::size_t points() const { return points_; }
  std::size_t subregions() const { return subregions_; }
  bool empty() const { return data_.empty(); }

  std::span<double> at(std::size_t point) {
    return std::span<double>(data_.data() + point * subregions_, subregions_);
  }
  std::span<const double> at(std::size_t point) const {
    return std::span<const double>(data_.data() + point * subregions_,
                                   subregions_);
  }

  std::span<const double> flat() const { return data_; }
  std::span<double> flat() { return data_; }

  void clear_values() { std::fill(data_.begin(), data_.end(), 0.0); }

 private:
  std::size_t points_ = 0;
  std::size_t subregions_ = 0;
  std::vector<double> data_;
};

/// Euclidean distance between two patterns (the clustering metric).
double pattern_distance(std::span<const double> a, std::span<const double> b);

/// Total predicted partition size Σ_j ceil(n_j).
std::uint64_t pattern_total_intervals(std::span<const double> pattern);

/// Memory references to grid D_{k-i} implied by a pattern (paper §III-A):
/// α·(n_i + n_{i-1} + n_{i-2}), clamped at the pattern edges.
double pattern_references_to_grid(std::span<const double> pattern,
                                  std::size_t i, double alpha);

/// Elementwise maximum (used when merging fallback observations).
void pattern_merge_max(std::span<double> into, std::span<const double> other);

}  // namespace bd::core
