#include "core/health.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/serialize.hpp"

namespace bd::core {

std::uint64_t HealthMonitor::count_non_finite(std::span<const double> values) {
  std::uint64_t count = 0;
  for (double v : values) {
    if (!std::isfinite(v)) ++count;
  }
  return count;
}

std::uint64_t HealthMonitor::quarantine_non_finite(std::span<double> values) {
  std::uint64_t count = 0;
  for (double& v : values) {
    if (!std::isfinite(v)) {
      v = 0.0;
      ++count;
    }
  }
  return count;
}

bool HealthMonitor::observe_mae(double mae) {
  if (!std::isfinite(mae) || mae < 0.0) return true;
  if (mae_samples_ < thresholds_.mae_warmup) {
    mae_baseline_ = (mae_samples_ == 0)
                        ? mae
                        : mae_baseline_ + thresholds_.mae_ema *
                                              (mae - mae_baseline_);
    ++mae_samples_;
    return false;
  }
  // Guard against a baseline that collapsed to ~0 (perfect early
  // forecasts would make any later nonzero MAE "drift").
  const double floor = 1e-12;
  const double limit =
      thresholds_.mae_drift_factor * std::max(mae_baseline_, floor);
  if (mae > limit) return true;
  mae_baseline_ += thresholds_.mae_ema * (mae - mae_baseline_);
  ++mae_samples_;
  return false;
}

void HealthMonitor::reset() {
  mae_baseline_ = 0.0;
  mae_samples_ = 0;
}

void HealthMonitor::save(util::BinaryWriter& out) const {
  out.write_f64(mae_baseline_);
  out.write_u32(mae_samples_);
}

void HealthMonitor::load(util::BinaryReader& in) {
  mae_baseline_ = in.read_f64();
  mae_samples_ = in.read_u32();
}

DegradationLadder::DegradationLadder(std::uint32_t num_tiers,
                                     std::uint32_t demote_after,
                                     std::uint32_t promote_after)
    : num_tiers_(num_tiers),
      demote_after_(demote_after),
      promote_after_(promote_after) {
  BD_CHECK_MSG(num_tiers >= 1, "ladder needs at least one tier");
  BD_CHECK_MSG(demote_after >= 1 && promote_after >= 1,
               "ladder streak lengths must be >= 1");
}

int DegradationLadder::on_step(bool healthy) {
  if (healthy) {
    unhealthy_streak_ = 0;
    if (tier_ == 0) return 0;
    if (++healthy_streak_ >= promote_after_) {
      healthy_streak_ = 0;
      --tier_;
      return -1;
    }
    return 0;
  }
  healthy_streak_ = 0;
  if (tier_ + 1 >= num_tiers_) return 0;  // already on the last rung
  if (++unhealthy_streak_ >= demote_after_) {
    unhealthy_streak_ = 0;
    ++tier_;
    return +1;
  }
  return 0;
}

void DegradationLadder::reset() {
  tier_ = 0;
  unhealthy_streak_ = 0;
  healthy_streak_ = 0;
}

bool DegradationLadder::force_demote() {
  unhealthy_streak_ = 0;
  healthy_streak_ = 0;
  if (tier_ + 1 >= num_tiers_) return false;  // already on the last rung
  ++tier_;
  return true;
}

void DegradationLadder::save(util::BinaryWriter& out) const {
  out.write_u32(num_tiers_);
  out.write_u32(tier_);
  out.write_u32(unhealthy_streak_);
  out.write_u32(healthy_streak_);
}

void DegradationLadder::load(util::BinaryReader& in) {
  const std::uint32_t tiers = in.read_u32();
  BD_CHECK_MSG(tiers == num_tiers_,
               "ladder tier count mismatch: checkpoint has "
                   << tiers << ", simulation has " << num_tiers_);
  tier_ = in.read_u32();
  unhealthy_streak_ = in.read_u32();
  healthy_streak_ = in.read_u32();
  BD_CHECK_MSG(tier_ < num_tiers_, "corrupt ladder tier in checkpoint");
}

}  // namespace bd::core
