#pragma once
/// \file predictive.hpp
/// Predictive-RP — the paper's contribution (Algorithm 1). Each step:
///
///   1. forecast every grid point's access pattern with the online
///      predictor g learned at the previous step (kNN regression by
///      default, ridge regression as the alternative);
///   2. COMPUTE-PARTITION: transform forecasts into quadrature partitions
///      (§III-C2, uniform or adaptive transform);
///   3. RP-CLUSTERING: k-means over the forecast patterns groups points of
///      similar access behaviour; every cluster becomes one thread block
///      and its members' partitions are merged (MERGE-LISTS) into a single
///      shared partition — uniform control flow, maximal data reuse;
///   4. COMPUTE-RP-INTEGRAL kernel over the shared partitions;
///   5. RP-ADAPTIVEQUADRATURE fallback on intervals that missed τ
///      (prediction is a performance hint, never a correctness dependency);
///   6. ONLINE-LEARNING: observed patterns retrain the predictor.
///
/// The first step has no trained predictor and bootstraps exactly like the
/// Two-Phase baseline (coarse partition + adaptive fallback), which also
/// provides the first training set.

#include <vector>

#include "core/access_pattern.hpp"
#include "core/clustering.hpp"
#include "core/forecast.hpp"
#include "core/solver.hpp"
#include "ml/online.hpp"
#include "quad/partition_set.hpp"

namespace bd::core {

/// Predictive-RP configuration.
struct PredictiveOptions {
  ml::PredictorKind predictor = ml::PredictorKind::kKnn;
  ml::KnnConfig knn;                 ///< kNN hyperparameters
  ml::LinRegConfig ridge;            ///< ridge hyperparameters
  std::size_t training_window = 1;   ///< steps of history kept for training
  PartitionTransform transform = PartitionTransform::kUniform;
  std::size_t clusters = 0;          ///< 0 = paper's m = max(N_X, N_Y)
  bool balanced_clusters = true;     ///< equal-size clusters (block-shaped)
  std::uint64_t cluster_seed = 42;
  /// Weight of grid coordinates in the clustering features (see
  /// RpClusteringOptions::spatial_weight). Only used when tiled = false.
  double spatial_weight = 0.75;
  /// Use warp-tile-granular clustering (rp_clustering_tiled) — the
  /// production mapping. false = plain per-point k-means (ablation).
  bool tiled = true;
  std::uint32_t tile_w = 8;   ///< tile width (points along s)
  std::uint32_t tile_h = 4;   ///< tile height (points along y)
  /// MERGE-LISTS granularity: true merges member partitions per *warp*
  /// (lockstep where it matters, minimal over-evaluation); false merges
  /// over the whole cluster/block as in the paper's Algorithm 1.
  bool merge_per_warp = true;
  /// Sample stride for training examples (1 = every grid point; larger
  /// strides cut host training cost at negligible forecast-quality loss).
  std::size_t training_stride = 4;
  /// EMA factor blending new observations into the training targets
  /// (damps refine/coarsen oscillation; 1 = use raw observations).
  double observation_ema = 0.5;
  /// Coreset/pruned-Lloyd/warm-start clustering acceleration (see
  /// ClusteringAccel). The per-step host clustering cost is the fixed
  /// overhead the paper's Table II prices at 2.9 ms/step; with the accel
  /// it becomes sublinear in grid area. false = legacy stride-subsample
  /// training (the bitwise reference, used by the ablation benches).
  bool cluster_accel = true;
  std::size_t coreset_size = 512;   ///< D² coreset draws (0 = full set)
  /// Re-seed threshold for warm starts (see ClusteringAccel).
  double warm_inertia_growth = 1.5;
};

class PredictiveSolver final : public RpSolver {
 public:
  PredictiveSolver(simt::DeviceSpec device, PredictiveOptions options = {});

  SolveResult solve(const RpProblem& problem) override;
  const char* name() const override { return "predictive-rp"; }
  void reset() override;

  /// Checkpoint the learned state: the online predictor's training window,
  /// the previous per-point partitions (adaptive transform), the EMA of
  /// observed patterns and the warm-start centroid cache. A restored
  /// solver replays bit-identically.
  void save_state(util::BinaryWriter& out) const override;
  void load_state(util::BinaryReader& in) override;

  /// Forecast access patterns for the given step using the current model
  /// (exposed for forecast-quality benchmarks). Requires a trained model.
  PatternField forecast(const RpProblem& problem) const;

  /// True once the online predictor has been trained at least once.
  bool trained() const { return predictor_ && predictor_->ready(); }

 private:
  SolveResult solve_bootstrap(const RpProblem& problem);
  SolveResult solve_predictive(const RpProblem& problem);
  void learn(const RpProblem& problem, const PatternField& observed,
             double& train_seconds);

  simt::DeviceSpec device_;
  PredictiveOptions options_;
  std::unique_ptr<ml::OnlinePredictor> predictor_;
  quad::PartitionSet previous_partitions_;  // adaptive transform
  PatternField smoothed_;  ///< EMA of observed patterns (training targets)
  /// Previous step's trained centroids — warm-start seeds for the next
  /// RP-CLUSTERING call (persisted in save_state/load_state so a restored
  /// solver clusters bit-identically).
  ClusteringCache cluster_cache_;
  std::uint64_t warm_start_hits_ = 0;  ///< steps that reused cached seeds
};

}  // namespace bd::core
