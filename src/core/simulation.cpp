#include "core/simulation.hpp"

#include "beam/force.hpp"
#include "beam/push.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace bd::core {

Simulation::Simulation(SimConfig config, std::unique_ptr<RpSolver> solver,
                       std::unique_ptr<RpSolver> transverse_solver)
    : config_(config),
      solver_(std::move(solver)),
      transverse_solver_(std::move(transverse_solver)),
      spec_(beam::make_centered_grid(config_.nx, config_.ny,
                                     config_.half_extent_x,
                                     config_.half_extent_y)),
      history_(spec_, config_.history_depth()),
      rho_(spec_),
      drho_ds_(spec_),
      force_s_grid_(spec_),
      force_y_grid_(spec_) {
  BD_CHECK_MSG(solver_ != nullptr, "simulation needs a solver");
  BD_CHECK_MSG(!config_.compute_transverse || transverse_solver_ != nullptr,
               "transverse solve requested without a transverse solver");
}

RpProblem Simulation::make_problem(const beam::WakeModel& model) const {
  RpProblem problem;
  problem.history = &history_;
  problem.model = &model;
  problem.step = step_;
  problem.sub_width = config_.sub_width;
  problem.num_subregions = config_.num_subregions;
  problem.tolerance = config_.tolerance;
  return problem;
}

void Simulation::deposit_current(double& seconds, double& dropped) {
  util::WallTimer timer;
  rho_.fill(0.0);
  dropped = beam::deposit(particles_, config_.deposit, rho_);
  beam::longitudinal_gradient(rho_, drho_ds_);
  seconds = timer.seconds();
}

void Simulation::initialize() {
  BD_CHECK_MSG(!initialized_, "initialize() called twice");
  util::Rng rng(config_.seed);
  particles_ =
      beam::sample_gaussian_bunch(config_.particles, config_.beam, rng);
  double seconds = 0.0, dropped = 0.0;
  deposit_current(seconds, dropped);
  step_ = 0;
  history_.fill_all(step_, rho_, drho_ds_);
  particle_force_s_.assign(particles_.size(), 0.0);
  particle_force_y_.assign(particles_.size(), 0.0);
  initialized_ = true;
}

StepStats Simulation::step() {
  BD_CHECK_MSG(initialized_, "call initialize() first");
  ++step_;
  StepStats stats;
  stats.step = step_;

  namespace telemetry = util::telemetry;
  telemetry::TraceSpan step_span("sim.step", "sim");
  step_span.arg("step", static_cast<std::int64_t>(step_));
  util::WallTimer phase_timer;

  // (1) particle deposition.
  {
    telemetry::TraceSpan span("sim.deposit", "sim");
    deposit_current(stats.deposit_seconds, stats.dropped_charge);
    history_.push_step(step_, rho_, drho_ds_);
    span.arg("particles", static_cast<std::uint64_t>(particles_.size()));
    span.arg("dropped_charge", stats.dropped_charge);
  }
  stats.phase_ms.deposit_ms = phase_timer.seconds() * 1e3;

  // (2) compute retarded potentials.
  phase_timer.reset();
  {
    telemetry::TraceSpan span("sim.solve", "sim");
    span.arg("solver", solver_->name());
    const RpProblem problem = make_problem(config_.longitudinal);
    stats.longitudinal = solver_->solve(problem);
    force_s_grid_ = stats.longitudinal.values;
    if (config_.compute_transverse) {
      const RpProblem tproblem = make_problem(config_.transverse);
      stats.transverse = transverse_solver_->solve(tproblem);
      force_y_grid_ = stats.transverse->values;
    }
    span.arg("fallback_items", stats.longitudinal.fallback_items);
    span.arg("kernel_intervals", stats.longitudinal.kernel_intervals);
  }
  stats.phase_ms.solve_ms = phase_timer.seconds() * 1e3;

  // (3) self-forces at the particles.
  phase_timer.reset();
  {
    telemetry::TraceSpan span("sim.gather", "sim");
    beam::gather_forces(force_s_grid_, particles_, particle_force_s_);
    if (config_.compute_transverse) {
      beam::gather_forces(force_y_grid_, particles_, particle_force_y_);
    }
  }
  stats.phase_ms.gather_ms = phase_timer.seconds() * 1e3;

  // (4) push (the rigid validation bunch does not evolve).
  phase_timer.reset();
  {
    telemetry::TraceSpan span("sim.push", "sim");
    span.arg("rigid", static_cast<std::uint64_t>(config_.rigid ? 1 : 0));
    if (!config_.rigid) {
      beam::leapfrog_push(particles_, particle_force_s_,
                          config_.compute_transverse
                              ? std::span<const double>(particle_force_y_)
                              : std::span<const double>(),
                          config_.dt);
    }
  }
  stats.phase_ms.push_ms = phase_timer.seconds() * 1e3;

  // Surface the per-phase breakdown and solver quality metrics through the
  // process-wide registry (see docs/METRICS.md).
  telemetry::counter_add("sim.steps");
  telemetry::histogram_record("sim.deposit_ms", stats.phase_ms.deposit_ms);
  telemetry::histogram_record("sim.solve_ms", stats.phase_ms.solve_ms);
  telemetry::histogram_record("sim.gather_ms", stats.phase_ms.gather_ms);
  telemetry::histogram_record("sim.push_ms", stats.phase_ms.push_ms);
  telemetry::gauge_set("sim.last_fallback_items",
                       static_cast<double>(stats.longitudinal.fallback_items));
  telemetry::gauge_set("sim.last_forecast_mae",
                       stats.longitudinal.forecast_mae);
  return stats;
}

std::vector<StepStats> Simulation::run(std::size_t n) {
  std::vector<StepStats> all;
  all.reserve(n);
  for (std::size_t i = 0; i < n; ++i) all.push_back(step());
  return all;
}

}  // namespace bd::core
