#include "core/simulation.hpp"

#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <thread>

#include "beam/force.hpp"
#include "beam/push.hpp"
#include "core/solver_scratch.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace bd::core {

namespace telemetry = util::telemetry;

void SimConfig::validate() const {
  BD_CHECK_MSG(particles > 0, "SimConfig.particles must be > 0");
  BD_CHECK_MSG(nx >= 2, "SimConfig.nx must be >= 2, got " << nx);
  BD_CHECK_MSG(ny >= 2, "SimConfig.ny must be >= 2, got " << ny);
  BD_CHECK_MSG(half_extent_x > 0.0,
               "SimConfig.half_extent_x must be > 0, got " << half_extent_x);
  BD_CHECK_MSG(half_extent_y > 0.0,
               "SimConfig.half_extent_y must be > 0, got " << half_extent_y);
  BD_CHECK_MSG(sub_width > 0.0,
               "SimConfig.sub_width must be > 0, got " << sub_width);
  BD_CHECK_MSG(num_subregions >= 1, "SimConfig.num_subregions must be >= 1");
  BD_CHECK_MSG(tolerance > 0.0,
               "SimConfig.tolerance must be > 0, got " << tolerance);
  BD_CHECK_MSG(dt > 0.0, "SimConfig.dt must be > 0, got " << dt);
  BD_CHECK_MSG(health.max_dropped_charge >= 0.0 &&
                   health.max_dropped_charge <= 1.0,
               "SimConfig.health.max_dropped_charge must be in [0, 1], got "
                   << health.max_dropped_charge);
  BD_CHECK_MSG(health.max_sanitized_fraction > 0.0 &&
                   health.max_sanitized_fraction <= 1.0,
               "SimConfig.health.max_sanitized_fraction must be in (0, 1], "
               "got " << health.max_sanitized_fraction);
  BD_CHECK_MSG(health.mae_drift_factor > 1.0,
               "SimConfig.health.mae_drift_factor must be > 1, got "
                   << health.mae_drift_factor);
  BD_CHECK_MSG(health.mae_ema > 0.0 && health.mae_ema <= 1.0,
               "SimConfig.health.mae_ema must be in (0, 1], got "
                   << health.mae_ema);
  BD_CHECK_MSG(health.demote_after >= 1,
               "SimConfig.health.demote_after must be >= 1");
  BD_CHECK_MSG(health.promote_after >= 1,
               "SimConfig.health.promote_after must be >= 1");
}

Simulation::Simulation(SimConfig config, std::unique_ptr<RpSolver> solver,
                       std::unique_ptr<RpSolver> transverse_solver)
    : config_((config.validate(), std::move(config))),
      solver_(std::move(solver)),
      transverse_solver_(std::move(transverse_solver)),
      scratch_(std::make_unique<SolverScratch>()),
      spec_(beam::make_centered_grid(config_.nx, config_.ny,
                                     config_.half_extent_x,
                                     config_.half_extent_y)),
      history_(spec_, config_.history_depth()),
      rho_(spec_),
      drho_ds_(spec_),
      force_s_grid_(spec_),
      force_y_grid_(spec_),
      rng_(config_.seed),
      health_monitor_(config_.health),
      ladder_(1, config_.health.demote_after, config_.health.promote_after) {
  BD_CHECK_MSG(solver_ != nullptr, "simulation needs a solver");
  BD_CHECK_MSG(!config_.compute_transverse || transverse_solver_ != nullptr,
               "transverse solve requested without a transverse solver");
}

Simulation::~Simulation() = default;

void Simulation::set_telemetry(util::telemetry::MetricsRegistry* metrics,
                               util::telemetry::TraceSession* trace) {
  metrics_ = metrics;
  trace_ = trace;
}

void Simulation::set_fault_harness(util::faultinject::FaultHarness* harness) {
  fault_harness_ = harness;
}

void Simulation::add_fallback_solver(std::unique_ptr<RpSolver> solver) {
  BD_CHECK_MSG(solver != nullptr, "fallback solver must not be null");
  fallback_solvers_.push_back(std::move(solver));
  ladder_ = DegradationLadder(
      1 + static_cast<std::uint32_t>(fallback_solvers_.size()),
      config_.health.demote_after, config_.health.promote_after);
}

RpSolver& Simulation::active_solver() {
  const std::uint32_t tier = ladder_.tier();
  return tier == 0 ? *solver_ : *fallback_solvers_[tier - 1];
}

RpProblem Simulation::make_problem(const beam::WakeModel& model) const {
  RpProblem problem;
  problem.history = &history_;
  problem.model = &model;
  problem.step = step_;
  problem.sub_width = config_.sub_width;
  problem.num_subregions = config_.num_subregions;
  problem.tolerance = config_.tolerance;
  problem.scratch = scratch_.get();
  return problem;
}

void Simulation::deposit_current(double& seconds, double& dropped) {
  util::WallTimer timer;
  rho_.fill(0.0);
  dropped = beam::deposit(particles_, config_.deposit, rho_);
  beam::longitudinal_gradient(rho_, drho_ds_);
  seconds = timer.seconds();
}

void Simulation::initialize() {
  BD_CHECK_MSG(!initialized_, "initialize() called twice");
  const telemetry::TelemetryScope scope(metrics_, trace_);
  const util::faultinject::FaultScope fault_scope(fault_harness_);
  particles_ =
      beam::sample_gaussian_bunch(config_.particles, config_.beam, rng_);
  double seconds = 0.0, dropped = 0.0;
  deposit_current(seconds, dropped);
  step_ = 0;
  history_.fill_all(step_, rho_, drho_ds_);
  particle_force_s_.assign(particles_.size(), 0.0);
  particle_force_y_.assign(particles_.size(), 0.0);
  initialized_ = true;
}

void Simulation::check_moments(StepStats& stats) {
  if (!stats.health) return;
  HealthReport& report = *stats.health;
  report.nan_moments = HealthMonitor::count_non_finite(rho_.data()) +
                       HealthMonitor::count_non_finite(drho_ds_.data());
  if (report.nan_moments > 0) {
    // Quarantine the density and rebuild the gradient from the repaired
    // field so the two moments the solvers see stay consistent.
    report.quarantined_cells =
        HealthMonitor::quarantine_non_finite(rho_.data());
    beam::longitudinal_gradient(rho_, drho_ds_);
    report.quarantined_cells +=
        HealthMonitor::quarantine_non_finite(drho_ds_.data());
    telemetry::counter_add("health.quarantined_cells",
                           report.quarantined_cells);
  }
  // Beam loss: dropped charge is in deposited-density units; the total
  // deposited density is count * |weight| / cell area.
  const double cell = spec_.dx * spec_.dy;
  const double total = static_cast<double>(particles_.size()) *
                       std::abs(particles_.weight()) / cell;
  if (total > 0.0 &&
      stats.dropped_charge > config_.health.max_dropped_charge * total) {
    report.dropped_charge_exceeded = true;
  }
}

void Simulation::check_potentials(StepStats& stats, const RpProblem& problem) {
  if (!stats.health) return;
  HealthReport& report = *stats.health;
  auto values = stats.longitudinal.values.data();
  auto errors = stats.longitudinal.errors.data();
  report.nan_potentials = HealthMonitor::count_non_finite(values);
  if (report.nan_potentials > 0) {
    if (!fallback_solvers_.empty()) {
      // Quarantine-and-recompute: the last rung (stateless full adaptive)
      // re-solves the step and only the poisoned nodes are spliced in.
      const SolveResult repair = fallback_solvers_.back()->solve(problem);
      const auto rvalues = repair.values.data();
      const auto rerrors = repair.errors.data();
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (!std::isfinite(values[i])) {
          values[i] = rvalues[i];
          errors[i] = rerrors[i];
          ++report.recomputed_points;
        }
      }
      telemetry::counter_add("health.recomputed_points",
                             report.recomputed_points);
    } else {
      // No repair solver installed: contain by zeroing so the forces stay
      // finite (a dropped contribution, not a poisoned one).
      HealthMonitor::quarantine_non_finite(values);
      HealthMonitor::quarantine_non_finite(errors);
    }
  }
  // Forecast hint-boundary violations (predictive tier only; other tiers
  // report zero sanitized values).
  report.sanitized_forecasts = stats.longitudinal.sanitized_forecasts;
  const double total_values = static_cast<double>(problem.num_points()) *
                              static_cast<double>(problem.num_subregions);
  if (total_values > 0.0 &&
      static_cast<double>(report.sanitized_forecasts) >
          config_.health.max_sanitized_fraction * total_values) {
    report.forecast_corrupt = true;
  }
  if (stats.longitudinal.forecast_mae > 0.0 &&
      health_monitor_.observe_mae(stats.longitudinal.forecast_mae)) {
    report.forecast_mae_drift = true;
  }
}

void Simulation::check_forces(StepStats& stats) {
  if (!stats.health) return;
  HealthReport& report = *stats.health;
  report.nan_forces =
      HealthMonitor::count_non_finite(particle_force_s_) +
      (config_.compute_transverse
           ? HealthMonitor::count_non_finite(particle_force_y_)
           : 0);
  if (report.nan_forces > 0) {
    HealthMonitor::quarantine_non_finite(particle_force_s_);
    HealthMonitor::quarantine_non_finite(particle_force_y_);
  }
}

void Simulation::update_ladder(StepStats& stats) {
  if (!stats.health) return;
  HealthReport& report = *stats.health;
  telemetry::counter_add("health.checks");
  if (!report.healthy()) telemetry::counter_add("health.violations");
  const std::uint32_t from = ladder_.tier();
  const int moved = ladder_.on_step(report.healthy());
  if (moved > 0) {
    report.demoted = true;
    telemetry::counter_add("health.demotions");
    // The tier we are leaving may carry poisoned learned state (training
    // window, reused partitions) — drop it, and restart the MAE baseline.
    (from == 0 ? *solver_ : *fallback_solvers_[from - 1]).reset();
    health_monitor_.reset();
    BD_LOG_WARN << "health: demoting solver tier " << from << " -> "
                << ladder_.tier() << " after sustained violations (step "
                << step_ << ")";
  } else if (moved < 0) {
    report.promoted = true;
    telemetry::counter_add("health.promotions");
    BD_LOG_INFO << "health: promoting solver tier " << from << " -> "
                << ladder_.tier() << " after clean streak (step " << step_
                << ")";
  }
  telemetry::gauge_set("health.tier", static_cast<double>(ladder_.tier()));
}

StepStats Simulation::step() {
  BD_CHECK_MSG(initialized_, "call initialize() first");
  const telemetry::TelemetryScope scope(metrics_, trace_);
  const util::faultinject::FaultScope fault_scope(fault_harness_);
  ++step_;
  StepStats stats;
  stats.step = step_;
  if (config_.health_checks) {
    stats.health.emplace();
    stats.health->tier = ladder_.tier();
  }

  telemetry::TraceSpan step_span("sim.step", "sim");
  step_span.arg("step", static_cast<std::int64_t>(step_));
  if (util::faultinject::enabled()) {
    // slow_step[@step][:count] — stall this step by `count` milliseconds.
    // Exercises the fleet quantum watchdog without depending on a real
    // pathological refinement loop.
    if (auto inj = util::faultinject::fire(
            util::faultinject::FaultClass::kSlowStep, step_)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(inj->count));
    }
  }
  util::WallTimer phase_timer;

  // (1) particle deposition.
  {
    telemetry::TraceSpan span("sim.deposit", "sim");
    deposit_current(stats.deposit_seconds, stats.dropped_charge);
    if (util::faultinject::enabled()) {
      if (auto inj = util::faultinject::fire(
              util::faultinject::FaultClass::kGridNan, step_)) {
        util::Rng fault_rng(inj->seed);
        auto cells = rho_.data();
        for (std::uint32_t i = 0; i < inj->count; ++i) {
          cells[fault_rng.uniform_index(cells.size())] =
              std::numeric_limits<double>::quiet_NaN();
        }
        beam::longitudinal_gradient(rho_, drho_ds_);
      }
    }
    check_moments(stats);
    history_.push_step(step_, rho_, drho_ds_);
    span.arg("particles", static_cast<std::uint64_t>(particles_.size()));
    span.arg("dropped_charge", stats.dropped_charge);
  }
  stats.phase_ms.deposit_ms = phase_timer.seconds() * 1e3;

  // (2) compute retarded potentials, on the ladder's active tier.
  phase_timer.reset();
  {
    telemetry::TraceSpan span("sim.solve", "sim");
    RpSolver& active = active_solver();
    span.arg("solver", active.name());
    span.arg("tier", static_cast<std::uint64_t>(ladder_.tier()));
    const RpProblem problem = make_problem(config_.longitudinal);
    try {
      stats.longitudinal = active.solve(problem);
    } catch (const std::exception& e) {
      if (!config_.health_checks) throw;
      // Contain: the throwing solver's learned state is suspect — reset
      // it, forget the MAE baseline, and recompute the step with the
      // safest rung (the stateless full-adaptive solver when installed).
      stats.health->solver_exception = true;
      telemetry::counter_add("health.solver_exceptions");
      active.reset();
      health_monitor_.reset();
      RpSolver& safest =
          fallback_solvers_.empty() ? active : *fallback_solvers_.back();
      BD_LOG_WARN << "health: solver '" << active.name() << "' threw at step "
                  << step_ << " (" << e.what() << "); recomputing with '"
                  << safest.name() << "'";
      stats.longitudinal = safest.solve(problem);
    }
    check_potentials(stats, problem);
    force_s_grid_ = stats.longitudinal.values;
    if (config_.compute_transverse) {
      const RpProblem tproblem = make_problem(config_.transverse);
      stats.transverse = transverse_solver_->solve(tproblem);
      force_y_grid_ = stats.transverse->values;
    }
    span.arg("fallback_items", stats.longitudinal.fallback_items);
    span.arg("kernel_intervals", stats.longitudinal.kernel_intervals);
  }
  stats.phase_ms.solve_ms = phase_timer.seconds() * 1e3;

  // (3) self-forces at the particles.
  phase_timer.reset();
  {
    telemetry::TraceSpan span("sim.gather", "sim");
    beam::gather_forces(force_s_grid_, particles_, particle_force_s_);
    if (config_.compute_transverse) {
      beam::gather_forces(force_y_grid_, particles_, particle_force_y_);
    }
    check_forces(stats);
  }
  stats.phase_ms.gather_ms = phase_timer.seconds() * 1e3;

  // (4) push (the rigid validation bunch does not evolve).
  phase_timer.reset();
  {
    telemetry::TraceSpan span("sim.push", "sim");
    span.arg("rigid", static_cast<std::uint64_t>(config_.rigid ? 1 : 0));
    if (!config_.rigid) {
      beam::leapfrog_push(particles_, particle_force_s_,
                          config_.compute_transverse
                              ? std::span<const double>(particle_force_y_)
                              : std::span<const double>(),
                          config_.dt);
    }
  }
  stats.phase_ms.push_ms = phase_timer.seconds() * 1e3;

  update_ladder(stats);

  // Surface the per-phase breakdown and solver quality metrics through the
  // current registry — this sim's own when set_telemetry was called, the
  // process-wide default otherwise (see docs/METRICS.md).
  telemetry::counter_add("sim.steps");
  telemetry::histogram_record("sim.deposit_ms", stats.phase_ms.deposit_ms);
  telemetry::histogram_record("sim.solve_ms", stats.phase_ms.solve_ms);
  telemetry::histogram_record("sim.gather_ms", stats.phase_ms.gather_ms);
  telemetry::histogram_record("sim.push_ms", stats.phase_ms.push_ms);
  telemetry::gauge_set("sim.last_fallback_items",
                       static_cast<double>(stats.longitudinal.fallback_items));
  telemetry::gauge_set("sim.last_forecast_mae",
                       stats.longitudinal.forecast_mae);
  return stats;
}

std::vector<StepStats> Simulation::run(std::size_t n) {
  std::vector<StepStats> all;
  all.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (stop_requested()) break;
    all.push_back(step());
  }
  return all;
}

void Simulation::demote_tier() {
  if (fallback_solvers_.empty()) return;
  const telemetry::TelemetryScope scope(metrics_, trace_);
  const std::uint32_t from = ladder_.tier();
  if (!ladder_.force_demote()) return;
  telemetry::counter_add("health.demotions");
  // Mirror the in-step demotion: the abandoned tier's learned state is
  // suspect (it just overran or misbehaved) and the MAE baseline with it.
  (from == 0 ? *solver_ : *fallback_solvers_[from - 1]).reset();
  health_monitor_.reset();
  telemetry::gauge_set("health.tier", static_cast<double>(ladder_.tier()));
  BD_LOG_WARN << "health: supervisor demoting solver tier " << from << " -> "
              << ladder_.tier() << " (step " << step_ << ")";
}

}  // namespace bd::core
