#pragma once
/// \file fleet.hpp
/// SimulationFleet: a job queue that runs N independent Simulations —
/// parameter sweeps, ensemble runs, per-user configs — over the existing
/// fork-join thread pool (ROADMAP item 1; the aggregation-of-independent-
/// work shape PyHEADTAIL-style parallelization argues for).
///
/// ## Execution model
///
/// A single driver thread turns the queue into *rounds*: each round is one
/// `parallel_for_chunked(0, lanes, 1, ...)` job on the global ThreadPool
/// whose chunk bodies loop popping ready jobs and running each for a
/// *quantum* of steps. Because nested parallel loops inside pool work run
/// serially (util/parallel), a simulation's whole quantum executes on one
/// thread — and PR 2's determinism contract (bit-identical results at any
/// thread count) makes that execution bit-identical to running the sim
/// alone, at any `BD_NUM_THREADS`. Note the fleet occupies the pool's
/// single job slot while a round is in flight; submitting pool work from
/// other threads during a round waits for the round to finish.
///
/// ## Isolation
///
/// Every job gets its own MetricsRegistry + TraceSession (installed via
/// Simulation::set_telemetry, scoped per step by TelemetryScope) and —
/// when the spec carries a fault plan — its own FaultHarness seeded from
/// the sim's own seed. RNG and SolverScratch are per-Simulation already.
/// Shared *read-only* resources (wake tables, analytic references) are
/// safe to share across factories. Fleet-level telemetry (`fleet.*`)
/// goes to the ambient (normally process-global) registry.
///
/// ## Eviction + resume
///
/// With `max_resident` set, a job whose quantum ends while more than
/// `max_resident` simulations are live is checkpointed into `spool_dir`
/// and destroyed; it is rebuilt from its factory + checkpoint when next
/// scheduled, so thousands of queued scenarios need only a bounded
/// working set (and the spool survives process restarts — a resubmitted
/// job resumes from its spool file if one exists). Restores are
/// bit-identical in *physics* (values/errors/fallback work/digest);
/// SIMT cache-model metrics are address-sensitive and may differ after a
/// cross-object restore (see tests/test_checkpoint.cpp).
///
/// ## Supervision (docs/ROBUSTNESS.md)
///
/// With a `spool_dir`, the fleet is a *supervisor*, not just a scheduler:
///
///  * **Journal** — every submit/start/checkpoint/complete/fail/cancel is
///    appended to `<spool_dir>/fleet.journal` (CRC-framed WAL,
///    util/serialize) before the matching state change lands, so a process
///    crash loses at most the in-flight quantum. A new fleet on the same
///    spool dir replays the journal at construction, tolerates the torn
///    tail record a crash leaves, and — when `recovery_factory` is set —
///    re-enqueues every incomplete job from its last good checkpoint.
///  * **Retry + quarantine** — a step exception or an exhausted health
///    ladder costs one attempt of the job's RetryPolicy: the supervisor
///    restores the last spool checkpoint (re-initializes when none) and
///    re-enqueues after `backoff_rounds` *scheduler rounds* (never wall
///    time — healthy-job fleet≡solo bitwise determinism is preserved).
///    Jobs out of attempts move to the quarantine list, keeping their
///    final checkpoint and failure report for postmortem.
///  * **Watchdog** — with step/quantum deadlines set, the driver polls
///    in-flight quanta; an overrunning job is stopped cooperatively at
///    the next step boundary (Simulation stop token), demoted one ladder
///    rung, checkpointed and retried. `BD_FAULT="slow_step@N:ms"`
///    exercises the trip deterministically.
///  * **Drain** — drain() checkpoints every resident job, journals a
///    clean shutdown, and freezes the queue; a fleet rebuilt on the same
///    spool dir resumes every job bit-identically in physics digest.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "util/telemetry.hpp"

namespace bd::core {

/// Per-job retry budget. Attempt 1 is the initial run; each step
/// exception, health-ladder exhaustion or watchdog trip consumes one
/// attempt and re-enqueues the job `backoff_rounds` scheduler rounds
/// later. Setup failures (null/throwing factory, failed restore or
/// initialize) are never retried — they would fail identically again.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;   ///< total attempts (1 = never retry)
  std::uint32_t backoff_rounds = 1; ///< rounds to sit out between attempts
};

/// Fleet-wide knobs.
struct FleetOptions {
  /// Soft cap on concurrently live Simulation objects (0 = unlimited).
  /// Transient overshoot up to the number of pool lanes is possible.
  std::size_t max_resident = 0;
  /// Directory for eviction checkpoints and the job journal. Required
  /// when max_resident > 0; journaling is active iff non-empty.
  std::string spool_dir;
  /// Steps a job runs per scheduling quantum (min 1).
  std::size_t quantum_steps = 4;
  /// Checkpoint every resident job each N-th of its quanta (0 = only on
  /// eviction/drain/retry). Bounds replay loss after a crash to N quanta.
  std::size_t checkpoint_every_quanta = 0;
  /// Watchdog deadlines in wall-clock milliseconds (0 = disabled): a
  /// single step, or a whole quantum, exceeding its deadline trips the
  /// watchdog — the job is stopped at the next step boundary, demoted
  /// one ladder rung, checkpointed, and the trip costs one retry attempt.
  double step_deadline_ms = 0.0;
  double quantum_deadline_ms = 0.0;
  /// When set, recover() re-enqueues every incomplete journaled job at
  /// construction, building its Simulation with this factory (the spec's
  /// own factory is not serializable). Without it, incomplete jobs are
  /// only reported via recovered(), and a submit() with a matching name
  /// adopts the journaled digests/attempts.
  std::function<std::unique_ptr<Simulation>(const std::string& name)>
      recovery_factory;
};

/// One queued scenario.
struct FleetJobSpec {
  /// Unique job name; also the spool checkpoint filename (`<name>.ckpt`).
  std::string name;
  /// Builds the job's Simulation, constructed but NOT initialized — the
  /// fleet calls initialize() or restores the spool checkpoint itself.
  /// Must be callable from a pool thread.
  std::function<std::unique_ptr<Simulation>()> factory;
  /// Total steps to run.
  std::size_t target_steps = 0;
  /// BD_FAULT-grammar plan installed into a job-private harness seeded
  /// from the sim's own config seed. "" inherits the process `BD_FAULT`
  /// environment spec (still into a private harness, so budgets stay
  /// per-job); the literal "none" makes the job explicitly fault-free.
  std::string fault_spec;
  /// Optional per-step observer, called on the running thread after each
  /// step with that step's stats (tests use it to capture KernelMetrics).
  std::function<void(const StepStats&)> on_step;
  /// Retry budget for step failures / ladder exhaustion / watchdog trips.
  RetryPolicy retry;
};

/// Job lifecycle. kQueued covers both never-started and requeued-resident
/// jobs (including those sitting out a retry backoff); kEvicted is a
/// queued job whose state lives in the spool. kQuarantined is kFailed
/// after an exhausted retry budget, with the final checkpoint retained.
enum class FleetJobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kEvicted = 2,
  kDone = 3,
  kCancelled = 4,
  kFailed = 5,
  kQuarantined = 6,
};

/// True for states a job can never leave.
constexpr bool fleet_job_terminal(FleetJobState s) {
  return s == FleetJobState::kDone || s == FleetJobState::kCancelled ||
         s == FleetJobState::kFailed || s == FleetJobState::kQuarantined;
}

/// Snapshot of one job's progress.
struct FleetJobStatus {
  FleetJobState state = FleetJobState::kQueued;
  std::size_t steps_done = 0;
  std::size_t target_steps = 0;
  /// Chained physics digest over all completed steps (see
  /// fleet_digest_step) — survives eviction/resume bit-identically.
  std::uint32_t digest = 0;
  std::string error;  ///< what() of the failing step (kFailed/kQuarantined)
  /// Attempts consumed so far (0 until the first failure/trip).
  std::uint32_t attempts = 0;
};

/// Postmortem record of a job that exhausted its retry budget.
struct FleetQuarantineEntry {
  std::string name;
  std::uint32_t attempts = 0;
  std::string error;            ///< what() of the final failure
  std::string checkpoint_path;  ///< last good spool checkpoint ("" if none)
};

/// One journaled job as seen by recover() at construction.
struct FleetRecoveredJob {
  std::string name;
  /// Journaled terminal state, or kQueued for an incomplete job.
  FleetJobState state = FleetJobState::kQueued;
  std::size_t target_steps = 0;
  /// Step/digest of the last journaled checkpoint (0/0 when none).
  std::size_t checkpoint_step = 0;
  std::uint32_t digest = 0;
  std::uint32_t attempts = 0;
  std::string error;
  /// True when recovery_factory re-enqueued the job at construction.
  bool resubmitted = false;
};

/// Fold one step's deterministic physics outputs into a running CRC32
/// digest: step index, dropped charge, potential values/errors (bit
/// patterns), fallback/kernel work counts, sanitizer tallies and forecast
/// MAE — everything PR 2 + checkpointing guarantee bit-identical across
/// thread counts and across evict/resume. Timing fields and the
/// address-sensitive SIMT cache metrics are excluded.
std::uint32_t fleet_digest_step(const StepStats& stats, std::uint32_t prev);

/// The job-queue engine. All public methods are thread-safe.
class SimulationFleet {
 public:
  using JobId = std::size_t;

  explicit SimulationFleet(FleetOptions options = {});

  /// Cancels every non-terminal job (evicted jobs keep their spool file),
  /// finishes the in-flight quantum, and joins the driver thread.
  ~SimulationFleet();

  SimulationFleet(const SimulationFleet&) = delete;
  SimulationFleet& operator=(const SimulationFleet&) = delete;

  /// Enqueue a scenario; returns its id (ids are dense, in submit order).
  /// Throws bd::CheckError on an invalid spec (empty name/factory, zero
  /// target_steps, duplicate name).
  JobId submit(FleetJobSpec spec);

  /// Current status of a job (non-blocking).
  FleetJobStatus poll(JobId id) const;

  /// Request cancellation. Queued jobs cancel immediately; a running job
  /// stops at its next step boundary. Returns false if the job was
  /// already terminal.
  bool cancel(JobId id);

  /// Block until the job reaches a terminal state; returns it.
  FleetJobStatus wait(JobId id);

  /// Block until every submitted job is terminal.
  void wait_all();

  /// Graceful shutdown: stop scheduling, wait for in-flight quanta,
  /// checkpoint every resident non-terminal job into the spool, journal a
  /// clean-shutdown record, and join the driver. The fleet is frozen
  /// afterward (submit() throws; non-terminal jobs stay queued/evicted) —
  /// a new fleet on the same spool dir resumes them bit-identically in
  /// physics digest. Idempotent.
  void drain();

  /// Postmortem list of jobs that exhausted their retry budget.
  std::vector<FleetQuarantineEntry> quarantined() const;

  /// What recover() found in the journal at construction (empty when the
  /// fleet has no spool dir or the journal did not exist).
  std::vector<FleetRecoveredJob> recovered() const;

  /// Deterministic merged snapshot of the job's private metrics registry
  /// (sim.* counters/histograms of that job only).
  util::telemetry::MetricsSnapshot job_metrics(JobId id) const;

  std::size_t job_count() const;
  const FleetOptions& options() const { return options_; }

 private:
  struct Job;
  struct Impl;

  void recover();
  void sweep_stale_tmp_files();
  void driver_loop();
  void run_round(std::size_t lanes);
  void run_lane();
  void run_quantum(Job& job);

  FleetOptions options_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bd::core
