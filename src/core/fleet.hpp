#pragma once
/// \file fleet.hpp
/// SimulationFleet: a job queue that runs N independent Simulations —
/// parameter sweeps, ensemble runs, per-user configs — over the existing
/// fork-join thread pool (ROADMAP item 1; the aggregation-of-independent-
/// work shape PyHEADTAIL-style parallelization argues for).
///
/// ## Execution model
///
/// A single driver thread turns the queue into *rounds*: each round is one
/// `parallel_for_chunked(0, lanes, 1, ...)` job on the global ThreadPool
/// whose chunk bodies loop popping ready jobs and running each for a
/// *quantum* of steps. Because nested parallel loops inside pool work run
/// serially (util/parallel), a simulation's whole quantum executes on one
/// thread — and PR 2's determinism contract (bit-identical results at any
/// thread count) makes that execution bit-identical to running the sim
/// alone, at any `BD_NUM_THREADS`. Note the fleet occupies the pool's
/// single job slot while a round is in flight; submitting pool work from
/// other threads during a round waits for the round to finish.
///
/// ## Isolation
///
/// Every job gets its own MetricsRegistry + TraceSession (installed via
/// Simulation::set_telemetry, scoped per step by TelemetryScope) and —
/// when the spec carries a fault plan — its own FaultHarness seeded from
/// the sim's own seed. RNG and SolverScratch are per-Simulation already.
/// Shared *read-only* resources (wake tables, analytic references) are
/// safe to share across factories. Fleet-level telemetry (`fleet.*`)
/// goes to the ambient (normally process-global) registry.
///
/// ## Eviction + resume
///
/// With `max_resident` set, a job whose quantum ends while more than
/// `max_resident` simulations are live is checkpointed into `spool_dir`
/// and destroyed; it is rebuilt from its factory + checkpoint when next
/// scheduled, so thousands of queued scenarios need only a bounded
/// working set (and the spool survives process restarts — a resubmitted
/// job resumes from its spool file if one exists). Restores are
/// bit-identical in *physics* (values/errors/fallback work/digest);
/// SIMT cache-model metrics are address-sensitive and may differ after a
/// cross-object restore (see tests/test_checkpoint.cpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "util/telemetry.hpp"

namespace bd::core {

/// Fleet-wide knobs.
struct FleetOptions {
  /// Soft cap on concurrently live Simulation objects (0 = unlimited).
  /// Transient overshoot up to the number of pool lanes is possible.
  std::size_t max_resident = 0;
  /// Directory for eviction checkpoints. Required when max_resident > 0.
  std::string spool_dir;
  /// Steps a job runs per scheduling quantum (min 1).
  std::size_t quantum_steps = 4;
};

/// One queued scenario.
struct FleetJobSpec {
  /// Unique job name; also the spool checkpoint filename (`<name>.ckpt`).
  std::string name;
  /// Builds the job's Simulation, constructed but NOT initialized — the
  /// fleet calls initialize() or restores the spool checkpoint itself.
  /// Must be callable from a pool thread.
  std::function<std::unique_ptr<Simulation>()> factory;
  /// Total steps to run.
  std::size_t target_steps = 0;
  /// Optional BD_FAULT-grammar plan installed into a job-private harness
  /// seeded from the sim's own config seed ("" = no fault injection).
  std::string fault_spec;
  /// Optional per-step observer, called on the running thread after each
  /// step with that step's stats (tests use it to capture KernelMetrics).
  std::function<void(const StepStats&)> on_step;
};

/// Job lifecycle. kQueued covers both never-started and requeued-resident
/// jobs; kEvicted is a queued job whose state lives in the spool.
enum class FleetJobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kEvicted = 2,
  kDone = 3,
  kCancelled = 4,
  kFailed = 5,
};

/// True for states a job can never leave.
constexpr bool fleet_job_terminal(FleetJobState s) {
  return s == FleetJobState::kDone || s == FleetJobState::kCancelled ||
         s == FleetJobState::kFailed;
}

/// Snapshot of one job's progress.
struct FleetJobStatus {
  FleetJobState state = FleetJobState::kQueued;
  std::size_t steps_done = 0;
  std::size_t target_steps = 0;
  /// Chained physics digest over all completed steps (see
  /// fleet_digest_step) — survives eviction/resume bit-identically.
  std::uint32_t digest = 0;
  std::string error;  ///< what() of the failing step (kFailed only)
};

/// Fold one step's deterministic physics outputs into a running CRC32
/// digest: step index, dropped charge, potential values/errors (bit
/// patterns), fallback/kernel work counts, sanitizer tallies and forecast
/// MAE — everything PR 2 + checkpointing guarantee bit-identical across
/// thread counts and across evict/resume. Timing fields and the
/// address-sensitive SIMT cache metrics are excluded.
std::uint32_t fleet_digest_step(const StepStats& stats, std::uint32_t prev);

/// The job-queue engine. All public methods are thread-safe.
class SimulationFleet {
 public:
  using JobId = std::size_t;

  explicit SimulationFleet(FleetOptions options = {});

  /// Cancels every non-terminal job (evicted jobs keep their spool file),
  /// finishes the in-flight quantum, and joins the driver thread.
  ~SimulationFleet();

  SimulationFleet(const SimulationFleet&) = delete;
  SimulationFleet& operator=(const SimulationFleet&) = delete;

  /// Enqueue a scenario; returns its id (ids are dense, in submit order).
  /// Throws bd::CheckError on an invalid spec (empty name/factory, zero
  /// target_steps, duplicate name).
  JobId submit(FleetJobSpec spec);

  /// Current status of a job (non-blocking).
  FleetJobStatus poll(JobId id) const;

  /// Request cancellation. Queued jobs cancel immediately; a running job
  /// stops at its next step boundary. Returns false if the job was
  /// already terminal.
  bool cancel(JobId id);

  /// Block until the job reaches a terminal state; returns it.
  FleetJobStatus wait(JobId id);

  /// Block until every submitted job is terminal.
  void wait_all();

  /// Deterministic merged snapshot of the job's private metrics registry
  /// (sim.* counters/histograms of that job only).
  util::telemetry::MetricsSnapshot job_metrics(JobId id) const;

  std::size_t job_count() const;
  const FleetOptions& options() const { return options_; }

 private:
  struct Job;
  struct Impl;

  void driver_loop();
  void run_lane();
  void run_quantum(Job& job);

  FleetOptions options_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bd::core
