#pragma once
/// \file health.hpp
/// Numerical health monitoring and the solver degradation ladder.
///
/// The paper treats the learned forecast as a performance hint: the
/// adaptive quadrature fallback guarantees the tolerance regardless of
/// prediction quality. This module extends that safety property to the
/// whole step loop. A HealthMonitor scans the data flowing between the
/// four phases (moments, potentials, forces) for non-finite values and
/// drift signals, and a DegradationLadder demotes the simulation to
/// progressively simpler solvers when violations persist — and promotes
/// it back once the run has been clean for a while.
///
/// Everything here is plain arithmetic on spans; the monitor holds no
/// references to simulation state and is trivially checkpointable.

#include <cstdint>
#include <span>

namespace bd::util {
class BinaryWriter;
class BinaryReader;
}  // namespace bd::util

namespace bd::core {

/// Tunable limits for the monitor. Defaults are deliberately loose — the
/// monitor is a tripwire for corruption, not a physics validator.
struct HealthThresholds {
  /// Fraction of total |charge| allowed to fall outside the grid before a
  /// step is flagged (beam escaping the domain, or deposit corruption).
  double max_dropped_charge = 0.05;

  /// Fraction of forecast values the sanitizer may rewrite before the
  /// forecast source is considered corrupt (a handful of clipped values is
  /// normal during warm-up; half the grid is not).
  double max_sanitized_fraction = 0.5;

  /// A step's forecast MAE must stay below `mae_drift_factor` times the
  /// running EMA baseline; above it the predictor is considered drifting.
  double mae_drift_factor = 8.0;

  /// EMA weight for the MAE baseline (higher = adapts faster).
  double mae_ema = 0.25;

  /// Number of MAE samples collected before drift checking engages.
  std::uint32_t mae_warmup = 4;

  /// Consecutive unhealthy steps before the ladder demotes one tier.
  std::uint32_t demote_after = 3;

  /// Consecutive healthy steps before the ladder promotes one tier.
  std::uint32_t promote_after = 16;
};

/// Per-step health findings, attached to StepStats when health checks are
/// enabled. Default-constructed state means "nothing wrong".
struct HealthReport {
  std::uint64_t nan_moments = 0;      ///< non-finite deposited moment nodes
  std::uint64_t nan_potentials = 0;   ///< non-finite solved potential nodes
  std::uint64_t nan_forces = 0;       ///< non-finite gathered force samples
  std::uint64_t quarantined_cells = 0;   ///< grid nodes zeroed before solve
  std::uint64_t recomputed_points = 0;   ///< nodes re-solved by repair solver
  std::uint64_t sanitized_forecasts = 0; ///< forecast values clipped to sane
  bool dropped_charge_exceeded = false;  ///< beam loss above threshold
  bool forecast_corrupt = false;         ///< sanitized fraction too high
  bool forecast_mae_drift = false;       ///< MAE blew past the EMA baseline
  bool solver_exception = false;         ///< active solver threw mid-step
  std::uint32_t tier = 0;                ///< ladder tier used for this step
  bool demoted = false;                  ///< ladder moved down after this step
  bool promoted = false;                 ///< ladder moved up after this step

  /// True when the step showed no violations (quarantine/recompute counts
  /// are remediation, not violations by themselves; they follow from
  /// nan_moments/nan_potentials which do count).
  bool healthy() const {
    return nan_moments == 0 && nan_potentials == 0 && nan_forces == 0 &&
           !dropped_charge_exceeded && !forecast_corrupt &&
           !forecast_mae_drift && !solver_exception;
  }
};

/// Scans phase outputs and tracks the forecast-MAE baseline.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthThresholds thresholds = {})
      : thresholds_(thresholds) {}

  const HealthThresholds& thresholds() const { return thresholds_; }

  /// Number of non-finite entries in `values` (no mutation).
  static std::uint64_t count_non_finite(std::span<const double> values);

  /// Zero every non-finite entry in `values`; returns how many were hit.
  static std::uint64_t quarantine_non_finite(std::span<double> values);

  /// Feed one step's forecast MAE. Returns true when the sample exceeds
  /// the drift threshold. Violating samples are NOT folded into the EMA
  /// baseline (one poisoned step must not normalize the next one).
  bool observe_mae(double mae);

  /// Forget the MAE baseline (after a predictor reset).
  void reset();

  void save(util::BinaryWriter& out) const;
  void load(util::BinaryReader& in);

 private:
  HealthThresholds thresholds_;
  double mae_baseline_ = 0.0;
  std::uint32_t mae_samples_ = 0;
};

/// Tier state machine: tier 0 is the primary (predictive) solver, higher
/// tiers are progressively simpler fallbacks; the last tier must always
/// succeed (full adaptive quadrature). Demotion is sticky within a streak:
/// the unhealthy counter resets on any healthy step and vice versa.
class DegradationLadder {
 public:
  DegradationLadder(std::uint32_t num_tiers, std::uint32_t demote_after,
                    std::uint32_t promote_after);

  std::uint32_t tier() const { return tier_; }
  std::uint32_t num_tiers() const { return num_tiers_; }

  /// Record one step's verdict. Returns +1 if the ladder demoted (moved to
  /// a higher-numbered, simpler tier), -1 if it promoted, 0 otherwise.
  int on_step(bool healthy);

  /// Back to tier 0 with clean streaks (independent runs).
  void reset();

  /// Supervisor-driven demotion: move one rung down immediately (no streak
  /// accounting) and reset both streaks. Returns true if a demotion
  /// happened, false when already on the last rung. Used by the fleet
  /// watchdog when a job overruns its step deadline.
  bool force_demote();

  void save(util::BinaryWriter& out) const;
  void load(util::BinaryReader& in);

 private:
  std::uint32_t num_tiers_;
  std::uint32_t demote_after_;
  std::uint32_t promote_after_;
  std::uint32_t tier_ = 0;
  std::uint32_t unhealthy_streak_ = 0;
  std::uint32_t healthy_streak_ = 0;
};

}  // namespace bd::core
