#include "core/checkpoint.hpp"

#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/serialize.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace bd::core {

namespace telemetry = util::telemetry;

namespace {

/// Serialize one solver's state behind a length-prefixed frame, so solvers
/// can evolve their payloads without perturbing the outer layout.
void write_solver(util::BinaryWriter& out, const RpSolver& solver) {
  out.write_string(solver.name());
  util::BinaryWriter sub;
  solver.save_state(sub);
  out.write_bytes(sub.payload());
}

void read_solver(util::BinaryReader& in, RpSolver& solver,
                 const char* which) {
  const std::string name = in.read_string();
  BD_CHECK_MSG(name == solver.name(),
               which << " solver mismatch: checkpoint has '" << name
                     << "', simulation has '" << solver.name() << "'");
  const std::vector<std::byte> bytes = in.read_bytes();
  util::BinaryReader sub(bytes);
  solver.load_state(sub);
  BD_CHECK_MSG(sub.done(), which << " solver '" << name
                                 << "' left unread checkpoint state");
}

void write_config(util::BinaryWriter& out, const SimConfig& config) {
  out.write_u64(config.particles);
  out.write_u32(config.nx);
  out.write_u32(config.ny);
  out.write_f64(config.half_extent_x);
  out.write_f64(config.half_extent_y);
  out.write_f64(config.sub_width);
  out.write_u32(config.num_subregions);
  out.write_f64(config.tolerance);
  out.write_f64(config.dt);
  out.write_bool(config.rigid);
  out.write_bool(config.compute_transverse);
  out.write_u64(config.seed);
  out.write_u8(static_cast<std::uint8_t>(config.deposit));
}

void verify_config(util::BinaryReader& in, const SimConfig& config) {
#define BD_CKPT_FIELD(reader, field, cast)                                 \
  {                                                                        \
    const auto stored = in.reader();                                       \
    BD_CHECK_MSG(stored == cast(config.field),                             \
                 "checkpoint config mismatch on " #field ": checkpoint "   \
                     << stored << ", simulation " << cast(config.field));  \
  }
  BD_CKPT_FIELD(read_u64, particles, std::uint64_t)
  BD_CKPT_FIELD(read_u32, nx, std::uint32_t)
  BD_CKPT_FIELD(read_u32, ny, std::uint32_t)
  BD_CKPT_FIELD(read_f64, half_extent_x, double)
  BD_CKPT_FIELD(read_f64, half_extent_y, double)
  BD_CKPT_FIELD(read_f64, sub_width, double)
  BD_CKPT_FIELD(read_u32, num_subregions, std::uint32_t)
  BD_CKPT_FIELD(read_f64, tolerance, double)
  BD_CKPT_FIELD(read_f64, dt, double)
  BD_CKPT_FIELD(read_bool, rigid, bool)
  BD_CKPT_FIELD(read_bool, compute_transverse, bool)
  BD_CKPT_FIELD(read_u64, seed, std::uint64_t)
#undef BD_CKPT_FIELD
  const auto deposit = in.read_u8();
  BD_CHECK_MSG(deposit == static_cast<std::uint8_t>(config.deposit),
               "checkpoint config mismatch on deposit scheme");
}

void write_rng(util::BinaryWriter& out, const util::Rng::State& state) {
  for (std::uint64_t word : state.s) out.write_u64(word);
  out.write_bool(state.has_cached_normal);
  out.write_f64(state.cached_normal);
}

util::Rng::State read_rng(util::BinaryReader& in) {
  util::Rng::State state;
  for (std::uint64_t& word : state.s) word = in.read_u64();
  state.has_cached_normal = in.read_bool();
  state.cached_normal = in.read_f64();
  return state;
}

}  // namespace

void save_checkpoint(const Simulation& sim, const std::string& path) {
  // Attribute checkpoint telemetry (and any kCheckpointTruncate fault)
  // to the owning simulation when its targets are scoped (see
  // Simulation::set_telemetry).
  const telemetry::TelemetryScope scope(sim.metrics_, sim.trace_);
  const util::faultinject::FaultScope fault_scope(sim.fault_harness_);
  telemetry::TraceSpan span("checkpoint.save", "core");
  util::WallTimer timer;

  util::BinaryWriter out;
  write_config(out, sim.config_);
  out.write_i64(sim.step_);
  write_rng(out, sim.rng_.state());

  out.write_f64(sim.particles_.weight());
  out.write_f64_span(sim.particles_.s());
  out.write_f64_span(sim.particles_.y());
  out.write_f64_span(sim.particles_.ps());
  out.write_f64_span(sim.particles_.py());

  sim.history_.save(out);
  sim.health_monitor_.save(out);
  sim.ladder_.save(out);

  write_solver(out, *sim.solver_);
  out.write_bool(sim.transverse_solver_ != nullptr);
  if (sim.transverse_solver_) write_solver(out, *sim.transverse_solver_);
  out.write_u64(sim.fallback_solvers_.size());
  for (const auto& fallback : sim.fallback_solvers_) {
    write_solver(out, *fallback);
  }

  util::write_checked_file(path, kCheckpointMagic, kCheckpointVersion,
                           out.payload());

  telemetry::counter_add("checkpoint.saves");
  telemetry::gauge_set("checkpoint.bytes", static_cast<double>(out.size()));
  telemetry::histogram_record("checkpoint.save_ms", timer.seconds() * 1e3);
}

void restore_checkpoint(Simulation& sim, const std::string& path) {
  const telemetry::TelemetryScope scope(sim.metrics_, sim.trace_);
  const util::faultinject::FaultScope fault_scope(sim.fault_harness_);
  telemetry::TraceSpan span("checkpoint.restore", "core");
  util::WallTimer timer;

  std::uint32_t version = 0;
  const std::vector<std::byte> payload =
      util::read_checked_file(path, kCheckpointMagic, version);
  BD_CHECK_MSG(version == kCheckpointVersion,
               "unsupported checkpoint version " << version << " (expected "
                                                 << kCheckpointVersion
                                                 << ") in " << path);
  util::BinaryReader in(payload);

  verify_config(in, sim.config_);
  sim.step_ = in.read_i64();
  sim.rng_.set_state(read_rng(in));

  sim.particles_.set_weight(in.read_f64());
  // A same-config simulation already holds arrays of the right length
  // (resize is then a no-op, preserving allocations for the in-place
  // bit-identical resume); a fresh one gets sized here.
  sim.particles_.resize(sim.config_.particles);
  in.read_f64_into(sim.particles_.s());
  in.read_f64_into(sim.particles_.y());
  in.read_f64_into(sim.particles_.ps());
  in.read_f64_into(sim.particles_.py());

  sim.history_.load(in);
  sim.health_monitor_.load(in);
  sim.ladder_.load(in);

  read_solver(in, *sim.solver_, "primary");
  const bool has_transverse = in.read_bool();
  BD_CHECK_MSG(has_transverse == (sim.transverse_solver_ != nullptr),
               "checkpoint transverse-solver presence mismatch");
  if (has_transverse) read_solver(in, *sim.transverse_solver_, "transverse");
  const std::uint64_t fallbacks = in.read_u64();
  BD_CHECK_MSG(fallbacks == sim.fallback_solvers_.size(),
               "checkpoint fallback-solver count mismatch: checkpoint has "
                   << fallbacks << ", simulation has "
                   << sim.fallback_solvers_.size());
  for (auto& fallback : sim.fallback_solvers_) {
    read_solver(in, *fallback, "fallback");
  }

  BD_CHECK_MSG(in.done(), "checkpoint has "
                              << in.remaining()
                              << " trailing bytes — corrupt or newer file");

  // Forces are recomputed by the next step(); size the scratch arrays.
  sim.particle_force_s_.assign(sim.particles_.size(), 0.0);
  sim.particle_force_y_.assign(sim.particles_.size(), 0.0);
  sim.initialized_ = true;

  telemetry::counter_add("checkpoint.restores");
  telemetry::histogram_record("checkpoint.restore_ms", timer.seconds() * 1e3);
}

}  // namespace bd::core
