#include "core/fleet.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/parallel.hpp"
#include "util/serialize.hpp"

namespace bd::core {

namespace telemetry = util::telemetry;

// ---------------------------------------------------------------------------
// Physics digest
// ---------------------------------------------------------------------------

namespace {

void digest_solve(util::BinaryWriter& out, const SolveResult& result) {
  out.write_f64_span(result.values.data());
  out.write_f64_span(result.errors.data());
  out.write_u64(result.fallback_items);
  out.write_u64(result.kernel_intervals);
  out.write_u64(result.sanitized_forecasts);
  out.write_f64(result.forecast_mae);
}

}  // namespace

std::uint32_t fleet_digest_step(const StepStats& stats, std::uint32_t prev) {
  util::BinaryWriter out;
  out.write_i64(stats.step);
  out.write_f64(stats.dropped_charge);
  digest_solve(out, stats.longitudinal);
  out.write_bool(stats.transverse.has_value());
  if (stats.transverse) digest_solve(out, *stats.transverse);
  return util::crc32(out.payload(), prev);
}

// ---------------------------------------------------------------------------
// Fleet internals
// ---------------------------------------------------------------------------

struct SimulationFleet::Job {
  JobId id = 0;
  FleetJobSpec spec;
  std::string spool_path;  ///< "" when the fleet has no spool directory

  FleetJobState state = FleetJobState::kQueued;  ///< guarded by Impl::mu
  std::string error;  ///< written by the owning lane before the terminal
                      ///< state is published under Impl::mu

  /// Progress fields are written lock-free by the one lane that owns the
  /// job while it is kRunning and read by poll() — hence atomic.
  std::atomic<std::size_t> steps_done{0};
  std::atomic<std::uint32_t> digest{0};
  std::atomic<bool> cancel_requested{false};

  /// Job-private isolation: telemetry targets and (optional) fault
  /// harness live as long as the job, surviving eviction — so a
  /// `class[@step][:count]` budget is consumed once per job, never
  /// re-armed by a resume and never shared with a neighbour sim.
  std::unique_ptr<telemetry::MetricsRegistry> metrics =
      std::make_unique<telemetry::MetricsRegistry>();
  std::unique_ptr<telemetry::TraceSession> trace =
      std::make_unique<telemetry::TraceSession>();
  std::unique_ptr<util::faultinject::FaultHarness> harness;

  std::unique_ptr<Simulation> sim;  ///< resident iff non-null
};

struct SimulationFleet::Impl {
  mutable std::mutex mu;
  std::condition_variable work_cv;  ///< driver: new work or shutdown
  std::condition_variable done_cv;  ///< waiters: some job became terminal
  std::vector<std::unique_ptr<Job>> jobs;   // guarded by mu (vector itself)
  std::deque<JobId> ready;                  // guarded by mu
  bool stop = false;                        // guarded by mu
  bool stopping = false;  ///< dtor in progress: keep evicted spool files
  std::thread driver;
};

SimulationFleet::SimulationFleet(FleetOptions options)
    : options_(std::move(options)), impl_(std::make_unique<Impl>()) {
  if (options_.quantum_steps == 0) options_.quantum_steps = 1;
  BD_CHECK_MSG(options_.max_resident == 0 || !options_.spool_dir.empty(),
               "SimulationFleet: max_resident > 0 requires a spool_dir");
  impl_->driver = std::thread([this] { driver_loop(); });
}

SimulationFleet::~SimulationFleet() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
    impl_->stopping = true;
    impl_->ready.clear();
    for (auto& job : impl_->jobs) {
      job->cancel_requested.store(true, std::memory_order_relaxed);
      // Queued/evicted jobs are finalized here; running quanta observe
      // cancel_requested and finalize themselves before the driver's
      // round — and therefore this join — completes.
      if (!fleet_job_terminal(job->state) &&
          job->state != FleetJobState::kRunning) {
        job->sim.reset();
        job->state = FleetJobState::kCancelled;
      }
    }
  }
  impl_->work_cv.notify_all();
  impl_->done_cv.notify_all();
  impl_->driver.join();
}

SimulationFleet::JobId SimulationFleet::submit(FleetJobSpec spec) {
  BD_CHECK_MSG(!spec.name.empty(), "FleetJobSpec.name must not be empty");
  BD_CHECK_MSG(spec.name.find('/') == std::string::npos,
               "FleetJobSpec.name must not contain '/': " << spec.name);
  BD_CHECK_MSG(spec.factory != nullptr,
               "FleetJobSpec.factory must not be null");
  BD_CHECK_MSG(spec.target_steps > 0,
               "FleetJobSpec.target_steps must be > 0");

  auto job = std::make_unique<Job>();
  if (!options_.spool_dir.empty()) {
    job->spool_path = options_.spool_dir + "/" + spec.name + ".ckpt";
  }
  job->spec = std::move(spec);

  JobId id = 0;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    BD_CHECK_MSG(!impl_->stop, "submit() on a stopped SimulationFleet");
    for (const auto& existing : impl_->jobs) {
      BD_CHECK_MSG(existing->spec.name != job->spec.name,
                   "duplicate fleet job name: " << job->spec.name);
    }
    id = impl_->jobs.size();
    job->id = id;
    impl_->jobs.push_back(std::move(job));
    impl_->ready.push_back(id);
  }
  telemetry::counter_add("fleet.submitted");
  impl_->work_cv.notify_one();
  return id;
}

FleetJobStatus SimulationFleet::poll(JobId id) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  BD_CHECK_MSG(id < impl_->jobs.size(), "unknown fleet job id " << id);
  const Job& job = *impl_->jobs[id];
  FleetJobStatus status;
  status.state = job.state;
  status.steps_done = job.steps_done.load(std::memory_order_relaxed);
  status.target_steps = job.spec.target_steps;
  status.digest = job.digest.load(std::memory_order_relaxed);
  if (fleet_job_terminal(job.state)) status.error = job.error;
  return status;
}

bool SimulationFleet::cancel(JobId id) {
  bool removed_spool = false;
  std::string spool;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    BD_CHECK_MSG(id < impl_->jobs.size(), "unknown fleet job id " << id);
    Job& job = *impl_->jobs[id];
    if (fleet_job_terminal(job.state)) return false;
    job.cancel_requested.store(true, std::memory_order_relaxed);
    if (job.state == FleetJobState::kRunning) {
      // The owning lane finalizes at the next step boundary.
      return true;
    }
    // Queued/evicted: finalize immediately and drop it from the queue.
    for (auto it = impl_->ready.begin(); it != impl_->ready.end(); ++it) {
      if (*it == id) {
        impl_->ready.erase(it);
        break;
      }
    }
    job.sim.reset();
    job.state = FleetJobState::kCancelled;
    if (!job.spool_path.empty()) {
      spool = job.spool_path;
      removed_spool = true;
    }
  }
  if (removed_spool) std::remove(spool.c_str());
  telemetry::counter_add("fleet.cancelled");
  impl_->done_cv.notify_all();
  return true;
}

FleetJobStatus SimulationFleet::wait(JobId id) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  BD_CHECK_MSG(id < impl_->jobs.size(), "unknown fleet job id " << id);
  Job& job = *impl_->jobs[id];
  impl_->done_cv.wait(lk, [&] { return fleet_job_terminal(job.state); });
  FleetJobStatus status;
  status.state = job.state;
  status.steps_done = job.steps_done.load(std::memory_order_relaxed);
  status.target_steps = job.spec.target_steps;
  status.digest = job.digest.load(std::memory_order_relaxed);
  status.error = job.error;
  return status;
}

void SimulationFleet::wait_all() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->done_cv.wait(lk, [&] {
    for (const auto& job : impl_->jobs) {
      if (!fleet_job_terminal(job->state)) return false;
    }
    return true;
  });
}

util::telemetry::MetricsSnapshot SimulationFleet::job_metrics(
    JobId id) const {
  telemetry::MetricsRegistry* registry = nullptr;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    BD_CHECK_MSG(id < impl_->jobs.size(), "unknown fleet job id " << id);
    registry = impl_->jobs[id]->metrics.get();
  }
  // The registry outlives the job (owned by the Job, which the fleet keeps
  // until destruction), and snapshot() is internally synchronized.
  return registry->snapshot();
}

std::size_t SimulationFleet::job_count() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->jobs.size();
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

void SimulationFleet::driver_loop() {
  telemetry::TraceSession::global().set_current_thread_name("fleet-driver");
  std::unique_lock<std::mutex> lk(impl_->mu);
  for (;;) {
    impl_->work_cv.wait(lk,
                        [&] { return impl_->stop || !impl_->ready.empty(); });
    if (impl_->stop && impl_->ready.empty()) return;
    // One round: enough lanes to drain the current backlog, capped at the
    // pool width. Lanes loop popping jobs, so a long backlog still drains
    // in a single round; jobs submitted mid-round start the next one.
    const std::size_t lanes = std::min<std::size_t>(
        impl_->ready.size(), util::ThreadPool::global().num_threads());
    lk.unlock();
    {
      telemetry::counter_add("fleet.rounds");
      BD_TRACE_SPAN("fleet.round", "fleet");
      util::parallel_for_chunked(
          0, lanes, 1, [this](std::size_t, std::size_t) { run_lane(); });
    }
    lk.lock();
  }
}

void SimulationFleet::run_lane() {
  for (;;) {
    Job* job = nullptr;
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (impl_->ready.empty()) return;
      job = impl_->jobs[impl_->ready.front()].get();
      impl_->ready.pop_front();
      job->state = FleetJobState::kRunning;
    }
    run_quantum(*job);
  }
}

void SimulationFleet::run_quantum(Job& job) {
  // Fleet-level telemetry goes to the ambient registry/session (normally
  // the process-global ones); the sim's own step()/checkpoint telemetry
  // is scoped to the job's private instances via set_telemetry below.
  telemetry::counter_add("fleet.quanta");
  BD_TRACE_SPAN("fleet.quantum", "fleet");

  bool failed = false;
  if (!job.cancel_requested.load(std::memory_order_relaxed)) {
    try {
      if (!job.sim) {
        job.sim = job.spec.factory();
        BD_CHECK_MSG(job.sim != nullptr,
                     "fleet job '" << job.spec.name
                                   << "': factory returned null");
        job.sim->set_telemetry(job.metrics.get(), job.trace.get());
        if (!job.spec.fault_spec.empty()) {
          if (!job.harness) {
            // Seeded from the sim's own seed: two jobs running the same
            // spec corrupt different cells, and the budget survives
            // eviction (the harness does not re-arm on resume).
            job.harness =
                std::make_unique<util::faultinject::FaultHarness>();
            job.harness->install(job.spec.fault_spec,
                                 job.sim->config().seed);
          }
          job.sim->set_fault_harness(job.harness.get());
        }
        if (!job.spool_path.empty() &&
            std::filesystem::exists(job.spool_path)) {
          restore_checkpoint(*job.sim, job.spool_path);
          job.steps_done.store(
              static_cast<std::size_t>(job.sim->current_step()),
              std::memory_order_relaxed);
          telemetry::counter_add("fleet.resumes");
        } else if (!job.sim->initialized()) {
          job.sim->initialize();
        }
      }
      std::size_t done = job.steps_done.load(std::memory_order_relaxed);
      std::uint32_t digest = job.digest.load(std::memory_order_relaxed);
      std::size_t ran = 0;
      while (ran < options_.quantum_steps &&
             done < job.spec.target_steps &&
             !job.cancel_requested.load(std::memory_order_relaxed)) {
        const StepStats stats = job.sim->step();
        digest = fleet_digest_step(stats, digest);
        ++done;
        ++ran;
        job.steps_done.store(done, std::memory_order_relaxed);
        job.digest.store(digest, std::memory_order_relaxed);
        if (job.spec.on_step) job.spec.on_step(stats);
      }
    } catch (const std::exception& e) {
      job.error = e.what();
      failed = true;
    } catch (...) {
      job.error = "unknown exception";
      failed = true;
    }
  }

  // Decide the job's fate. Eviction checkpointing does file I/O, so it
  // happens outside the lock; until then the job stays kRunning and no
  // other lane can touch it. Once a non-terminal job is pushed back onto
  // the ready queue another lane may claim it immediately, so everything
  // after each critical section works from the locally captured
  // `decided`/`resident` values, never from `job` again.
  bool evict = false;
  bool keep_spool_on_cancel = false;
  FleetJobState decided = FleetJobState::kRunning;
  std::size_t resident = 0;
  const auto count_resident = [this] {
    std::size_t n = 0;
    for (const auto& j : impl_->jobs) n += j->sim != nullptr;
    return n;
  };
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    keep_spool_on_cancel = impl_->stopping;
    if (failed) {
      job.sim.reset();
      decided = FleetJobState::kFailed;
    } else if (job.cancel_requested.load(std::memory_order_relaxed)) {
      job.sim.reset();
      decided = FleetJobState::kCancelled;
    } else if (job.steps_done.load(std::memory_order_relaxed) >=
               job.spec.target_steps) {
      job.sim.reset();
      decided = FleetJobState::kDone;
    } else if (options_.max_resident > 0 &&
               count_resident() > options_.max_resident) {
      evict = true;  // stays kRunning until the checkpoint lands
    } else {
      decided = FleetJobState::kQueued;
    }
    if (!evict) {
      job.state = decided;
      if (decided == FleetJobState::kQueued) {
        impl_->ready.push_back(job.id);
      }
      resident = count_resident();
    }
  }

  if (evict) {
    try {
      BD_TRACE_SPAN("fleet.evict", "fleet");
      save_checkpoint(*job.sim, job.spool_path);
      telemetry::counter_add("fleet.evictions");
      decided = FleetJobState::kEvicted;
    } catch (const std::exception& e) {
      job.error = e.what();
      decided = FleetJobState::kFailed;
    }
    std::lock_guard<std::mutex> lk(impl_->mu);
    job.sim.reset();
    job.state = decided;
    if (decided == FleetJobState::kEvicted) {
      impl_->ready.push_back(job.id);
    }
    resident = count_resident();
  }

  telemetry::gauge_set("fleet.resident", static_cast<double>(resident));
  switch (decided) {
    case FleetJobState::kDone:
      telemetry::counter_add("fleet.completed");
      if (!job.spool_path.empty()) std::remove(job.spool_path.c_str());
      impl_->done_cv.notify_all();
      break;
    case FleetJobState::kCancelled:
      telemetry::counter_add("fleet.cancelled");
      // Keep the spool file while the dtor is tearing the fleet down so a
      // restarted process can resubmit and resume the job.
      if (!job.spool_path.empty() && !keep_spool_on_cancel) {
        std::remove(job.spool_path.c_str());
      }
      impl_->done_cv.notify_all();
      break;
    case FleetJobState::kFailed:
      telemetry::counter_add("fleet.failed");
      impl_->done_cv.notify_all();
      break;
    default:
      impl_->work_cv.notify_one();
      break;
  }
}

}  // namespace bd::core
