#include "core/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/checkpoint.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/parallel.hpp"
#include "util/serialize.hpp"

namespace bd::core {

namespace telemetry = util::telemetry;

// ---------------------------------------------------------------------------
// Physics digest
// ---------------------------------------------------------------------------

namespace {

void digest_solve(util::BinaryWriter& out, const SolveResult& result) {
  out.write_f64_span(result.values.data());
  out.write_f64_span(result.errors.data());
  out.write_u64(result.fallback_items);
  out.write_u64(result.kernel_intervals);
  out.write_u64(result.sanitized_forecasts);
  out.write_f64(result.forecast_mae);
}

}  // namespace

std::uint32_t fleet_digest_step(const StepStats& stats, std::uint32_t prev) {
  util::BinaryWriter out;
  out.write_i64(stats.step);
  out.write_f64(stats.dropped_charge);
  digest_solve(out, stats.longitudinal);
  out.write_bool(stats.transverse.has_value());
  if (stats.transverse) digest_solve(out, *stats.transverse);
  return util::crc32(out.payload(), prev);
}

// ---------------------------------------------------------------------------
// Journal records (docs/ROBUSTNESS.md documents this format)
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kJournalVersion = 1;

/// Payload layout: u8 kind, then kind-specific fields (BinaryWriter
/// encoding). The frame around each payload is util/serialize's
/// append_journal_record. New kinds bump kJournalVersion; a reader
/// rejects versions above its own (same policy as checkpoints).
enum class RecordKind : std::uint8_t {
  kHeader = 0,       ///< u32 version — always the first record
  kSubmit = 1,       ///< name, target u64, fault_spec, max_attempts, backoff
  kStart = 2,        ///< name — first quantum began
  kCheckpoint = 3,   ///< name, step u64, digest u32 — precedes spool write
  kComplete = 4,     ///< name, steps u64, digest u32
  kFailAttempt = 5,  ///< name, attempt u32, error — a retry will follow
  kFailTerminal = 6, ///< name, error — setup failure, never retried
  kQuarantine = 7,   ///< name, attempts u32, error — retry budget exhausted
  kCancel = 8,       ///< name
  kShutdown = 9,     ///< clean drain() — no payload beyond the kind
  kRetryState = 10,  ///< name, attempts u32, error — written by compaction
};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Everything the journal knows about one job name during replay.
struct JournalEntry {
  std::string name;
  std::uint64_t target_steps = 0;
  std::string fault_spec;
  RetryPolicy retry;
  std::map<std::uint64_t, std::uint32_t> checkpoints;  ///< step -> digest
  std::uint32_t attempts = 0;
  std::string error;
  /// kQueued = incomplete; otherwise the journaled terminal state.
  FleetJobState terminal = FleetJobState::kQueued;
  std::uint64_t final_steps = 0;   ///< from kComplete
  std::uint32_t final_digest = 0;  ///< from kComplete
};

}  // namespace

// ---------------------------------------------------------------------------
// Fleet internals
// ---------------------------------------------------------------------------

struct SimulationFleet::Job {
  JobId id = 0;
  FleetJobSpec spec;
  std::string spool_path;  ///< "" when the fleet has no spool directory

  FleetJobState state = FleetJobState::kQueued;  ///< guarded by Impl::mu
  std::string error;  ///< written by the owning lane before the terminal
                      ///< state is published under Impl::mu

  /// Progress fields are written lock-free by the one lane that owns the
  /// job while it is kRunning and read by poll() — hence atomic.
  std::atomic<std::size_t> steps_done{0};
  std::atomic<std::uint32_t> digest{0};
  std::atomic<bool> cancel_requested{false};
  std::atomic<std::uint32_t> attempts{0};

  /// Watchdog channel. The owning lane publishes `running_sim` with
  /// release (so the acquire load sees a fully constructed Simulation)
  /// while the quantum is in flight and clears it (under Impl::mu)
  /// before every sim.reset(); the driver dereferences it only under
  /// Impl::mu, so the pointer it reads is never mid-destruction.
  /// Timestamps are steady-clock nanoseconds (0 = not in a step /
  /// quantum).
  std::atomic<Simulation*> running_sim{nullptr};
  std::atomic<std::uint64_t> quantum_start_ns{0};
  std::atomic<std::uint64_t> step_start_ns{0};
  std::atomic<bool> watchdog_flagged{false};
  /// Mirrors `sim != nullptr`. The owning lane builds the sim outside
  /// Impl::mu (factory/restore are slow I/O), so other lanes counting
  /// residents must read this flag, not the unique_ptr itself.
  std::atomic<bool> sim_live{false};

  /// Lane-owned supervision state (no concurrent access: the single lane
  /// that holds the job while kRunning, or the single-threaded
  /// constructor/drain paths, are the only writers).
  std::map<std::uint64_t, std::uint32_t> checkpoint_digests;
  std::uint64_t last_ckpt_step = 0;
  std::uint32_t last_ckpt_digest = 0;
  std::uint32_t exhausted_streak = 0;  ///< unhealthy steps on the last rung
  std::size_t quanta_run = 0;
  bool started_journaled = false;

  /// Job-private isolation: telemetry targets and fault harness live as
  /// long as the job, surviving eviction and retries — so a
  /// `class[@step][:count]` budget is consumed once per job, never
  /// re-armed by a resume/retry and never shared with a neighbour sim.
  std::unique_ptr<telemetry::MetricsRegistry> metrics =
      std::make_unique<telemetry::MetricsRegistry>();
  std::unique_ptr<telemetry::TraceSession> trace =
      std::make_unique<telemetry::TraceSession>();
  std::unique_ptr<util::faultinject::FaultHarness> harness;

  std::unique_ptr<Simulation> sim;  ///< resident iff non-null
};

struct SimulationFleet::Impl {
  mutable std::mutex mu;
  std::condition_variable work_cv;  ///< driver: new work or shutdown
  std::condition_variable done_cv;  ///< waiters: a quantum ended / terminal
  std::vector<std::unique_ptr<Job>> jobs;   // guarded by mu (vector itself)
  std::deque<JobId> ready;                  // guarded by mu
  /// Jobs sitting out a retry backoff: (release_round, id), guarded by mu.
  std::vector<std::pair<std::uint64_t, JobId>> backoff;
  std::uint64_t round_counter = 0;          // guarded by mu
  bool stop = false;                        // guarded by mu
  bool stopping = false;  ///< dtor in progress: keep evicted spool files
  bool draining = false;  ///< drain() in progress/finished: freeze queue
  bool drained = false;   ///< drain() completed (driver joined)
  std::thread driver;

  /// Journal: appends are serialized by journal_mu alone; mu -> journal_mu
  /// is the only permitted nesting order.
  std::mutex journal_mu;
  std::string journal_path;  ///< "" = journaling disabled

  std::vector<FleetQuarantineEntry> quarantine;       // guarded by mu
  std::vector<FleetRecoveredJob> recovered_report;    // guarded by mu
  /// Incomplete journal entries awaiting adoption by a matching submit()
  /// (only populated when no recovery_factory was given).
  std::map<std::string, JournalEntry> pending_recovery;  // guarded by mu

  void journal_append(RecordKind kind,
                      const std::function<void(util::BinaryWriter&)>& fill);
};

void SimulationFleet::Impl::journal_append(
    RecordKind kind, const std::function<void(util::BinaryWriter&)>& fill) {
  if (journal_path.empty()) return;
  util::BinaryWriter out;
  out.write_u8(static_cast<std::uint8_t>(kind));
  if (fill) fill(out);
  std::lock_guard<std::mutex> lk(journal_mu);
  util::append_journal_record(journal_path, out.payload());
}

// ---------------------------------------------------------------------------
// Construction: stale-tmp sweep, journal replay, compaction
// ---------------------------------------------------------------------------

SimulationFleet::SimulationFleet(FleetOptions options)
    : options_(std::move(options)), impl_(std::make_unique<Impl>()) {
  if (options_.quantum_steps == 0) options_.quantum_steps = 1;
  BD_CHECK_MSG(options_.max_resident == 0 || !options_.spool_dir.empty(),
               "SimulationFleet: max_resident > 0 requires a spool_dir");
  if (!options_.spool_dir.empty()) {
    std::filesystem::create_directories(options_.spool_dir);
    impl_->journal_path = options_.spool_dir + "/fleet.journal";
    sweep_stale_tmp_files();
    recover();
  }
  impl_->driver = std::thread([this] { driver_loop(); });
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (!impl_->ready.empty()) impl_->work_cv.notify_one();
  }
}

void SimulationFleet::sweep_stale_tmp_files() {
  // checked-file writes stage to `<path>.tmp.<pid>.<seq>`; a process that
  // crashed mid-write leaves the stage file behind forever. Remove stages
  // whose pid is verifiably dead (bounded, best-effort: an unparseable
  // name or a live/foreign pid is left alone).
  namespace fs = std::filesystem;
  constexpr std::size_t kSweepCap = 1024;
  std::error_code ec;
  std::uint64_t removed = 0;
  std::size_t scanned = 0;
  for (const auto& entry : fs::directory_iterator(options_.spool_dir, ec)) {
    if (++scanned > kSweepCap) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const auto tag = name.find(".tmp.");
    if (tag == std::string::npos) continue;
    // pid = digits between ".tmp." and the next '.' (or end of name).
    std::string pid_str = name.substr(tag + 5);
    if (const auto dot = pid_str.find('.'); dot != std::string::npos) {
      pid_str = pid_str.substr(0, dot);
    }
    if (pid_str.empty() ||
        pid_str.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const long pid = std::strtol(pid_str.c_str(), nullptr, 10);
    if (pid <= 0 || pid == static_cast<long>(::getpid())) continue;
    errno = 0;
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) {
      continue;  // alive (or not ours to judge) — keep the stage file
    }
    fs::remove(entry.path(), ec);
    if (!ec) ++removed;
  }
  if (removed > 0) {
    telemetry::counter_add("fleet.stale_tmp_removed", removed);
  }
}

void SimulationFleet::recover() {
  const util::JournalReadResult replay =
      util::read_journal_records(impl_->journal_path);
  if (replay.records.empty() && !std::filesystem::exists(impl_->journal_path)) {
    // Fresh spool: start the journal with its header record.
    impl_->journal_append(RecordKind::kHeader, [](util::BinaryWriter& out) {
      out.write_u32(kJournalVersion);
    });
    return;
  }

  BD_TRACE_SPAN("fleet.recover", "fleet");
  telemetry::counter_add("fleet.journal_replays");

  // Replay: fold every record into per-name entries. Duplicate terminal
  // records and re-submits of a finished name are idempotent (last wins);
  // an unknown record kind means the journal came from a newer build.
  std::map<std::string, JournalEntry> entries;
  std::vector<std::string> order;
  for (const auto& payload : replay.records) {
    util::BinaryReader in(payload);
    const auto kind = static_cast<RecordKind>(in.read_u8());
    if (kind == RecordKind::kHeader) {
      const std::uint32_t version = in.read_u32();
      BD_CHECK_MSG(version <= kJournalVersion,
                   "fleet journal " << impl_->journal_path << " has version "
                                    << version << ", this build reads <= "
                                    << kJournalVersion);
      continue;
    }
    if (kind == RecordKind::kShutdown) continue;
    const std::string name = in.read_string();
    auto it = entries.find(name);
    if (it == entries.end()) {
      it = entries.emplace(name, JournalEntry{}).first;
      it->second.name = name;
      order.push_back(name);
    }
    JournalEntry& entry = it->second;
    switch (kind) {
      case RecordKind::kSubmit:
        entry.target_steps = in.read_u64();
        entry.fault_spec = in.read_string();
        entry.retry.max_attempts = in.read_u32();
        entry.retry.backoff_rounds = in.read_u32();
        entry.terminal = FleetJobState::kQueued;  // re-submit reopens it
        break;
      case RecordKind::kStart:
        break;
      case RecordKind::kCheckpoint: {
        const std::uint64_t step = in.read_u64();
        entry.checkpoints[step] = in.read_u32();
        break;
      }
      case RecordKind::kComplete:
        entry.terminal = FleetJobState::kDone;
        entry.final_steps = in.read_u64();
        entry.final_digest = in.read_u32();
        break;
      case RecordKind::kFailAttempt:
        entry.attempts = in.read_u32();
        entry.error = in.read_string();
        break;
      case RecordKind::kFailTerminal:
        entry.terminal = FleetJobState::kFailed;
        entry.error = in.read_string();
        break;
      case RecordKind::kQuarantine:
        entry.terminal = FleetJobState::kQuarantined;
        entry.attempts = in.read_u32();
        entry.error = in.read_string();
        break;
      case RecordKind::kCancel:
        entry.terminal = FleetJobState::kCancelled;
        break;
      case RecordKind::kRetryState:
        entry.attempts = in.read_u32();
        entry.error = in.read_string();
        break;
      default:
        BD_CHECK_MSG(false, "fleet journal " << impl_->journal_path
                                             << ": unknown record kind "
                                             << static_cast<int>(kind));
    }
  }

  // Re-enqueue / report. The constructor is single-threaded, so the
  // members are touched without Impl::mu here.
  for (const std::string& name : order) {
    JournalEntry& entry = entries[name];
    FleetRecoveredJob report;
    report.name = name;
    report.state = entry.terminal;
    report.target_steps = static_cast<std::size_t>(entry.target_steps);
    if (!entry.checkpoints.empty()) {
      report.checkpoint_step =
          static_cast<std::size_t>(entry.checkpoints.rbegin()->first);
      report.digest = entry.checkpoints.rbegin()->second;
    }
    if (entry.terminal == FleetJobState::kDone) {
      report.checkpoint_step = static_cast<std::size_t>(entry.final_steps);
      report.digest = entry.final_digest;
    }
    report.attempts = entry.attempts;
    report.error = entry.error;

    if (entry.terminal == FleetJobState::kQueued) {  // incomplete
      if (options_.recovery_factory) {
        auto job = std::make_unique<Job>();
        job->spec.name = name;
        job->spec.target_steps = static_cast<std::size_t>(entry.target_steps);
        job->spec.fault_spec = entry.fault_spec;
        job->spec.retry = entry.retry;
        job->spec.factory = [factory = options_.recovery_factory, name] {
          return factory(name);
        };
        job->spool_path = options_.spool_dir + "/" + name + ".ckpt";
        job->checkpoint_digests = entry.checkpoints;
        if (!entry.checkpoints.empty()) {
          job->last_ckpt_step = entry.checkpoints.rbegin()->first;
          job->last_ckpt_digest = entry.checkpoints.rbegin()->second;
        }
        job->attempts.store(entry.attempts, std::memory_order_relaxed);
        job->error = entry.error;
        job->started_journaled = true;  // submit/start already on disk
        job->id = impl_->jobs.size();
        impl_->ready.push_back(job->id);
        impl_->jobs.push_back(std::move(job));
        telemetry::counter_add("fleet.recovered");
        report.resubmitted = true;
      } else {
        impl_->pending_recovery[name] = entry;
      }
    } else if (entry.terminal == FleetJobState::kQuarantined) {
      FleetQuarantineEntry q;
      q.name = name;
      q.attempts = entry.attempts;
      q.error = entry.error;
      const std::string ckpt = options_.spool_dir + "/" + name + ".ckpt";
      if (std::filesystem::exists(ckpt)) q.checkpoint_path = ckpt;
      impl_->quarantine.push_back(std::move(q));
    }
    impl_->recovered_report.push_back(std::move(report));
  }

  // Compact: rewrite the journal keeping only what the next recovery
  // needs — incomplete jobs' submit/retry-state/checkpoint records.
  // Finished entries live on in recovered() but leave the disk file, so
  // the journal stays proportional to the open work, not fleet lifetime.
  const std::string tmp = impl_->journal_path + ".compact.tmp." +
                          std::to_string(static_cast<long>(::getpid()));
  std::remove(tmp.c_str());
  {
    util::BinaryWriter header;
    header.write_u8(static_cast<std::uint8_t>(RecordKind::kHeader));
    header.write_u32(kJournalVersion);
    util::append_journal_record(tmp, header.payload());
  }
  for (const std::string& name : order) {
    const JournalEntry& entry = entries[name];
    if (entry.terminal != FleetJobState::kQueued) continue;
    util::BinaryWriter submit;
    submit.write_u8(static_cast<std::uint8_t>(RecordKind::kSubmit));
    submit.write_string(name);
    submit.write_u64(entry.target_steps);
    submit.write_string(entry.fault_spec);
    submit.write_u32(entry.retry.max_attempts);
    submit.write_u32(entry.retry.backoff_rounds);
    util::append_journal_record(tmp, submit.payload());
    if (entry.attempts > 0) {
      util::BinaryWriter retry;
      retry.write_u8(static_cast<std::uint8_t>(RecordKind::kRetryState));
      retry.write_string(name);
      retry.write_u32(entry.attempts);
      retry.write_string(entry.error);
      util::append_journal_record(tmp, retry.payload());
    }
    for (const auto& [step, digest] : entry.checkpoints) {
      util::BinaryWriter ckpt;
      ckpt.write_u8(static_cast<std::uint8_t>(RecordKind::kCheckpoint));
      ckpt.write_string(name);
      ckpt.write_u64(step);
      ckpt.write_u32(digest);
      util::append_journal_record(tmp, ckpt.payload());
    }
  }
  BD_CHECK_MSG(std::rename(tmp.c_str(), impl_->journal_path.c_str()) == 0,
               "cannot rename compacted journal " << tmp << " over "
                                                  << impl_->journal_path);
}

// ---------------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------------

SimulationFleet::~SimulationFleet() {
  // Plain destruction is the *crash-like* teardown: non-terminal jobs are
  // cancelled in-memory but NOT journalled as cancelled, and spool files
  // stay — so the journal still lists them as incomplete and a new fleet
  // on the same spool dir recovers them. Call drain() first for a clean,
  // fully-checkpointed shutdown record.
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
    impl_->stopping = true;
    impl_->ready.clear();
    impl_->backoff.clear();
    for (auto& job : impl_->jobs) {
      job->cancel_requested.store(true, std::memory_order_relaxed);
      // Queued/evicted jobs are finalized here; running quanta observe
      // cancel_requested and finalize themselves before the driver's
      // round — and therefore this join — completes.
      if (!fleet_job_terminal(job->state) &&
          job->state != FleetJobState::kRunning) {
        job->running_sim.store(nullptr, std::memory_order_relaxed);
        job->sim_live.store(false, std::memory_order_relaxed);
        job->sim.reset();
        job->state = FleetJobState::kCancelled;
      }
    }
  }
  impl_->work_cv.notify_all();
  impl_->done_cv.notify_all();
  if (impl_->driver.joinable()) impl_->driver.join();
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

SimulationFleet::JobId SimulationFleet::submit(FleetJobSpec spec) {
  BD_CHECK_MSG(!spec.name.empty(), "FleetJobSpec.name must not be empty");
  BD_CHECK_MSG(spec.name.find('/') == std::string::npos,
               "FleetJobSpec.name must not contain '/': " << spec.name);
  BD_CHECK_MSG(spec.factory != nullptr,
               "FleetJobSpec.factory must not be null");
  BD_CHECK_MSG(spec.target_steps > 0,
               "FleetJobSpec.target_steps must be > 0");
  BD_CHECK_MSG(spec.retry.max_attempts >= 1,
               "RetryPolicy.max_attempts must be >= 1");

  auto job = std::make_unique<Job>();
  if (!options_.spool_dir.empty()) {
    job->spool_path = options_.spool_dir + "/" + spec.name + ".ckpt";
  }
  job->spec = std::move(spec);

  JobId id = 0;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    BD_CHECK_MSG(!impl_->stop, "submit() on a stopped SimulationFleet");
    BD_CHECK_MSG(!impl_->draining, "submit() on a drained SimulationFleet");
    for (const auto& existing : impl_->jobs) {
      BD_CHECK_MSG(existing->spec.name != job->spec.name,
                   "duplicate fleet job name: " << job->spec.name);
    }
    // A journaled incomplete job with this name (recovered without a
    // recovery_factory) is adopted: its checkpoint digests and consumed
    // attempts carry over, and its submit record is already on disk.
    bool adopted = false;
    if (auto it = impl_->pending_recovery.find(job->spec.name);
        it != impl_->pending_recovery.end()) {
      const JournalEntry& entry = it->second;
      job->checkpoint_digests = entry.checkpoints;
      if (!entry.checkpoints.empty()) {
        job->last_ckpt_step = entry.checkpoints.rbegin()->first;
        job->last_ckpt_digest = entry.checkpoints.rbegin()->second;
      }
      job->attempts.store(entry.attempts, std::memory_order_relaxed);
      job->started_journaled = true;
      adopted = true;
      impl_->pending_recovery.erase(it);
    }
    if (!adopted) {
      const FleetJobSpec& s = job->spec;
      impl_->journal_append(
          RecordKind::kSubmit, [&s](util::BinaryWriter& out) {
            out.write_string(s.name);
            out.write_u64(static_cast<std::uint64_t>(s.target_steps));
            out.write_string(s.fault_spec);
            out.write_u32(s.retry.max_attempts);
            out.write_u32(s.retry.backoff_rounds);
          });
    }
    id = impl_->jobs.size();
    job->id = id;
    impl_->jobs.push_back(std::move(job));
    impl_->ready.push_back(id);
  }
  telemetry::counter_add("fleet.submitted");
  impl_->work_cv.notify_one();
  return id;
}

FleetJobStatus SimulationFleet::poll(JobId id) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  BD_CHECK_MSG(id < impl_->jobs.size(), "unknown fleet job id " << id);
  const Job& job = *impl_->jobs[id];
  FleetJobStatus status;
  status.state = job.state;
  status.steps_done = job.steps_done.load(std::memory_order_relaxed);
  status.target_steps = job.spec.target_steps;
  status.digest = job.digest.load(std::memory_order_relaxed);
  status.attempts = job.attempts.load(std::memory_order_relaxed);
  if (fleet_job_terminal(job.state)) status.error = job.error;
  return status;
}

bool SimulationFleet::cancel(JobId id) {
  bool removed_spool = false;
  std::string spool;
  std::string name;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    BD_CHECK_MSG(id < impl_->jobs.size(), "unknown fleet job id " << id);
    Job& job = *impl_->jobs[id];
    if (fleet_job_terminal(job.state)) return false;
    job.cancel_requested.store(true, std::memory_order_relaxed);
    if (job.state == FleetJobState::kRunning) {
      // The owning lane finalizes (and journals) at the next step boundary.
      return true;
    }
    // Queued/evicted/backoff: finalize immediately and drop it.
    for (auto it = impl_->ready.begin(); it != impl_->ready.end(); ++it) {
      if (*it == id) {
        impl_->ready.erase(it);
        break;
      }
    }
    for (auto it = impl_->backoff.begin(); it != impl_->backoff.end(); ++it) {
      if (it->second == id) {
        impl_->backoff.erase(it);
        break;
      }
    }
    job.running_sim.store(nullptr, std::memory_order_relaxed);
    job.sim_live.store(false, std::memory_order_relaxed);
    job.sim.reset();
    job.state = FleetJobState::kCancelled;
    name = job.spec.name;
    impl_->journal_append(RecordKind::kCancel,
                          [&name](util::BinaryWriter& out) {
                            out.write_string(name);
                          });
    if (!job.spool_path.empty()) {
      spool = job.spool_path;
      removed_spool = true;
    }
  }
  if (removed_spool) std::remove(spool.c_str());
  telemetry::counter_add("fleet.cancelled");
  impl_->done_cv.notify_all();
  return true;
}

FleetJobStatus SimulationFleet::wait(JobId id) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  BD_CHECK_MSG(id < impl_->jobs.size(), "unknown fleet job id " << id);
  Job& job = *impl_->jobs[id];
  impl_->done_cv.wait(lk, [&] { return fleet_job_terminal(job.state); });
  FleetJobStatus status;
  status.state = job.state;
  status.steps_done = job.steps_done.load(std::memory_order_relaxed);
  status.target_steps = job.spec.target_steps;
  status.digest = job.digest.load(std::memory_order_relaxed);
  status.attempts = job.attempts.load(std::memory_order_relaxed);
  status.error = job.error;
  return status;
}

void SimulationFleet::wait_all() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->done_cv.wait(lk, [&] {
    for (const auto& job : impl_->jobs) {
      if (!fleet_job_terminal(job->state)) return false;
    }
    return true;
  });
}

void SimulationFleet::drain() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  if (impl_->drained) return;
  BD_TRACE_SPAN("fleet.drain", "fleet");
  impl_->draining = true;
  // Freeze the queue: nothing new gets scheduled; in-flight quanta see
  // `draining` in their fate step, checkpoint themselves and stop.
  impl_->ready.clear();
  impl_->backoff.clear();
  impl_->done_cv.wait(lk, [&] {
    for (const auto& job : impl_->jobs) {
      if (job->state == FleetJobState::kRunning) return false;
    }
    return true;
  });

  // Checkpoint the remaining resident, non-terminal jobs (queued jobs
  // keep their sims resident when max_resident allows). The queue is
  // frozen and no lane owns them, so this thread may do their I/O.
  std::vector<Job*> residents;
  for (auto& job : impl_->jobs) {
    if (job->sim != nullptr && !fleet_job_terminal(job->state)) {
      residents.push_back(job.get());
    }
  }
  lk.unlock();
  for (Job* job : residents) {
    if (job->spool_path.empty()) continue;
    const std::uint64_t step = job->steps_done.load(std::memory_order_relaxed);
    const std::uint32_t digest = job->digest.load(std::memory_order_relaxed);
    const std::string& name = job->spec.name;
    impl_->journal_append(RecordKind::kCheckpoint,
                          [&](util::BinaryWriter& out) {
                            out.write_string(name);
                            out.write_u64(step);
                            out.write_u32(digest);
                          });
    save_checkpoint(*job->sim, job->spool_path);
    job->checkpoint_digests[step] = digest;
    job->last_ckpt_step = step;
    job->last_ckpt_digest = digest;
  }
  impl_->journal_append(RecordKind::kShutdown, nullptr);
  lk.lock();
  for (Job* job : residents) {
    job->running_sim.store(nullptr, std::memory_order_relaxed);
    job->sim_live.store(false, std::memory_order_relaxed);
    job->sim.reset();
    if (!job->spool_path.empty()) job->state = FleetJobState::kEvicted;
  }
  impl_->stop = true;
  impl_->drained = true;
  lk.unlock();
  impl_->work_cv.notify_all();
  if (impl_->driver.joinable()) impl_->driver.join();
}

std::vector<FleetQuarantineEntry> SimulationFleet::quarantined() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->quarantine;
}

std::vector<FleetRecoveredJob> SimulationFleet::recovered() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->recovered_report;
}

util::telemetry::MetricsSnapshot SimulationFleet::job_metrics(
    JobId id) const {
  telemetry::MetricsRegistry* registry = nullptr;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    BD_CHECK_MSG(id < impl_->jobs.size(), "unknown fleet job id " << id);
    registry = impl_->jobs[id]->metrics.get();
  }
  // The registry outlives the job (owned by the Job, which the fleet keeps
  // until destruction), and snapshot() is internally synchronized.
  return registry->snapshot();
}

std::size_t SimulationFleet::job_count() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->jobs.size();
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

void SimulationFleet::driver_loop() {
  telemetry::TraceSession::global().set_current_thread_name("fleet-driver");
  std::unique_lock<std::mutex> lk(impl_->mu);
  for (;;) {
    impl_->work_cv.wait(lk, [&] {
      return impl_->stop || !impl_->ready.empty() || !impl_->backoff.empty();
    });
    if (impl_->stop) return;
    ++impl_->round_counter;
    // Release jobs whose backoff expired; when only backoff jobs remain,
    // fast-forward the round counter to the earliest release — rounds are
    // a virtual clock, so an idle fleet never waits wall time for them.
    auto release_due = [&] {
      std::stable_sort(impl_->backoff.begin(), impl_->backoff.end());
      auto it = impl_->backoff.begin();
      while (it != impl_->backoff.end() &&
             it->first <= impl_->round_counter) {
        impl_->ready.push_back(it->second);
        it = impl_->backoff.erase(it);
      }
    };
    release_due();
    if (impl_->ready.empty()) {
      if (impl_->backoff.empty()) continue;
      impl_->round_counter = impl_->backoff.front().first;
      release_due();
    }
    // One round: enough lanes to drain the current backlog, capped at the
    // pool width. Lanes loop popping jobs, so a long backlog still drains
    // in a single round; jobs submitted mid-round start the next one.
    const std::size_t lanes = std::min<std::size_t>(
        impl_->ready.size(), util::ThreadPool::global().num_threads());
    lk.unlock();
    run_round(lanes);
    lk.lock();
  }
}

void SimulationFleet::run_round(std::size_t lanes) {
  telemetry::counter_add("fleet.rounds");
  BD_TRACE_SPAN("fleet.round", "fleet");
  const bool watchdog =
      options_.step_deadline_ms > 0.0 || options_.quantum_deadline_ms > 0.0;
  if (!watchdog) {
    util::parallel_for_chunked(
        0, lanes, 1, [this](std::size_t, std::size_t) { run_lane(); });
    return;
  }

  // Watchdog mode: the round runs on a helper thread while this (driver)
  // thread polls deadlines. A tripped job is flagged and its sim gets a
  // cooperative stop request — the owning lane observes it at the next
  // step boundary and routes the job through the retry path.
  std::atomic<bool> round_done{false};
  std::thread round([this, lanes, &round_done] {
    util::parallel_for_chunked(
        0, lanes, 1, [this](std::size_t, std::size_t) { run_lane(); });
    round_done.store(true, std::memory_order_release);
  });
  const auto step_deadline =
      static_cast<std::uint64_t>(options_.step_deadline_ms * 1e6);
  const auto quantum_deadline =
      static_cast<std::uint64_t>(options_.quantum_deadline_ms * 1e6);
  while (!round_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::uint64_t now = steady_ns();
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const auto& jp : impl_->jobs) {
      Job& job = *jp;
      if (job.state != FleetJobState::kRunning) continue;
      Simulation* sim = job.running_sim.load(std::memory_order_acquire);
      if (sim == nullptr) continue;
      bool trip = false;
      if (step_deadline > 0) {
        const std::uint64_t t0 =
            job.step_start_ns.load(std::memory_order_relaxed);
        trip |= (t0 != 0 && now > t0 && now - t0 > step_deadline);
      }
      if (quantum_deadline > 0) {
        const std::uint64_t t0 =
            job.quantum_start_ns.load(std::memory_order_relaxed);
        trip |= (t0 != 0 && now > t0 && now - t0 > quantum_deadline);
      }
      if (trip && !job.watchdog_flagged.exchange(true,
                                                 std::memory_order_relaxed)) {
        sim->request_stop();
      }
    }
  }
  round.join();
}

void SimulationFleet::run_lane() {
  for (;;) {
    Job* job = nullptr;
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (impl_->ready.empty()) return;
      job = impl_->jobs[impl_->ready.front()].get();
      impl_->ready.pop_front();
      job->state = FleetJobState::kRunning;
    }
    run_quantum(*job);
  }
}

void SimulationFleet::run_quantum(Job& job) {
  // Fleet-level telemetry goes to the ambient registry/session (normally
  // the process-global ones); the sim's own step()/checkpoint telemetry
  // is scoped to the job's private instances via set_telemetry below.
  telemetry::counter_add("fleet.quanta");
  BD_TRACE_SPAN("fleet.quantum", "fleet");
  const bool watchdog =
      options_.step_deadline_ms > 0.0 || options_.quantum_deadline_ms > 0.0;

  bool failed = false;
  bool setup_failed = false;
  bool ladder_exhausted = false;
  if (!job.cancel_requested.load(std::memory_order_relaxed)) {
    try {
      if (!job.sim) {
        setup_failed = true;  // cleared once the sim is ready to step
        job.sim = job.spec.factory();
        BD_CHECK_MSG(job.sim != nullptr,
                     "fleet job '" << job.spec.name
                                   << "': factory returned null");
        job.sim_live.store(true, std::memory_order_relaxed);
        job.sim->set_telemetry(job.metrics.get(), job.trace.get());
        if (!job.harness) {
          // Every job gets a private harness so one job's fault budget is
          // never consumed by a neighbour. The spec's plan wins; an empty
          // spec inherits the process BD_FAULT plan (per-job budget, the
          // job's own seed); the literal "none" opts the job out.
          std::string spec = job.spec.fault_spec;
          if (spec.empty()) {
            if (const char* env = std::getenv("BD_FAULT"); env != nullptr) {
              spec = env;
            }
          }
          if (spec == "none") spec.clear();
          job.harness = std::make_unique<util::faultinject::FaultHarness>();
          job.harness->install(spec, job.sim->config().seed);
        }
        job.sim->set_fault_harness(job.harness.get());
        if (!job.spool_path.empty() &&
            std::filesystem::exists(job.spool_path)) {
          restore_checkpoint(*job.sim, job.spool_path);
          const auto step =
              static_cast<std::size_t>(job.sim->current_step());
          job.steps_done.store(step, std::memory_order_relaxed);
          // The journal's digest for this checkpoint, when it has one:
          // after a retry the in-memory digest has run past the
          // checkpoint and must rewind with the restored state.
          if (const auto it = job.checkpoint_digests.find(step);
              it != job.checkpoint_digests.end()) {
            job.digest.store(it->second, std::memory_order_relaxed);
          }
          telemetry::counter_add("fleet.resumes");
        } else if (!job.sim->initialized()) {
          job.sim->initialize();
        }
        job.exhausted_streak = 0;
        setup_failed = false;
        if (!job.started_journaled) {
          job.started_journaled = true;
          const std::string& name = job.spec.name;
          impl_->journal_append(RecordKind::kStart,
                                [&name](util::BinaryWriter& out) {
                                  out.write_string(name);
                                });
        }
      }
      ++job.quanta_run;
      job.watchdog_flagged.store(false, std::memory_order_relaxed);
      job.sim->clear_stop();
      if (watchdog) {
        job.quantum_start_ns.store(steady_ns(), std::memory_order_relaxed);
      }
      // Release so the watchdog's acquire load sees a fully constructed
      // (or fully restored) Simulation before it calls request_stop().
      job.running_sim.store(job.sim.get(), std::memory_order_release);

      std::size_t done = job.steps_done.load(std::memory_order_relaxed);
      std::uint32_t digest = job.digest.load(std::memory_order_relaxed);
      std::size_t ran = 0;
      while (ran < options_.quantum_steps &&
             done < job.spec.target_steps &&
             !job.cancel_requested.load(std::memory_order_relaxed) &&
             !job.sim->stop_requested()) {
        if (watchdog) {
          job.step_start_ns.store(steady_ns(), std::memory_order_relaxed);
        }
        const StepStats stats = job.sim->step();
        digest = fleet_digest_step(stats, digest);
        ++done;
        ++ran;
        job.steps_done.store(done, std::memory_order_relaxed);
        job.digest.store(digest, std::memory_order_relaxed);
        if (stats.health && !stats.health->healthy() &&
            job.sim->num_tiers() > 1 &&
            stats.health->tier + 1 >= job.sim->num_tiers()) {
          // Unhealthy on the last rung: the ladder has nowhere left to
          // go. A sustained streak is a job-level failure — the retry
          // path restarts from the last good checkpoint.
          if (++job.exhausted_streak >=
              job.sim->config().health.demote_after) {
            ladder_exhausted = true;
            job.error = "health ladder exhausted: " +
                        std::to_string(job.exhausted_streak) +
                        " unhealthy steps on the last tier (step " +
                        std::to_string(stats.step) + ")";
            break;
          }
        } else {
          job.exhausted_streak = 0;
        }
        if (job.spec.on_step) job.spec.on_step(stats);
      }
      job.step_start_ns.store(0, std::memory_order_relaxed);
      job.quantum_start_ns.store(0, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      job.error = e.what();
      failed = true;
    } catch (...) {
      job.error = "unknown exception";
      failed = true;
    }
  }

  // ------------------------------------------------------------------
  // Fate. File I/O (journal appends, checkpoints) happens outside the
  // lock; until the final state is published under Impl::mu the job
  // stays kRunning and no other lane can claim it. Once a non-terminal
  // job is requeued another lane may claim it immediately, so everything
  // after each critical section works from locally captured values.
  // ------------------------------------------------------------------
  enum class Fate {
    kFailTerminal,   // setup failure: never retried
    kRetry,          // step failure / ladder exhaustion / watchdog trip
    kQuarantine,     // retry budget exhausted
    kCancelled,
    kComplete,
    kWatchdog,       // resolved into kRetry/kQuarantine below
    kDrainStop,      // draining: checkpoint + park
    kEvict,
    kRequeue,
  };

  const std::string& name = job.spec.name;
  const bool tripped = job.watchdog_flagged.load(std::memory_order_relaxed);
  bool keep_spool_on_cancel = false;
  bool periodic_ckpt = false;
  Fate fate = Fate::kRequeue;
  std::size_t resident = 0;
  const auto count_resident = [this] {
    std::size_t n = 0;
    for (const auto& j : impl_->jobs)
      n += j->sim_live.load(std::memory_order_relaxed);
    return n;
  };
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    keep_spool_on_cancel = impl_->stopping;
    if (failed || ladder_exhausted) {
      fate = setup_failed ? Fate::kFailTerminal : Fate::kRetry;
    } else if (job.cancel_requested.load(std::memory_order_relaxed)) {
      fate = Fate::kCancelled;
    } else if (job.steps_done.load(std::memory_order_relaxed) >=
               job.spec.target_steps) {
      fate = Fate::kComplete;
    } else if (tripped) {
      fate = Fate::kWatchdog;
    } else if (impl_->draining) {
      fate = Fate::kDrainStop;
    } else if (options_.max_resident > 0 &&
               count_resident() > options_.max_resident) {
      fate = Fate::kEvict;
    } else {
      fate = Fate::kRequeue;
      periodic_ckpt = options_.checkpoint_every_quanta > 0 &&
                      !job.spool_path.empty() &&
                      job.quanta_run % options_.checkpoint_every_quanta == 0;
    }
  }

  // Retry accounting (shared by step failures, ladder exhaustion and
  // watchdog trips): one attempt gone; out of budget => quarantine.
  if (fate == Fate::kRetry || fate == Fate::kWatchdog) {
    const std::uint32_t attempts =
        job.attempts.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fate == Fate::kWatchdog) {
      telemetry::counter_add("fleet.watchdog_trips");
      job.error = "watchdog: step/quantum deadline exceeded at step " +
                  std::to_string(
                      job.steps_done.load(std::memory_order_relaxed));
      // The rung that overran is suspect — demote before checkpointing
      // so the retried job resumes one tier down.
      job.sim->demote_tier();
      try {
        if (!job.spool_path.empty()) {
          const std::uint64_t step =
              job.steps_done.load(std::memory_order_relaxed);
          const std::uint32_t digest =
              job.digest.load(std::memory_order_relaxed);
          impl_->journal_append(RecordKind::kCheckpoint,
                                [&](util::BinaryWriter& out) {
                                  out.write_string(name);
                                  out.write_u64(step);
                                  out.write_u32(digest);
                                });
          save_checkpoint(*job.sim, job.spool_path);
          job.checkpoint_digests[step] = digest;
          job.last_ckpt_step = step;
          job.last_ckpt_digest = digest;
        }
      } catch (const std::exception& e) {
        job.error = std::string("watchdog checkpoint failed: ") + e.what();
      }
    }
    fate = attempts >= job.spec.retry.max_attempts ? Fate::kQuarantine
                                                   : Fate::kRetry;
    if (fate == Fate::kRetry) {
      const std::uint32_t attempt = attempts;
      const std::string& error = job.error;
      impl_->journal_append(RecordKind::kFailAttempt,
                            [&](util::BinaryWriter& out) {
                              out.write_string(name);
                              out.write_u32(attempt);
                              out.write_string(error);
                            });
    }
  }

  switch (fate) {
    case Fate::kFailTerminal: {
      const std::string& error = job.error;
      impl_->journal_append(RecordKind::kFailTerminal,
                            [&](util::BinaryWriter& out) {
                              out.write_string(name);
                              out.write_string(error);
                            });
      std::lock_guard<std::mutex> lk(impl_->mu);
      job.running_sim.store(nullptr, std::memory_order_relaxed);
      job.sim_live.store(false, std::memory_order_relaxed);
      job.sim.reset();
      job.state = FleetJobState::kFailed;
      resident = count_resident();
      break;
    }

    case Fate::kQuarantine: {
      const std::uint32_t attempts =
          job.attempts.load(std::memory_order_relaxed);
      const std::string& error = job.error;
      impl_->journal_append(RecordKind::kQuarantine,
                            [&](util::BinaryWriter& out) {
                              out.write_string(name);
                              out.write_u32(attempts);
                              out.write_string(error);
                            });
      telemetry::counter_add("fleet.quarantined");
      std::lock_guard<std::mutex> lk(impl_->mu);
      job.running_sim.store(nullptr, std::memory_order_relaxed);
      job.sim_live.store(false, std::memory_order_relaxed);
      job.sim.reset();
      job.state = FleetJobState::kQuarantined;
      FleetQuarantineEntry q;
      q.name = name;
      q.attempts = attempts;
      q.error = job.error;
      // The last good checkpoint stays on disk for postmortem.
      if (!job.spool_path.empty() &&
          std::filesystem::exists(job.spool_path)) {
        q.checkpoint_path = job.spool_path;
      }
      impl_->quarantine.push_back(std::move(q));
      resident = count_resident();
      break;
    }

    case Fate::kRetry: {
      telemetry::counter_add("fleet.retries");
      std::lock_guard<std::mutex> lk(impl_->mu);
      job.running_sim.store(nullptr, std::memory_order_relaxed);
      // Restart from the last good spool checkpoint, or from scratch:
      // the resident sim's state is suspect (it threw mid-step, ran out
      // of ladder, or overran a deadline and got demoted+checkpointed —
      // in every case the next attempt rebuilds from durable state).
      job.sim_live.store(false, std::memory_order_relaxed);
      job.sim.reset();
      job.exhausted_streak = 0;
      job.watchdog_flagged.store(false, std::memory_order_relaxed);
      const bool have_ckpt = !job.spool_path.empty() &&
                             std::filesystem::exists(job.spool_path);
      job.steps_done.store(
          have_ckpt ? static_cast<std::size_t>(job.last_ckpt_step) : 0,
          std::memory_order_relaxed);
      job.digest.store(have_ckpt ? job.last_ckpt_digest : 0,
                       std::memory_order_relaxed);
      job.state = FleetJobState::kQueued;
      impl_->backoff.emplace_back(
          impl_->round_counter + job.spec.retry.backoff_rounds, job.id);
      resident = count_resident();
      break;
    }

    case Fate::kCancelled: {
      if (!keep_spool_on_cancel) {
        // Not the dtor path: journal the cancellation (the dtor keeps the
        // journal untouched so a restart can still recover the job).
        impl_->journal_append(RecordKind::kCancel,
                              [&name](util::BinaryWriter& out) {
                                out.write_string(name);
                              });
      }
      std::lock_guard<std::mutex> lk(impl_->mu);
      job.running_sim.store(nullptr, std::memory_order_relaxed);
      job.sim_live.store(false, std::memory_order_relaxed);
      job.sim.reset();
      job.state = FleetJobState::kCancelled;
      resident = count_resident();
      break;
    }

    case Fate::kComplete: {
      const std::uint64_t steps =
          job.steps_done.load(std::memory_order_relaxed);
      const std::uint32_t digest = job.digest.load(std::memory_order_relaxed);
      impl_->journal_append(RecordKind::kComplete,
                            [&](util::BinaryWriter& out) {
                              out.write_string(name);
                              out.write_u64(steps);
                              out.write_u32(digest);
                            });
      std::lock_guard<std::mutex> lk(impl_->mu);
      job.running_sim.store(nullptr, std::memory_order_relaxed);
      job.sim_live.store(false, std::memory_order_relaxed);
      job.sim.reset();
      job.error.clear();  // a retried-then-successful job reports no error
      job.state = FleetJobState::kDone;
      resident = count_resident();
      break;
    }

    case Fate::kDrainStop:
    case Fate::kEvict: {
      FleetJobState decided = FleetJobState::kEvicted;
      if (!job.spool_path.empty()) {
        try {
          BD_TRACE_SPAN("fleet.evict", "fleet");
          const std::uint64_t step =
              job.steps_done.load(std::memory_order_relaxed);
          const std::uint32_t digest =
              job.digest.load(std::memory_order_relaxed);
          // Journal first: if the crash lands between the journal append
          // and the spool write, recovery restores the *previous* spool
          // file and finds its digest among the journaled checkpoints.
          impl_->journal_append(RecordKind::kCheckpoint,
                                [&](util::BinaryWriter& out) {
                                  out.write_string(name);
                                  out.write_u64(step);
                                  out.write_u32(digest);
                                });
          save_checkpoint(*job.sim, job.spool_path);
          job.checkpoint_digests[step] = digest;
          job.last_ckpt_step = step;
          job.last_ckpt_digest = digest;
          telemetry::counter_add("fleet.evictions");
        } catch (const std::exception& e) {
          job.error = e.what();
          decided = FleetJobState::kFailed;
        }
      } else {
        // No spool: nothing durable to write. An evicting fleet cannot
        // get here (max_resident requires a spool dir); a draining one
        // just parks the job resident-in-memory.
        decided = FleetJobState::kQueued;
      }
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (decided != FleetJobState::kQueued) {
        job.running_sim.store(nullptr, std::memory_order_relaxed);
        job.sim_live.store(false, std::memory_order_relaxed);
        job.sim.reset();
      }
      job.state = decided;
      if (fate == Fate::kEvict && decided == FleetJobState::kEvicted) {
        impl_->ready.push_back(job.id);
      }
      fate = decided == FleetJobState::kFailed ? Fate::kFailTerminal : fate;
      resident = count_resident();
      break;
    }

    case Fate::kRequeue: {
      if (periodic_ckpt) {
        try {
          const std::uint64_t step =
              job.steps_done.load(std::memory_order_relaxed);
          const std::uint32_t digest =
              job.digest.load(std::memory_order_relaxed);
          impl_->journal_append(RecordKind::kCheckpoint,
                                [&](util::BinaryWriter& out) {
                                  out.write_string(name);
                                  out.write_u64(step);
                                  out.write_u32(digest);
                                });
          save_checkpoint(*job.sim, job.spool_path);
          job.checkpoint_digests[step] = digest;
          job.last_ckpt_step = step;
          job.last_ckpt_digest = digest;
        } catch (const std::exception& e) {
          // A failed periodic checkpoint is not fatal to the job — the
          // previous checkpoint (or none) still bounds the replay.
          job.error = e.what();
        }
      }
      std::lock_guard<std::mutex> lk(impl_->mu);
      job.running_sim.store(nullptr, std::memory_order_relaxed);
      job.state = FleetJobState::kQueued;
      impl_->ready.push_back(job.id);
      resident = count_resident();
      break;
    }

    case Fate::kWatchdog:
      break;  // unreachable: resolved into kRetry/kQuarantine above
  }

  telemetry::gauge_set("fleet.resident", static_cast<double>(resident));
  switch (fate) {
    case Fate::kComplete:
      telemetry::counter_add("fleet.completed");
      if (!job.spool_path.empty()) std::remove(job.spool_path.c_str());
      break;
    case Fate::kCancelled:
      telemetry::counter_add("fleet.cancelled");
      // Keep the spool file while the dtor is tearing the fleet down so a
      // restarted process can resubmit and resume the job.
      if (!job.spool_path.empty() && !keep_spool_on_cancel) {
        std::remove(job.spool_path.c_str());
      }
      break;
    case Fate::kFailTerminal:
      telemetry::counter_add("fleet.failed");
      break;
    case Fate::kQuarantine:
      telemetry::counter_add("fleet.failed");
      break;
    default:
      impl_->work_cv.notify_one();
      break;
  }
  // Every quantum end is an observable event: terminal states unblock
  // wait()/wait_all(), and drain() waits for running quanta to settle.
  impl_->done_cv.notify_all();
}

}  // namespace bd::core
