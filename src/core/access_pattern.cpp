#include "core/access_pattern.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bd::core {

double pattern_distance(std::span<const double> a,
                        std::span<const double> b) {
  BD_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::uint64_t pattern_total_intervals(std::span<const double> pattern) {
  std::uint64_t total = 0;
  for (double n : pattern) {
    total += static_cast<std::uint64_t>(std::ceil(std::max(0.0, n)));
  }
  return total;
}

double pattern_references_to_grid(std::span<const double> pattern,
                                  std::size_t i, double alpha) {
  BD_CHECK(i < pattern.size());
  double refs = pattern[i];
  if (i >= 1) refs += pattern[i - 1];
  if (i >= 2) refs += pattern[i - 2];
  return alpha * refs;
}

void pattern_merge_max(std::span<double> into, std::span<const double> other) {
  BD_CHECK(into.size() == other.size());
  for (std::size_t i = 0; i < into.size(); ++i) {
    into[i] = std::max(into[i], other[i]);
  }
}

}  // namespace bd::core
