#pragma once
/// \file rp_kernels.hpp
/// The two modeled-GPU kernels every rp-solver is built from:
///
///  * COMPUTE-RP-INTEGRAL (paper Listing 1): one thread per grid point of
///    its block's cluster; evaluates Simpson estimates over a prescribed
///    partition (per-cluster merged — uniform control flow — or per-point),
///    accumulates passing intervals and emits failing ones.
///
///  * RP-ADAPTIVEQUADRATURE (paper Algorithm 1, lines 18–24): one thread
///    per failed (interval, point) pair running classic adaptive Simpson —
///    the divergent fallback that guarantees the tolerance regardless of
///    prediction quality.

#include <cstdint>
#include <span>
#include <vector>

#include "core/clustering.hpp"
#include "core/problem.hpp"
#include "simt/device.hpp"

namespace bd::core {

/// An interval whose Simpson error exceeded the local tolerance.
struct FailedInterval {
  std::uint32_t point;
  double a;
  double b;
};

/// Where threads get their partitions from.
enum class PartitionSource {
  kSharedPerCluster,  ///< all lanes of a block walk the same merged list
  kPerPoint,          ///< each lane walks its own point's partition
};

/// Inputs of COMPUTE-RP-INTEGRAL. Exactly one of `shared_partitions`
/// (indexed by cluster) / `point_partitions` (indexed by grid point) is
/// used, selected by `source`.
struct RpKernelInput {
  const RpProblem* problem = nullptr;
  const ClusterAssignment* clusters = nullptr;
  PartitionSource source = PartitionSource::kPerPoint;
  const std::vector<std::vector<double>>* shared_partitions = nullptr;
  const std::vector<std::vector<double>>* point_partitions = nullptr;
};

/// Outputs of COMPUTE-RP-INTEGRAL.
struct RpKernelOutput {
  std::vector<double> integral;   ///< per grid point (passing intervals)
  std::vector<double> error;      ///< per grid point
  PatternField contributions;     ///< fractional per-subregion counts
  std::vector<FailedInterval> failed;  ///< intervals for the fallback pass
  simt::KernelMetrics metrics;
  std::uint64_t intervals = 0;    ///< intervals evaluated
};

/// Run COMPUTE-RP-INTEGRAL under the SIMT model.
RpKernelOutput run_compute_rp_integral(const simt::DeviceSpec& device,
                                       const RpKernelInput& input);

/// Outputs of the fallback pass (integral/error/contributions are updated
/// in place on the arrays produced by kernel 1).
struct FallbackOutput {
  simt::KernelMetrics metrics;
  std::uint64_t evaluations = 0;
  std::uint64_t non_converged = 0;  ///< items that hit the depth budget
  /// Final adaptive interval count per failed item (same order as the
  /// input span) — what "fine enough" turned out to mean there.
  std::vector<std::uint32_t> intervals_per_item;
};

/// Run RP-ADAPTIVEQUADRATURE over the failed intervals.
FallbackOutput run_adaptive_fallback(const simt::DeviceSpec& device,
                                     const RpProblem& problem,
                                     std::span<const FailedInterval> failed,
                                     std::vector<double>& integral,
                                     std::vector<double>& error,
                                     PatternField& contributions);

/// Local tolerance for an interval: τ scaled by its share of the domain.
inline double local_tolerance(const RpProblem& problem, double a, double b) {
  return problem.tolerance * (b - a) / problem.r_max();
}

}  // namespace bd::core
