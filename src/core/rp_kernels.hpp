#pragma once
/// \file rp_kernels.hpp
/// The two modeled-GPU kernels every rp-solver is built from:
///
///  * COMPUTE-RP-INTEGRAL (paper Listing 1): one thread per grid point of
///    its block's cluster; evaluates Simpson estimates over a prescribed
///    partition (per-cluster merged — uniform control flow — or per-point),
///    accumulates passing intervals and emits failing ones. Intervals are
///    walked with the shared-sample sweep (4·n+1 evaluations per partition
///    instead of 5·n), and a failing interval carries its five samples out
///    so the fallback can refine it without re-evaluating them.
///
///  * RP-ADAPTIVEQUADRATURE (paper Algorithm 1, lines 18–24): one thread
///    per point-contiguous *group* of failed intervals running memoized
///    adaptive Simpson — the divergent fallback that guarantees the
///    tolerance regardless of prediction quality. One integrand per group
///    (not per item), each root seeded with the samples kernel 1 already
///    paid for, each bisection costing 2 new evaluations instead of 5.
///
/// Both kernels stage their intermediate state in the caller's
/// SolverScratch, so the steady-state solve path performs no heap
/// allocation.

#include <cstdint>
#include <span>
#include <vector>

#include "core/clustering.hpp"
#include "core/problem.hpp"
#include "quad/partition_set.hpp"
#include "quad/simpson.hpp"
#include "simt/device.hpp"

namespace bd::core {

struct SolverScratch;

/// An interval whose Simpson error exceeded the local tolerance, together
/// with the five samples kernel 1 evaluated on it (the fallback seeds its
/// adaptive root with them — five free evaluations per item).
struct FailedInterval {
  std::uint32_t point;
  double a;
  double b;
  quad::SimpsonSamples samples;
};

/// Where threads get their partitions from.
enum class PartitionSource {
  kSharedPerCluster,  ///< all lanes of a block walk the same merged list
  kPerPoint,          ///< each lane walks its own point's partition
};

/// Inputs of COMPUTE-RP-INTEGRAL. `partitions` is indexed by cluster
/// (kSharedPerCluster) or by grid point (kPerPoint), selected by `source`.
struct RpKernelInput {
  const RpProblem* problem = nullptr;
  const ClusterAssignment* clusters = nullptr;
  PartitionSource source = PartitionSource::kPerPoint;
  const quad::PartitionSet* partitions = nullptr;
};

/// Outputs of COMPUTE-RP-INTEGRAL.
struct RpKernelOutput {
  std::vector<double> integral;   ///< per grid point (passing intervals)
  std::vector<double> error;      ///< per grid point
  PatternField contributions;     ///< fractional per-subregion counts
  /// Intervals for the fallback pass. Points into the SolverScratch the
  /// kernel was given — valid until its next kernel-1 launch.
  std::span<const FailedInterval> failed;
  simt::KernelMetrics metrics;
  std::uint64_t intervals = 0;    ///< intervals evaluated
  std::uint64_t evaluations = 0;  ///< integrand evaluations paid
  std::uint64_t evaluations_saved = 0;  ///< evals avoided by the sweep
};

/// Run COMPUTE-RP-INTEGRAL under the SIMT model.
RpKernelOutput run_compute_rp_integral(const simt::DeviceSpec& device,
                                       const RpKernelInput& input,
                                       SolverScratch& scratch);

/// Outputs of the fallback pass (integral/error/contributions are updated
/// in place on the arrays produced by kernel 1).
struct FallbackOutput {
  simt::KernelMetrics metrics;
  std::uint64_t evaluations = 0;
  std::uint64_t evaluations_saved = 0;  ///< seeded roots + memoized children
  std::uint64_t non_converged = 0;  ///< items that hit the depth budget
  std::uint64_t integrand_cache_hits = 0;  ///< items served by a group's
                                           ///< already-built integrand
  /// Final adaptive interval count per failed item (same order as the
  /// input span) — what "fine enough" turned out to mean there. Points
  /// into the SolverScratch — valid until its next fallback launch.
  std::span<const std::uint32_t> intervals_per_item;
};

/// Run RP-ADAPTIVEQUADRATURE over the failed intervals.
FallbackOutput run_adaptive_fallback(const simt::DeviceSpec& device,
                                     const RpProblem& problem,
                                     std::span<const FailedInterval> failed,
                                     std::vector<double>& integral,
                                     std::vector<double>& error,
                                     PatternField& contributions,
                                     SolverScratch& scratch);

/// Local tolerance for an interval: τ scaled by its share of the domain.
inline double local_tolerance(const RpProblem& problem, double a, double b) {
  return problem.tolerance * (b - a) / problem.r_max();
}

}  // namespace bd::core
