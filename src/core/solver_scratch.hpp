#pragma once
/// \file solver_scratch.hpp
/// Step-persistent scratch for the rp-solver hot path. One SolverScratch
/// is owned by the Simulation (handed to solvers through
/// RpProblem::scratch) and reused by every solve of every solver — all
/// solve calls are sequential, so sharing is safe. Buffers only ever grow;
/// after the first few steps every acquire is a growth-free reuse and the
/// solve phase performs zero steady-state heap allocations on these
/// surfaces (SolveResult's output grids are API-owned and excluded).
///
/// Instrumentation: every acquire and every PartitionSet layout counts a
/// grow event (capacity had to increase) or a reuse event. Solvers flush
/// them per solve as `rp.scratch_grows` / `rp.scratch_reuses`; the
/// perf-smoke gate asserts grows stay 0 after warm-up.

#include <cstdint>
#include <span>
#include <vector>

#include "core/rp_kernels.hpp"
#include "quad/adaptive.hpp"
#include "quad/partition_set.hpp"

namespace bd::core {

struct SolverScratch {
  // --- COMPUTE-RP-INTEGRAL (kernel 1) ---
  /// Per-block failure lists (executor runs a block's lanes serially).
  std::vector<std::vector<FailedInterval>> failed_per_block;
  std::vector<std::uint64_t> intervals_per_block;
  std::vector<std::uint64_t> evals_per_block;
  std::vector<std::uint64_t> saved_per_block;
  /// Concatenated failure list the fallback consumes (RpKernelOutput::failed
  /// points into this).
  std::vector<FailedInterval> failed;

  // --- RP-ADAPTIVEQUADRATURE (fallback) ---
  /// Run starts of point-contiguous groups in `failed`, plus end sentinel.
  std::vector<std::size_t> group_offsets;
  std::vector<double> fb_integral;
  std::vector<double> fb_error;
  std::vector<std::uint64_t> fb_evals;
  std::vector<std::uint64_t> fb_saved;
  std::vector<std::uint8_t> fb_non_converged;
  std::vector<std::uint32_t> fb_intervals;
  /// Flat per-item subregion counts, stride num_subregions.
  std::vector<std::uint32_t> fb_counts;
  /// Per-block adaptive worklists (lanes of a block run serially).
  std::vector<std::vector<quad::AdaptiveWorkItem>> fb_stacks;

  // --- partition staging (solvers) ---
  quad::PartitionSet point_partitions;  ///< per-point build target
  quad::PartitionSet merged;            ///< MERGE-LISTS / next-step target
  std::vector<std::size_t> row_caps;
  std::vector<double> merge_a;  ///< MERGE-LISTS ping buffer
  std::vector<double> merge_b;  ///< MERGE-LISTS pong buffer
  std::vector<double> refined;  ///< heuristic per-item refinement
  std::vector<double> ones;     ///< all-ones bootstrap pattern
  std::vector<std::uint32_t> point_run;  ///< heuristic: failed run per point

  /// Size `v` to n elements (contents unspecified) and return its span,
  /// recording a grow or reuse event. Growth reserves 2·n so a workload
  /// whose demand drifts upward between steps must double before paying
  /// another allocation (amortized allocation-free under drift).
  template <typename T>
  std::span<T> acquire(std::vector<T>& v, std::size_t n) {
    if (n > v.capacity()) {
      note_capacity(true);
      v.reserve(2 * n);
    } else {
      note_capacity(false);
    }
    v.resize(n);
    return {v.data(), n};
  }

  /// Size `v` to n copies of `value` and return its span.
  template <typename T>
  std::span<T> acquire_fill(std::vector<T>& v, std::size_t n, T value) {
    if (n > v.capacity()) {
      note_capacity(true);
      v.reserve(2 * n);
    } else {
      note_capacity(false);
    }
    v.assign(n, value);
    return {v.data(), n};
  }

  /// Acquire for nested containers: grows the outer vector but never
  /// shrinks it. A shrinking resize would destroy the tail elements —
  /// and with them the inner heap buffers this scratch exists to keep —
  /// so a workload whose block count oscillates would re-allocate fresh
  /// inner vectors on every rebound. Callers index only the first `n`
  /// entries; the stale tail stays empty (kernel 1 clears every list).
  template <typename T>
  void acquire_nested(std::vector<std::vector<T>>& v, std::size_t n) {
    if (n > v.capacity()) {
      note_capacity(true);
      v.reserve(2 * n);
    } else {
      note_capacity(false);
    }
    if (n > v.size()) v.resize(n);
  }

  void note_capacity(bool grew) {
    if (grew) {
      ++grow_events;
    } else {
      ++reuse_events;
    }
  }

  /// Drain a PartitionSet's allocation events into this scratch.
  void absorb(quad::PartitionSet& set) {
    grow_events += set.take_grow_events();
    reuse_events += set.take_reuse_events();
  }

  /// Emit and reset the per-solve allocation counters
  /// (rp.scratch_grows / rp.scratch_reuses). Call once per solve.
  void flush_metrics();

  std::uint64_t grow_events = 0;
  std::uint64_t reuse_events = 0;

  /// Global high-water marks for the per-block inner containers above.
  /// Every inner list is topped up to the worst block ever observed, so
  /// capacity becomes a property of the workload rather than of cluster
  /// membership: solvers that reshuffle points across blocks each step
  /// (predictive k-means) would otherwise chase the shuffle with a
  /// reallocation whenever some block sets a purely local record.
  std::size_t failed_watermark = 0;
  std::size_t stack_watermark = 0;
};

}  // namespace bd::core
