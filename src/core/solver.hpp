#pragma once
/// \file solver.hpp
/// Abstract interface of a compute-retarded-potentials solver, implemented
/// by the Two-Phase-RP [9] and Heuristic-RP [10] baselines and by the
/// paper's Predictive-RP algorithm. Solvers are stateful across time steps
/// (they learn / reuse partitions) — create one per simulation.

#include <memory>

#include "core/problem.hpp"
#include "simt/device.hpp"

namespace bd::util {
class BinaryWriter;
class BinaryReader;
}  // namespace bd::util

namespace bd::core {

struct SolverScratch;

/// Stateful rp-solver.
class RpSolver {
 public:
  RpSolver() = default;
  RpSolver(const RpSolver&) = delete;
  RpSolver& operator=(const RpSolver&) = delete;
  virtual ~RpSolver();

  /// Evaluate the rp-integral at every grid node for the problem's step.
  /// Steps must be solved in increasing order (state carries forward).
  virtual SolveResult solve(const RpProblem& problem) = 0;

  /// Solver name for reports ("two-phase-rp", "heuristic-rp",
  /// "predictive-rp").
  virtual const char* name() const = 0;

  /// Forget all cross-step state (for reuse across independent runs).
  virtual void reset() = 0;

  /// Checkpoint the solver's learned cross-step state (training window,
  /// reusable partitions, EMA targets, ...). Stateless solvers inherit the
  /// default no-op; stateful solvers must override both directions so a
  /// restored run replays bit-identically.
  virtual void save_state(util::BinaryWriter& out) const;

  /// Restore state written by save_state of the same solver type.
  virtual void load_state(util::BinaryReader& in);

 protected:
  /// The scratch arena for this solve: the problem's (Simulation-owned)
  /// arena when set, else a lazily created solver-owned one. Contents are
  /// unspecified between calls; capacity persists.
  SolverScratch& scratch_for(const RpProblem& problem);

 private:
  /// Raw pointer (not unique_ptr) so derived classes' implicit inline
  /// destructors never need SolverScratch complete; deleted by the
  /// out-of-line ~RpSolver.
  SolverScratch* owned_scratch_ = nullptr;
};

/// Shared helpers for solver implementations.
namespace detail {

/// Package kernel outputs into a SolveResult (grids + merged metrics).
SolveResult make_result(const RpProblem& problem,
                        std::vector<double>&& integral,
                        std::vector<double>&& error,
                        PatternField&& contributions,
                        simt::KernelMetrics&& metrics);

}  // namespace detail

}  // namespace bd::core
