#pragma once
/// \file checkpoint.hpp
/// Checkpoint/restart of a full Simulation. A checkpoint captures every
/// piece of cross-step state — particle phase space, the moment-grid
/// history ring, the step counter, the RNG stream, the health monitor and
/// degradation ladder, and each solver's learned state (training window,
/// reused partitions, EMA targets) — so a restored run replays the exact
/// step sequence the uninterrupted run would have produced.
///
/// Files use the checked-file container of util/serialize (magic,
/// version, CRC32, atomic write-rename); see docs/ROBUSTNESS.md for the
/// format layout and version policy.
///
/// Restore requires a Simulation constructed the same way as the saved
/// one: identical SimConfig geometry/seed fields and the same solver
/// lineup (type and order). Every mismatch is diagnosed by field name.
/// Restoring in place (into the simulation that wrote the snapshot) keeps
/// the history buffer's allocation, so even the address-sensitive SIMT
/// cache metrics replay bit-identically.

#include <string>

#include "core/simulation.hpp"

namespace bd::core {

/// Checked-file magic "BDCP" and the current payload format version.
inline constexpr std::uint32_t kCheckpointMagic = 0x50434442u;
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Atomically write `sim`'s complete state to `path`.
/// Throws bd::CheckError on I/O failure (an existing file is untouched).
void save_checkpoint(const Simulation& sim, const std::string& path);

/// Restore `sim` from `path`. `sim` must be compatible (see above); it may
/// be freshly constructed (initialize() not required) or mid-run.
/// Throws bd::CheckError on a missing/corrupt file or any mismatch.
void restore_checkpoint(Simulation& sim, const std::string& path);

}  // namespace bd::core
