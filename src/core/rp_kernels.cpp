#include "core/rp_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "beam/wake.hpp"
#include "quad/adaptive.hpp"
#include "quad/partition.hpp"
#include "quad/simpson.hpp"
#include "simt/executor.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace bd::core {

namespace {
constexpr std::uint32_t kIntervalLoop = simt::site_id("core/rp/interval-loop");
constexpr std::uint32_t kAcceptSite = simt::site_id("core/rp/accept");

std::uint32_t block_dim_for(std::size_t max_cluster, std::uint32_t warp,
                            std::uint32_t max_threads) {
  const std::uint32_t raw =
      static_cast<std::uint32_t>((max_cluster + warp - 1) / warp) * warp;
  return std::min(std::max(raw, warp), max_threads);
}

/// Subregion index of an interval midpoint.
std::size_t subregion_of(const RpProblem& problem, double a, double b) {
  const double mid = 0.5 * (a + b);
  auto j = static_cast<std::int64_t>(std::floor(mid / problem.sub_width));
  j = std::clamp<std::int64_t>(j, 0, problem.num_subregions - 1);
  return static_cast<std::size_t>(j);
}
}  // namespace

RpKernelOutput run_compute_rp_integral(const simt::DeviceSpec& device,
                                       const RpKernelInput& input) {
  BD_CHECK(input.problem && input.clusters);
  const RpProblem& problem = *input.problem;
  const ClusterAssignment& clusters = *input.clusters;
  if (input.source == PartitionSource::kSharedPerCluster) {
    BD_CHECK(input.shared_partitions &&
             input.shared_partitions->size() == clusters.members.size());
  } else {
    BD_CHECK(input.point_partitions &&
             input.point_partitions->size() == problem.num_points());
  }

  const std::size_t num_points = problem.num_points();
  RpKernelOutput out;
  out.integral.assign(num_points, 0.0);
  out.error.assign(num_points, 0.0);
  out.contributions = PatternField(num_points, problem.num_subregions);

  namespace telemetry = util::telemetry;
  telemetry::TraceSpan span("rp.compute_integral", "core");
  span.arg("clusters", static_cast<std::uint64_t>(clusters.members.size()));
  span.arg("points", static_cast<std::uint64_t>(num_points));
  // Per-cluster sizes feed the balance histogram every solver shares.
  for (const auto& members : clusters.members) {
    telemetry::histogram_record("rp.cluster_size",
                                static_cast<double>(members.size()));
  }

  const std::uint32_t block_dim = block_dim_for(
      clusters.max_cluster_size, device.warp_size, device.max_threads_per_block);
  BD_CHECK_MSG(clusters.max_cluster_size <= block_dim,
               "cluster larger than a thread block ("
                   << clusters.max_cluster_size << " > " << block_dim << ")");

  simt::LaunchConfig launch;
  launch.num_blocks = static_cast<std::uint32_t>(clusters.members.size());
  launch.threads_per_block = block_dim;

  // Per-block failure lists. The executor may run lanes from different
  // blocks concurrently but runs each block's lanes serially on one thread
  // (see executor.hpp), so per-block accumulators are race-free. Writes to
  // out.integral/out.error/contributions are per-point, and every point
  // belongs to exactly one cluster (= block), so those stay per-block too.
  std::vector<std::vector<FailedInterval>> failed_per_block(
      clusters.members.size());
  std::vector<std::uint64_t> intervals_per_block(clusters.members.size(), 0);

  auto kernel = [&](const simt::ThreadCtx& ctx, simt::LaneProbe& probe) {
    const auto& members = clusters.members[ctx.block_id];
    if (ctx.thread_id >= members.size()) {
      probe.loop_trip(kIntervalLoop, 0);  // resident but idle lane
      return;
    }
    const std::uint32_t point = members[ctx.thread_id];
    double x = 0.0, y = 0.0;
    problem.point_coords(point, x, y);
    const beam::WakeIntegrand integrand(*problem.history, *problem.model, x,
                                        y, problem.step, problem.sub_width);

    const std::vector<double>& partition =
        input.source == PartitionSource::kSharedPerCluster
            ? (*input.shared_partitions)[ctx.block_id]
            : (*input.point_partitions)[point];
    BD_DCHECK(quad::is_valid_partition(partition));

    const std::size_t intervals = partition.size() - 1;
    probe.loop_trip(kIntervalLoop, intervals);
    intervals_per_block[ctx.block_id] += intervals;

    auto contrib = out.contributions.at(point);
    for (std::size_t i = 0; i < intervals; ++i) {
      const double a = partition[i];
      const double b = partition[i + 1];
      const quad::QuadEstimate est =
          quad::simpson_estimate(integrand, a, b, probe);
      const double tau_local = local_tolerance(problem, a, b);
      const bool passed = est.error <= tau_local;
      probe.branch(kAcceptSite, passed);
      if (passed) {
        out.integral[point] += est.integral;
        out.error[point] += est.error;
        // Report the *required* refinement of this interval, not the used
        // one: Simpson error scales ~h⁴ relative to the width-proportional
        // tolerance, so (err/τ_local)^(1/4) is the factor by which the
        // interval should shrink (<1 = can coarsen). Clamped for stability;
        // this makes the true requirement a fixed point of the
        // observe→learn→predict loop instead of ratcheting finer.
        const double ratio = est.error / tau_local;
        const double factor =
            std::clamp(std::pow(ratio, 0.25), 0.125, 2.0);
        contrib[subregion_of(problem, a, b)] += factor;
      } else {
        failed_per_block[ctx.block_id].push_back(
            FailedInterval{point, a, b});
      }
    }
  };

  out.metrics = simt::launch(device, launch, kernel);

  for (std::size_t b = 0; b < failed_per_block.size(); ++b) {
    out.failed.insert(out.failed.end(), failed_per_block[b].begin(),
                      failed_per_block[b].end());
    out.intervals += intervals_per_block[b];
  }
  span.arg("intervals", out.intervals);
  span.arg("failed", static_cast<std::uint64_t>(out.failed.size()));
  telemetry::counter_add("rp.kernel_intervals", out.intervals);
  return out;
}

FallbackOutput run_adaptive_fallback(const simt::DeviceSpec& device,
                                     const RpProblem& problem,
                                     std::span<const FailedInterval> failed,
                                     std::vector<double>& integral,
                                     std::vector<double>& error,
                                     PatternField& contributions) {
  FallbackOutput out;
  if (failed.empty()) return out;
  namespace telemetry = util::telemetry;
  telemetry::TraceSpan span("rp.fallback", "core");
  span.arg("items", static_cast<std::uint64_t>(failed.size()));
  telemetry::counter_add("rp.fallback_items", failed.size());
  telemetry::histogram_record("rp.fallback_items_per_solve",
                              static_cast<double>(failed.size()));
  BD_CHECK(integral.size() == problem.num_points());
  BD_CHECK(error.size() == problem.num_points());
  BD_CHECK(contributions.points() == problem.num_points());

  simt::LaunchConfig launch;
  launch.threads_per_block = 128;
  launch.num_blocks = static_cast<std::uint32_t>(
      (failed.size() + launch.threads_per_block - 1) /
      launch.threads_per_block);

  std::vector<std::uint64_t> evals_per_item(failed.size(), 0);
  std::vector<std::uint8_t> non_converged(failed.size(), 0);
  out.intervals_per_item.assign(failed.size(), 0);

  // Distinct items may share a point, and the executor runs lanes from
  // different blocks concurrently — so the kernel only writes per-item
  // slots (one lane per item); the read-modify-write into the per-point
  // arrays happens in the deterministic serial reduction below. (A CUDA
  // port would use atomics instead.)
  std::vector<double> integral_per_item(failed.size(), 0.0);
  std::vector<double> error_per_item(failed.size(), 0.0);
  std::vector<std::vector<std::uint32_t>> counts_per_item(failed.size());

  auto kernel = [&](const simt::ThreadCtx& ctx, simt::LaneProbe& probe) {
    if (ctx.global_id >= failed.size()) {
      probe.loop_trip(simt::site_id("quad/adaptive/worklist"), 0);
      return;
    }
    const FailedInterval& item = failed[ctx.global_id];
    double x = 0.0, y = 0.0;
    problem.point_coords(item.point, x, y);
    const beam::WakeIntegrand integrand(*problem.history, *problem.model, x,
                                        y, problem.step, problem.sub_width);
    const double tol = local_tolerance(problem, item.a, item.b);
    const quad::AdaptiveResult result =
        quad::adaptive_simpson(integrand, item.a, item.b, tol, probe);

    integral_per_item[ctx.global_id] = result.integral;
    error_per_item[ctx.global_id] = result.error;
    counts_per_item[ctx.global_id] = quad::count_per_subregion(
        result.breakpoints, problem.sub_width, problem.num_subregions);
    evals_per_item[ctx.global_id] = result.evaluations;
    non_converged[ctx.global_id] = result.converged ? 0 : 1;
    out.intervals_per_item[ctx.global_id] =
        static_cast<std::uint32_t>(result.breakpoints.size() - 1);
  };

  out.metrics = simt::launch(device, launch, kernel);

  // Serial reduction in item order: deterministic for any thread count.
  for (std::size_t i = 0; i < failed.size(); ++i) {
    const FailedInterval& item = failed[i];
    integral[item.point] += integral_per_item[i];
    error[item.point] += error_per_item[i];
    auto contrib = contributions.at(item.point);
    const std::vector<std::uint32_t>& counts = counts_per_item[i];
    for (std::size_t j = 0; j < counts.size(); ++j) {
      contrib[j] += static_cast<double>(counts[j]);
    }
    out.evaluations += evals_per_item[i];
    out.non_converged += non_converged[i];
  }
  span.arg("evaluations", out.evaluations);
  span.arg("non_converged", out.non_converged);
  telemetry::counter_add("rp.fallback_evaluations", out.evaluations);
  telemetry::counter_add("rp.fallback_non_converged", out.non_converged);
  return out;
}

}  // namespace bd::core
