#include "core/rp_kernels.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "beam/wake.hpp"
#include "beam/wake_simd.hpp"
#include "core/solver_scratch.hpp"
#include "quad/adaptive.hpp"
#include "quad/partition.hpp"
#include "quad/simpson.hpp"
#include "simt/executor.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace bd::core {

namespace {
constexpr std::uint32_t kIntervalLoop = simt::site_id("core/rp/interval-loop");
constexpr std::uint32_t kAcceptSite = simt::site_id("core/rp/accept");
constexpr std::uint32_t kFallbackItems =
    simt::site_id("core/rp/fallback-items");

std::uint32_t block_dim_for(std::size_t max_cluster, std::uint32_t warp,
                            std::uint32_t max_threads) {
  const std::uint32_t raw =
      static_cast<std::uint32_t>((max_cluster + warp - 1) / warp) * warp;
  return std::min(std::max(raw, warp), max_threads);
}

/// Subregion index of an interval midpoint.
std::size_t subregion_of(const RpProblem& problem, double a, double b) {
  const double mid = 0.5 * (a + b);
  auto j = static_cast<std::int64_t>(std::floor(mid / problem.sub_width));
  j = std::clamp<std::int64_t>(j, 0, problem.num_subregions - 1);
  return static_cast<std::size_t>(j);
}

/// Sum of inner capacities — a before/after pair detects reallocation by
/// the kernel lambdas (push_back past a list's high-water mark).
template <typename Inner>
std::size_t inner_capacity(const std::vector<Inner>& lists) {
  std::size_t total = 0;
  for (const auto& inner : lists) total += inner.capacity();
  return total;
}
}  // namespace

RpKernelOutput run_compute_rp_integral(const simt::DeviceSpec& device,
                                       const RpKernelInput& input,
                                       SolverScratch& scratch) {
  BD_CHECK(input.problem && input.clusters && input.partitions);
  const RpProblem& problem = *input.problem;
  const ClusterAssignment& clusters = *input.clusters;
  if (input.source == PartitionSource::kSharedPerCluster) {
    BD_CHECK(input.partitions->entries() == clusters.members.size());
  } else {
    BD_CHECK(input.partitions->entries() == problem.num_points());
  }

  const std::size_t num_points = problem.num_points();
  const std::size_t num_blocks = clusters.members.size();
  RpKernelOutput out;
  out.integral.assign(num_points, 0.0);
  out.error.assign(num_points, 0.0);
  out.contributions = PatternField(num_points, problem.num_subregions);

  namespace telemetry = util::telemetry;
  {
    telemetry::TraceSpan span("rp.compute_integral", "core");
    span.arg("clusters", static_cast<std::uint64_t>(num_blocks));
    span.arg("points", static_cast<std::uint64_t>(num_points));

    const std::uint32_t block_dim =
        block_dim_for(clusters.max_cluster_size, device.warp_size,
                      device.max_threads_per_block);
    BD_CHECK_MSG(clusters.max_cluster_size <= block_dim,
                 "cluster larger than a thread block ("
                     << clusters.max_cluster_size << " > " << block_dim
                     << ")");

    simt::LaunchConfig launch;
    launch.num_blocks = static_cast<std::uint32_t>(num_blocks);
    launch.threads_per_block = block_dim;

    // Per-block failure lists. The executor may run lanes from different
    // blocks concurrently but runs each block's lanes serially on one
    // thread (see executor.hpp), so per-block accumulators are race-free.
    // Writes to out.integral/out.error/contributions are per-point, and
    // every point belongs to exactly one cluster (= block), so those stay
    // per-block too.
    scratch.acquire_nested(scratch.failed_per_block, num_blocks);
    // Top every list up to the global failure high-water mark (see
    // SolverScratch::failed_watermark). The top-up allocates, so it books
    // a grow; it stops firing once all capacities meet the watermark.
    {
      bool topped_up = false;
      for (auto& list : scratch.failed_per_block) {
        list.clear();
        if (list.capacity() < scratch.failed_watermark) {
          list.reserve(scratch.failed_watermark);
          topped_up = true;
        }
      }
      if (topped_up) scratch.note_capacity(true);
    }
    auto intervals_per_block =
        scratch.acquire_fill(scratch.intervals_per_block, num_blocks,
                             std::uint64_t{0});
    auto evals_per_block = scratch.acquire_fill(
        scratch.evals_per_block, num_blocks, std::uint64_t{0});
    auto saved_per_block = scratch.acquire_fill(
        scratch.saved_per_block, num_blocks, std::uint64_t{0});
    const std::size_t failed_cap_before =
        inner_capacity(scratch.failed_per_block);

    auto kernel = [&](const simt::ThreadCtx& ctx, simt::LaneProbe& probe) {
      const auto& members = clusters.members[ctx.block_id];
      if (ctx.thread_id >= members.size()) {
        probe.loop_trip(kIntervalLoop, 0);  // resident but idle lane
        return;
      }
      const std::uint32_t point = members[ctx.thread_id];
      double x = 0.0, y = 0.0;
      problem.point_coords(point, x, y);
      const beam::WakeIntegrand integrand(*problem.history, *problem.model,
                                          x, y, problem.step,
                                          problem.sub_width);

      const std::span<const double> partition =
          input.source == PartitionSource::kSharedPerCluster
              ? input.partitions->at(ctx.block_id)
              : input.partitions->at(point);
      BD_DCHECK(quad::is_valid_partition(partition));

      const std::size_t intervals = partition.size() - 1;
      probe.loop_trip(kIntervalLoop, intervals);
      intervals_per_block[ctx.block_id] += intervals;

      auto contrib = out.contributions.at(point);
      auto& fail_list = scratch.failed_per_block[ctx.block_id];
      const std::uint64_t evals = quad::simpson_sweep(
          integrand, partition, probe,
          [&](std::size_t, double a, double b, const quad::QuadEstimate& est,
              const quad::SimpsonSamples& samples) {
            const double tau_local = local_tolerance(problem, a, b);
            const bool passed = est.error <= tau_local;
            probe.branch(kAcceptSite, passed);
            if (passed) {
              out.integral[point] += est.integral;
              out.error[point] += est.error;
              // Report the *required* refinement of this interval, not the
              // used one: Simpson error scales ~h⁴ relative to the
              // width-proportional tolerance, so (err/τ_local)^(1/4) is the
              // factor by which the interval should shrink (<1 = can
              // coarsen). Clamped for stability; this makes the true
              // requirement a fixed point of the observe→learn→predict
              // loop instead of ratcheting finer.
              const double ratio = est.error / tau_local;
              const double factor =
                  std::clamp(std::pow(ratio, 0.25), 0.125, 2.0);
              contrib[subregion_of(problem, a, b)] += factor;
            } else {
              fail_list.push_back(FailedInterval{point, a, b, samples});
            }
          });
      evals_per_block[ctx.block_id] += evals;
      // The sweep shares one sample per interior breakpoint: the naive
      // per-interval loop would have paid 5·n evaluations.
      saved_per_block[ctx.block_id] +=
          5 * static_cast<std::uint64_t>(intervals) - evals;
    };

    out.metrics = simt::launch(device, launch, kernel);

    if (inner_capacity(scratch.failed_per_block) > failed_cap_before) {
      scratch.note_capacity(true);
    }
    // Next power of two above 2x the worst list ever seen: the learner's
    // slow convergence drifts per-block failure counts by a percent or so
    // per step, and a watermark that tracked the drift exactly would
    // re-trigger a round of top-ups on every new record. Quantized, the
    // watermark moves only when demand doubles.
    for (const auto& list : scratch.failed_per_block) {
      scratch.failed_watermark = std::max(
          scratch.failed_watermark, std::bit_ceil(2 * list.size()));
    }

    std::size_t total_failed = 0;
    for (const auto& list : scratch.failed_per_block) {
      total_failed += list.size();
    }
    auto failed = scratch.acquire(scratch.failed, total_failed);
    std::size_t cursor = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const auto& list = scratch.failed_per_block[b];
      std::copy(list.begin(), list.end(), failed.begin() + cursor);
      cursor += list.size();
      out.intervals += intervals_per_block[b];
      out.evaluations += evals_per_block[b];
      out.evaluations_saved += saved_per_block[b];
    }
    out.failed = failed;
    span.arg("intervals", out.intervals);
    span.arg("failed", static_cast<std::uint64_t>(total_failed));
  }

  // Telemetry outside the traced hot section; the cluster-balance
  // histogram loop is skipped entirely when metrics are off.
  if (telemetry::metrics_enabled()) {
    for (const auto& members : clusters.members) {
      telemetry::histogram_record("rp.cluster_size",
                                  static_cast<double>(members.size()));
    }
    telemetry::counter_add("rp.kernel_intervals", out.intervals);
    telemetry::counter_add("rp.kernel_evaluations", out.evaluations);
    telemetry::counter_add("rp.evals_saved", out.evaluations_saved);
    // Batched-engine accounting: the shared-sample sweep evaluates one
    // scalar head per partition plus four batched samples per interval.
    telemetry::gauge_set("simd.dispatch_level",
                         static_cast<double>(beam::wake_batch_level()));
    telemetry::counter_add("simd.batched_evals", 4 * out.intervals);
    telemetry::counter_add("simd.scalar_evals",
                           out.evaluations - 4 * out.intervals);
  }
  return out;
}

FallbackOutput run_adaptive_fallback(const simt::DeviceSpec& device,
                                     const RpProblem& problem,
                                     std::span<const FailedInterval> failed,
                                     std::vector<double>& integral,
                                     std::vector<double>& error,
                                     PatternField& contributions,
                                     SolverScratch& scratch) {
  FallbackOutput out;
  if (failed.empty()) return out;
  namespace telemetry = util::telemetry;
  telemetry::TraceSpan span("rp.fallback", "core");
  span.arg("items", static_cast<std::uint64_t>(failed.size()));
  telemetry::counter_add("rp.fallback_items", failed.size());
  telemetry::histogram_record("rp.fallback_items_per_solve",
                              static_cast<double>(failed.size()));
  BD_CHECK(integral.size() == problem.num_points());
  BD_CHECK(error.size() == problem.num_points());
  BD_CHECK(contributions.points() == problem.num_points());

  // Group failed intervals into point-contiguous runs. Kernel 1 emits a
  // point's failures contiguously (one lane per point, lanes serial per
  // block), so a run is all of a point's items and each group constructs
  // its integrand exactly once. An arbitrary caller-built list merely
  // splits a point across groups — still correct, just fewer cache hits.
  auto offsets = scratch.acquire(scratch.group_offsets, failed.size() + 1);
  std::size_t num_groups = 0;
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i == 0 || failed[i].point != failed[i - 1].point) {
      offsets[num_groups++] = i;
    }
  }
  offsets[num_groups] = failed.size();
  out.integrand_cache_hits = failed.size() - num_groups;

  simt::LaunchConfig launch;
  launch.threads_per_block = 128;
  launch.num_blocks = static_cast<std::uint32_t>(
      (num_groups + launch.threads_per_block - 1) /
      launch.threads_per_block);

  auto fb_integral = scratch.acquire(scratch.fb_integral, failed.size());
  auto fb_error = scratch.acquire(scratch.fb_error, failed.size());
  auto fb_evals = scratch.acquire(scratch.fb_evals, failed.size());
  auto fb_saved = scratch.acquire(scratch.fb_saved, failed.size());
  auto fb_non_converged =
      scratch.acquire(scratch.fb_non_converged, failed.size());
  auto fb_intervals = scratch.acquire(scratch.fb_intervals, failed.size());
  auto fb_counts = scratch.acquire_fill(
      scratch.fb_counts, failed.size() * problem.num_subregions,
      std::uint32_t{0});
  scratch.acquire_nested(scratch.fb_stacks, launch.num_blocks);
  // Same global-watermark top-up as the kernel-1 failure lists: worklist
  // depth is a property of the workload, not of which block runs it.
  {
    bool topped_up = false;
    for (auto& stack : scratch.fb_stacks) {
      if (stack.capacity() < scratch.stack_watermark) {
        stack.reserve(scratch.stack_watermark);
        topped_up = true;
      }
    }
    if (topped_up) scratch.note_capacity(true);
  }
  const std::size_t stack_cap_before = inner_capacity(scratch.fb_stacks);

  const quad::AdaptiveOptions options{};

  // Distinct items may share a point, and the executor runs lanes from
  // different blocks concurrently — so the kernel only writes per-item
  // slots (one lane per group of items); the read-modify-write into the
  // per-point arrays happens in the deterministic serial reduction below.
  // (A CUDA port would use atomics instead.)
  auto kernel = [&](const simt::ThreadCtx& ctx, simt::LaneProbe& probe) {
    if (ctx.global_id >= num_groups) {
      probe.loop_trip(kFallbackItems, 0);
      return;
    }
    const std::size_t begin = offsets[ctx.global_id];
    const std::size_t end = offsets[ctx.global_id + 1];
    const std::uint32_t point = failed[begin].point;
    double x = 0.0, y = 0.0;
    problem.point_coords(point, x, y);
    const beam::WakeIntegrand integrand(*problem.history, *problem.model, x,
                                        y, problem.step, problem.sub_width);
    probe.loop_trip(kFallbackItems, end - begin);
    auto& stack = scratch.fb_stacks[ctx.block_id];

    for (std::size_t i = begin; i < end; ++i) {
      const FailedInterval& item = failed[i];
      const double tol = local_tolerance(problem, item.a, item.b);
      std::uint32_t* counts =
          fb_counts.data() + i * problem.num_subregions;
      const quad::AdaptiveOutcome result = quad::adaptive_simpson_seeded(
          integrand, item.a, item.b, tol, item.samples, probe, options,
          stack,
          [&](const quad::AdaptiveWorkItem& leaf, const quad::QuadEstimate&) {
            ++counts[subregion_of(problem, leaf.a, leaf.b)];
          });

      fb_integral[i] = result.integral;
      fb_error[i] = result.error;
      fb_evals[i] = result.evaluations;
      // The seeded root reused the 5 samples kernel 1 already paid for.
      fb_saved[i] = result.evaluations_saved + 5;
      fb_non_converged[i] = result.converged ? 0 : 1;
      fb_intervals[i] = static_cast<std::uint32_t>(result.intervals);
    }
  };

  out.metrics = simt::launch(device, launch, kernel);

  if (inner_capacity(scratch.fb_stacks) > stack_cap_before) {
    scratch.note_capacity(true);
  }
  for (const auto& stack : scratch.fb_stacks) {
    scratch.stack_watermark =
        std::max(scratch.stack_watermark, stack.capacity());
  }

  // Serial reduction in item order: deterministic for any thread count.
  for (std::size_t i = 0; i < failed.size(); ++i) {
    const FailedInterval& item = failed[i];
    integral[item.point] += fb_integral[i];
    error[item.point] += fb_error[i];
    auto contrib = contributions.at(item.point);
    const std::uint32_t* counts =
        fb_counts.data() + i * problem.num_subregions;
    for (std::size_t j = 0; j < problem.num_subregions; ++j) {
      contrib[j] += static_cast<double>(counts[j]);
    }
    out.evaluations += fb_evals[i];
    out.evaluations_saved += fb_saved[i];
    out.non_converged += fb_non_converged[i];
  }
  out.intervals_per_item = fb_intervals;
  span.arg("evaluations", out.evaluations);
  span.arg("non_converged", out.non_converged);
  telemetry::counter_add("rp.fallback_evaluations", out.evaluations);
  // Every fallback evaluation is paid through a memoized refinement pair
  // (one eval_batch block of two fine points).
  telemetry::counter_add("simd.batched_evals", out.evaluations);
  telemetry::counter_add("rp.fallback_non_converged", out.non_converged);
  telemetry::counter_add("rp.evals_saved", out.evaluations_saved);
  telemetry::counter_add("rp.integrand_cache_hits",
                         out.integrand_cache_hits);
  return out;
}

}  // namespace bd::core
