#include "core/pattern_io.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace bd::core {

namespace {

/// Strict numeric cell parse with file coordinates in every diagnostic
/// (std::stod would throw a context-free std::invalid_argument and happily
/// accept trailing garbage like "1.5x").
double parse_count_cell(const std::string& cell, const std::string& path,
                        std::size_t row, std::size_t col) {
  const char* begin = cell.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  BD_CHECK_MSG(end != begin && *end == '\0',
               "pattern file " << path << ": row " << row << ", column "
                               << col << ": non-numeric cell '" << cell
                               << "'");
  BD_CHECK_MSG(std::isfinite(value),
               "pattern file " << path << ": row " << row << ", column "
                               << col << ": non-finite count '" << cell
                               << "'");
  BD_CHECK_MSG(value >= 0.0,
               "pattern file " << path << ": row " << row << ", column "
                               << col << ": negative count " << value);
  return value;
}

}  // namespace

void save_pattern_field(const PatternField& field, const std::string& path) {
  util::CsvWriter csv(path);
  std::vector<std::string> header{"point"};
  for (std::size_t j = 0; j < field.subregions(); ++j) {
    header.push_back("n" + std::to_string(j));
  }
  csv.header(header);
  for (std::size_t p = 0; p < field.points(); ++p) {
    csv.cell(static_cast<std::uint64_t>(p));
    for (double v : field.at(p)) csv.cell(v);
    csv.end_row();
  }
  csv.close();
}

PatternField load_pattern_field(const std::string& path) {
  std::ifstream in(path);
  BD_CHECK_MSG(in.good(), "cannot open pattern file: " << path);
  std::string line;
  BD_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
               "empty pattern file: " << path);
  // Count columns from the header.
  std::size_t columns = 1;
  for (char c : line) {
    if (c == ',') ++columns;
  }
  BD_CHECK_MSG(columns >= 2, "pattern file needs at least one subregion");
  const std::size_t subregions = columns - 1;

  std::vector<double> values;
  std::size_t points = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    std::size_t col = 0;
    while (std::getline(row, cell, ',')) {
      if (col > 0) {
        values.push_back(parse_count_cell(cell, path, points, col));
      }
      ++col;
    }
    BD_CHECK_MSG(col == columns, "pattern file "
                                     << path << ": row " << points << " has "
                                     << col << " cells, expected " << columns
                                     << " (ragged or truncated row)");
    ++points;
  }
  // A truncated final line without a newline still arrives via getline; a
  // mid-row truncation is caught by the ragged-row check above. Catch the
  // remaining case: a file cut off exactly at a row boundary but reporting
  // a read error.
  BD_CHECK_MSG(in.eof(), "pattern file " << path
                                         << ": read error before EOF "
                                            "(truncated file?)");
  PatternField field(points, subregions);
  std::copy(values.begin(), values.end(), field.flat().begin());
  return field;
}

}  // namespace bd::core
