#include "core/pattern_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace bd::core {

void save_pattern_field(const PatternField& field, const std::string& path) {
  util::CsvWriter csv(path);
  std::vector<std::string> header{"point"};
  for (std::size_t j = 0; j < field.subregions(); ++j) {
    header.push_back("n" + std::to_string(j));
  }
  csv.header(header);
  for (std::size_t p = 0; p < field.points(); ++p) {
    csv.cell(static_cast<std::uint64_t>(p));
    for (double v : field.at(p)) csv.cell(v);
    csv.end_row();
  }
  csv.close();
}

PatternField load_pattern_field(const std::string& path) {
  std::ifstream in(path);
  BD_CHECK_MSG(in.good(), "cannot open pattern file: " << path);
  std::string line;
  BD_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
               "empty pattern file: " << path);
  // Count columns from the header.
  std::size_t columns = 1;
  for (char c : line) {
    if (c == ',') ++columns;
  }
  BD_CHECK_MSG(columns >= 2, "pattern file needs at least one subregion");
  const std::size_t subregions = columns - 1;

  std::vector<double> values;
  std::size_t points = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    std::size_t col = 0;
    while (std::getline(row, cell, ',')) {
      if (col > 0) values.push_back(std::stod(cell));
      ++col;
    }
    BD_CHECK_MSG(col == columns, "row " << points << " has " << col
                                        << " cells, expected " << columns);
    ++points;
  }
  PatternField field(points, subregions);
  std::copy(values.begin(), values.end(), field.flat().begin());
  return field;
}

}  // namespace bd::core
