#pragma once
/// \file pattern_io.hpp
/// Persistence for access-pattern fields: save/load the observed or
/// forecast patterns of a step as CSV, so pattern evolution can be
/// analyzed offline (or a predictor warm-started from a previous run).

#include <string>

#include "core/access_pattern.hpp"

namespace bd::core {

/// Write a PatternField as CSV: one row per grid point
/// (point, n_0, n_1, ..., n_{Ns-1}).
void save_pattern_field(const PatternField& field, const std::string& path);

/// Read a PatternField written by save_pattern_field. Throws
/// bd::CheckError on malformed input.
PatternField load_pattern_field(const std::string& path);

}  // namespace bd::core
