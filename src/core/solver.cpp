#include "core/solver.hpp"

#include <algorithm>

#include "core/solver_scratch.hpp"
#include "util/check.hpp"
#include "util/serialize.hpp"

namespace bd::core {

RpSolver::~RpSolver() { delete owned_scratch_; }

void RpSolver::save_state(util::BinaryWriter& /*out*/) const {}

void RpSolver::load_state(util::BinaryReader& /*in*/) {}

SolverScratch& RpSolver::scratch_for(const RpProblem& problem) {
  if (problem.scratch != nullptr) return *problem.scratch;
  if (owned_scratch_ == nullptr) owned_scratch_ = new SolverScratch;
  return *owned_scratch_;
}

}  // namespace bd::core

namespace bd::core::detail {

SolveResult make_result(const RpProblem& problem,
                        std::vector<double>&& integral,
                        std::vector<double>&& error,
                        PatternField&& contributions,
                        simt::KernelMetrics&& metrics) {
  const beam::GridSpec& spec = problem.grid();
  BD_CHECK(integral.size() == spec.nodes());
  SolveResult result;
  result.values = beam::Grid2D(spec);
  result.errors = beam::Grid2D(spec);
  std::copy(integral.begin(), integral.end(), result.values.data().begin());
  std::copy(error.begin(), error.end(), result.errors.data().begin());
  result.observed = std::move(contributions);
  result.metrics = std::move(metrics);
  result.gpu_seconds = result.metrics.modeled_seconds;
  return result;
}

}  // namespace bd::core::detail
