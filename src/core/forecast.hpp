#pragma once
/// \file forecast.hpp
/// COMPUTE-PARTITION (paper §III-C2): transform a (predicted) access
/// pattern into an rp-integral partition. Counts are rounded up to powers
/// of two so partitions of similar patterns share breakpoints — unions of
/// dyadic partitions nest, which keeps the per-cluster merged partition
/// (MERGE-LISTS over all members) close to the finest member instead of
/// blowing up.

#include <cstdint>
#include <span>
#include <vector>

namespace bd::core {

/// Partition transform selector (§III-C2).
enum class PartitionTransform {
  kUniform,   ///< method 1: n_j equal (dyadic) pieces per subregion
  kAdaptive,  ///< method 2: refine the previous step's partition
};

/// Round to the *nearest* power of two in log space (0 -> 1). Nearest —
/// not ceiling — so kNN-averaged counts between two dyadic levels do not
/// systematically escalate to the higher level (which would ratchet the
/// partitions finer every step).
std::uint32_t round_pow2(double count);

/// Provisioning headroom applied to predicted counts before rounding —
/// biases toward the next dyadic level so marginal predictions do not fall
/// through to the (divergent) adaptive fallback every step.
inline constexpr double kPartitionHeadroom = 1.3;

/// Uniform transform: subregion j gets round_pow2(headroom · pattern[j])
/// equal intervals. Returns breakpoints over [0, r_max].
std::vector<double> pattern_to_partition(std::span<const double> pattern,
                                         double sub_width, double r_max,
                                         double headroom = kPartitionHeadroom);

/// Adaptive transform: subdivide the previous partition so each subregion
/// reaches at least the predicted count (paper: split each previous
/// interval in S_j into n_j/d_j pieces). Falls back to the uniform
/// transform when there is no previous partition.
std::vector<double> pattern_to_partition_adaptive(
    std::span<const double> pattern, const std::vector<double>& previous,
    double sub_width, double r_max, double headroom = kPartitionHeadroom);

// --- Allocation-free variants (PartitionSet fill path) ---
//
// The *_bound functions return a breakpoint-count upper bound for one
// point, so a PartitionSet can lay out all rows in a single serial pass;
// the *_into functions then fill each row slot in parallel, producing
// exactly the same breakpoints as the vector-returning transforms above.
// The adaptive variants require `previous` to span [0, r_max] (which
// every solver-built partition does) so the per-subregion interval counts
// can be derived from a single monotone walk instead of a scratch array.

/// Breakpoint-count bound of the uniform transform.
std::size_t pattern_to_partition_bound(std::span<const double> pattern,
                                       double headroom = kPartitionHeadroom);

/// Uniform transform into a caller-provided slot (>= the bound). Returns
/// the number of breakpoints written.
std::size_t pattern_to_partition_into(std::span<const double> pattern,
                                      double sub_width, double r_max,
                                      std::span<double> out,
                                      double headroom = kPartitionHeadroom);

/// Breakpoint-count bound of the adaptive transform.
std::size_t pattern_to_partition_adaptive_bound(
    std::span<const double> pattern, std::span<const double> previous,
    double sub_width, double r_max, double headroom = kPartitionHeadroom);

/// Adaptive transform into a caller-provided slot (>= the bound). Returns
/// the number of breakpoints written.
std::size_t pattern_to_partition_adaptive_into(
    std::span<const double> pattern, std::span<const double> previous,
    double sub_width, double r_max, std::span<double> out,
    double headroom = kPartitionHeadroom);

}  // namespace bd::core
