#pragma once
/// \file simulation.hpp
/// The full four-step beam-dynamics simulation loop (paper §II-A, Fig. 1):
/// deposit → compute retarded potentials (pluggable rp-solver) →
/// gather self-forces → push. Owns the particle set, the moment-grid
/// history and the per-step statistics the benchmarks report.

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "beam/bunch.hpp"
#include "beam/deposit.hpp"
#include "beam/history.hpp"
#include "beam/units.hpp"
#include "beam/wake.hpp"
#include "core/health.hpp"
#include "core/solver.hpp"
#include "util/faultinject.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace bd::core {

/// Full simulation configuration.
struct SimConfig {
  std::size_t particles = 100000;
  std::uint32_t nx = 64;
  std::uint32_t ny = 64;
  double half_extent_x = 6.0;  ///< grid spans ±6σ_s longitudinally
  double half_extent_y = 6.0;  ///< and ±6σ_y transversely (σ_y units of σ_s)
  double sub_width = 1.0;      ///< c·Δt (radial subregion width)
  std::uint32_t num_subregions = 12;  ///< κ
  double tolerance = 1e-6;     ///< τ (paper §V)
  double dt = 1.0;             ///< push step (= sub_width / c)
  bool rigid = false;          ///< validation mode: skip the push
  bool compute_transverse = false;  ///< also solve the transverse model
  std::uint64_t seed = 20170801;
  beam::BeamParams beam;
  beam::DepositScheme deposit = beam::DepositScheme::kTSC;
  beam::WakeModel longitudinal = beam::WakeModel::longitudinal();
  beam::WakeModel transverse = beam::WakeModel::transverse();

  /// Enable per-step numerical health monitoring and the degradation
  /// ladder (docs/ROBUSTNESS.md). Off by default — the guarded path costs
  /// a few grid scans per step.
  bool health_checks = false;
  HealthThresholds health;  ///< limits used when health_checks is on

  /// History depth required to interpolate every subregion in time.
  std::uint32_t history_depth() const { return num_subregions + 4; }

  /// Throws bd::CheckError naming the offending field if any value is
  /// unusable (zero grid dims, non-positive tolerance/dt, ...). Called by
  /// the Simulation constructor; exposed for config-loading tooling.
  void validate() const;
};

/// Wall-time breakdown of one step over the four simulation phases
/// (milliseconds of host time; the solve phase includes the transverse
/// solve when enabled). Mirrors the `sim.*` telemetry spans — see
/// docs/METRICS.md.
struct PhaseBreakdown {
  double deposit_ms = 0.0;  ///< PIC deposition + gradient + history push
  double solve_ms = 0.0;    ///< compute retarded potentials (rp-solver)
  double gather_ms = 0.0;   ///< force interpolation back to particles
  double push_ms = 0.0;     ///< leap-frog push (0 for rigid bunches)

  double total_ms() const {
    return deposit_ms + solve_ms + gather_ms + push_ms;
  }
};

/// Statistics of one simulation step.
struct StepStats {
  std::int64_t step = 0;
  double deposit_seconds = 0.0;
  double dropped_charge = 0.0;
  PhaseBreakdown phase_ms;  ///< where the step's host wall time went
  SolveResult longitudinal;
  std::optional<SolveResult> transverse;
  /// Health findings for this step; engaged only when
  /// SimConfig::health_checks is on.
  std::optional<HealthReport> health;
};

/// The simulation driver.
class Simulation {
 public:
  /// \param solver rp-solver for the longitudinal component (owned).
  /// \param transverse_solver optional solver for the transverse component
  ///        (must be a distinct instance — solvers carry per-model state).
  Simulation(SimConfig config, std::unique_ptr<RpSolver> solver,
             std::unique_ptr<RpSolver> transverse_solver = nullptr);
  ~Simulation();

  /// Sample the bunch, deposit it, and pre-fill the history ("the beam
  /// arrived in steady state"). Must be called once before step().
  void initialize();

  /// Run one full simulation step; returns its statistics.
  StepStats step();

  /// Run `n` steps; returns per-step statistics.
  std::vector<StepStats> run(std::size_t n);

  const beam::ParticleSet& particles() const { return particles_; }
  beam::ParticleSet& particles() { return particles_; }
  const beam::GridHistory& history() const { return history_; }
  const beam::Grid2D& force_s() const { return force_s_grid_; }
  const beam::Grid2D& force_y() const { return force_y_grid_; }
  const SimConfig& config() const { return config_; }
  std::int64_t current_step() const { return step_; }
  RpSolver& solver() { return *solver_; }

  /// Append one rung to the degradation ladder (docs/ROBUSTNESS.md).
  /// Tier 0 is the primary solver; each added solver is one tier simpler.
  /// The last added solver should be unconditionally safe (the stateless
  /// full-adaptive TwoPhaseSolver) — it also serves as the repair solver
  /// that recomputes quarantined potential nodes. Resets the ladder.
  void add_fallback_solver(std::unique_ptr<RpSolver> solver);

  /// Ladder tier the next step will use (0 = primary solver).
  std::uint32_t active_tier() const { return ladder_.tier(); }
  std::uint32_t num_tiers() const { return ladder_.num_tiers(); }

  /// The solver the next step will use, per the ladder tier.
  RpSolver& active_solver();

  /// The RpProblem for the current step and given model (for tooling).
  RpProblem make_problem(const beam::WakeModel& model) const;

  /// Route this simulation's telemetry to `metrics`/`trace` instead of the
  /// process-global instances (nullptr = keep using the ambient target).
  /// initialize()/step()/run() and checkpoint save/restore install the
  /// pair as a TelemetryScope for their duration, and the thread pool
  /// propagates it to workers — so concurrent simulations never interleave
  /// metrics. Used by core/fleet; standalone sims need not call this.
  void set_telemetry(util::telemetry::MetricsRegistry* metrics,
                     util::telemetry::TraceSession* trace);

  /// Route this simulation's fault injection to `harness` (nullptr = the
  /// ambient/default harness). Same scoping rules as set_telemetry.
  void set_fault_harness(util::faultinject::FaultHarness* harness);

  /// Whether initialize() has run (directly or via checkpoint restore).
  bool initialized() const { return initialized_; }

  /// Cooperative stop token. request_stop() may be called from any thread
  /// (e.g. the fleet watchdog); run() checks it between steps and returns
  /// early with the steps completed so far. The token is NOT consulted by
  /// a single step() call — stops land on step boundaries only, keeping
  /// every completed step bit-identical to an uninterrupted run.
  void request_stop() { stop_requested_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }
  void clear_stop() { stop_requested_.store(false, std::memory_order_relaxed); }

  /// Supervisor-driven demotion: push the ladder one rung down (toward
  /// simpler solvers) without waiting for an unhealthy streak. The
  /// abandoned tier's solver and the MAE baseline are reset, mirroring the
  /// in-step demotion path. No-op on the last rung or when no fallbacks
  /// are installed. Used by the fleet watchdog after a step-deadline trip.
  void demote_tier();

 private:
  friend void save_checkpoint(const Simulation& sim, const std::string& path);
  friend void restore_checkpoint(Simulation& sim, const std::string& path);

  void deposit_current(double& seconds, double& dropped);

  /// Scan/repair hooks of the guarded step (no-ops unless health_checks).
  void check_moments(StepStats& stats);
  void check_potentials(StepStats& stats, const RpProblem& problem);
  void check_forces(StepStats& stats);
  void update_ladder(StepStats& stats);

  SimConfig config_;
  std::unique_ptr<RpSolver> solver_;
  std::unique_ptr<RpSolver> transverse_solver_;
  /// Step-persistent solver scratch, shared by every solve of every
  /// attached solver (solves are sequential) through RpProblem::scratch.
  std::unique_ptr<SolverScratch> scratch_;
  std::vector<std::unique_ptr<RpSolver>> fallback_solvers_;
  beam::GridSpec spec_;
  beam::ParticleSet particles_;
  beam::GridHistory history_;
  beam::Grid2D rho_, drho_ds_;
  beam::Grid2D force_s_grid_, force_y_grid_;
  std::vector<double> particle_force_s_, particle_force_y_;
  util::Rng rng_;
  HealthMonitor health_monitor_;
  DegradationLadder ladder_;
  std::int64_t step_ = 0;
  bool initialized_ = false;
  std::atomic<bool> stop_requested_{false};
  /// Scoped telemetry/fault targets (see set_telemetry); nullptr = ambient.
  util::telemetry::MetricsRegistry* metrics_ = nullptr;
  util::telemetry::TraceSession* trace_ = nullptr;
  util::faultinject::FaultHarness* fault_harness_ = nullptr;
};

/// Checkpoint/restart (core/checkpoint.cpp). Declared here so they can be
/// friends; include core/checkpoint.hpp for the documented entry points.
void save_checkpoint(const Simulation& sim, const std::string& path);
void restore_checkpoint(Simulation& sim, const std::string& path);

}  // namespace bd::core
