#pragma once
/// \file simulation.hpp
/// The full four-step beam-dynamics simulation loop (paper §II-A, Fig. 1):
/// deposit → compute retarded potentials (pluggable rp-solver) →
/// gather self-forces → push. Owns the particle set, the moment-grid
/// history and the per-step statistics the benchmarks report.

#include <memory>
#include <optional>
#include <vector>

#include "beam/bunch.hpp"
#include "beam/deposit.hpp"
#include "beam/history.hpp"
#include "beam/units.hpp"
#include "beam/wake.hpp"
#include "core/solver.hpp"

namespace bd::core {

/// Full simulation configuration.
struct SimConfig {
  std::size_t particles = 100000;
  std::uint32_t nx = 64;
  std::uint32_t ny = 64;
  double half_extent_x = 6.0;  ///< grid spans ±6σ_s longitudinally
  double half_extent_y = 6.0;  ///< and ±6σ_y transversely (σ_y units of σ_s)
  double sub_width = 1.0;      ///< c·Δt (radial subregion width)
  std::uint32_t num_subregions = 12;  ///< κ
  double tolerance = 1e-6;     ///< τ (paper §V)
  double dt = 1.0;             ///< push step (= sub_width / c)
  bool rigid = false;          ///< validation mode: skip the push
  bool compute_transverse = false;  ///< also solve the transverse model
  std::uint64_t seed = 20170801;
  beam::BeamParams beam;
  beam::DepositScheme deposit = beam::DepositScheme::kTSC;
  beam::WakeModel longitudinal = beam::WakeModel::longitudinal();
  beam::WakeModel transverse = beam::WakeModel::transverse();

  /// History depth required to interpolate every subregion in time.
  std::uint32_t history_depth() const { return num_subregions + 4; }
};

/// Wall-time breakdown of one step over the four simulation phases
/// (milliseconds of host time; the solve phase includes the transverse
/// solve when enabled). Mirrors the `sim.*` telemetry spans — see
/// docs/METRICS.md.
struct PhaseBreakdown {
  double deposit_ms = 0.0;  ///< PIC deposition + gradient + history push
  double solve_ms = 0.0;    ///< compute retarded potentials (rp-solver)
  double gather_ms = 0.0;   ///< force interpolation back to particles
  double push_ms = 0.0;     ///< leap-frog push (0 for rigid bunches)

  double total_ms() const {
    return deposit_ms + solve_ms + gather_ms + push_ms;
  }
};

/// Statistics of one simulation step.
struct StepStats {
  std::int64_t step = 0;
  double deposit_seconds = 0.0;
  double dropped_charge = 0.0;
  PhaseBreakdown phase_ms;  ///< where the step's host wall time went
  SolveResult longitudinal;
  std::optional<SolveResult> transverse;
};

/// The simulation driver.
class Simulation {
 public:
  /// \param solver rp-solver for the longitudinal component (owned).
  /// \param transverse_solver optional solver for the transverse component
  ///        (must be a distinct instance — solvers carry per-model state).
  Simulation(SimConfig config, std::unique_ptr<RpSolver> solver,
             std::unique_ptr<RpSolver> transverse_solver = nullptr);

  /// Sample the bunch, deposit it, and pre-fill the history ("the beam
  /// arrived in steady state"). Must be called once before step().
  void initialize();

  /// Run one full simulation step; returns its statistics.
  StepStats step();

  /// Run `n` steps; returns per-step statistics.
  std::vector<StepStats> run(std::size_t n);

  const beam::ParticleSet& particles() const { return particles_; }
  beam::ParticleSet& particles() { return particles_; }
  const beam::GridHistory& history() const { return history_; }
  const beam::Grid2D& force_s() const { return force_s_grid_; }
  const beam::Grid2D& force_y() const { return force_y_grid_; }
  const SimConfig& config() const { return config_; }
  std::int64_t current_step() const { return step_; }
  RpSolver& solver() { return *solver_; }

  /// The RpProblem for the current step and given model (for tooling).
  RpProblem make_problem(const beam::WakeModel& model) const;

 private:
  void deposit_current(double& seconds, double& dropped);

  SimConfig config_;
  std::unique_ptr<RpSolver> solver_;
  std::unique_ptr<RpSolver> transverse_solver_;
  beam::GridSpec spec_;
  beam::ParticleSet particles_;
  beam::GridHistory history_;
  beam::Grid2D rho_, drho_ds_;
  beam::Grid2D force_s_grid_, force_y_grid_;
  std::vector<double> particle_force_s_, particle_force_y_;
  std::int64_t step_ = 0;
  bool initialized_ = false;
};

}  // namespace bd::core
