#pragma once
/// \file clustering.hpp
/// RP-CLUSTERING (paper Algorithm 1, line 6): partition the grid points
/// into m clusters by access-pattern similarity with k-means, so points
/// mapped to the same thread block maximize data reuse and share control
/// flow. The paper chooses m = max(N_X, N_Y), giving clusters of
/// approximately min(N_X, N_Y) points; we additionally enforce balance so
/// every cluster fits one thread block exactly.
///
/// Two engineering refinements over a literal k-means call:
///  * centroids are trained on a subsample (Lloyd is O(n·k·d) per
///    iteration) and the full point set is then balance-assigned in one
///    capacity-constrained pass;
///  * grid coordinates can be appended as weighted features, so clusters
///    of equal access pattern prefer spatially-compact shapes — the
///    property that turns pattern similarity into actual coalesced loads
///    when members map to consecutive lanes.

#include <cstdint>
#include <span>
#include <vector>

#include "beam/grid.hpp"
#include "core/access_pattern.hpp"

namespace bd::core {

/// Result of RP-CLUSTERING: per-cluster member lists (grid point indices,
/// ascending — i.e. row-major within each cluster).
struct ClusterAssignment {
  std::vector<std::vector<std::uint32_t>> members;
  std::size_t max_cluster_size = 0;
  /// Full-set inertia under the final (balanced) assignment — comparable
  /// between the legacy and the coreset-accelerated training paths.
  double inertia = 0.0;
  std::size_t kmeans_iterations = 0;
  std::size_t coreset_size = 0;  ///< training points used (0 = stride path)
  bool warm_started = false;     ///< centroids seeded from the cache
};

/// Cross-step centroid cache for warm-started clustering. Owned by the
/// caller (PredictiveSolver persists it through save_state/load_state so
/// checkpoint resume stays bit-identical); training updates it in place.
struct ClusteringCache {
  std::vector<double> centroids;  ///< clusters × dim, row-major
  std::size_t dim = 0;
  double inertia = 0.0;  ///< training (coreset-weighted) inertia at save
  bool valid() const { return !centroids.empty() && dim > 0; }
  void clear() {
    centroids.clear();
    dim = 0;
    inertia = 0.0;
  }
};

/// Acceleration for the centroid-training stage of RP-CLUSTERING: a D²
/// importance-sampled weighted coreset replaces the stride subsample,
/// Lloyd runs with triangle-inequality pruning, and (when a cache is
/// supplied) the previous step's centroids seed the next step — skipping
/// k-means++ entirely while patterns drift slowly. Off by default: the
/// legacy stride-subsample path stays the bitwise reference.
struct ClusteringAccel {
  bool enabled = false;
  /// D² coreset draws used for Lloyd training (0 = keep the full set).
  std::size_t coreset_size = 512;
  /// Warm-started training whose inertia exceeds the cached inertia by
  /// this factor re-seeds with k-means++ on the same coreset (the
  /// patterns drifted too far for the old centroids to be useful seeds).
  double warm_inertia_growth = 1.5;
  /// Optional cross-step centroid cache (nullptr = cold every call).
  ClusteringCache* cache = nullptr;
};

/// Options for rp_clustering.
struct RpClusteringOptions {
  std::size_t clusters = 8;
  bool balanced = true;           ///< cap clusters at ceil(points/clusters)
  std::uint64_t seed = 42;
  std::size_t train_subsample = 2048;  ///< points used for Lloyd iterations
  /// Relative weight of the spatial features (0 disables them; 1 makes
  /// coordinate variance comparable to total pattern variance).
  double spatial_weight = 0.75;
  ClusteringAccel accel;  ///< coreset/pruned/warm-start training accel
};

/// Cluster grid points by access pattern (plus optional weighted
/// coordinates). `xs`/`ys` must be empty or hold one coordinate per point.
ClusterAssignment rp_clustering(const PatternField& patterns,
                                std::span<const double> xs,
                                std::span<const double> ys,
                                const RpClusteringOptions& options);

/// Tile-granular RP-CLUSTERING — the production mapping used by
/// Predictive-RP. The grid is cut into warp-shaped tiles (tile_w × tile_h
/// = warp_size points); access patterns vary smoothly in space, so a
/// tile's points share a near-identical pattern. k-means then clusters
/// *tiles* by their mean pattern; a thread block is a cluster of tiles,
/// each warp is one spatially-compact tile. This keeps the per-block
/// merged partition tight (pattern-similar members) *and* makes lane
/// addresses adjacent (coalescing + L1 reuse) — the two wins the paper's
/// computation-to-thread mapping targets.
struct TiledClusteringOptions {
  std::size_t clusters = 8;        ///< m — thread blocks
  std::uint32_t tile_w = 8;        ///< tile width  (points along s)
  std::uint32_t tile_h = 4;        ///< tile height (points along y)
  std::uint64_t seed = 42;
  std::size_t train_subsample = 2048;
  std::size_t max_tiles_per_cluster = 32;  ///< 32 warps = 1024 threads
  /// Weight of the tile-center coordinates in the clustering features.
  /// Spatially-adjacent tiles share stencil rows (the inner window spans
  /// several cells), so compact clusters turn pattern similarity into
  /// actual L1 sharing between co-resident warps.
  double spatial_weight = 1.0;
  ClusteringAccel accel;  ///< coreset/pruned/warm-start training accel
};
ClusterAssignment rp_clustering_tiled(const PatternField& patterns,
                                      const beam::GridSpec& spec,
                                      const TiledClusteringOptions& options);

/// Trivial clustering used by bootstrap steps and baselines: consecutive
/// row-major chunks of `chunk` points.
ClusterAssignment chunk_clustering(std::size_t points, std::size_t chunk);

/// Clustering from an explicit point ordering: consecutive chunks of the
/// permutation (the Heuristic-RP mapping).
ClusterAssignment ordered_clustering(
    const std::vector<std::uint32_t>& ordering, std::size_t chunk);

}  // namespace bd::core
