#include "core/predictive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/rp_kernels.hpp"
#include "quad/partition.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/parallel.hpp"
#include "util/serialize.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace bd::core {

namespace telemetry = util::telemetry;

namespace {
constexpr std::size_t kFeatureDim = 3;  // (x, y, t)

/// Mean absolute error between the forecast and observed pattern fields.
double pattern_mae(const PatternField& predicted,
                   const PatternField& observed) {
  const auto p = predicted.flat();
  const auto o = observed.flat();
  if (p.size() != o.size() || p.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) sum += std::abs(p[i] - o[i]);
  return sum / static_cast<double>(p.size());
}
}  // namespace

PredictiveSolver::PredictiveSolver(simt::DeviceSpec device,
                                   PredictiveOptions options)
    : device_(std::move(device)), options_(options) {
  BD_CHECK_MSG(options_.training_stride >= 1,
               "PredictiveOptions.training_stride must be >= 1, got "
                   << options_.training_stride);
  BD_CHECK_MSG(options_.training_window >= 1,
               "PredictiveOptions.training_window must be >= 1, got "
                   << options_.training_window);
  BD_CHECK_MSG(options_.tile_w >= 1,
               "PredictiveOptions.tile_w must be >= 1, got "
                   << options_.tile_w);
  BD_CHECK_MSG(options_.tile_h >= 1,
               "PredictiveOptions.tile_h must be >= 1, got "
                   << options_.tile_h);
  BD_CHECK_MSG(options_.observation_ema > 0.0 &&
                   options_.observation_ema <= 1.0,
               "PredictiveOptions.observation_ema must be in (0, 1], got "
                   << options_.observation_ema);
}

void PredictiveSolver::reset() {
  predictor_.reset();
  previous_partitions_.clear();
  smoothed_ = PatternField{};
}

SolveResult PredictiveSolver::solve(const RpProblem& problem) {
  if (!trained()) return solve_bootstrap(problem);
  return solve_predictive(problem);
}

SolveResult PredictiveSolver::solve_bootstrap(const RpProblem& problem) {
  util::WallTimer wall;

  const std::vector<double> coarse = pattern_to_partition(
      std::vector<double>(problem.num_subregions, 1.0), problem.sub_width,
      problem.r_max(), /*headroom=*/1.0);
  std::vector<std::vector<double>> point_partitions(problem.num_points(),
                                                    coarse);
  const ClusterAssignment blocks =
      chunk_clustering(problem.num_points(), 128);

  RpKernelInput input;
  input.problem = &problem;
  input.clusters = &blocks;
  input.source = PartitionSource::kPerPoint;
  input.point_partitions = &point_partitions;

  RpKernelOutput kernel1 = run_compute_rp_integral(device_, input);
  const FallbackOutput kernel2 = run_adaptive_fallback(
      device_, problem, kernel1.failed, kernel1.integral, kernel1.error,
      kernel1.contributions);

  simt::KernelMetrics metrics = kernel1.metrics;
  metrics += kernel2.metrics;

  double train_seconds = 0.0;
  {
    telemetry::TraceSpan span("predictive.learn", "core");
    learn(problem, kernel1.contributions, train_seconds);
  }

  SolveResult result = detail::make_result(
      problem, std::move(kernel1.integral), std::move(kernel1.error),
      std::move(kernel1.contributions), std::move(metrics));
  result.fallback_items = kernel1.failed.size();
  result.kernel_intervals = kernel1.intervals;
  result.train_seconds = train_seconds;
  result.wall_seconds = wall.seconds();
  return result;
}

PatternField PredictiveSolver::forecast(const RpProblem& problem) const {
  BD_CHECK_MSG(predictor_ && predictor_->ready(),
               "forecast requires a trained predictor");
  const std::size_t num_points = problem.num_points();
  PatternField predicted(num_points, problem.num_subregions);
  // The paper parallelizes this per-point loop on the host (§IV-A);
  // predict_into is const and reentrant, and each point writes only its
  // own pattern row — bit-identical for any thread count.
  util::parallel_for(0, num_points, [&](std::size_t p) {
    if (p == 0 && util::faultinject::enabled() &&
        util::faultinject::fire(util::faultinject::FaultClass::kPoolThrow,
                                problem.step)) {
      throw std::runtime_error("fault injected: pool job failure in forecast");
    }
    double features[kFeatureDim];
    problem.point_coords(p, features[0], features[1]);
    features[2] = static_cast<double>(problem.step);
    predictor_->predict_into(std::span<const double>(features, kFeatureDim),
                             predicted.at(p));
  });
  return predicted;
}

SolveResult PredictiveSolver::solve_predictive(const RpProblem& problem) {
  util::WallTimer wall;
  const std::size_t num_points = problem.num_points();

  telemetry::TraceSession& session = telemetry::TraceSession::global();

  // (1) + (2): forecast patterns, build per-point partitions.
  util::WallTimer forecast_timer;
  const double forecast_start = session.enabled() ? session.now_us() : 0.0;
  PatternField predicted = forecast(problem);

  if (util::faultinject::enabled()) {
    if (auto inj = util::faultinject::fire(
            util::faultinject::FaultClass::kForecastCorrupt, problem.step)) {
      // Scramble a deterministic 3/4 of the forecast: alternate NaNs and
      // absurd magnitudes, exactly what a poisoned model would emit.
      auto flat = predicted.flat();
      for (std::size_t i = 0; i < flat.size(); ++i) {
        if (i % 4 == 3) continue;
        flat[i] = (i % 2 == 0) ? std::numeric_limits<double>::quiet_NaN()
                               : 1e18;
      }
    }
  }

  // Hint-boundary sanitizer (always on): the forecast is a performance
  // hint, so a non-finite / negative / absurd prediction must never reach
  // partition building — round_pow2 of a huge value is UB on the uint cast.
  // Rewritten values fall back to "one interval", the coarse bootstrap
  // density; the adaptive fallback still guarantees τ.
  std::uint64_t sanitized = 0;
  for (double& v : predicted.flat()) {
    if (!std::isfinite(v) || v < 0.0 || v > 1e6) {
      v = 1.0;
      ++sanitized;
    }
  }
  if (sanitized > 0) {
    telemetry::counter_add("predictive.forecast_sanitized", sanitized);
  }

  std::vector<std::vector<double>> point_partitions(num_points);
  const bool use_adaptive =
      options_.transform == PartitionTransform::kAdaptive &&
      previous_partitions_.size() == num_points;
  util::parallel_for(0, num_points, [&](std::size_t p) {
    point_partitions[p] =
        use_adaptive
            ? pattern_to_partition_adaptive(predicted.at(p),
                                            previous_partitions_[p],
                                            problem.sub_width,
                                            problem.r_max())
            : pattern_to_partition(predicted.at(p), problem.sub_width,
                                   problem.r_max());
  });
  const double forecast_seconds = forecast_timer.seconds();
  if (session.enabled()) {
    session.record_complete("predictive.forecast", "core", forecast_start,
                            session.now_us() - forecast_start, "");
  }

  // (3) RP-CLUSTERING on the forecast patterns. Cluster count: the paper
  // uses m = max(N_X, N_Y); our default sizes clusters to fill an SM's
  // resident warps (~512 points) so the co-resident warps that share the
  // L1 all come from one pattern-similar cluster. Set options_.clusters
  // to max(N_X, N_Y) to reproduce the paper's choice (ablated in
  // bench_ablation).
  util::WallTimer cluster_timer;
  const double cluster_start = session.enabled() ? session.now_us() : 0.0;
  const beam::GridSpec& spec = problem.grid();
  const std::size_t auto_m = std::clamp<std::size_t>(
      num_points / (device_.resident_warps_per_sm * device_.warp_size), 4,
      1024);
  const std::size_t m = options_.clusters ? options_.clusters : auto_m;
  ClusterAssignment clusters;
  if (options_.tiled) {
    TiledClusteringOptions tiled_options;
    tiled_options.clusters = std::min(m, num_points);
    tiled_options.tile_w = options_.tile_w;
    tiled_options.tile_h = options_.tile_h;
    tiled_options.seed = options_.cluster_seed;
    clusters = rp_clustering_tiled(predicted, spec, tiled_options);
  } else {
    std::vector<double> coord_x(num_points), coord_y(num_points);
    for (std::size_t p = 0; p < num_points; ++p) {
      problem.point_coords(p, coord_x[p], coord_y[p]);
    }
    RpClusteringOptions cluster_options;
    cluster_options.clusters = std::min(m, num_points);
    cluster_options.balanced = options_.balanced_clusters;
    cluster_options.seed = options_.cluster_seed;
    cluster_options.spatial_weight = options_.spatial_weight;
    clusters = rp_clustering(predicted, coord_x, coord_y, cluster_options);
  }

  // MERGE-LISTS: a shared partition per warp (default) or per cluster.
  // Warp granularity keeps control flow lockstep exactly where SIMD
  // hardware needs it while evaluating barely more intervals than the
  // members individually require.
  std::vector<std::vector<double>> shared;
  const std::size_t warp = device_.warp_size;
  for (std::size_t c = 0; c < clusters.members.size(); ++c) {
    const auto& members = clusters.members[c];
    if (options_.merge_per_warp) {
      for (std::size_t lo = 0; lo < members.size(); lo += warp) {
        const std::size_t hi = std::min(members.size(), lo + warp);
        std::vector<double> merged;
        for (std::size_t i = lo; i < hi; ++i) {
          merged = merged.empty()
                       ? point_partitions[members[i]]
                       : quad::merge_partitions(merged,
                                                point_partitions[members[i]]);
        }
        for (std::size_t i = lo; i < hi; ++i) {
          point_partitions[members[i]] = merged;
        }
      }
    } else {
      std::vector<double> merged;
      for (std::uint32_t p : members) {
        merged = merged.empty()
                     ? point_partitions[p]
                     : quad::merge_partitions(merged, point_partitions[p]);
      }
      shared.push_back(std::move(merged));
    }
  }
  const double clustering_seconds = cluster_timer.seconds();
  if (session.enabled()) {
    session.record_complete("predictive.cluster_merge", "core", cluster_start,
                            session.now_us() - cluster_start, "");
  }
  // Cluster balance + k-means convergence metrics (RP-CLUSTERING quality).
  telemetry::histogram_record("predictive.kmeans_iterations",
                              static_cast<double>(clusters.kmeans_iterations));
  telemetry::gauge_set("predictive.cluster_inertia", clusters.inertia);
  telemetry::gauge_set("predictive.max_cluster_size",
                       static_cast<double>(clusters.max_cluster_size));

  // (4) COMPUTE-RP-INTEGRAL with uniform per-warp/per-block control flow.
  RpKernelInput input;
  input.problem = &problem;
  input.clusters = &clusters;
  if (options_.merge_per_warp) {
    input.source = PartitionSource::kPerPoint;
    input.point_partitions = &point_partitions;
  } else {
    input.source = PartitionSource::kSharedPerCluster;
    input.shared_partitions = &shared;
  }
  RpKernelOutput kernel1 = run_compute_rp_integral(device_, input);

  // (5) adaptive fallback for intervals that missed τ.
  const FallbackOutput kernel2 = run_adaptive_fallback(
      device_, problem, kernel1.failed, kernel1.integral, kernel1.error,
      kernel1.contributions);

  simt::KernelMetrics metrics = kernel1.metrics;
  metrics += kernel2.metrics;

  // Forecast quality: how far the predicted access pattern was from the
  // observed one (fallback contributions included).
  const double forecast_mae = pattern_mae(predicted, kernel1.contributions);
  telemetry::gauge_set("predictive.forecast_mae", forecast_mae);

  // Remember per-point partitions for the adaptive transform.
  if (options_.transform == PartitionTransform::kAdaptive) {
    previous_partitions_ = std::move(point_partitions);
  }

  // (6) ONLINE-LEARNING on the observed patterns.
  double train_seconds = 0.0;
  {
    telemetry::TraceSpan span("predictive.learn", "core");
    learn(problem, kernel1.contributions, train_seconds);
  }

  SolveResult result = detail::make_result(
      problem, std::move(kernel1.integral), std::move(kernel1.error),
      std::move(kernel1.contributions), std::move(metrics));
  result.fallback_items = kernel1.failed.size();
  result.kernel_intervals = kernel1.intervals;
  result.forecast_mae = forecast_mae;
  result.sanitized_forecasts = sanitized;
  result.clustering_seconds = clustering_seconds;
  result.forecast_seconds = forecast_seconds;
  result.train_seconds = train_seconds;
  result.wall_seconds = wall.seconds();
  return result;
}

void PredictiveSolver::save_state(util::BinaryWriter& out) const {
  out.write_bool(predictor_ != nullptr);
  if (predictor_) {
    out.write_u64(predictor_->target_dim());
    predictor_->save(out);
  }
  util::write_nested_f64(out, previous_partitions_);
  out.write_u64(smoothed_.points());
  out.write_u64(smoothed_.subregions());
  out.write_f64_span(smoothed_.flat());
}

void PredictiveSolver::load_state(util::BinaryReader& in) {
  if (in.read_bool()) {
    const std::uint64_t target_dim = in.read_u64();
    BD_CHECK_MSG(target_dim > 0, "corrupt predictor target dim");
    predictor_ = std::make_unique<ml::OnlinePredictor>(
        options_.predictor, kFeatureDim, target_dim, options_.training_window,
        options_.knn, options_.ridge);
    predictor_->load(in);
  } else {
    predictor_.reset();
  }
  previous_partitions_ = util::read_nested_f64(in);
  const std::uint64_t points = in.read_u64();
  const std::uint64_t subregions = in.read_u64();
  smoothed_ = PatternField(points, subregions);
  in.read_f64_into(smoothed_.flat());
}

void PredictiveSolver::learn(const RpProblem& problem,
                             const PatternField& observed,
                             double& train_seconds) {
  const std::size_t num_points = problem.num_points();
  const std::size_t stride = options_.training_stride;
  const std::size_t examples = (num_points + stride - 1) / stride;

  // EMA-smooth the observations (damps refine/coarsen oscillation).
  const double alpha = std::clamp(options_.observation_ema, 0.0, 1.0);
  if (smoothed_.points() != num_points ||
      smoothed_.subregions() != problem.num_subregions) {
    smoothed_ = observed;
  } else {
    auto s = smoothed_.flat();
    const auto o = observed.flat();
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = alpha * o[i] + (1.0 - alpha) * s[i];
    }
  }

  if (!predictor_ || predictor_->target_dim() != problem.num_subregions) {
    predictor_ = std::make_unique<ml::OnlinePredictor>(
        options_.predictor, kFeatureDim, problem.num_subregions,
        options_.training_window, options_.knn, options_.ridge);
  }

  std::vector<double> features;
  std::vector<double> targets;
  features.reserve(examples * kFeatureDim);
  targets.reserve(examples * problem.num_subregions);
  for (std::size_t p = 0; p < num_points; p += stride) {
    double x = 0.0, y = 0.0;
    problem.point_coords(p, x, y);
    features.push_back(x);
    features.push_back(y);
    features.push_back(static_cast<double>(problem.step));
    const auto obs = smoothed_.at(p);
    targets.insert(targets.end(), obs.begin(), obs.end());
  }
  predictor_->observe_step(features, targets, examples);
  train_seconds = predictor_->last_train_seconds();
}

}  // namespace bd::core
