#include "core/predictive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/rp_kernels.hpp"
#include "core/solver_scratch.hpp"
#include "quad/partition.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/parallel.hpp"
#include "util/serialize.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace bd::core {

namespace telemetry = util::telemetry;

namespace {
constexpr std::size_t kFeatureDim = 3;  // (x, y, t)

/// Mean absolute error between the forecast and observed pattern fields.
double pattern_mae(const PatternField& predicted,
                   const PatternField& observed) {
  const auto p = predicted.flat();
  const auto o = observed.flat();
  if (p.size() != o.size() || p.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) sum += std::abs(p[i] - o[i]);
  return sum / static_cast<double>(p.size());
}
}  // namespace

PredictiveSolver::PredictiveSolver(simt::DeviceSpec device,
                                   PredictiveOptions options)
    : device_(std::move(device)), options_(options) {
  BD_CHECK_MSG(options_.training_stride >= 1,
               "PredictiveOptions.training_stride must be >= 1, got "
                   << options_.training_stride);
  BD_CHECK_MSG(options_.training_window >= 1,
               "PredictiveOptions.training_window must be >= 1, got "
                   << options_.training_window);
  BD_CHECK_MSG(options_.tile_w >= 1,
               "PredictiveOptions.tile_w must be >= 1, got "
                   << options_.tile_w);
  BD_CHECK_MSG(options_.tile_h >= 1,
               "PredictiveOptions.tile_h must be >= 1, got "
                   << options_.tile_h);
  BD_CHECK_MSG(options_.observation_ema > 0.0 &&
                   options_.observation_ema <= 1.0,
               "PredictiveOptions.observation_ema must be in (0, 1], got "
                   << options_.observation_ema);
  BD_CHECK_MSG(options_.warm_inertia_growth >= 1.0,
               "PredictiveOptions.warm_inertia_growth must be >= 1, got "
                   << options_.warm_inertia_growth);
}

void PredictiveSolver::reset() {
  predictor_.reset();
  previous_partitions_.clear();
  smoothed_ = PatternField{};
  cluster_cache_.clear();
  warm_start_hits_ = 0;
}

namespace {

/// MERGE-LISTS fold over a member range: merge the members' partitions into
/// one list using the scratch ping/pong buffers, append it as a row of
/// `out` and return the row id. The fold order (and therefore every
/// rounding decision) matches the historical pairwise merge_partitions
/// chain exactly.
std::size_t fold_merge_row(const quad::PartitionSet& parts,
                           std::span<const std::uint32_t> members,
                           SolverScratch& scratch, quad::PartitionSet& out) {
  if (members.empty()) return out.add_row({});
  std::span<const double> acc = parts.at(members[0]);
  std::vector<double>* front = &scratch.merge_a;
  std::vector<double>* spare = &scratch.merge_b;
  for (std::size_t i = 1; i < members.size(); ++i) {
    quad::merge_partitions_into(acc, parts.at(members[i]), *front);
    acc = *front;
    std::swap(front, spare);
  }
  return out.add_row(acc);
}

}  // namespace

SolveResult PredictiveSolver::solve(const RpProblem& problem) {
  if (!trained()) return solve_bootstrap(problem);
  return solve_predictive(problem);
}

SolveResult PredictiveSolver::solve_bootstrap(const RpProblem& problem) {
  util::WallTimer wall;
  SolverScratch& scratch = scratch_for(problem);

  // Single coarse row (one interval per subregion) aliased by every point.
  const auto ones = scratch.acquire_fill(scratch.ones,
                                         problem.num_subregions, 1.0);
  quad::PartitionSet& parts = scratch.point_partitions;
  parts.reset(problem.num_points());
  const auto slot = scratch.acquire(
      scratch.merge_a, pattern_to_partition_bound(ones, /*headroom=*/1.0));
  const std::size_t len = pattern_to_partition_into(
      ones, problem.sub_width, problem.r_max(), slot, /*headroom=*/1.0);
  parts.bind_all(parts.add_row(slot.first(len)));

  const ClusterAssignment blocks =
      chunk_clustering(problem.num_points(), 128);

  RpKernelInput input;
  input.problem = &problem;
  input.clusters = &blocks;
  input.source = PartitionSource::kPerPoint;
  input.partitions = &parts;

  RpKernelOutput kernel1 = run_compute_rp_integral(device_, input, scratch);
  const FallbackOutput kernel2 = run_adaptive_fallback(
      device_, problem, kernel1.failed, kernel1.integral, kernel1.error,
      kernel1.contributions, scratch);

  simt::KernelMetrics metrics = kernel1.metrics;
  metrics += kernel2.metrics;

  double train_seconds = 0.0;
  {
    telemetry::TraceSpan span("predictive.learn", "core");
    learn(problem, kernel1.contributions, train_seconds);
  }
  scratch.flush_metrics();

  SolveResult result = detail::make_result(
      problem, std::move(kernel1.integral), std::move(kernel1.error),
      std::move(kernel1.contributions), std::move(metrics));
  result.fallback_items = kernel1.failed.size();
  result.kernel_intervals = kernel1.intervals;
  result.train_seconds = train_seconds;
  result.wall_seconds = wall.seconds();
  return result;
}

PatternField PredictiveSolver::forecast(const RpProblem& problem) const {
  BD_CHECK_MSG(predictor_ && predictor_->ready(),
               "forecast requires a trained predictor");
  const std::size_t num_points = problem.num_points();
  PatternField predicted(num_points, problem.num_subregions);
  // The paper parallelizes this per-point loop on the host (§IV-A);
  // predict_into is const and reentrant, and each point writes only its
  // own pattern row — bit-identical for any thread count.
  util::parallel_for(0, num_points, [&](std::size_t p) {
    if (p == 0 && util::faultinject::enabled() &&
        util::faultinject::fire(util::faultinject::FaultClass::kPoolThrow,
                                problem.step)) {
      throw std::runtime_error("fault injected: pool job failure in forecast");
    }
    double features[kFeatureDim];
    problem.point_coords(p, features[0], features[1]);
    features[2] = static_cast<double>(problem.step);
    predictor_->predict_into(std::span<const double>(features, kFeatureDim),
                             predicted.at(p));
  });
  return predicted;
}

SolveResult PredictiveSolver::solve_predictive(const RpProblem& problem) {
  util::WallTimer wall;
  SolverScratch& scratch = scratch_for(problem);
  const std::size_t num_points = problem.num_points();

  telemetry::TraceSession& session = telemetry::current_trace();

  // (1) + (2): forecast patterns, build per-point partitions.
  util::WallTimer forecast_timer;
  const double forecast_start = session.enabled() ? session.now_us() : 0.0;
  PatternField predicted = forecast(problem);

  if (util::faultinject::enabled()) {
    if (auto inj = util::faultinject::fire(
            util::faultinject::FaultClass::kForecastCorrupt, problem.step)) {
      // Scramble a deterministic 3/4 of the forecast: alternate NaNs and
      // absurd magnitudes, exactly what a poisoned model would emit.
      auto flat = predicted.flat();
      for (std::size_t i = 0; i < flat.size(); ++i) {
        if (i % 4 == 3) continue;
        flat[i] = (i % 2 == 0) ? std::numeric_limits<double>::quiet_NaN()
                               : 1e18;
      }
    }
  }

  // Hint-boundary sanitizer (always on): the forecast is a performance
  // hint, so a non-finite / negative / absurd prediction must never reach
  // partition building — round_pow2 of a huge value is UB on the uint cast.
  // Rewritten values fall back to "one interval", the coarse bootstrap
  // density; the adaptive fallback still guarantees τ.
  std::uint64_t sanitized = 0;
  for (double& v : predicted.flat()) {
    if (!std::isfinite(v) || v < 0.0 || v > 1e6) {
      v = 1.0;
      ++sanitized;
    }
  }
  if (sanitized > 0) {
    telemetry::counter_add("predictive.forecast_sanitized", sanitized);
  }

  // Per-point partitions into the step-persistent PartitionSet: a serial
  // layout pass over per-row bounds, then an allocation-free parallel fill.
  quad::PartitionSet& parts = scratch.point_partitions;
  parts.reset(num_points);
  const bool use_adaptive =
      options_.transform == PartitionTransform::kAdaptive &&
      previous_partitions_.entries() == num_points;
  const auto caps = scratch.acquire(scratch.row_caps, num_points);
  util::parallel_for(0, num_points, [&](std::size_t p) {
    caps[p] = use_adaptive
                  ? pattern_to_partition_adaptive_bound(
                        predicted.at(p), previous_partitions_.at(p),
                        problem.sub_width, problem.r_max())
                  : pattern_to_partition_bound(predicted.at(p));
  });
  parts.layout_rows(caps);
  util::parallel_for(0, num_points, [&](std::size_t p) {
    const std::span<double> slot = parts.row_slot(p);
    const std::size_t len =
        use_adaptive
            ? pattern_to_partition_adaptive_into(
                  predicted.at(p), previous_partitions_.at(p),
                  problem.sub_width, problem.r_max(), slot)
            : pattern_to_partition_into(predicted.at(p), problem.sub_width,
                                        problem.r_max(), slot);
    parts.set_row_length(p, len);
  });
  const double forecast_seconds = forecast_timer.seconds();
  if (session.enabled()) {
    session.record_complete("predictive.forecast", "core", forecast_start,
                            session.now_us() - forecast_start, "");
  }

  // (3) RP-CLUSTERING on the forecast patterns. Cluster count: the paper
  // uses m = max(N_X, N_Y); our default sizes clusters to fill an SM's
  // resident warps (~512 points) so the co-resident warps that share the
  // L1 all come from one pattern-similar cluster. Set options_.clusters
  // to max(N_X, N_Y) to reproduce the paper's choice (ablated in
  // bench_ablation).
  util::WallTimer cluster_timer;
  const double cluster_start = session.enabled() ? session.now_us() : 0.0;
  const beam::GridSpec& spec = problem.grid();
  const std::size_t auto_m = std::clamp<std::size_t>(
      num_points / (device_.resident_warps_per_sm * device_.warp_size), 4,
      1024);
  const std::size_t m = options_.clusters ? options_.clusters : auto_m;
  ClusteringAccel accel;
  accel.enabled = options_.cluster_accel;
  accel.coreset_size = options_.coreset_size;
  accel.warm_inertia_growth = options_.warm_inertia_growth;
  accel.cache = &cluster_cache_;
  ClusterAssignment clusters;
  if (options_.tiled) {
    TiledClusteringOptions tiled_options;
    tiled_options.clusters = std::min(m, num_points);
    tiled_options.tile_w = options_.tile_w;
    tiled_options.tile_h = options_.tile_h;
    tiled_options.seed = options_.cluster_seed;
    tiled_options.accel = accel;
    clusters = rp_clustering_tiled(predicted, spec, tiled_options);
  } else {
    std::vector<double> coord_x(num_points), coord_y(num_points);
    for (std::size_t p = 0; p < num_points; ++p) {
      problem.point_coords(p, coord_x[p], coord_y[p]);
    }
    RpClusteringOptions cluster_options;
    cluster_options.clusters = std::min(m, num_points);
    cluster_options.balanced = options_.balanced_clusters;
    cluster_options.seed = options_.cluster_seed;
    cluster_options.spatial_weight = options_.spatial_weight;
    cluster_options.accel = accel;
    clusters = rp_clustering(predicted, coord_x, coord_y, cluster_options);
  }
  if (clusters.warm_started) ++warm_start_hits_;

  // MERGE-LISTS: a shared partition per warp (default) or per cluster.
  // Warp granularity keeps control flow lockstep exactly where SIMD
  // hardware needs it while evaluating barely more intervals than the
  // members individually require. Each merged list is stored once as a
  // PartitionSet row and aliased by every member entry.
  quad::PartitionSet& merged = scratch.merged;
  const std::size_t warp = device_.warp_size;
  if (options_.merge_per_warp) {
    merged.reset(num_points);
    // A merged row never exceeds the Σ of its inputs: one reserve bounds
    // the whole fold (no add_row growth cascade on record-sized steps).
    merged.reserve_breaks(parts.used());
    for (std::size_t c = 0; c < clusters.members.size(); ++c) {
      const auto& members = clusters.members[c];
      for (std::size_t lo = 0; lo < members.size(); lo += warp) {
        const std::size_t hi = std::min(members.size(), lo + warp);
        const std::span<const std::uint32_t> group(members.data() + lo,
                                                   hi - lo);
        const std::size_t row = fold_merge_row(parts, group, scratch, merged);
        for (std::uint32_t p : group) merged.bind(p, row);
      }
    }
  } else {
    merged.reset(clusters.members.size());
    merged.reserve_breaks(parts.used());
    for (std::size_t c = 0; c < clusters.members.size(); ++c) {
      merged.bind(c, fold_merge_row(parts, clusters.members[c], scratch,
                                    merged));
    }
  }
  const double clustering_seconds = cluster_timer.seconds();
  if (session.enabled()) {
    session.record_complete("predictive.cluster_merge", "core", cluster_start,
                            session.now_us() - cluster_start, "");
  }
  // Cluster balance + k-means convergence metrics (RP-CLUSTERING quality).
  telemetry::histogram_record("predictive.kmeans_iterations",
                              static_cast<double>(clusters.kmeans_iterations));
  telemetry::gauge_set("predictive.cluster_inertia", clusters.inertia);
  telemetry::gauge_set("predictive.max_cluster_size",
                       static_cast<double>(clusters.max_cluster_size));
  telemetry::gauge_set("predictive.coreset_size",
                       static_cast<double>(clusters.coreset_size));
  telemetry::gauge_set("predictive.warm_start_hits",
                       static_cast<double>(warm_start_hits_));

  // (4) COMPUTE-RP-INTEGRAL with uniform per-warp/per-block control flow.
  RpKernelInput input;
  input.problem = &problem;
  input.clusters = &clusters;
  input.source = options_.merge_per_warp ? PartitionSource::kPerPoint
                                         : PartitionSource::kSharedPerCluster;
  input.partitions = &merged;
  RpKernelOutput kernel1 = run_compute_rp_integral(device_, input, scratch);

  // (5) adaptive fallback for intervals that missed τ.
  const FallbackOutput kernel2 = run_adaptive_fallback(
      device_, problem, kernel1.failed, kernel1.integral, kernel1.error,
      kernel1.contributions, scratch);

  simt::KernelMetrics metrics = kernel1.metrics;
  metrics += kernel2.metrics;

  // Forecast quality: how far the predicted access pattern was from the
  // observed one (fallback contributions included).
  const double forecast_mae = pattern_mae(predicted, kernel1.contributions);
  telemetry::gauge_set("predictive.forecast_mae", forecast_mae);

  // Remember per-point partitions for the adaptive transform: the
  // warp-merged lists each member actually walked (per-warp mode), or the
  // unmerged per-point partitions (per-cluster mode) — exactly what the
  // vector-based path stored.
  if (options_.transform == PartitionTransform::kAdaptive) {
    previous_partitions_.copy_from(options_.merge_per_warp
                                       ? scratch.merged
                                       : scratch.point_partitions);
    scratch.absorb(previous_partitions_);
  }

  // (6) ONLINE-LEARNING on the observed patterns.
  double train_seconds = 0.0;
  {
    telemetry::TraceSpan span("predictive.learn", "core");
    learn(problem, kernel1.contributions, train_seconds);
  }
  scratch.flush_metrics();

  SolveResult result = detail::make_result(
      problem, std::move(kernel1.integral), std::move(kernel1.error),
      std::move(kernel1.contributions), std::move(metrics));
  result.fallback_items = kernel1.failed.size();
  result.kernel_intervals = kernel1.intervals;
  result.forecast_mae = forecast_mae;
  result.sanitized_forecasts = sanitized;
  result.clustering_seconds = clustering_seconds;
  result.forecast_seconds = forecast_seconds;
  result.train_seconds = train_seconds;
  result.wall_seconds = wall.seconds();
  return result;
}

void PredictiveSolver::save_state(util::BinaryWriter& out) const {
  out.write_bool(predictor_ != nullptr);
  if (predictor_) {
    out.write_u64(predictor_->target_dim());
    predictor_->save(out);
  }
  quad::write_partition_set_nested(out, previous_partitions_);
  out.write_u64(smoothed_.points());
  out.write_u64(smoothed_.subregions());
  out.write_f64_span(smoothed_.flat());
  // Warm-start centroid cache: without it a restored solver would cluster
  // cold on its first step and diverge bitwise from the uninterrupted run.
  out.write_u64(cluster_cache_.dim);
  out.write_f64(cluster_cache_.inertia);
  out.write_f64_span(cluster_cache_.centroids);
  out.write_u64(warm_start_hits_);
}

void PredictiveSolver::load_state(util::BinaryReader& in) {
  if (in.read_bool()) {
    const std::uint64_t target_dim = in.read_u64();
    BD_CHECK_MSG(target_dim > 0, "corrupt predictor target dim");
    predictor_ = std::make_unique<ml::OnlinePredictor>(
        options_.predictor, kFeatureDim, target_dim, options_.training_window,
        options_.knn, options_.ridge);
    predictor_->load(in);
  } else {
    predictor_.reset();
  }
  quad::read_partition_set_nested(in, previous_partitions_);
  const std::uint64_t points = in.read_u64();
  const std::uint64_t subregions = in.read_u64();
  smoothed_ = PatternField(points, subregions);
  in.read_f64_into(smoothed_.flat());
  cluster_cache_.dim = in.read_u64();
  cluster_cache_.inertia = in.read_f64();
  cluster_cache_.centroids = in.read_f64_vector();
  BD_CHECK_MSG(cluster_cache_.dim == 0 ||
                   (cluster_cache_.dim > 0 &&
                    cluster_cache_.centroids.size() % cluster_cache_.dim == 0),
               "corrupt clustering cache");
  warm_start_hits_ = in.read_u64();
}

void PredictiveSolver::learn(const RpProblem& problem,
                             const PatternField& observed,
                             double& train_seconds) {
  const std::size_t num_points = problem.num_points();
  const std::size_t stride = options_.training_stride;
  const std::size_t examples = (num_points + stride - 1) / stride;

  // EMA-smooth the observations (damps refine/coarsen oscillation).
  const double alpha = std::clamp(options_.observation_ema, 0.0, 1.0);
  if (smoothed_.points() != num_points ||
      smoothed_.subregions() != problem.num_subregions) {
    smoothed_ = observed;
  } else {
    auto s = smoothed_.flat();
    const auto o = observed.flat();
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = alpha * o[i] + (1.0 - alpha) * s[i];
    }
  }

  if (!predictor_ || predictor_->target_dim() != problem.num_subregions) {
    predictor_ = std::make_unique<ml::OnlinePredictor>(
        options_.predictor, kFeatureDim, problem.num_subregions,
        options_.training_window, options_.knn, options_.ridge);
  }

  std::vector<double> features;
  std::vector<double> targets;
  features.reserve(examples * kFeatureDim);
  targets.reserve(examples * problem.num_subregions);
  for (std::size_t p = 0; p < num_points; p += stride) {
    double x = 0.0, y = 0.0;
    problem.point_coords(p, x, y);
    features.push_back(x);
    features.push_back(y);
    features.push_back(static_cast<double>(problem.step));
    const auto obs = smoothed_.at(p);
    targets.insert(targets.end(), obs.begin(), obs.end());
  }
  predictor_->observe_step(features, targets, examples);
  train_seconds = predictor_->last_train_seconds();
}

}  // namespace bd::core
