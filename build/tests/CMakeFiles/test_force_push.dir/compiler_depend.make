# Empty compiler generated dependencies file for test_force_push.
# This may be replaced when dependencies are built.
