file(REMOVE_RECURSE
  "CMakeFiles/test_force_push.dir/test_force_push.cpp.o"
  "CMakeFiles/test_force_push.dir/test_force_push.cpp.o.d"
  "test_force_push"
  "test_force_push.pdb"
  "test_force_push[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_force_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
