file(REMOVE_RECURSE
  "CMakeFiles/test_particles.dir/test_particles.cpp.o"
  "CMakeFiles/test_particles.dir/test_particles.cpp.o.d"
  "test_particles"
  "test_particles.pdb"
  "test_particles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_particles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
