file(REMOVE_RECURSE
  "CMakeFiles/test_timemodel.dir/test_timemodel.cpp.o"
  "CMakeFiles/test_timemodel.dir/test_timemodel.cpp.o.d"
  "test_timemodel"
  "test_timemodel.pdb"
  "test_timemodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timemodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
