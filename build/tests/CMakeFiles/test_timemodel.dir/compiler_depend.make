# Empty compiler generated dependencies file for test_timemodel.
# This may be replaced when dependencies are built.
