# Empty compiler generated dependencies file for test_simpson.
# This may be replaced when dependencies are built.
