file(REMOVE_RECURSE
  "CMakeFiles/test_simpson.dir/test_simpson.cpp.o"
  "CMakeFiles/test_simpson.dir/test_simpson.cpp.o.d"
  "test_simpson"
  "test_simpson.pdb"
  "test_simpson[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
