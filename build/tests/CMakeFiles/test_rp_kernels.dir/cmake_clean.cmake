file(REMOVE_RECURSE
  "CMakeFiles/test_rp_kernels.dir/test_rp_kernels.cpp.o"
  "CMakeFiles/test_rp_kernels.dir/test_rp_kernels.cpp.o.d"
  "test_rp_kernels"
  "test_rp_kernels.pdb"
  "test_rp_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
