file(REMOVE_RECURSE
  "CMakeFiles/test_deposit.dir/test_deposit.cpp.o"
  "CMakeFiles/test_deposit.dir/test_deposit.cpp.o.d"
  "test_deposit"
  "test_deposit.pdb"
  "test_deposit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deposit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
