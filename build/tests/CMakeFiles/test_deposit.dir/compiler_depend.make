# Empty compiler generated dependencies file for test_deposit.
# This may be replaced when dependencies are built.
