# Empty compiler generated dependencies file for test_wake.
# This may be replaced when dependencies are built.
