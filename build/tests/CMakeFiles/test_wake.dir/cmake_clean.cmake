file(REMOVE_RECURSE
  "CMakeFiles/test_wake.dir/test_wake.cpp.o"
  "CMakeFiles/test_wake.dir/test_wake.cpp.o.d"
  "test_wake"
  "test_wake.pdb"
  "test_wake[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
