file(REMOVE_RECURSE
  "CMakeFiles/test_newton_cotes.dir/test_newton_cotes.cpp.o"
  "CMakeFiles/test_newton_cotes.dir/test_newton_cotes.cpp.o.d"
  "test_newton_cotes"
  "test_newton_cotes.pdb"
  "test_newton_cotes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_newton_cotes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
