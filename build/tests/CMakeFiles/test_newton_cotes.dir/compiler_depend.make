# Empty compiler generated dependencies file for test_newton_cotes.
# This may be replaced when dependencies are built.
