# Empty dependencies file for bd_beam.
# This may be replaced when dependencies are built.
