file(REMOVE_RECURSE
  "CMakeFiles/bd_beam.dir/analytic.cpp.o"
  "CMakeFiles/bd_beam.dir/analytic.cpp.o.d"
  "CMakeFiles/bd_beam.dir/bunch.cpp.o"
  "CMakeFiles/bd_beam.dir/bunch.cpp.o.d"
  "CMakeFiles/bd_beam.dir/deposit.cpp.o"
  "CMakeFiles/bd_beam.dir/deposit.cpp.o.d"
  "CMakeFiles/bd_beam.dir/diagnostics.cpp.o"
  "CMakeFiles/bd_beam.dir/diagnostics.cpp.o.d"
  "CMakeFiles/bd_beam.dir/force.cpp.o"
  "CMakeFiles/bd_beam.dir/force.cpp.o.d"
  "CMakeFiles/bd_beam.dir/grid.cpp.o"
  "CMakeFiles/bd_beam.dir/grid.cpp.o.d"
  "CMakeFiles/bd_beam.dir/history.cpp.o"
  "CMakeFiles/bd_beam.dir/history.cpp.o.d"
  "CMakeFiles/bd_beam.dir/particles.cpp.o"
  "CMakeFiles/bd_beam.dir/particles.cpp.o.d"
  "CMakeFiles/bd_beam.dir/push.cpp.o"
  "CMakeFiles/bd_beam.dir/push.cpp.o.d"
  "CMakeFiles/bd_beam.dir/stencil.cpp.o"
  "CMakeFiles/bd_beam.dir/stencil.cpp.o.d"
  "CMakeFiles/bd_beam.dir/wake.cpp.o"
  "CMakeFiles/bd_beam.dir/wake.cpp.o.d"
  "libbd_beam.a"
  "libbd_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
