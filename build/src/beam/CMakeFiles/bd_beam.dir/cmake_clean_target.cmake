file(REMOVE_RECURSE
  "libbd_beam.a"
)
