
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/beam/analytic.cpp" "src/beam/CMakeFiles/bd_beam.dir/analytic.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/analytic.cpp.o.d"
  "/root/repo/src/beam/bunch.cpp" "src/beam/CMakeFiles/bd_beam.dir/bunch.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/bunch.cpp.o.d"
  "/root/repo/src/beam/deposit.cpp" "src/beam/CMakeFiles/bd_beam.dir/deposit.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/deposit.cpp.o.d"
  "/root/repo/src/beam/diagnostics.cpp" "src/beam/CMakeFiles/bd_beam.dir/diagnostics.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/diagnostics.cpp.o.d"
  "/root/repo/src/beam/force.cpp" "src/beam/CMakeFiles/bd_beam.dir/force.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/force.cpp.o.d"
  "/root/repo/src/beam/grid.cpp" "src/beam/CMakeFiles/bd_beam.dir/grid.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/grid.cpp.o.d"
  "/root/repo/src/beam/history.cpp" "src/beam/CMakeFiles/bd_beam.dir/history.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/history.cpp.o.d"
  "/root/repo/src/beam/particles.cpp" "src/beam/CMakeFiles/bd_beam.dir/particles.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/particles.cpp.o.d"
  "/root/repo/src/beam/push.cpp" "src/beam/CMakeFiles/bd_beam.dir/push.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/push.cpp.o.d"
  "/root/repo/src/beam/stencil.cpp" "src/beam/CMakeFiles/bd_beam.dir/stencil.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/stencil.cpp.o.d"
  "/root/repo/src/beam/wake.cpp" "src/beam/CMakeFiles/bd_beam.dir/wake.cpp.o" "gcc" "src/beam/CMakeFiles/bd_beam.dir/wake.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/bd_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/quad/CMakeFiles/bd_quad.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
