
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_pattern.cpp" "src/core/CMakeFiles/bd_core.dir/access_pattern.cpp.o" "gcc" "src/core/CMakeFiles/bd_core.dir/access_pattern.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/bd_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/bd_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/forecast.cpp" "src/core/CMakeFiles/bd_core.dir/forecast.cpp.o" "gcc" "src/core/CMakeFiles/bd_core.dir/forecast.cpp.o.d"
  "/root/repo/src/core/pattern_io.cpp" "src/core/CMakeFiles/bd_core.dir/pattern_io.cpp.o" "gcc" "src/core/CMakeFiles/bd_core.dir/pattern_io.cpp.o.d"
  "/root/repo/src/core/predictive.cpp" "src/core/CMakeFiles/bd_core.dir/predictive.cpp.o" "gcc" "src/core/CMakeFiles/bd_core.dir/predictive.cpp.o.d"
  "/root/repo/src/core/rp_kernels.cpp" "src/core/CMakeFiles/bd_core.dir/rp_kernels.cpp.o" "gcc" "src/core/CMakeFiles/bd_core.dir/rp_kernels.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/bd_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/bd_core.dir/simulation.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/bd_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/bd_core.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/bd_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/quad/CMakeFiles/bd_quad.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/beam/CMakeFiles/bd_beam.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
