file(REMOVE_RECURSE
  "CMakeFiles/bd_core.dir/access_pattern.cpp.o"
  "CMakeFiles/bd_core.dir/access_pattern.cpp.o.d"
  "CMakeFiles/bd_core.dir/clustering.cpp.o"
  "CMakeFiles/bd_core.dir/clustering.cpp.o.d"
  "CMakeFiles/bd_core.dir/forecast.cpp.o"
  "CMakeFiles/bd_core.dir/forecast.cpp.o.d"
  "CMakeFiles/bd_core.dir/pattern_io.cpp.o"
  "CMakeFiles/bd_core.dir/pattern_io.cpp.o.d"
  "CMakeFiles/bd_core.dir/predictive.cpp.o"
  "CMakeFiles/bd_core.dir/predictive.cpp.o.d"
  "CMakeFiles/bd_core.dir/rp_kernels.cpp.o"
  "CMakeFiles/bd_core.dir/rp_kernels.cpp.o.d"
  "CMakeFiles/bd_core.dir/simulation.cpp.o"
  "CMakeFiles/bd_core.dir/simulation.cpp.o.d"
  "CMakeFiles/bd_core.dir/solver.cpp.o"
  "CMakeFiles/bd_core.dir/solver.cpp.o.d"
  "libbd_core.a"
  "libbd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
