file(REMOVE_RECURSE
  "libbd_baselines.a"
)
