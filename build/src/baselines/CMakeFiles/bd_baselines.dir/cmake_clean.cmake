file(REMOVE_RECURSE
  "CMakeFiles/bd_baselines.dir/heuristic.cpp.o"
  "CMakeFiles/bd_baselines.dir/heuristic.cpp.o.d"
  "CMakeFiles/bd_baselines.dir/two_phase.cpp.o"
  "CMakeFiles/bd_baselines.dir/two_phase.cpp.o.d"
  "libbd_baselines.a"
  "libbd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
