# Empty compiler generated dependencies file for bd_baselines.
# This may be replaced when dependencies are built.
