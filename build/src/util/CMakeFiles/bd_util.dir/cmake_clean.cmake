file(REMOVE_RECURSE
  "CMakeFiles/bd_util.dir/cli.cpp.o"
  "CMakeFiles/bd_util.dir/cli.cpp.o.d"
  "CMakeFiles/bd_util.dir/csv.cpp.o"
  "CMakeFiles/bd_util.dir/csv.cpp.o.d"
  "CMakeFiles/bd_util.dir/log.cpp.o"
  "CMakeFiles/bd_util.dir/log.cpp.o.d"
  "CMakeFiles/bd_util.dir/rng.cpp.o"
  "CMakeFiles/bd_util.dir/rng.cpp.o.d"
  "CMakeFiles/bd_util.dir/stats.cpp.o"
  "CMakeFiles/bd_util.dir/stats.cpp.o.d"
  "CMakeFiles/bd_util.dir/table.cpp.o"
  "CMakeFiles/bd_util.dir/table.cpp.o.d"
  "libbd_util.a"
  "libbd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
