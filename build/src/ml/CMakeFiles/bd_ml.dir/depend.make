# Empty dependencies file for bd_ml.
# This may be replaced when dependencies are built.
