file(REMOVE_RECURSE
  "libbd_ml.a"
)
