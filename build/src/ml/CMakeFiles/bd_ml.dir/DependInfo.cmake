
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/bd_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/bd_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/kdtree.cpp" "src/ml/CMakeFiles/bd_ml.dir/kdtree.cpp.o" "gcc" "src/ml/CMakeFiles/bd_ml.dir/kdtree.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/bd_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/bd_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/bd_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/bd_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/bd_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/bd_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/linreg.cpp" "src/ml/CMakeFiles/bd_ml.dir/linreg.cpp.o" "gcc" "src/ml/CMakeFiles/bd_ml.dir/linreg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/bd_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/bd_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/online.cpp" "src/ml/CMakeFiles/bd_ml.dir/online.cpp.o" "gcc" "src/ml/CMakeFiles/bd_ml.dir/online.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/bd_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/bd_ml.dir/scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
