file(REMOVE_RECURSE
  "CMakeFiles/bd_ml.dir/dataset.cpp.o"
  "CMakeFiles/bd_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/bd_ml.dir/kdtree.cpp.o"
  "CMakeFiles/bd_ml.dir/kdtree.cpp.o.d"
  "CMakeFiles/bd_ml.dir/kmeans.cpp.o"
  "CMakeFiles/bd_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/bd_ml.dir/knn.cpp.o"
  "CMakeFiles/bd_ml.dir/knn.cpp.o.d"
  "CMakeFiles/bd_ml.dir/linalg.cpp.o"
  "CMakeFiles/bd_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/bd_ml.dir/linreg.cpp.o"
  "CMakeFiles/bd_ml.dir/linreg.cpp.o.d"
  "CMakeFiles/bd_ml.dir/metrics.cpp.o"
  "CMakeFiles/bd_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/bd_ml.dir/online.cpp.o"
  "CMakeFiles/bd_ml.dir/online.cpp.o.d"
  "CMakeFiles/bd_ml.dir/scaler.cpp.o"
  "CMakeFiles/bd_ml.dir/scaler.cpp.o.d"
  "libbd_ml.a"
  "libbd_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
