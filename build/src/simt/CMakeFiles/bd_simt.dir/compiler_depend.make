# Empty compiler generated dependencies file for bd_simt.
# This may be replaced when dependencies are built.
