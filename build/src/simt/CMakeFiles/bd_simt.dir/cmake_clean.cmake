file(REMOVE_RECURSE
  "CMakeFiles/bd_simt.dir/cache.cpp.o"
  "CMakeFiles/bd_simt.dir/cache.cpp.o.d"
  "CMakeFiles/bd_simt.dir/coalescer.cpp.o"
  "CMakeFiles/bd_simt.dir/coalescer.cpp.o.d"
  "CMakeFiles/bd_simt.dir/executor.cpp.o"
  "CMakeFiles/bd_simt.dir/executor.cpp.o.d"
  "CMakeFiles/bd_simt.dir/metrics.cpp.o"
  "CMakeFiles/bd_simt.dir/metrics.cpp.o.d"
  "CMakeFiles/bd_simt.dir/report.cpp.o"
  "CMakeFiles/bd_simt.dir/report.cpp.o.d"
  "CMakeFiles/bd_simt.dir/roofline.cpp.o"
  "CMakeFiles/bd_simt.dir/roofline.cpp.o.d"
  "CMakeFiles/bd_simt.dir/timemodel.cpp.o"
  "CMakeFiles/bd_simt.dir/timemodel.cpp.o.d"
  "CMakeFiles/bd_simt.dir/trace.cpp.o"
  "CMakeFiles/bd_simt.dir/trace.cpp.o.d"
  "CMakeFiles/bd_simt.dir/warp.cpp.o"
  "CMakeFiles/bd_simt.dir/warp.cpp.o.d"
  "libbd_simt.a"
  "libbd_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
