file(REMOVE_RECURSE
  "libbd_simt.a"
)
