
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/cache.cpp" "src/simt/CMakeFiles/bd_simt.dir/cache.cpp.o" "gcc" "src/simt/CMakeFiles/bd_simt.dir/cache.cpp.o.d"
  "/root/repo/src/simt/coalescer.cpp" "src/simt/CMakeFiles/bd_simt.dir/coalescer.cpp.o" "gcc" "src/simt/CMakeFiles/bd_simt.dir/coalescer.cpp.o.d"
  "/root/repo/src/simt/executor.cpp" "src/simt/CMakeFiles/bd_simt.dir/executor.cpp.o" "gcc" "src/simt/CMakeFiles/bd_simt.dir/executor.cpp.o.d"
  "/root/repo/src/simt/metrics.cpp" "src/simt/CMakeFiles/bd_simt.dir/metrics.cpp.o" "gcc" "src/simt/CMakeFiles/bd_simt.dir/metrics.cpp.o.d"
  "/root/repo/src/simt/report.cpp" "src/simt/CMakeFiles/bd_simt.dir/report.cpp.o" "gcc" "src/simt/CMakeFiles/bd_simt.dir/report.cpp.o.d"
  "/root/repo/src/simt/roofline.cpp" "src/simt/CMakeFiles/bd_simt.dir/roofline.cpp.o" "gcc" "src/simt/CMakeFiles/bd_simt.dir/roofline.cpp.o.d"
  "/root/repo/src/simt/timemodel.cpp" "src/simt/CMakeFiles/bd_simt.dir/timemodel.cpp.o" "gcc" "src/simt/CMakeFiles/bd_simt.dir/timemodel.cpp.o.d"
  "/root/repo/src/simt/trace.cpp" "src/simt/CMakeFiles/bd_simt.dir/trace.cpp.o" "gcc" "src/simt/CMakeFiles/bd_simt.dir/trace.cpp.o.d"
  "/root/repo/src/simt/warp.cpp" "src/simt/CMakeFiles/bd_simt.dir/warp.cpp.o" "gcc" "src/simt/CMakeFiles/bd_simt.dir/warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
