# Empty compiler generated dependencies file for bd_quad.
# This may be replaced when dependencies are built.
