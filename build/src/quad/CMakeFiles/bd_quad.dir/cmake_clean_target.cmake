file(REMOVE_RECURSE
  "libbd_quad.a"
)
