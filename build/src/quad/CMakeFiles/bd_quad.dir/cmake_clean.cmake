file(REMOVE_RECURSE
  "CMakeFiles/bd_quad.dir/adaptive.cpp.o"
  "CMakeFiles/bd_quad.dir/adaptive.cpp.o.d"
  "CMakeFiles/bd_quad.dir/gauss.cpp.o"
  "CMakeFiles/bd_quad.dir/gauss.cpp.o.d"
  "CMakeFiles/bd_quad.dir/newton_cotes.cpp.o"
  "CMakeFiles/bd_quad.dir/newton_cotes.cpp.o.d"
  "CMakeFiles/bd_quad.dir/partition.cpp.o"
  "CMakeFiles/bd_quad.dir/partition.cpp.o.d"
  "CMakeFiles/bd_quad.dir/simpson.cpp.o"
  "CMakeFiles/bd_quad.dir/simpson.cpp.o.d"
  "libbd_quad.a"
  "libbd_quad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
