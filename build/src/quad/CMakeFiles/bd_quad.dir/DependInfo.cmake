
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quad/adaptive.cpp" "src/quad/CMakeFiles/bd_quad.dir/adaptive.cpp.o" "gcc" "src/quad/CMakeFiles/bd_quad.dir/adaptive.cpp.o.d"
  "/root/repo/src/quad/gauss.cpp" "src/quad/CMakeFiles/bd_quad.dir/gauss.cpp.o" "gcc" "src/quad/CMakeFiles/bd_quad.dir/gauss.cpp.o.d"
  "/root/repo/src/quad/newton_cotes.cpp" "src/quad/CMakeFiles/bd_quad.dir/newton_cotes.cpp.o" "gcc" "src/quad/CMakeFiles/bd_quad.dir/newton_cotes.cpp.o.d"
  "/root/repo/src/quad/partition.cpp" "src/quad/CMakeFiles/bd_quad.dir/partition.cpp.o" "gcc" "src/quad/CMakeFiles/bd_quad.dir/partition.cpp.o.d"
  "/root/repo/src/quad/simpson.cpp" "src/quad/CMakeFiles/bd_quad.dir/simpson.cpp.o" "gcc" "src/quad/CMakeFiles/bd_quad.dir/simpson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/bd_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
