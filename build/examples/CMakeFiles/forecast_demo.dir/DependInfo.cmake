
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/forecast_demo.cpp" "examples/CMakeFiles/forecast_demo.dir/forecast_demo.cpp.o" "gcc" "examples/CMakeFiles/forecast_demo.dir/forecast_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/beam/CMakeFiles/bd_beam.dir/DependInfo.cmake"
  "/root/repo/build/src/quad/CMakeFiles/bd_quad.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/bd_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
