# Empty dependencies file for lcls_validation.
# This may be replaced when dependencies are built.
