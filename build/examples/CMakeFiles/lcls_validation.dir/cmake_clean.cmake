file(REMOVE_RECURSE
  "CMakeFiles/lcls_validation.dir/lcls_validation.cpp.o"
  "CMakeFiles/lcls_validation.dir/lcls_validation.cpp.o.d"
  "lcls_validation"
  "lcls_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcls_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
