# Empty dependencies file for bench_fig2_validation.
# This may be replaced when dependencies are built.
