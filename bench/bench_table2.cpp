/// Reproduces **Table II** of the paper: performance of the
/// compute-retarded-potentials stage using the Predictive-RP kernel
/// compared against the Heuristic-RP kernel for different simulation
/// configurations (N particles × grid resolution) — GPU time, overall
/// time, clustering time and speedup.
///
/// Times: "GPU" columns are modeled-K40 kernel seconds (per step); host
/// overheads (clustering, training, forecasting) are wall seconds on this
/// machine, as the paper's were on their Xeon host.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bd;
  using bench::measure_solver;

  util::ArgParser args("bench_table2",
                       "Table II: per-configuration timings and speedup");
  args.add_int("warmup", 3, "warm-up steps before measuring");
  args.add_int("measure", 5, "measured steps (averaged)");
  args.add_double("tolerance", 1e-6, "rp-integral tolerance τ");
  args.add_flag("full", "paper-scale: adds 256x256 grid and N = 1e6");
  args.add_string("csv", "table2.csv", "CSV output path");
  if (!args.parse(argc, argv)) return 0;

  std::vector<std::size_t> particle_counts{100000};
  std::vector<std::uint32_t> grids{64};
  if (args.get_flag("full")) {
    particle_counts.push_back(1000000);
    grids.push_back(128);
    grids.push_back(256);
  }

  std::printf("Table II — compute-retarded-potentials stage timings\n");
  util::ConsoleTable table(
      {"N", "grid", "heuristic GPU ms", "predictive GPU ms",
       "clustering ms", "train ms", "predictive overall ms",
       "speedup (GPU)", "speedup (overall)"});
  util::CsvWriter csv(args.get_string("csv"));
  csv.header({"particles", "grid", "heuristic_gpu_ms", "predictive_gpu_ms",
              "clustering_ms", "train_ms", "predictive_overall_ms",
              "speedup_gpu", "speedup_overall"});

  for (std::size_t n : particle_counts) {
    for (std::uint32_t grid : grids) {
      const auto warmup = static_cast<std::size_t>(args.get_int("warmup"));
      const auto measure = static_cast<std::size_t>(args.get_int("measure"));
      const auto config =
          bench::bench_config(grid, n, args.get_double("tolerance"),
                              /*rigid=*/false);
      const auto heuristic =
          measure_solver("heuristic", config, warmup, measure);
      const auto predictive =
          measure_solver("predictive", config, warmup, measure);

      auto per_step = [](double total, std::size_t steps) {
        return total / static_cast<double>(steps) * 1e3;
      };
      const double h_gpu = per_step(heuristic.gpu_seconds, heuristic.steps);
      const double p_gpu =
          per_step(predictive.gpu_seconds, predictive.steps);
      const double p_cluster =
          per_step(predictive.clustering_seconds, predictive.steps);
      const double p_train =
          per_step(predictive.train_seconds, predictive.steps);
      const double h_overall =
          per_step(heuristic.overall_seconds, heuristic.steps);
      const double p_overall =
          per_step(predictive.overall_seconds, predictive.steps);

      table.cell(std::to_string(n))
          .cell(std::to_string(grid) + "x" + std::to_string(grid))
          .cell(h_gpu, 3)
          .cell(p_gpu, 3)
          .cell(p_cluster, 3)
          .cell(p_train, 3)
          .cell(p_overall, 3)
          .cell(h_gpu / p_gpu, 2)
          .cell(h_overall / p_overall, 2);
      table.end_row();
      csv.cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::int64_t>(grid))
          .cell(h_gpu)
          .cell(p_gpu)
          .cell(p_cluster)
          .cell(p_train)
          .cell(p_overall)
          .cell(h_gpu / p_gpu)
          .cell(h_overall / p_overall);
      csv.end_row();
    }
  }
  table.print();
  csv.close();
  std::printf(
      "\npaper shape: Predictive-RP GPU-time speedup grows with grid size\n"
      "(up to ~2.5x); clustering+training overhead stays a modest fraction\n"
      "of the kernel time at the paper's (much longer) per-step scale.\n");
  return 0;
}
