/// Wall-clock scaling of the host-side SIMT executor: one Predictive-RP
/// scenario run at 1/2/4/N pool threads. The dominant cost of every step is
/// lane execution inside COMPUTE-RP-INTEGRAL and the adaptive fallback
/// (executor pass 1), which parallelizes over blocks; forecasting and
/// clustering also run on the pool. Results — and every KernelMetrics
/// counter — are bit-for-bit identical across thread counts (see
/// tests/test_determinism.cpp); only the host wall clock moves.
///
/// Emits BENCH_scaling.json: per thread count, host seconds per phase and
/// the speedup of the compute-rp-integral phase over the 1-thread run.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "beam/analytic.hpp"
#include "beam/history.hpp"
#include "beam/units.hpp"
#include "core/predictive.hpp"
#include "simt/device.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace bd;

/// The rp-problem of the benchmark: a continuum-filled Gaussian moment
/// history (no Monte-Carlo noise, so every thread count sees identical
/// work), sized so the kernel dominates.
struct Scenario {
  beam::GridSpec spec;
  beam::BeamParams params;
  beam::WakeModel model;
  beam::Grid2D rho;
  beam::Grid2D grad;
  std::unique_ptr<beam::GridHistory> history;
  core::RpProblem problem;

  explicit Scenario(std::uint32_t n = 48, std::uint32_t subregions = 12)
      : spec(beam::make_centered_grid(n, n, 6.0, 6.0)),
        model(beam::WakeModel::longitudinal()),
        rho(spec),
        grad(spec) {
    for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
      for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
        const double x = spec.x_at(ix);
        const double y = spec.y_at(iy);
        rho.at(ix, iy) = beam::gaussian_pdf(x, params.sigma_s) *
                         beam::gaussian_pdf(y, params.sigma_y);
        grad.at(ix, iy) = beam::gaussian_pdf_prime(x, params.sigma_s) *
                          beam::gaussian_pdf(y, params.sigma_y);
      }
    }
    history = std::make_unique<beam::GridHistory>(spec, subregions + 4);
    history->fill_all(100, rho, grad);
    problem.history = history.get();
    problem.model = &model;
    problem.step = 100;
    problem.sub_width = 1.0;
    problem.num_subregions = subregions;
    problem.tolerance = 1e-6;
  }

  void advance() {
    history->push_step(history->latest_step() + 1, rho, grad);
    problem.step = history->latest_step();
  }
};

struct PhaseSeconds {
  double total = 0.0;      ///< solve() wall
  double kernel = 0.0;     ///< compute-rp-integral + fallback (total - host)
  double forecast = 0.0;
  double clustering = 0.0;
  double train = 0.0;
};

PhaseSeconds run_at(unsigned threads, std::size_t steps) {
  util::ThreadPool::set_global_threads(threads);
  Scenario scenario;
  core::PredictiveSolver solver(simt::tesla_k40(), {});
  PhaseSeconds acc;
  for (std::size_t k = 0; k < steps; ++k) {
    const core::SolveResult r = solver.solve(scenario.problem);
    acc.total += r.wall_seconds;
    acc.forecast += r.forecast_seconds;
    acc.clustering += r.clustering_seconds;
    acc.train += r.train_seconds;
    acc.kernel += r.wall_seconds - r.forecast_seconds -
                  r.clustering_seconds - r.train_seconds;
    scenario.advance();
  }
  return acc;
}

}  // namespace

int main() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> counts{1, 2, 4};
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  std::sort(counts.begin(), counts.end());

  constexpr std::size_t kSteps = 4;  // bootstrap + 3 predictive steps

  std::printf("SIMT executor scaling — Predictive-RP, %zu steps, "
              "%u hardware threads\n\n", kSteps, hw);
  std::printf("%8s  %10s  %10s  %10s  %10s  %10s  %8s\n", "threads",
              "total s", "kernel s", "forecast s", "cluster s", "train s",
              "speedup");

  std::vector<PhaseSeconds> results;
  for (unsigned t : counts) results.push_back(run_at(t, kSteps));
  util::ThreadPool::set_global_threads(0);

  const double kernel_1t = results.front().kernel;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const PhaseSeconds& r = results[i];
    std::printf("%8u  %10.4f  %10.4f  %10.4f  %10.4f  %10.4f  %7.2fx\n",
                counts[i], r.total, r.kernel, r.forecast, r.clustering,
                r.train, kernel_1t / std::max(1e-12, r.kernel));
  }

  FILE* json = std::fopen("BENCH_scaling.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scaling.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmark\": \"simt-executor-scaling\",\n");
  std::fprintf(json, "  \"scenario\": \"predictive-rp 48x48, 12 subregions, "
                     "%zu steps\",\n", kSteps);
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(json, "  \"phase\": \"COMPUTE-RP-INTEGRAL (kernel column = "
                     "compute-rp-integral + adaptive fallback host "
                     "seconds)\",\n");
  std::fprintf(json, "  \"runs\": [\n");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const PhaseSeconds& r = results[i];
    std::fprintf(json,
                 "    {\"threads\": %u, \"total_seconds\": %.6f, "
                 "\"kernel_seconds\": %.6f, \"forecast_seconds\": %.6f, "
                 "\"clustering_seconds\": %.6f, \"train_seconds\": %.6f, "
                 "\"kernel_speedup_vs_1t\": %.4f}%s\n",
                 counts[i], r.total, r.kernel, r.forecast, r.clustering,
                 r.train, kernel_1t / std::max(1e-12, r.kernel),
                 i + 1 < counts.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_scaling.json\n");
  if (hw == 1) {
    std::printf("note: single hardware thread — speedups are bounded by "
                "1.0 here; run on a multi-core host to see scaling.\n");
  }
  return 0;
}
