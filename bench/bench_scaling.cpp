/// Wall-clock scaling of the host-side SIMT executor, two phases:
///
///  1. **Solver scaling** — one Predictive-RP scenario run at 1/2/4/N pool
///     threads. The dominant cost of every step is lane execution inside
///     COMPUTE-RP-INTEGRAL and the adaptive fallback (executor pass 1),
///     which parallelizes over blocks; forecasting and clustering also run
///     on the pool. Results — and every KernelMetrics counter — are
///     bit-for-bit identical across thread counts (see
///     tests/test_determinism.cpp); only the host wall clock moves.
///
///  2. **Sharded cache replay** — executor pass 2 in isolation: a
///     deterministic synthetic warp workload (per-SM replay streams) is
///     replayed through per-SM L1s on the pool, then merged SM-major
///     through the shared L2, at the same thread counts. Every cache
///     counter is checked bitwise against the 1-thread replay; any drift
///     fails the run regardless of flags.
///
/// Emits BENCH_scaling.json: per thread count, host seconds per phase and
/// the speedups over the 1-thread run. With
/// `--check-baseline=tools/perf_baseline_scaling.json` the run also
/// enforces the replay-scaling floor: the 1→4-thread replay speedup must
/// reach `min_replay_speedup_pct` — but only on machines with at least
/// `min_hardware_threads` hardware threads (replay scaling needs real
/// cores; the determinism gate always applies).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "beam/analytic.hpp"
#include "beam/history.hpp"
#include "beam/units.hpp"
#include "core/predictive.hpp"
#include "simt/cache.hpp"
#include "simt/device.hpp"
#include "simt/metrics.hpp"
#include "simt/warp.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace bd;

/// The rp-problem of the benchmark: a continuum-filled Gaussian moment
/// history (no Monte-Carlo noise, so every thread count sees identical
/// work), sized so the kernel dominates.
struct Scenario {
  beam::GridSpec spec;
  beam::BeamParams params;
  beam::WakeModel model;
  beam::Grid2D rho;
  beam::Grid2D grad;
  std::unique_ptr<beam::GridHistory> history;
  core::RpProblem problem;

  explicit Scenario(std::uint32_t n = 48, std::uint32_t subregions = 12)
      : spec(beam::make_centered_grid(n, n, 6.0, 6.0)),
        model(beam::WakeModel::longitudinal()),
        rho(spec),
        grad(spec) {
    for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
      for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
        const double x = spec.x_at(ix);
        const double y = spec.y_at(iy);
        rho.at(ix, iy) = beam::gaussian_pdf(x, params.sigma_s) *
                         beam::gaussian_pdf(y, params.sigma_y);
        grad.at(ix, iy) = beam::gaussian_pdf_prime(x, params.sigma_s) *
                          beam::gaussian_pdf(y, params.sigma_y);
      }
    }
    history = std::make_unique<beam::GridHistory>(spec, subregions + 4);
    history->fill_all(100, rho, grad);
    problem.history = history.get();
    problem.model = &model;
    problem.step = 100;
    problem.sub_width = 1.0;
    problem.num_subregions = subregions;
    problem.tolerance = 1e-6;
  }

  void advance() {
    history->push_step(history->latest_step() + 1, rho, grad);
    problem.step = history->latest_step();
  }
};

struct PhaseSeconds {
  double total = 0.0;      ///< solve() wall
  double kernel = 0.0;     ///< compute-rp-integral + fallback (total - host)
  double forecast = 0.0;
  double clustering = 0.0;
  double train = 0.0;
};

PhaseSeconds run_at(unsigned threads, std::size_t steps) {
  util::ThreadPool::set_global_threads(threads);
  Scenario scenario;
  core::PredictiveSolver solver(simt::tesla_k40(), {});
  PhaseSeconds acc;
  for (std::size_t k = 0; k < steps; ++k) {
    const core::SolveResult r = solver.solve(scenario.problem);
    acc.total += r.wall_seconds;
    acc.forecast += r.forecast_seconds;
    acc.clustering += r.clustering_seconds;
    acc.train += r.train_seconds;
    acc.kernel += r.wall_seconds - r.forecast_seconds -
                  r.clustering_seconds - r.train_seconds;
    scenario.advance();
  }
  return acc;
}

// ---- phase 2: sharded cache replay ---------------------------------------

/// Deterministic synthetic warp workload for executor pass 2: per-SM
/// replay streams mixing strided sweeps (coalesced, cache-friendly) with
/// LCG-scattered lines (thrashy), so both L1 and L2 do real work.
struct ReplayWorkload {
  simt::DeviceSpec spec;
  /// streams[sm] — the warps resident on that SM, replay order.
  std::vector<std::vector<simt::WarpReplay>> streams;

  explicit ReplayWorkload(std::size_t warps_per_sm,
                          std::size_t instructions_per_warp)
      : spec(simt::tesla_k40()), streams(spec.num_sms) {
    std::uint64_t lcg = 0x243f6a8885a308d3ull;  // fixed seed: deterministic
    const std::uint64_t line = spec.l1_line_bytes;
    for (std::uint32_t sm = 0; sm < spec.num_sms; ++sm) {
      streams[sm].reserve(warps_per_sm);
      for (std::size_t w = 0; w < warps_per_sm; ++w) {
        simt::WarpReplay replay;
        replay.instructions.reserve(instructions_per_warp);
        // Each warp sweeps its own window; every 4th instruction scatters.
        const std::uint64_t base = (sm * warps_per_sm + w) * 512 * line;
        for (std::size_t i = 0; i < instructions_per_warp; ++i) {
          std::vector<std::uint64_t> lines;
          if (i % 4 == 3) {
            for (int k = 0; k < 8; ++k) {
              lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
              lines.push_back(((lcg >> 20) % (1u << 16)) * line);
            }
          } else {
            for (int k = 0; k < 4; ++k) {
              lines.push_back(base + (i * 4 + k) * line);
            }
          }
          replay.instructions.push_back(std::move(lines));
        }
        streams[sm].push_back(std::move(replay));
      }
    }
  }
};

/// Executor pass 2 on the workload at the current pool width: per-SM L1
/// replay in parallel (recording miss lines), then the serial SM-major L2
/// merge. Mirrors simt::launch exactly (src/simt/executor.cpp).
simt::KernelMetrics replay_once(const ReplayWorkload& work) {
  struct SmShard {
    simt::KernelMetrics partial;
    std::vector<std::uint64_t> l2_misses;
  };
  const simt::DeviceSpec& spec = work.spec;
  std::vector<SmShard> shards(spec.num_sms);
  util::parallel_for(0, spec.num_sms, [&](std::size_t sm) {
    SmShard& shard = shards[sm];
    simt::SetAssocCache l1(spec.l1_bytes, spec.l1_line_bytes, spec.l1_ways);
    // replay_interleaved_l1 only reads the streams; reuse across runs.
    auto& replays =
        const_cast<std::vector<simt::WarpReplay>&>(work.streams[sm]);
    simt::replay_interleaved_l1(replays, spec, l1, shard.partial,
                                shard.l2_misses);
  });
  simt::KernelMetrics metrics;
  metrics.warp_size = spec.warp_size;
  simt::SetAssocCache l2(spec.l2_bytes, spec.l2_line_bytes, spec.l2_ways);
  for (std::uint32_t sm = 0; sm < spec.num_sms; ++sm) {
    metrics += shards[sm].partial;
    simt::replay_l2_lines(shards[sm].l2_misses, spec, l2, metrics);
  }
  return metrics;
}

/// Cache counters that must be bitwise identical across thread counts.
bool same_counters(const simt::KernelMetrics& a,
                   const simt::KernelMetrics& b) {
  return a.l1.hits == b.l1.hits && a.l1.misses == b.l1.misses &&
         a.l2.hits == b.l2.hits && a.l2.misses == b.l2.misses &&
         a.dram_bytes == b.dram_bytes;
}

struct ReplayResult {
  double seconds = 0.0;  ///< best-of-reps replay wall
  simt::KernelMetrics metrics;
};

ReplayResult replay_at(unsigned threads, const ReplayWorkload& work,
                       std::size_t reps) {
  util::ThreadPool::set_global_threads(threads);
  ReplayResult out;
  out.seconds = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    util::WallTimer timer;
    out.metrics = replay_once(work);
    out.seconds = std::min(out.seconds, timer.seconds());
  }
  return out;
}

/// Fixed-schema scan (bench_fleet idiom): the integer following a
/// top-level `"<key>":`; -1 when missing.
long long baseline_value(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(text.c_str() + at + needle.size(), nullptr, 10);
}

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_scaling",
                       "SIMT executor thread scaling: solver + cache replay");
  args.add_int("steps", 4, "phase-1 solver steps (bootstrap + predictive)");
  args.add_int("replay-warps", 96, "phase-2 warps per SM");
  args.add_int("replay-instructions", 256, "phase-2 instructions per warp");
  args.add_int("replay-reps", 3, "phase-2 timed repetitions (best-of)");
  args.add_string("json", "BENCH_scaling.json", "JSON output path");
  args.add_string("check-baseline", "",
                  "baseline JSON; exit 1 on replay-determinism violation or "
                  "(with enough cores) below the replay speedup floor");
  if (!args.parse(argc, argv)) return 0;

  const auto steps = static_cast<std::size_t>(args.get_int("steps"));
  const auto replay_warps =
      static_cast<std::size_t>(args.get_int("replay-warps"));
  const auto replay_instr =
      static_cast<std::size_t>(args.get_int("replay-instructions"));
  const auto replay_reps =
      static_cast<std::size_t>(args.get_int("replay-reps"));

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> counts{1, 2, 4};
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  std::sort(counts.begin(), counts.end());

  // --- phase 1: full predictive solver -------------------------------------
  std::printf("SIMT executor scaling — Predictive-RP, %zu steps, "
              "%u hardware threads\n\n", steps, hw);
  std::printf("%8s  %10s  %10s  %10s  %10s  %10s  %8s\n", "threads",
              "total s", "kernel s", "forecast s", "cluster s", "train s",
              "speedup");

  std::vector<PhaseSeconds> results;
  for (unsigned t : counts) results.push_back(run_at(t, steps));

  const double kernel_1t = results.front().kernel;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const PhaseSeconds& r = results[i];
    std::printf("%8u  %10.4f  %10.4f  %10.4f  %10.4f  %10.4f  %7.2fx\n",
                counts[i], r.total, r.kernel, r.forecast, r.clustering,
                r.train, kernel_1t / std::max(1e-12, r.kernel));
  }

  // --- phase 2: sharded cache replay ---------------------------------------
  std::printf("\nsharded cache replay — %u SMs, %zu warps/SM, %zu instr/warp, "
              "best of %zu\n\n",
              simt::tesla_k40().num_sms, replay_warps, replay_instr,
              replay_reps);
  std::printf("%8s  %12s  %8s  %s\n", "threads", "replay s", "speedup",
              "counters");
  ReplayWorkload work(replay_warps, replay_instr);
  std::vector<ReplayResult> replay;
  for (unsigned t : counts) replay.push_back(replay_at(t, work, replay_reps));
  util::ThreadPool::set_global_threads(0);

  int failures = 0;
  const double replay_1t = replay.front().seconds;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const ReplayResult& r = replay[i];
    const bool same = same_counters(r.metrics, replay.front().metrics);
    std::printf("%8u  %12.5f  %7.2fx  %s\n", counts[i], r.seconds,
                replay_1t / std::max(1e-12, r.seconds),
                same ? "identical" : "DRIFTED");
    if (!same) {
      std::fprintf(stderr,
                   "FAIL: replay counters at %u threads differ from the "
                   "1-thread replay (sharded merge must be deterministic)\n",
                   counts[i]);
      ++failures;
    }
  }

  // --- JSON -----------------------------------------------------------------
  const std::string json_path = args.get_string("json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmark\": \"simt-executor-scaling\",\n");
  std::fprintf(json, "  \"scenario\": \"predictive-rp 48x48, 12 subregions, "
                     "%zu steps\",\n", steps);
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(json, "  \"phase\": \"COMPUTE-RP-INTEGRAL (kernel column = "
                     "compute-rp-integral + adaptive fallback host "
                     "seconds)\",\n");
  std::fprintf(json, "  \"runs\": [\n");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const PhaseSeconds& r = results[i];
    std::fprintf(json,
                 "    {\"threads\": %u, \"total_seconds\": %.6f, "
                 "\"kernel_seconds\": %.6f, \"forecast_seconds\": %.6f, "
                 "\"clustering_seconds\": %.6f, \"train_seconds\": %.6f, "
                 "\"kernel_speedup_vs_1t\": %.4f}%s\n",
                 counts[i], r.total, r.kernel, r.forecast, r.clustering,
                 r.train, kernel_1t / std::max(1e-12, r.kernel),
                 i + 1 < counts.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"replay_workload\": {\"warps_per_sm\": %zu, "
               "\"instructions_per_warp\": %zu, \"reps\": %zu},\n",
               replay_warps, replay_instr, replay_reps);
  std::fprintf(json, "  \"replay_runs\": [\n");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const ReplayResult& r = replay[i];
    std::fprintf(json,
                 "    {\"threads\": %u, \"replay_seconds\": %.6f, "
                 "\"replay_speedup_vs_1t\": %.4f, "
                 "\"counters_identical\": %d}%s\n",
                 counts[i], r.seconds,
                 replay_1t / std::max(1e-12, r.seconds),
                 same_counters(r.metrics, replay.front().metrics) ? 1 : 0,
                 i + 1 < counts.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  if (hw == 1) {
    std::printf("note: single hardware thread — speedups are bounded by "
                "1.0 here; run on a multi-core host to see scaling.\n");
  }

  // --- regression gate ------------------------------------------------------
  const std::string baseline_path = args.get_string("check-baseline");
  if (!baseline_path.empty()) {
    const std::string baseline = read_file(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    const long long min_hw = baseline_value(baseline, "min_hardware_threads");
    const long long floor_pct =
        baseline_value(baseline, "min_replay_speedup_pct");
    if (min_hw < 0 || floor_pct < 0) {
      std::fprintf(stderr, "baseline %s is missing gate fields\n",
                   baseline_path.c_str());
      ++failures;
    } else if (hw < static_cast<unsigned>(min_hw)) {
      std::printf("replay speedup floor skipped: %u hardware threads < "
                  "baseline floor %lld (determinism still enforced)\n",
                  hw, min_hw);
    } else {
      const auto at4 = std::find(counts.begin(), counts.end(), 4u);
      const double speedup =
          at4 == counts.end()
              ? 0.0
              : replay_1t /
                    std::max(1e-12,
                             replay[static_cast<std::size_t>(
                                        at4 - counts.begin())].seconds);
      if (speedup * 100.0 < static_cast<double>(floor_pct)) {
        std::fprintf(stderr,
                     "FAIL: 1->4-thread replay speedup %.2fx below the "
                     "baseline floor %.2fx\n",
                     speedup, static_cast<double>(floor_pct) / 100.0);
        ++failures;
      }
    }
    std::printf("baseline check vs %s: %s\n", baseline_path.c_str(),
                failures == 0 ? "OK" : "FAILED");
  }
  return failures == 0 ? 0 : 1;
}
