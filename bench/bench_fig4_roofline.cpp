/// Reproduces **Fig. 4** of the paper: roofline model analysis for the
/// Predictive-RP kernel compared against the Two-Phase-RP and
/// Heuristic-RP kernels on the (modeled) NVIDIA Tesla K40 — the roofline
/// curve (measured-bandwidth roof and theoretical-peak roof) plus each
/// kernel's operating point (arithmetic intensity, achieved GFlop/s).

#include <cstdio>

#include "bench_common.hpp"
#include "simt/roofline.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bd;
  using bench::measure_solver;

  util::ArgParser args("bench_fig4_roofline",
                       "Fig. 4: roofline analysis of the three kernels");
  args.add_int("particles", 100000, "macro-particles");
  args.add_int("grid", 64, "grid resolution (paper plots the K40 kernels)");
  args.add_int("warmup", 1, "warm-up steps");
  args.add_int("measure", 2, "measured steps");
  args.add_double("tolerance", 1e-6, "rp-integral tolerance τ");
  args.add_flag("full", "use the 128x128 grid");
  args.add_string("csv", "fig4.csv", "CSV output path");
  if (!args.parse(argc, argv)) return 0;

  const simt::DeviceSpec device = simt::tesla_k40();
  const std::uint32_t grid = args.get_flag("full")
                                 ? 128u
                                 : static_cast<std::uint32_t>(
                                       args.get_int("grid"));

  std::printf("Fig. 4 — roofline, %s (peak %.0f GF/s, measured BW %.0f GB/s, "
              "ridge AI %.2f)\n\n",
              device.name.c_str(), device.peak_dp_gflops,
              device.measured_bw_gbs, device.ridge_ai());

  // The roofline curves.
  std::printf("roofline samples (AI, measured-BW roof, theoretical roof):\n");
  for (const auto& sample : simt::sample_roofline(device, 0.125, 64.0, 10)) {
    std::printf("  AI %8.3f  ->  %8.1f GF/s  (theoretical %8.1f)\n",
                sample.ai, sample.roof_measured, sample.roof_theoretical);
  }

  util::ConsoleTable table({"kernel", "AI (F/B)", "GFlop/s",
                            "attainable GF/s", "% of roof"});
  util::CsvWriter csv(args.get_string("csv"));
  csv.header({"kernel", "ai", "gflops", "attainable", "roof_fraction"});

  for (const char* kind : {"two-phase", "heuristic", "predictive"}) {
    const auto m = measure_solver(
        kind,
        bench::bench_config(grid,
                            static_cast<std::size_t>(
                                args.get_int("particles")),
                            args.get_double("tolerance"), /*rigid=*/false),
        static_cast<std::size_t>(args.get_int("warmup")),
        static_cast<std::size_t>(args.get_int("measure")));
    const simt::RooflinePoint point =
        simt::make_point(kind, m.metrics, device);
    table.cell(kind)
        .cell(point.arithmetic_intensity, 2)
        .cell(point.gflops, 0)
        .cell(point.attainable_gflops, 0)
        .cell(point.roof_fraction * 100.0, 1);
    table.end_row();
    csv.cell(kind)
        .cell(point.arithmetic_intensity)
        .cell(point.gflops)
        .cell(point.attainable_gflops)
        .cell(point.roof_fraction);
    csv.end_row();
  }
  std::printf("\nkernel operating points (%ux%u grid):\n", grid, grid);
  table.print();
  csv.close();
  std::printf(
      "\npaper shape: Predictive-RP sits highest (both AI and GFlop/s),\n"
      "Heuristic-RP in the middle, Two-Phase-RP lowest.\n");
  return 0;
}
