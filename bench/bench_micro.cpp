/// Google-benchmark micro-benchmarks for the library's primitives:
/// quadrature rules, kd-tree / kNN / k-means, the SIMT cache + coalescer,
/// the space–time stencil and PIC deposition.

#include <benchmark/benchmark.h>

#include <cmath>

#include "beam/analytic.hpp"
#include "beam/bunch.hpp"
#include "beam/deposit.hpp"
#include "beam/stencil.hpp"
#include "beam/wake.hpp"
#include "ml/kdtree.hpp"
#include "ml/kmeans.hpp"
#include "ml/knn.hpp"
#include "quad/adaptive.hpp"
#include "quad/simpson.hpp"
#include "simt/cache.hpp"
#include "simt/coalescer.hpp"
#include "util/rng.hpp"

namespace {

using namespace bd;

void BM_SimpsonEstimate(benchmark::State& state) {
  const quad::FunctionIntegrand f([](double x) { return std::sin(3 * x); });
  auto& probe = simt::NullProbe::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(quad::simpson_estimate(f, 0.0, 1.0, probe));
  }
}
BENCHMARK(BM_SimpsonEstimate);

void BM_AdaptiveSimpson(benchmark::State& state) {
  const double tol = std::pow(10.0, -static_cast<double>(state.range(0)));
  const quad::FunctionIntegrand f(
      [](double u) { return std::pow(u + 0.05, -1.0 / 3.0); });
  auto& probe = simt::NullProbe::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quad::adaptive_simpson(f, 0.0, 12.0, tol, probe));
  }
}
BENCHMARK(BM_AdaptiveSimpson)->Arg(4)->Arg(6)->Arg(8);

void BM_KdTreeQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<double> points(n * 3);
  for (double& v : points) v = rng.uniform(-1, 1);
  ml::KdTree tree;
  tree.build(points, n, 3);
  std::vector<double> query{0.1, -0.2, 0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.query(query, 4));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KdTreeQuery)->Range(1 << 10, 1 << 16)->Complexity();

void BM_KnnPredict(benchmark::State& state) {
  util::Rng rng(2);
  ml::Dataset data(3, 12);
  std::vector<double> target(12);
  for (int i = 0; i < 4096; ++i) {
    const std::vector<double> x{rng.uniform(-6, 6), rng.uniform(-6, 6),
                                rng.uniform(0, 10)};
    for (double& t : target) t = rng.uniform(1, 30);
    data.add(x, target);
  }
  ml::KNNRegressor knn;
  knn.fit(data);
  const std::vector<double> query{0.0, 0.0, 5.0};
  std::vector<double> out(12);
  for (auto _ : state) {
    knn.predict_into(query, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KnnPredict);

void BM_KMeansTiles(benchmark::State& state) {
  const auto tiles = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<double> features(tiles * 12);
  for (double& v : features) v = rng.uniform(0, 16);
  ml::KMeansConfig config;
  config.clusters = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::kmeans(features, tiles, 12, config));
  }
}
BENCHMARK(BM_KMeansTiles)->Arg(128)->Arg(512);

void BM_CacheAccess(benchmark::State& state) {
  simt::SetAssocCache cache(48 * 1024, 128, 6);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr += 128;
    if (addr > (1 << 22)) addr = 0;
  }
}
BENCHMARK(BM_CacheAccess);

void BM_Coalesce(benchmark::State& state) {
  std::vector<simt::LaneAccess> accesses;
  for (int i = 0; i < 32; ++i) {
    accesses.push_back({static_cast<std::uint64_t>(i) * 24, 24});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simt::coalesce(accesses, 128));
  }
}
BENCHMARK(BM_Coalesce);

void BM_StencilSample(benchmark::State& state) {
  const beam::GridSpec spec = beam::make_centered_grid(128, 128, 6.0, 6.0);
  beam::GridHistory history(spec, 16);
  beam::Grid2D rho(spec), grad(spec);
  rho.fill(1.0);
  history.fill_all(20, rho, grad);
  auto& probe = simt::NullProbe::instance();
  double t = 19.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(beam::sample_spacetime(
        history, beam::kChannelRho, 0.37, -0.61, t, probe));
  }
}
BENCHMARK(BM_StencilSample);

void BM_WakeIntegrandEval(benchmark::State& state) {
  const beam::GridSpec spec = beam::make_centered_grid(128, 128, 6.0, 6.0);
  beam::GridHistory history(spec, 16);
  beam::Grid2D rho(spec), grad(spec);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      rho.at(ix, iy) = beam::gaussian_pdf(spec.x_at(ix), 1.0) *
                       beam::gaussian_pdf(spec.y_at(iy), 1.0);
    }
  }
  beam::longitudinal_gradient(rho, grad);
  history.fill_all(20, rho, grad);
  const beam::WakeModel model = beam::WakeModel::longitudinal();
  const beam::WakeIntegrand integrand(history, model, 0.5, 0.0, 20, 1.0);
  auto& probe = simt::NullProbe::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(integrand.eval(1.0, probe));
  }
}
BENCHMARK(BM_WakeIntegrandEval);

void BM_DepositTsc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  const beam::ParticleSet bunch =
      beam::sample_gaussian_bunch(n, beam::BeamParams{}, rng);
  beam::Grid2D rho(beam::make_centered_grid(128, 128, 6.0, 6.0));
  for (auto _ : state) {
    rho.fill(0.0);
    benchmark::DoNotOptimize(
        beam::deposit(bunch, beam::DepositScheme::kTSC, rho));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DepositTsc)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
