/// Reproduces **Fig. 3** of the paper: mean-square error of the computed
/// longitudinal force, as a function of the number of particles per cell
/// N_ppc = N / N_grid on a fixed grid. As the paper notes, "the accuracy
/// of the computed forces, as measured by the mean-square error, scales as
/// 1/N — inversely with the number of particles", because Monte-Carlo
/// sampling noise dominates.
///
/// Two references are reported: the analytic continuum force (absolute
/// accuracy, which eventually floors at the grid-discretization bias) and
/// a noise-free run of the same pipeline on the continuum-deposited
/// density (isolates the Monte-Carlo error — the quantity with the clean
/// 1/N slope).

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/two_phase.hpp"
#include "beam/analytic.hpp"
#include "beam/force.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("bench_fig3_convergence",
                       "Fig. 3: force MSE vs particles per cell");
  args.add_int("grid", 64, "grid resolution (paper: 128; default reduced)");
  args.add_double("tolerance", 1e-6, "rp-integral tolerance τ");
  args.add_int("sweep", 6, "number of N_ppc points (doubling from 1/4)");
  args.add_flag("full", "paper-scale 128x128 grid");
  args.add_string("csv", "fig3.csv", "CSV output path");
  if (!args.parse(argc, argv)) return 0;

  const std::uint32_t grid = args.get_flag("full")
                                 ? 128u
                                 : static_cast<std::uint32_t>(
                                       args.get_int("grid"));
  const std::size_t n_grid = static_cast<std::size_t>(grid) * grid;
  const core::SimConfig base =
      bench::bench_config(grid, 1000, args.get_double("tolerance"));

  // Noise-free reference: the same pipeline on the continuum density.
  const beam::GridSpec spec = beam::make_centered_grid(
      base.nx, base.ny, base.half_extent_x, base.half_extent_y);
  beam::GridHistory reference_history(spec, base.history_depth());
  {
    beam::Grid2D rho(spec), grad(spec);
    for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
      for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
        rho.at(ix, iy) =
            beam::gaussian_pdf(spec.x_at(ix), base.beam.sigma_s) *
            beam::gaussian_pdf(spec.y_at(iy), base.beam.sigma_y);
        grad.at(ix, iy) =
            beam::gaussian_pdf_prime(spec.x_at(ix), base.beam.sigma_s) *
            beam::gaussian_pdf(spec.y_at(iy), base.beam.sigma_y);
      }
    }
    reference_history.fill_all(0, rho, grad);
  }
  core::RpProblem reference_problem;
  reference_problem.history = &reference_history;
  reference_problem.model = &base.longitudinal;
  reference_problem.step = 0;
  reference_problem.sub_width = base.sub_width;
  reference_problem.num_subregions = base.num_subregions;
  reference_problem.tolerance = base.tolerance;
  baselines::TwoPhaseSolver reference_solver(simt::tesla_k40());
  const core::SolveResult reference = reference_solver.solve(reference_problem);

  util::ConsoleTable table({"N_ppc", "N", "MSE vs continuum run",
                            "MSE vs analytic", "MSE x N (continuum)"});
  util::CsvWriter csv(args.get_string("csv"));
  csv.header({"n_ppc", "particles", "mse_mc", "mse_analytic", "mse_times_n"});

  std::vector<double> log_n, log_mse;
  double n_ppc = 0.25;
  for (int point = 0; point < args.get_int("sweep"); ++point, n_ppc *= 2.0) {
    const auto particles =
        static_cast<std::size_t>(n_ppc * static_cast<double>(n_grid));
    core::SimConfig config = base;
    config.particles = particles;
    config.seed = 20170801 + static_cast<std::uint64_t>(point);
    core::Simulation sim(
        config, bench::make_solver("two-phase", simt::tesla_k40()));
    sim.initialize();
    sim.step();

    // Per-particle force error (ε = (1/N) Σ (F_i - F_i^ref)², paper §V-A)
    // against both references.
    std::vector<double> computed(sim.particles().size());
    std::vector<double> noise_free(sim.particles().size());
    beam::gather_forces(sim.force_s(), sim.particles(), computed);
    beam::gather_forces(reference.values, sim.particles(), noise_free);
    double mse_mc = 0.0, mse_analytic = 0.0;
    const auto s = sim.particles().s();
    const auto y = sim.particles().y();
    for (std::size_t i = 0; i < computed.size(); ++i) {
      const double d_mc = computed[i] - noise_free[i];
      mse_mc += d_mc * d_mc;
      const double exact = beam::analytic_force(
          s[i], y[i], config.longitudinal, config.beam,
          reference_problem.r_max(), 1e-9);
      mse_analytic += (computed[i] - exact) * (computed[i] - exact);
    }
    mse_mc /= static_cast<double>(computed.size());
    mse_analytic /= static_cast<double>(computed.size());

    table.cell(util::format_double(n_ppc, 2))
        .cell(std::to_string(particles))
        .cell(mse_mc, 12)
        .cell(mse_analytic, 12)
        .cell(mse_mc * static_cast<double>(particles), 9);
    table.end_row();
    csv.cell(n_ppc)
        .cell(static_cast<std::uint64_t>(particles))
        .cell(mse_mc)
        .cell(mse_analytic)
        .cell(mse_mc * static_cast<double>(particles));
    csv.end_row();
    log_n.push_back(std::log10(static_cast<double>(particles)));
    log_mse.push_back(std::log10(mse_mc));
  }
  csv.close();

  std::printf("Fig. 3 — force MSE vs particles per cell, %ux%u grid\n",
              grid, grid);
  table.print();
  const util::LineFit fit = util::fit_line(log_n, log_mse);
  std::printf(
      "\nlog-log slope of Monte-Carlo MSE vs N: %.3f (paper shape: -1, "
      "i.e. MSE ∝ 1/N; R² = %.4f)\n"
      "(MSE vs analytic floors at the grid-discretization bias at large N.)\n",
      fit.slope, fit.r_squared);
  return 0;
}
