/// Reproduces **Fig. 2** of the paper: analytic versus computed effective
/// longitudinal (left panel) and transverse (right panel) forces for the
/// validation bunch — the 1-D monochromatic rigid Gaussian bunch, the only
/// case with exact analytic results. The paper used the LCLS-bend
/// parameters on a 128×128 grid with N = 1e6 particles; we run the
/// normalized equivalent (σ_s = 1) on the same grid.

#include <cmath>
#include <cstdio>

#include "beam/analytic.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("bench_fig2_validation",
                       "Fig. 2: analytic vs computed forces");
  args.add_int("particles", 400000, "macro-particles (paper: 1e6; default reduced)");
  args.add_int("grid", 128, "grid resolution (paper: 128)");
  args.add_int("steps", 3, "simulation steps (forces from the last)");
  args.add_double("tolerance", 1e-6, "rp-integral tolerance τ");
  args.add_string("csv", "fig2.csv", "CSV output path");
  if (!args.parse(argc, argv)) return 0;

  core::SimConfig config = bench::bench_config(
      static_cast<std::uint32_t>(args.get_int("grid")),
      static_cast<std::size_t>(args.get_int("particles")),
      args.get_double("tolerance"));
  config.compute_transverse = true;

  const simt::DeviceSpec device = simt::tesla_k40();
  core::Simulation sim(config, bench::make_solver("predictive", device),
                       bench::make_solver("predictive", device));
  sim.initialize();
  for (int k = 0; k < args.get_int("steps"); ++k) sim.step();

  const beam::Grid2D& fs = sim.force_s();
  const beam::Grid2D& fy = sim.force_y();
  const beam::GridSpec& spec = fs.spec();
  const std::uint32_t iy_axis = spec.ny / 2;           // y = 0 line
  const std::uint32_t iy_off = 3 * spec.ny / 4;        // y = +3 line

  util::CsvWriter csv(args.get_string("csv"));
  csv.header({"s", "longitudinal_computed", "longitudinal_analytic",
              "transverse_computed", "transverse_analytic"});

  std::vector<double> comp_l, exact_l, comp_t, exact_t;
  std::printf(
      "Fig. 2 — forces along the bunch (longitudinal at y=0, transverse at "
      "y=%.2f)\n\n", spec.y_at(iy_off));
  std::printf("%8s  %14s %14s  %14s %14s\n", "s", "F_par comp",
              "F_par exact", "F_perp comp", "F_perp exact");
  for (std::uint32_t ix = 2; ix + 2 < spec.nx; ++ix) {
    const double s = spec.x_at(ix);
    const double f_par = fs.at(ix, iy_axis);
    const double f_par_exact = beam::analytic_force(
        s, spec.y_at(iy_axis), config.longitudinal, config.beam, 12.0, 1e-10);
    const double f_perp = fy.at(ix, iy_off);
    const double f_perp_exact = beam::analytic_force(
        s, spec.y_at(iy_off), config.transverse, config.beam, 12.0, 1e-10);
    comp_l.push_back(f_par);
    exact_l.push_back(f_par_exact);
    comp_t.push_back(f_perp);
    exact_t.push_back(f_perp_exact);
    csv.cell(s).cell(f_par).cell(f_par_exact).cell(f_perp).cell(f_perp_exact);
    csv.end_row();
    if (ix % (spec.nx / 16) == 0) {
      std::printf("%8.3f  %14.6e %14.6e  %14.6e %14.6e\n", s, f_par,
                  f_par_exact, f_perp, f_perp_exact);
    }
  }
  csv.close();

  const double corr_l = util::correlation(comp_l, exact_l);
  const double corr_t = util::correlation(comp_t, exact_t);
  const double rel_l = std::sqrt(util::mean_squared_error(comp_l, exact_l)) /
                       util::rms(exact_l);
  const double rel_t = std::sqrt(util::mean_squared_error(comp_t, exact_t)) /
                       util::rms(exact_t);
  std::printf(
      "\nlongitudinal: correlation %.5f, relative rms error %.3f%%\n"
      "transverse:   correlation %.5f, relative rms error %.3f%%\n"
      "paper shape: computed curves overlay the analytic ones.\n",
      corr_l, rel_l * 100.0, corr_t, rel_t * 100.0);
  return 0;
}
