/// SimulationFleet throughput + determinism benchmark.
///
/// Measures aggregate steps/sec for fleets of 1/2/4/8 independent
/// simulations against the sequential baseline (the same sims run one
/// after another), and verifies the fleet determinism contract: every
/// fleet job's physics digest must equal the digest of the same scenario
/// run alone, at whatever `BD_NUM_THREADS` this binary runs under.
///
/// Writes **BENCH_fleet.json**. With `--check-baseline=<json>` the run
/// gates CI:
///  - the digest check must pass always (any thread count, any core
///    count);
///  - the speedup floor (`min_speedup_pct` at `sims_for_gate` sims) is
///    enforced only when the machine has at least the baseline's
///    `min_hardware_threads` hardware threads — fleet scaling needs real
///    cores, and the contract is meaningless on a 1-core CI box.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace bd;

struct SoloRun {
  double seconds = 0.0;        ///< build + initialize + all steps
  std::uint32_t digest = 0;    ///< chained physics digest of every step
};

struct FleetRun {
  std::size_t sims = 0;
  double seconds = 0.0;
  double aggregate_rate = 0.0;  ///< total steps / wall seconds
  double speedup = 0.0;         ///< vs running the sims sequentially
  bool deterministic = true;    ///< all digests matched the solo runs
};

core::SimConfig fleet_config(std::uint32_t grid, std::size_t particles,
                             double tolerance, std::uint64_t seed) {
  core::SimConfig config =
      bench::bench_config(grid, particles, tolerance, /*rigid=*/false);
  config.seed = seed;
  return config;
}

std::uint64_t job_seed(std::size_t index) { return 1000 + 17 * index; }

/// One scenario run alone on this thread — the sequential reference.
SoloRun run_solo(std::uint32_t grid, std::size_t particles,
                 double tolerance, std::size_t steps, std::uint64_t seed) {
  util::WallTimer timer;
  core::Simulation sim(
      fleet_config(grid, particles, tolerance, seed),
      bench::make_solver("predictive", simt::tesla_k40()));
  sim.initialize();
  SoloRun out;
  for (std::size_t k = 0; k < steps; ++k) {
    out.digest = core::fleet_digest_step(sim.step(), out.digest);
  }
  out.seconds = timer.seconds();
  return out;
}

FleetRun run_fleet(std::uint32_t grid, std::size_t particles,
                   double tolerance, std::size_t steps, std::size_t sims,
                   const std::vector<SoloRun>& solo,
                   double sequential_seconds_per_sim) {
  FleetRun out;
  out.sims = sims;
  util::WallTimer timer;
  core::FleetOptions options;
  options.quantum_steps = 3;  // a few scheduling rounds per job
  core::SimulationFleet fleet(options);
  std::vector<core::SimulationFleet::JobId> ids;
  for (std::size_t i = 0; i < sims; ++i) {
    core::FleetJobSpec spec;
    spec.name = "sweep" + std::to_string(i);
    const std::uint64_t seed = job_seed(i);
    const std::uint32_t g = grid;
    const std::size_t p = particles;
    const double tol = tolerance;
    spec.factory = [g, p, tol, seed] {
      return std::make_unique<core::Simulation>(
          fleet_config(g, p, tol, seed),
          bench::make_solver("predictive", simt::tesla_k40()));
    };
    spec.target_steps = steps;
    ids.push_back(fleet.submit(std::move(spec)));
  }
  fleet.wait_all();
  out.seconds = timer.seconds();
  out.aggregate_rate =
      static_cast<double>(sims * steps) / (out.seconds > 0 ? out.seconds
                                                           : 1e-9);
  out.speedup = sequential_seconds_per_sim * static_cast<double>(sims) /
                (out.seconds > 0 ? out.seconds : 1e-9);
  for (std::size_t i = 0; i < sims; ++i) {
    const core::FleetJobStatus status = fleet.poll(ids[i]);
    if (status.state != core::FleetJobState::kDone ||
        status.digest != solo[i].digest) {
      out.deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: sim %zu fleet digest %08x vs "
                   "solo %08x (state %d)\n",
                   i, status.digest, solo[i].digest,
                   static_cast<int>(status.state));
    }
  }
  return out;
}

/// Minimal fixed-schema scan: the integer after `"<key>":`.
long long baseline_value(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(text.c_str() + at + needle.size(), nullptr, 10);
}

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_fleet",
                       "Fleet aggregate throughput + determinism gate");
  args.add_int("grid", 16, "grid resolution per sim");
  args.add_int("particles", 4000, "macro-particles per sim");
  args.add_double("tolerance", 1e-5, "rp-integral tolerance τ");
  args.add_int("steps", 6, "steps per simulation");
  args.add_int("max-sims", 8, "largest fleet size (doubling from 1)");
  args.add_string("json", "BENCH_fleet.json", "JSON output path");
  args.add_string("check-baseline", "",
                  "baseline JSON; exit 1 on determinism violation or (with "
                  "enough cores) speedup regression");
  if (!args.parse(argc, argv)) return 0;

  const auto grid = static_cast<std::uint32_t>(args.get_int("grid"));
  const auto particles = static_cast<std::size_t>(args.get_int("particles"));
  const double tolerance = args.get_double("tolerance");
  const auto steps = static_cast<std::size_t>(args.get_int("steps"));
  const auto max_sims = static_cast<std::size_t>(args.get_int("max-sims"));
  const std::size_t pool_threads = util::ThreadPool::global().num_threads();

  std::printf(
      "simulation fleet — %ux%u grid, %zu particles, %zu steps/sim, "
      "%zu pool threads\n\n",
      grid, grid, particles, steps, pool_threads);

  // Sequential reference: each scenario alone, one after another. The
  // digests double as the determinism oracle for every fleet size.
  std::vector<SoloRun> solo;
  double sequential_seconds = 0.0;
  for (std::size_t i = 0; i < max_sims; ++i) {
    solo.push_back(run_solo(grid, particles, tolerance, steps, job_seed(i)));
    sequential_seconds += solo.back().seconds;
  }
  const double seconds_per_sim =
      sequential_seconds / static_cast<double>(max_sims);
  std::printf("sequential: %.3f s/sim, %.1f steps/s aggregate\n\n",
              seconds_per_sim,
              static_cast<double>(steps) / seconds_per_sim);

  util::ConsoleTable table(
      {"sims", "wall s", "agg steps/s", "speedup vs sequential", "digests"});
  std::vector<FleetRun> runs;
  for (std::size_t sims = 1; sims <= max_sims; sims *= 2) {
    const FleetRun run = run_fleet(grid, particles, tolerance, steps, sims,
                                   solo, seconds_per_sim);
    table.cell(static_cast<double>(run.sims), 0)
        .cell(run.seconds, 3)
        .cell(run.aggregate_rate, 1)
        .cell(run.speedup, 2)
        .cell(run.deterministic ? "ok" : "MISMATCH");
    table.end_row();
    runs.push_back(run);
  }
  table.print();

  bool deterministic = true;
  for (const FleetRun& run : runs) deterministic &= run.deterministic;

  const std::string json_path = args.get_string("json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmark\": \"fleet\",\n");
  std::fprintf(json,
               "  \"config\": {\"grid\": %u, \"particles\": %zu, "
               "\"tolerance\": %g, \"steps_per_sim\": %zu, "
               "\"pool_threads\": %zu},\n",
               grid, particles, tolerance, steps, pool_threads);
  std::fprintf(json, "  \"sequential_seconds_per_sim\": %.6f,\n",
               seconds_per_sim);
  std::fprintf(json, "  \"deterministic\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(json, "  \"fleets\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const FleetRun& run = runs[i];
    std::fprintf(json,
                 "    {\"sims\": %zu, \"wall_seconds\": %.6f, "
                 "\"aggregate_steps_per_sec\": %.2f, "
                 "\"speedup_vs_sequential\": %.3f}%s\n",
                 run.sims, run.seconds, run.aggregate_rate, run.speedup,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());

  const std::string baseline_path = args.get_string("check-baseline");
  if (baseline_path.empty()) return 0;

  // --- gate ----------------------------------------------------------------
  const std::string baseline = read_file(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return 1;
  }
  int failures = 0;
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: fleet digests diverged from solo runs (see above)\n");
    ++failures;
  }
  const long long min_threads =
      baseline_value(baseline, "min_hardware_threads");
  const long long min_speedup_pct =
      baseline_value(baseline, "min_speedup_pct");
  const long long gate_sims = baseline_value(baseline, "sims_for_gate");
  if (min_threads < 0 || min_speedup_pct < 0 || gate_sims < 0) {
    std::fprintf(stderr, "baseline %s is missing gate fields\n",
                 baseline_path.c_str());
    return 1;
  }
  if (pool_threads < static_cast<std::size_t>(min_threads)) {
    std::printf(
        "speedup gate skipped: %zu pool threads < baseline floor %lld "
        "(digest gate still enforced)\n",
        pool_threads, min_threads);
  } else {
    bool gated = false;
    for (const FleetRun& run : runs) {
      if (run.sims != static_cast<std::size_t>(gate_sims)) continue;
      gated = true;
      const double floor = static_cast<double>(min_speedup_pct) / 100.0;
      if (run.speedup < floor) {
        std::fprintf(stderr,
                     "FAIL: %zu-sim fleet speedup %.2fx below baseline "
                     "floor %.2fx\n",
                     run.sims, run.speedup, floor);
        ++failures;
      } else {
        std::printf("speedup gate ok: %zu sims at %.2fx (floor %.2fx)\n",
                    run.sims, run.speedup, floor);
      }
    }
    if (!gated) {
      std::fprintf(stderr,
                   "FAIL: baseline gates %lld sims but that size was not "
                   "measured (max-sims too small?)\n",
                   gate_sims);
      ++failures;
    }
  }
  if (failures == 0) std::printf("baseline check ok\n");
  return failures == 0 ? 0 : 1;
}
