#pragma once
/// Shared helpers for the table/figure benchmark binaries: solver
/// construction, warm-up-then-measure runs, and metric averaging.

#include <memory>
#include <string>
#include <vector>

#include "baselines/heuristic.hpp"
#include "baselines/two_phase.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "simt/device.hpp"
#include "util/check.hpp"

namespace bd::bench {

/// Construct a solver by name ("two-phase" | "heuristic" | "predictive").
inline std::unique_ptr<core::RpSolver> make_solver(
    const std::string& kind, const simt::DeviceSpec& device,
    const core::PredictiveOptions& predictive_options = {}) {
  if (kind == "two-phase") {
    return std::make_unique<baselines::TwoPhaseSolver>(device);
  }
  if (kind == "heuristic") {
    return std::make_unique<baselines::HeuristicSolver>(device);
  }
  BD_CHECK_MSG(kind == "predictive", "unknown solver kind: " << kind);
  return std::make_unique<core::PredictiveSolver>(device,
                                                  predictive_options);
}

/// Aggregated measurement of the compute-retarded-potentials stage over
/// the measured steps of one simulation run.
struct SolverMeasurement {
  simt::KernelMetrics metrics;       ///< merged counters (all measured steps)
  double gpu_seconds = 0.0;          ///< summed modeled kernel seconds
  double clustering_seconds = 0.0;   ///< summed host clustering
  double train_seconds = 0.0;        ///< summed host training
  double forecast_seconds = 0.0;     ///< summed host forecasting
  double overall_seconds = 0.0;      ///< gpu + host overheads
  std::uint64_t kernel_intervals = 0;
  std::uint64_t fallback_items = 0;
  std::size_t steps = 0;

  void accumulate(const core::SolveResult& r) {
    metrics += r.metrics;
    gpu_seconds += r.gpu_seconds;
    clustering_seconds += r.clustering_seconds;
    train_seconds += r.train_seconds;
    forecast_seconds += r.forecast_seconds;
    overall_seconds += r.overall_seconds();
    kernel_intervals += r.kernel_intervals;
    fallback_items += r.fallback_items;
    ++steps;
  }
};

/// Run a simulation with the given solver: `warmup` steps are discarded
/// (bootstrap + learning transient), then `measure` steps are aggregated.
inline SolverMeasurement measure_solver(const std::string& kind,
                                        core::SimConfig config,
                                        std::size_t warmup,
                                        std::size_t measure,
                                        const core::PredictiveOptions&
                                            predictive_options = {}) {
  const simt::DeviceSpec device = simt::tesla_k40();
  core::Simulation sim(config,
                       make_solver(kind, device, predictive_options));
  sim.initialize();
  for (std::size_t k = 0; k < warmup; ++k) sim.step();
  SolverMeasurement result;
  for (std::size_t k = 0; k < measure; ++k) {
    const core::StepStats stats = sim.step();
    result.accumulate(stats.longitudinal);
  }
  return result;
}

/// Default benchmark simulation config.
///
/// rigid = true  — the validation workload (Fig. 2/3): stationary bunch,
///                 default wake strength.
/// rigid = false — the performance workload (Tables I/II, Fig. 4): the
///                 bunch evolves under its self-force, so access patterns
///                 drift between steps exactly as in the paper's
///                 production simulations; a stronger wake (amplitude 0.4)
///                 gives the adaptive quadrature the paper's workload
///                 intensity at τ = 1e-6, and dt = 0.5 keeps the evolution
///                 resolved.
inline core::SimConfig bench_config(std::uint32_t grid,
                                    std::size_t particles,
                                    double tolerance = 1e-6,
                                    bool rigid = true) {
  core::SimConfig config;
  config.nx = grid;
  config.ny = grid;
  config.particles = particles;
  config.tolerance = tolerance;
  config.rigid = rigid;
  if (!rigid) {
    config.longitudinal.amplitude = 0.4;
    config.transverse.amplitude = 0.4;
    config.dt = 0.5;
  }
  return config;
}

}  // namespace bd::bench
