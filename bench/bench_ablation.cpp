/// Ablation study over the design choices DESIGN.md calls out:
///   * partition transform: uniform vs adaptive (§III-C2)
///   * predictor: kNN vs ridge regression (§III-B1)
///   * kNN neighbor count k
///   * number of clusters m (paper: m = max(N_X, N_Y))
///   * training window size
///   * clustering granularity: warp-tiles vs per-point k-means
///   * inner quadrature rule: Gauss–Legendre vs Newton–Cotes (the paper's
///     choice; see DESIGN.md for why GL is the default here)

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

struct Variant {
  std::string group;
  std::string name;
  bd::core::PredictiveOptions options;
  std::function<void(bd::core::SimConfig&)> tweak_config;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("bench_ablation",
                       "Predictive-RP design-choice ablations");
  args.add_int("particles", 50000, "macro-particles");
  args.add_int("grid", 48, "grid resolution");
  args.add_int("warmup", 2, "warm-up steps");
  args.add_int("measure", 2, "measured steps");
  args.add_string("csv", "ablation.csv", "CSV output path");
  if (!args.parse(argc, argv)) return 0;

  std::vector<Variant> variants;
  {
    Variant base{"baseline", "default (kNN k=4, uniform, tiled)", {}, {}};
    variants.push_back(base);

    Variant adaptive = base;
    adaptive.group = "transform";
    adaptive.name = "adaptive transform";
    adaptive.options.transform = core::PartitionTransform::kAdaptive;
    variants.push_back(adaptive);

    Variant ridge = base;
    ridge.group = "predictor";
    ridge.name = "ridge regression";
    ridge.options.predictor = ml::PredictorKind::kRidge;
    variants.push_back(ridge);

    for (std::size_t k : {1, 2, 8}) {
      Variant v = base;
      v.group = "knn-k";
      v.name = "kNN k=" + std::to_string(k);
      v.options.knn.k = k;
      variants.push_back(v);
    }

    for (std::size_t m : {24, 96}) {
      Variant v = base;
      v.group = "clusters";
      v.name = "m=" + std::to_string(m);
      v.options.clusters = m;
      variants.push_back(v);
    }

    Variant window = base;
    window.group = "window";
    window.name = "training window=3";
    window.options.training_window = 3;
    variants.push_back(window);

    Variant flat = base;
    flat.group = "clustering";
    flat.name = "per-point k-means (no tiles)";
    flat.options.tiled = false;
    variants.push_back(flat);

    Variant nc = base;
    nc.group = "inner-rule";
    nc.name = "Newton-Cotes inner rule";
    nc.tweak_config = [](core::SimConfig& config) {
      config.longitudinal.inner_rule = beam::InnerRule::kNewtonCotes;
    };
    variants.push_back(nc);
  }

  util::ConsoleTable table({"group", "variant", "GPU ms/step",
                            "warp eff %", "gld eff %", "L1 hit %",
                            "intervals/step", "fallback/step",
                            "host ms/step"});
  util::CsvWriter csv(args.get_string("csv"));
  csv.header({"group", "variant", "gpu_ms", "warp_eff", "gld_eff", "l1_hit",
              "intervals", "fallback", "host_ms"});

  for (const Variant& variant : variants) {
    core::SimConfig config = bench::bench_config(
        static_cast<std::uint32_t>(args.get_int("grid")),
        static_cast<std::size_t>(args.get_int("particles")), 1e-6,
        /*rigid=*/false);
    if (variant.tweak_config) variant.tweak_config(config);
    const auto m = bench::measure_solver(
        "predictive", config,
        static_cast<std::size_t>(args.get_int("warmup")),
        static_cast<std::size_t>(args.get_int("measure")), variant.options);
    const auto steps = static_cast<double>(m.steps);
    const double host_ms = (m.clustering_seconds + m.train_seconds +
                            m.forecast_seconds) /
                           steps * 1e3;
    table.cell(variant.group)
        .cell(variant.name)
        .cell(m.gpu_seconds / steps * 1e3, 3)
        .cell(m.metrics.warp_execution_efficiency() * 100.0, 1)
        .cell(m.metrics.global_load_efficiency() * 100.0, 1)
        .cell(m.metrics.l1_hit_rate() * 100.0, 1)
        .cell(static_cast<std::int64_t>(
            m.kernel_intervals / std::max<std::size_t>(1, m.steps)))
        .cell(static_cast<std::int64_t>(
            m.fallback_items / std::max<std::size_t>(1, m.steps)))
        .cell(host_ms, 2);
    table.end_row();
    csv.cell(variant.group)
        .cell(variant.name)
        .cell(m.gpu_seconds / steps * 1e3)
        .cell(m.metrics.warp_execution_efficiency())
        .cell(m.metrics.global_load_efficiency())
        .cell(m.metrics.l1_hit_rate())
        .cell(m.kernel_intervals / std::max<std::size_t>(1, m.steps))
        .cell(m.fallback_items / std::max<std::size_t>(1, m.steps))
        .cell(host_ms);
    csv.end_row();
  }
  std::printf("Predictive-RP ablations (%lldx%lld grid)\n",
              static_cast<long long>(args.get_int("grid")),
              static_cast<long long>(args.get_int("grid")));
  table.print();
  csv.close();
  return 0;
}
