/// Reproduces **Table I** of the paper: double-precision performance of
/// the Heuristic-RP kernel vs the new Predictive-RP kernel for a beam
/// dynamics simulation with 100 000 particles and varying grid resolution
/// on the (modeled) NVIDIA Tesla K40 — GFlop/s, experimental arithmetic
/// intensity, warp execution efficiency, global load efficiency and
/// L1-cache global hit rate.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bd;
  using bench::measure_solver;

  util::ArgParser args("bench_table1",
                       "Table I: Heuristic-RP vs Predictive-RP kernel");
  args.add_int("particles", 100000, "macro-particles (paper: 100000)");
  args.add_int("warmup", 1, "warm-up steps before measuring");
  args.add_int("measure", 2, "measured steps (averaged)");
  args.add_double("tolerance", 1e-6, "rp-integral tolerance τ");
  args.add_flag("full", "include the 256x256 grid (slow)");
  args.add_string("csv", "table1.csv", "CSV output path");
  if (!args.parse(argc, argv)) return 0;

  std::vector<std::uint32_t> grids{64, 128};
  if (args.get_flag("full")) grids.push_back(256);

  std::printf("Table I — kernel metrics, N = %lld particles, tau = %g\n",
              static_cast<long long>(args.get_int("particles")),
              args.get_double("tolerance"));
  util::ConsoleTable table({"grid", "kernel", "GFlop/s", "AI (F/B)",
                            "warp eff %", "gld eff %", "L1 hit %",
                            "GPU ms/step"});
  util::CsvWriter csv(args.get_string("csv"));
  csv.header({"grid", "kernel", "gflops", "ai", "warp_eff", "gld_eff",
              "l1_hit", "gpu_ms_per_step"});

  for (std::uint32_t grid : grids) {
    for (const char* kind : {"heuristic", "predictive"}) {
      const auto m = measure_solver(
          kind,
          bench::bench_config(grid,
                              static_cast<std::size_t>(
                                  args.get_int("particles")),
                              args.get_double("tolerance"), /*rigid=*/false),
          static_cast<std::size_t>(args.get_int("warmup")),
          static_cast<std::size_t>(args.get_int("measure")));
      const double gpu_ms =
          m.gpu_seconds / static_cast<double>(m.steps) * 1e3;
      table.cell(std::to_string(grid) + "x" + std::to_string(grid))
          .cell(kind)
          .cell(m.metrics.gflops(), 0)
          .cell(m.metrics.arithmetic_intensity(), 2)
          .cell(m.metrics.warp_execution_efficiency() * 100.0, 1)
          .cell(m.metrics.global_load_efficiency() * 100.0, 1)
          .cell(m.metrics.l1_hit_rate() * 100.0, 1)
          .cell(gpu_ms, 3);
      table.end_row();
      csv.cell(static_cast<std::int64_t>(grid))
          .cell(kind)
          .cell(m.metrics.gflops())
          .cell(m.metrics.arithmetic_intensity())
          .cell(m.metrics.warp_execution_efficiency())
          .cell(m.metrics.global_load_efficiency())
          .cell(m.metrics.l1_hit_rate())
          .cell(gpu_ms);
      csv.end_row();
    }
  }
  table.print();
  csv.close();
  std::printf(
      "\npaper shape: Predictive >= Heuristic on every metric; warp eff\n"
      "~96%%, gld eff > 100%%, GFlop/s toward ~485 at larger grids.\n");
  return 0;
}
