/// Evaluation-engine benchmark, two phases on the Table I default
/// geometry:
///
///  1. **Eval reduction** (default bunch): integrand-evaluation counts per
///     solver. The shared-sample kernel sweep, seeded fallback roots and
///     memoized bisections all book the evaluations they *avoided* into
///     `rp.evals_saved`, so `evaluations + saved` is exactly what the
///     naive pre-overhaul engine would have paid — the reduction column
///     needs no second binary. Gate: ≥ 25% saved for every solver.
///
///  2. **Steady-state allocations** (rigid bunch): the default bunch
///     blows up exponentially (demand doubles every few steps, so no
///     allocation steady state exists for *any* engine); the rigid
///     variant reaches one. After `steady-warmup` steps the scratch
///     arena must stop growing. Gate: `rp.scratch_grows == 0` over the
///     measured window.
///
/// Writes **BENCH_rp_eval.json**. All counts are deterministic (thread
/// count independent), so the JSON doubles as a regression baseline:
/// `--check-baseline=tools/perf_baseline_rp_eval.json` exits non-zero if
/// any solver pays more evaluations than the checked-in baseline allows
/// (2% slack), saves less than the 25% floor, or grows scratch after
/// warm-up.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace {

struct EvalCounts {
  std::uint64_t evaluations = 0;  ///< integrand evals paid (kernel+fallback)
  std::uint64_t saved = 0;        ///< evals the naive engine would have paid
  std::uint64_t cache_hits = 0;   ///< memoized samples reused by the fallback
  std::uint64_t scratch_grows = 0;
  std::uint64_t scratch_reuses = 0;
  std::size_t steps = 0;
  double gpu_seconds = 0.0;

  double naive_evaluations() const {
    return static_cast<double>(evaluations + saved);
  }
  double reduction() const {
    const double naive = naive_evaluations();
    return naive > 0.0 ? static_cast<double>(saved) / naive : 0.0;
  }
};

std::uint64_t counter(const std::map<std::string, std::uint64_t>& counters,
                      const char* name) {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

/// Run `warmup` discarded steps then `measure` counted steps, reading the
/// eval counters from the metrics registry (reset at the warm-up
/// boundary, so scratch_grows covers only the steady state).
EvalCounts measure_counts(const std::string& kind,
                          const bd::core::SimConfig& config,
                          std::size_t warmup, std::size_t measure) {
  using namespace bd;
  util::telemetry::MetricsRegistry& registry =
      util::telemetry::MetricsRegistry::global();
  core::Simulation sim(config,
                       bench::make_solver(kind, simt::tesla_k40()));
  sim.initialize();
  for (std::size_t k = 0; k < warmup; ++k) sim.step();
  registry.reset();
  EvalCounts out;
  for (std::size_t k = 0; k < measure; ++k) {
    const core::StepStats stats = sim.step();
    out.gpu_seconds += stats.longitudinal.gpu_seconds;
    ++out.steps;
  }
  const auto counters = registry.snapshot().counters;
  out.evaluations = counter(counters, "rp.kernel_evaluations") +
                    counter(counters, "rp.fallback_evaluations");
  out.saved = counter(counters, "rp.evals_saved");
  out.cache_hits = counter(counters, "rp.integrand_cache_hits");
  out.scratch_grows = counter(counters, "rp.scratch_grows");
  out.scratch_reuses = counter(counters, "rp.scratch_reuses");
  registry.reset();
  return out;
}

/// Fixed-schema scan of a baseline written by this binary: returns the
/// integer following `"<key>":` inside the `"kernel": "<kind>"` object.
/// Returns -1 when the kind or key is missing.
long long baseline_value(const std::string& text, const std::string& kind,
                         const std::string& key) {
  const std::string anchor = "\"kernel\": \"" + kind + "\"";
  std::size_t at = text.find(anchor);
  if (at == std::string::npos) return -1;
  const std::size_t end = text.find('}', at);
  const std::string needle = "\"" + key + "\":";
  at = text.find(needle, at);
  if (at == std::string::npos || (end != std::string::npos && at > end)) {
    return -1;
  }
  return std::strtoll(text.c_str() + at + needle.size(), nullptr, 10);
}

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("bench_rp_eval",
                       "Evaluation-engine eval counts + allocation gate");
  args.add_int("grid", 64, "grid resolution (Table I default)");
  args.add_int("particles", 100000, "macro-particles (Table I default)");
  args.add_double("tolerance", 1e-6, "rp-integral tolerance τ");
  args.add_int("warmup", 2, "phase-1 discarded steps");
  args.add_int("measure", 3, "phase-1 measured steps");
  args.add_int("steady-warmup", 6,
               "phase-2 discarded steps (watermark convergence)");
  args.add_int("steady-measure", 4, "phase-2 measured steps");
  args.add_string("json", "BENCH_rp_eval.json", "JSON output path");
  args.add_string("check-baseline", "",
                  "baseline JSON; exit 1 on eval-count regression");
  if (!args.parse(argc, argv)) return 0;

  util::telemetry::set_metrics_enabled(true);
  const auto grid = static_cast<std::uint32_t>(args.get_int("grid"));
  const auto particles =
      static_cast<std::size_t>(args.get_int("particles"));
  const double tolerance = args.get_double("tolerance");
  const std::size_t warmup = static_cast<std::size_t>(args.get_int("warmup"));
  const std::size_t measure =
      static_cast<std::size_t>(args.get_int("measure"));
  const std::size_t steady_warmup =
      static_cast<std::size_t>(args.get_int("steady-warmup"));
  const std::size_t steady_measure =
      static_cast<std::size_t>(args.get_int("steady-measure"));

  const std::vector<std::string> kinds{"two-phase", "heuristic",
                                       "predictive"};

  // --- phase 1: eval reduction on the default (evolving) bunch -------------
  std::printf(
      "rp evaluation engine — %lldx%lld grid, %lld particles, tau = %g\n\n",
      static_cast<long long>(args.get_int("grid")),
      static_cast<long long>(args.get_int("grid")),
      static_cast<long long>(args.get_int("particles")),
      args.get_double("tolerance"));
  std::printf("phase 1: integrand evaluations (default bunch, %zu+%zu steps)\n",
              warmup, measure);
  const core::SimConfig config =
      bench::bench_config(grid, particles, tolerance, /*rigid=*/false);
  util::ConsoleTable table({"kernel", "evals/step", "naive evals/step",
                            "saved %", "cache hits/step", "GPU ms/step"});
  std::vector<EvalCounts> results;
  for (const std::string& kind : kinds) {
    const EvalCounts c = measure_counts(kind, config, warmup, measure);
    const double steps = static_cast<double>(c.steps);
    table.cell(kind)
        .cell(static_cast<double>(c.evaluations) / steps, 0)
        .cell(c.naive_evaluations() / steps, 0)
        .cell(c.reduction() * 100.0, 1)
        .cell(static_cast<double>(c.cache_hits) / steps, 0)
        .cell(c.gpu_seconds / steps * 1e3, 3);
    table.end_row();
    results.push_back(c);
  }
  table.print();

  // --- phase 2: allocation steady state on the rigid bunch -----------------
  std::printf(
      "\nphase 2: scratch allocations (rigid bunch, %zu+%zu steps)\n",
      steady_warmup, steady_measure);
  const core::SimConfig rigid_config =
      bench::bench_config(grid, particles, tolerance, /*rigid=*/true);
  util::ConsoleTable steady_table(
      {"kernel", "grows after warm-up", "reuses/step"});
  std::vector<EvalCounts> steady;
  for (const std::string& kind : kinds) {
    const EvalCounts c =
        measure_counts(kind, rigid_config, steady_warmup, steady_measure);
    steady_table.cell(kind)
        .cell(static_cast<double>(c.scratch_grows), 0)
        .cell(static_cast<double>(c.scratch_reuses) /
                  static_cast<double>(c.steps),
              0);
    steady_table.end_row();
    steady.push_back(c);
  }
  steady_table.print();

  const std::string json_path = args.get_string("json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmark\": \"rp-eval-engine\",\n");
  std::fprintf(json,
               "  \"config\": {\"grid\": %lld, \"particles\": %lld, "
               "\"tolerance\": %g, \"warmup\": %zu, \"measure\": %zu, "
               "\"steady_warmup\": %zu, \"steady_measure\": %zu},\n",
               static_cast<long long>(args.get_int("grid")),
               static_cast<long long>(args.get_int("particles")),
               args.get_double("tolerance"), warmup, measure, steady_warmup,
               steady_measure);
  std::fprintf(json, "  \"solvers\": [\n");
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const EvalCounts& c = results[i];
    std::fprintf(
        json,
        "    {\"kernel\": \"%s\", \"measured_steps\": %zu,\n"
        "     \"evaluations_total\": %llu, \"evaluations_saved_total\": "
        "%llu,\n"
        "     \"integrand_cache_hits_total\": %llu,\n"
        "     \"eval_reduction_vs_naive_pct\": %.2f,\n"
        "     \"gpu_ms_per_step\": %.3f}%s\n",
        kinds[i].c_str(), c.steps,
        static_cast<unsigned long long>(c.evaluations),
        static_cast<unsigned long long>(c.saved),
        static_cast<unsigned long long>(c.cache_hits),
        c.reduction() * 100.0,
        c.gpu_seconds / static_cast<double>(c.steps) * 1e3,
        i + 1 < kinds.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"steady_state\": [\n");
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const EvalCounts& c = steady[i];
    std::fprintf(
        json,
        "    {\"kernel\": \"%s\", \"measured_steps\": %zu,\n"
        "     \"scratch_grows_steady_state\": %llu, "
        "\"scratch_reuses_total\": %llu}%s\n",
        kinds[i].c_str(), c.steps,
        static_cast<unsigned long long>(c.scratch_grows),
        static_cast<unsigned long long>(c.scratch_reuses),
        i + 1 < kinds.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());

  // --- regression gate -----------------------------------------------------
  int failures = 0;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (results[i].reduction() < 0.25) {
      std::fprintf(stderr,
                   "FAIL %s: eval reduction %.1f%% below the 25%% floor\n",
                   kinds[i].c_str(), results[i].reduction() * 100.0);
      ++failures;
    }
    if (steady[i].scratch_grows != 0) {
      std::fprintf(stderr,
                   "FAIL %s: scratch grew %llu times after warm-up "
                   "(rigid steady state must be allocation-free)\n",
                   kinds[i].c_str(),
                   static_cast<unsigned long long>(steady[i].scratch_grows));
      ++failures;
    }
  }

  const std::string baseline_path = args.get_string("check-baseline");
  if (!baseline_path.empty()) {
    const std::string baseline = read_file(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const long long base =
          baseline_value(baseline, kinds[i], "evaluations_total");
      if (base < 0) {
        std::fprintf(stderr, "baseline %s has no evaluations_total for %s\n",
                     baseline_path.c_str(), kinds[i].c_str());
        ++failures;
        continue;
      }
      // Counts are deterministic; 2% slack absorbs intentional re-baselines
      // of neighbouring subsystems, not noise.
      const unsigned long long limit =
          static_cast<unsigned long long>(base) / 100ull * 102ull;
      if (results[i].evaluations > limit) {
        std::fprintf(stderr,
                     "FAIL %s: %llu evaluations exceeds baseline %lld "
                     "(+2%% = %llu)\n",
                     kinds[i].c_str(),
                     static_cast<unsigned long long>(
                         results[i].evaluations),
                     base, limit);
        ++failures;
      }
    }
    std::printf("baseline check vs %s: %s\n", baseline_path.c_str(),
                failures == 0 ? "OK" : "FAILED");
  }
  return failures == 0 ? 0 : 1;
}
