/// Clustering-engine benchmark, two phases:
///
///  1. **Solver fidelity** (64² grid, drifting bunch): the full predictive
///     solver with the coreset/pruned/warm-start clustering accel off
///     (reference) and on (shipped default). The accel must not trade
///     forecast quality for speed: its total fallback items must be
///     identical-or-better, and its per-step clustering time lower.
///
///  2. **Clustering scaling** (64²/128²/256², synthetic drifting pattern
///     fields): per-step cost of RP-CLUSTERING proper. The reference
///     configuration trains Lloyd on the *full* point set — the paper's
///     literal O(N·k·d)-per-iteration Algorithm 1, which is what the
///     host-side clustering cost looks like without subsampling — while
///     the accel path trains on a 512-point D² coreset with pruned Lloyd
///     and warm-started centroids. Both pay the same feature build,
///     balanced assignment and full-set inertia accounting, so the
///     speedup is what a solver step actually saves. Gates: ≥ 5× faster
///     at 128² and 256² with identical-or-better full-set inertia.
///
/// Writes **BENCH_clustering.json**. Wall times vary with the machine, so
/// the baseline (`--check-baseline=tools/perf_baseline_clustering.json`)
/// pins ratios and counts, not milliseconds: the speedup floor, the
/// accel/reference inertia ratio ceiling, and the fidelity fallback-item
/// ceiling (deterministic, 2% slack for neighbouring re-baselines).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/clustering.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace {

/// Phase-1 measurement of one predictive-solver configuration.
struct FidelityResult {
  std::string mode;
  std::size_t steps = 0;
  std::uint64_t fallback_items = 0;
  double clustering_ms_per_step = 0.0;
};

/// Phase-2 measurement of one grid size.
struct ScalingResult {
  std::uint32_t grid = 0;
  std::size_t points = 0;
  std::size_t clusters = 0;
  std::size_t steps = 0;
  double reference_ms_per_step = 0.0;
  double accel_ms_per_step = 0.0;
  double reference_inertia = 0.0;  ///< mean full-set inertia over steps
  double accel_inertia = 0.0;
  std::size_t accel_coreset_size = 0;
  std::size_t warm_started_steps = 0;

  double speedup() const {
    return accel_ms_per_step > 0.0
               ? reference_ms_per_step / accel_ms_per_step
               : 0.0;
  }
  double inertia_ratio() const {
    return reference_inertia > 0.0 ? accel_inertia / reference_inertia : 1.0;
  }
};

/// Mirror of the predictive solver's automatic cluster count: one cluster
/// per resident block's worth of points, clamped to a sane range.
std::size_t cluster_count(std::size_t points) {
  return std::clamp<std::size_t>(points / 2048, 4, 1024);
}

/// Synthetic access-pattern field for step `step`: a radial demand bump
/// that drifts outward and breathes between steps (the way the evolving
/// bunch moves quadrature demand across the grid), plus deterministic
/// per-point noise. Patterns vary smoothly in space — the property
/// RP-CLUSTERING exploits — but no two steps are identical, so the
/// warm-start path re-trains every step like production.
bd::core::PatternField drifting_patterns(std::uint32_t grid, std::size_t pdim,
                                         std::size_t step) {
  const std::size_t n = static_cast<std::size_t>(grid) * grid;
  bd::core::PatternField field(n, pdim);
  bd::util::Rng rng(0xC0FFEEull * (step + 1) + grid);
  const double drift = 0.01 * static_cast<double>(step);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % grid) / grid - 0.5;
    const double y = static_cast<double>(i / grid) / grid - 0.5;
    const double r = std::sqrt(x * x + y * y);
    auto pattern = field.at(i);
    for (std::size_t j = 0; j < pdim; ++j) {
      const double center =
          0.1 + drift + 0.35 * static_cast<double>(j) / pdim;
      const double bump = std::exp(-40.0 * (r - center) * (r - center));
      pattern[j] = 2.0 + 10.0 * bump + 0.1 * rng.uniform();
    }
  }
  return field;
}

/// Time `steps` clustering calls (after one discarded warm-up call) and
/// average wall time and full-set inertia over the measured steps.
void run_scaling_mode(std::uint32_t grid, std::size_t pdim, std::size_t steps,
                      const bd::core::RpClusteringOptions& options,
                      bd::core::ClusteringCache* cache, double& ms_per_step,
                      double& mean_inertia, std::size_t& coreset_size,
                      std::size_t& warm_steps) {
  using namespace bd;
  core::RpClusteringOptions opts = options;
  opts.accel.cache = cache;
  ms_per_step = 0.0;
  mean_inertia = 0.0;
  coreset_size = 0;
  warm_steps = 0;
  for (std::size_t s = 0; s < steps + 1; ++s) {
    const core::PatternField field = drifting_patterns(grid, pdim, s);
    util::WallTimer timer;
    const core::ClusterAssignment result =
        core::rp_clustering(field, {}, {}, opts);
    const double seconds = timer.seconds();
    if (s == 0) continue;  // warm-up: first-touch + cold caches
    ms_per_step += seconds * 1e3;
    mean_inertia += result.inertia;
    coreset_size = std::max(coreset_size, result.coreset_size);
    if (result.warm_started) ++warm_steps;
  }
  ms_per_step /= static_cast<double>(steps);
  mean_inertia /= static_cast<double>(steps);
}

/// Fixed-schema scan of a baseline written by this binary: returns the
/// integer following `"<key>":` inside the object anchored by `anchor`
/// (e.g. `"grid": 256`). Returns -1 when anchor or key is missing.
long long baseline_value(const std::string& text, const std::string& anchor,
                         const std::string& key) {
  std::size_t at = text.find(anchor);
  if (at == std::string::npos) return -1;
  const std::size_t end = text.find('}', at);
  const std::string needle = "\"" + key + "\":";
  at = text.find(needle, at);
  if (at == std::string::npos || (end != std::string::npos && at > end)) {
    return -1;
  }
  return std::strtoll(text.c_str() + at + needle.size(), nullptr, 10);
}

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bd;

  util::ArgParser args("bench_clustering",
                       "Coreset/pruned/warm-start clustering engine gates");
  args.add_int("fidelity-grid", 64, "phase-1 grid resolution");
  args.add_int("particles", 20000, "phase-1 macro-particles");
  args.add_int("warmup", 2, "phase-1 discarded steps");
  args.add_int("measure", 4, "phase-1 measured steps");
  args.add_int("steps", 5, "phase-2 measured clustering steps per grid");
  args.add_int("subregions", 16, "phase-2 pattern dimensions");
  args.add_int("coreset", 512, "phase-2 accel coreset size");
  args.add_string("json", "BENCH_clustering.json", "JSON output path");
  args.add_string("check-baseline", "",
                  "baseline JSON; exit 1 on speedup/inertia/fallback "
                  "regression");
  if (!args.parse(argc, argv)) return 0;

  util::telemetry::set_metrics_enabled(true);
  const auto fidelity_grid =
      static_cast<std::uint32_t>(args.get_int("fidelity-grid"));
  const auto particles = static_cast<std::size_t>(args.get_int("particles"));
  const std::size_t warmup = static_cast<std::size_t>(args.get_int("warmup"));
  const std::size_t measure =
      static_cast<std::size_t>(args.get_int("measure"));
  const std::size_t steps = static_cast<std::size_t>(args.get_int("steps"));
  const std::size_t pdim =
      static_cast<std::size_t>(args.get_int("subregions"));
  const std::size_t coreset =
      static_cast<std::size_t>(args.get_int("coreset"));

  // --- phase 1: solver fidelity, accel off vs on ---------------------------
  std::printf(
      "clustering engine — phase 1: predictive solver fidelity "
      "(%ux%u grid, %zu particles, %zu+%zu steps)\n",
      fidelity_grid, fidelity_grid, particles, warmup, measure);
  const core::SimConfig config = bench::bench_config(
      fidelity_grid, particles, 1e-6, /*rigid=*/false);
  std::vector<FidelityResult> fidelity;
  for (const bool accel_on : {false, true}) {
    core::PredictiveOptions options;
    options.cluster_accel = accel_on;
    const bench::SolverMeasurement m =
        bench::measure_solver("predictive", config, warmup, measure, options);
    FidelityResult r;
    r.mode = accel_on ? "accel" : "reference";
    r.steps = m.steps;
    r.fallback_items = m.fallback_items;
    r.clustering_ms_per_step =
        m.clustering_seconds / static_cast<double>(m.steps) * 1e3;
    fidelity.push_back(r);
  }
  util::ConsoleTable fidelity_table(
      {"mode", "fallback items", "clustering ms/step"});
  for (const FidelityResult& r : fidelity) {
    fidelity_table.cell(r.mode)
        .cell(static_cast<double>(r.fallback_items), 0)
        .cell(r.clustering_ms_per_step, 3);
    fidelity_table.end_row();
  }
  fidelity_table.print();

  // --- phase 2: clustering scaling, full-set Lloyd vs coreset accel --------
  std::printf(
      "\nphase 2: per-step RP-CLUSTERING, full-set Lloyd vs coreset accel "
      "(%zu steps, %zu pattern dims)\n",
      steps, pdim);
  const std::vector<std::uint32_t> grids{64, 128, 256};
  std::vector<ScalingResult> scaling;
  util::ConsoleTable scaling_table({"grid", "points", "clusters", "ref ms",
                                    "accel ms", "speedup", "inertia ratio",
                                    "warm steps"});
  for (const std::uint32_t grid : grids) {
    ScalingResult r;
    r.grid = grid;
    r.points = static_cast<std::size_t>(grid) * grid;
    r.clusters = cluster_count(r.points);
    r.steps = steps;

    core::RpClusteringOptions reference;
    reference.clusters = r.clusters;
    reference.balanced = true;
    reference.seed = 42;
    // The paper's Algorithm 1 trains on every point; this is the cost the
    // coreset path is built to avoid.
    reference.train_subsample = r.points;
    std::size_t ignored_coreset = 0;
    std::size_t ignored_warm = 0;
    run_scaling_mode(grid, pdim, steps, reference, nullptr,
                     r.reference_ms_per_step, r.reference_inertia,
                     ignored_coreset, ignored_warm);

    core::RpClusteringOptions accel = reference;
    accel.accel.enabled = true;
    accel.accel.coreset_size = coreset;
    core::ClusteringCache cache;  // persists across steps → warm starts
    run_scaling_mode(grid, pdim, steps, accel, &cache, r.accel_ms_per_step,
                     r.accel_inertia, r.accel_coreset_size,
                     r.warm_started_steps);

    scaling_table.cell(static_cast<double>(grid), 0)
        .cell(static_cast<double>(r.points), 0)
        .cell(static_cast<double>(r.clusters), 0)
        .cell(r.reference_ms_per_step, 3)
        .cell(r.accel_ms_per_step, 3)
        .cell(r.speedup(), 2)
        .cell(r.inertia_ratio(), 4)
        .cell(static_cast<double>(r.warm_started_steps), 0);
    scaling_table.end_row();
    scaling.push_back(r);
  }
  scaling_table.print();

  // --- JSON ----------------------------------------------------------------
  const std::string json_path = args.get_string("json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmark\": \"clustering-engine\",\n");
  std::fprintf(json,
               "  \"config\": {\"fidelity_grid\": %u, \"particles\": %zu, "
               "\"warmup\": %zu, \"measure\": %zu, \"steps\": %zu, "
               "\"subregions\": %zu, \"coreset\": %zu},\n",
               fidelity_grid, particles, warmup, measure, steps, pdim,
               coreset);
  std::fprintf(json, "  \"solver_fidelity\": [\n");
  for (std::size_t i = 0; i < fidelity.size(); ++i) {
    const FidelityResult& r = fidelity[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"measured_steps\": %zu,\n"
                 "     \"fallback_items_total\": %llu,\n"
                 "     \"clustering_ms_per_step\": %.3f}%s\n",
                 r.mode.c_str(), r.steps,
                 static_cast<unsigned long long>(r.fallback_items),
                 r.clustering_ms_per_step,
                 i + 1 < fidelity.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingResult& r = scaling[i];
    std::fprintf(
        json,
        "    {\"grid\": %u, \"points\": %zu, \"clusters\": %zu, "
        "\"measured_steps\": %zu,\n"
        "     \"reference_ms_per_step\": %.3f, \"accel_ms_per_step\": "
        "%.3f,\n"
        "     \"speedup_x100\": %lld, \"inertia_ratio_x1000\": %lld,\n"
        "     \"reference_inertia\": %.6g, \"accel_inertia\": %.6g,\n"
        "     \"coreset_size\": %zu, \"warm_started_steps\": %zu}%s\n",
        r.grid, r.points, r.clusters, r.steps, r.reference_ms_per_step,
        r.accel_ms_per_step,
        static_cast<long long>(std::llround(r.speedup() * 100.0)),
        static_cast<long long>(std::llround(r.inertia_ratio() * 1000.0)),
        r.reference_inertia, r.accel_inertia, r.accel_coreset_size,
        r.warm_started_steps, i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());

  // --- gates ---------------------------------------------------------------
  int failures = 0;
  // Fidelity: the accel must never pay more fallback work than the
  // reference configuration in the same run.
  if (fidelity.size() == 2 &&
      fidelity[1].fallback_items > fidelity[0].fallback_items) {
    std::fprintf(stderr,
                 "FAIL fidelity: accel fallback items %llu exceed the "
                 "reference %llu\n",
                 static_cast<unsigned long long>(fidelity[1].fallback_items),
                 static_cast<unsigned long long>(fidelity[0].fallback_items));
    ++failures;
  }
  for (const ScalingResult& r : scaling) {
    if (r.grid < 128) continue;  // 64² is report-only (training ≈ noise)
    if (r.speedup() < 5.0) {
      std::fprintf(stderr,
                   "FAIL scaling %u²: speedup %.2fx below the 5x floor\n",
                   r.grid, r.speedup());
      ++failures;
    }
    if (r.inertia_ratio() > 1.0) {
      std::fprintf(stderr,
                   "FAIL scaling %u²: accel inertia %.6g worse than "
                   "reference %.6g (ratio %.4f > 1)\n",
                   r.grid, r.accel_inertia, r.reference_inertia,
                   r.inertia_ratio());
      ++failures;
    }
  }

  const std::string baseline_path = args.get_string("check-baseline");
  if (!baseline_path.empty()) {
    const std::string baseline = read_file(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    // Fallback counts are deterministic; 2% slack absorbs intentional
    // re-baselines of neighbouring subsystems, not noise.
    const long long base_fallback =
        baseline_value(baseline, "\"mode\": \"accel\"", "max_fallback_items");
    if (base_fallback < 0) {
      std::fprintf(stderr, "baseline %s has no accel max_fallback_items\n",
                   baseline_path.c_str());
      ++failures;
    } else {
      const unsigned long long limit =
          static_cast<unsigned long long>(base_fallback) / 100ull * 102ull;
      if (fidelity.size() == 2 && fidelity[1].fallback_items > limit) {
        std::fprintf(stderr,
                     "FAIL fidelity: accel fallback items %llu exceed "
                     "baseline %lld (+2%% = %llu)\n",
                     static_cast<unsigned long long>(
                         fidelity[1].fallback_items),
                     base_fallback, limit);
        ++failures;
      }
    }
    for (const ScalingResult& r : scaling) {
      const std::string anchor =
          "\"grid\": " + std::to_string(r.grid);
      const long long min_speedup =
          baseline_value(baseline, anchor, "min_speedup_x100");
      const long long max_ratio =
          baseline_value(baseline, anchor, "max_inertia_ratio_x1000");
      if (min_speedup < 0 && max_ratio < 0) continue;  // report-only grid
      if (min_speedup >= 0 &&
          std::llround(r.speedup() * 100.0) < min_speedup) {
        std::fprintf(stderr,
                     "FAIL scaling %u²: speedup %.2fx below baseline floor "
                     "%.2fx\n",
                     r.grid, r.speedup(),
                     static_cast<double>(min_speedup) / 100.0);
        ++failures;
      }
      if (max_ratio >= 0 &&
          std::llround(r.inertia_ratio() * 1000.0) > max_ratio) {
        std::fprintf(stderr,
                     "FAIL scaling %u²: inertia ratio %.4f above baseline "
                     "ceiling %.4f\n",
                     r.grid, r.inertia_ratio(),
                     static_cast<double>(max_ratio) / 1000.0);
        ++failures;
      }
    }
    std::printf("baseline check vs %s: %s\n", baseline_path.c_str(),
                failures == 0 ? "OK" : "FAILED");
  }
  return failures == 0 ? 0 : 1;
}
