/// Integrand-evaluation throughput of the SIMD batch engine on the Table I
/// default geometry (64×64 grid, Gaussian moment fill). One WakeIntegrand
/// per grid node evaluates the simpson-sweep sample layout — per subregion
/// interval the batch {m, b, (a+m)/2, (m+b)/2} — three ways:
///
///   scalar         four WakeIntegrand::eval calls per interval (the
///                  always-built reference path)
///   batch-scalar   eval_batch with the dispatch forced to Level::kScalar —
///                  isolates the geometry-hoisting + bulk-probe gains
///   batch-active   eval_batch at simd::active_level() — adds the AVX2
///                  inner-sum kernel when the host and build allow
///
/// Every batched output is compared bitwise against the scalar reference;
/// any mismatch fails the run regardless of flags. Writes
/// **BENCH_simd.json**. With `--check-baseline=tools/perf_baseline_simd.json`
/// the run also enforces the throughput floor: when the active level is
/// AVX2, batch-active must beat scalar by at least the baseline's
/// `min_speedup_pct` (the ISSUE gate is 200 — ≥2×). On scalar-only hosts
/// (or under BD_SIMD=off) the floor is skipped and only identity gates.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "beam/analytic.hpp"
#include "beam/history.hpp"
#include "beam/units.hpp"
#include "beam/wake.hpp"
#include "beam/wake_simd.hpp"
#include "quad/batch_eval.hpp"
#include "simt/probe.hpp"
#include "util/cli.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace bd;

/// Continuum-filled Gaussian moment history (no Monte-Carlo noise) on the
/// Table I default grid, plus one WakeIntegrand per grid node.
struct Scenario {
  beam::GridSpec spec;
  beam::BeamParams params;
  beam::WakeModel model;
  std::unique_ptr<beam::GridHistory> history;
  std::vector<beam::WakeIntegrand> integrands;
  std::size_t num_subregions;
  double sub_width = 1.0;

  explicit Scenario(std::uint32_t n, std::size_t subregions)
      : spec(beam::make_centered_grid(n, n, 6.0, 6.0)),
        model(beam::WakeModel::longitudinal()),
        num_subregions(subregions) {
    history = std::make_unique<beam::GridHistory>(
        spec, static_cast<std::uint32_t>(subregions) + 4);
    beam::Grid2D rho(spec), grad(spec);
    for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
      for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
        const double x = spec.x_at(ix);
        const double y = spec.y_at(iy);
        rho.at(ix, iy) = beam::gaussian_pdf(x, params.sigma_s) *
                         beam::gaussian_pdf(y, params.sigma_y);
        grad.at(ix, iy) = beam::gaussian_pdf_prime(x, params.sigma_s) *
                          beam::gaussian_pdf(y, params.sigma_y);
      }
    }
    history->fill_all(100, rho, grad);
    integrands.reserve(static_cast<std::size_t>(spec.nx) * spec.ny);
    for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
      for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
        integrands.emplace_back(*history, model, spec.x_at(ix), spec.y_at(iy),
                                100, sub_width);
      }
    }
  }

  std::size_t evals_per_pass() const {
    return integrands.size() * num_subregions * quad::kBatchWidth;
  }
};

/// One pass over every integrand × interval with scalar eval() calls.
/// Appends outputs to `out` (the bitwise reference) when non-null.
double scalar_pass(const Scenario& sc, std::vector<double>* out) {
  simt::LaneProbe& probe = simt::NullProbe::instance();
  double acc = 0.0;
  for (const beam::WakeIntegrand& f : sc.integrands) {
    for (std::size_t j = 0; j < sc.num_subregions; ++j) {
      const double a = static_cast<double>(j) * sc.sub_width;
      const double b = a + sc.sub_width;
      const double m = 0.5 * (a + b);
      const double u[quad::kBatchWidth] = {m, b, 0.5 * (a + m),
                                           0.5 * (m + b)};
      for (double uk : u) {
        const double v = f.eval(uk, probe);
        acc += v;
        if (out != nullptr) out->push_back(v);
      }
    }
  }
  return acc;
}

/// One pass with eval_batch (width kBatchWidth, the simpson_sweep layout).
double batch_pass(const Scenario& sc, std::vector<double>* out) {
  simt::LaneProbe& probe = simt::NullProbe::instance();
  double acc = 0.0;
  double fv[quad::kBatchWidth];
  for (const beam::WakeIntegrand& f : sc.integrands) {
    for (std::size_t j = 0; j < sc.num_subregions; ++j) {
      const double a = static_cast<double>(j) * sc.sub_width;
      const double b = a + sc.sub_width;
      const double m = 0.5 * (a + b);
      const double u[quad::kBatchWidth] = {m, b, 0.5 * (a + m),
                                           0.5 * (m + b)};
      f.eval_batch(u, fv, quad::kBatchWidth, probe);
      for (double v : fv) {
        acc += v;
        if (out != nullptr) out->push_back(v);
      }
    }
  }
  return acc;
}

/// Best-of-`reps` wall nanoseconds per evaluation for one pass function.
template <typename Fn>
double time_ns_per_eval(const Scenario& sc, std::size_t reps, Fn&& pass) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    util::WallTimer timer;
    const double acc = pass();
    const double secs = timer.seconds();
    // Keep the accumulator observable so the pass cannot be elided.
    if (acc == 0.12345678901234567) std::printf("%g\n", acc);
    best = std::min(best, secs);
  }
  return best * 1e9 / static_cast<double>(sc.evals_per_pass());
}

/// Fixed-schema scan (same idiom as bench_rp_eval): the integer following
/// `"<key>":` inside the `"kernel": "<kind>"` object; -1 when missing.
long long baseline_value(const std::string& text, const std::string& kind,
                         const std::string& key) {
  const std::string anchor = "\"kernel\": \"" + kind + "\"";
  std::size_t at = text.find(anchor);
  if (at == std::string::npos) return -1;
  const std::size_t end = text.find('}', at);
  const std::string needle = "\"" + key + "\":";
  at = text.find(needle, at);
  if (at == std::string::npos || (end != std::string::npos && at > end)) {
    return -1;
  }
  return std::strtoll(text.c_str() + at + needle.size(), nullptr, 10);
}

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_simd",
                       "WakeIntegrand batch-evaluation throughput + identity");
  args.add_int("grid", 64, "grid resolution (Table I default)");
  args.add_int("subregions", 12, "radial subregions (sweep intervals)");
  args.add_int("reps", 5, "timed repetitions (best-of)");
  args.add_string("json", "BENCH_simd.json", "JSON output path");
  args.add_string("check-baseline", "",
                  "baseline JSON; exit 1 below the speedup floor");
  if (!args.parse(argc, argv)) return 0;

  const auto grid = static_cast<std::uint32_t>(args.get_int("grid"));
  const auto subregions =
      static_cast<std::size_t>(args.get_int("subregions"));
  const auto reps = static_cast<std::size_t>(args.get_int("reps"));

  Scenario sc(grid, subregions);
  const simd::Level active = beam::wake_batch_level();

  std::printf("SIMD integrand engine — %ux%u grid, %zu subregions, "
              "%zu evals/pass, level %s\n\n",
              grid, grid, subregions, sc.evals_per_pass(),
              simd::level_name(active));

  // --- identity: every batched output bitwise equals the scalar path ------
  std::vector<double> ref, got;
  ref.reserve(sc.evals_per_pass());
  got.reserve(sc.evals_per_pass());
  scalar_pass(sc, &ref);
  int failures = 0;
  const char* const variants[] = {"batch-scalar", "batch-active"};
  for (const char* variant : variants) {
    const bool forced = std::strcmp(variant, "batch-scalar") == 0;
    if (forced) simd::override_level(simd::Level::kScalar);
    got.clear();
    batch_pass(sc, &got);
    if (forced) simd::reset_level();
    const bool same =
        got.size() == ref.size() &&
        std::memcmp(got.data(), ref.data(), ref.size() * sizeof(double)) == 0;
    if (!same) {
      std::fprintf(stderr, "FAIL %s: outputs not bitwise identical to the "
                           "scalar reference\n", variant);
      ++failures;
    }
  }
  std::printf("identity vs scalar reference: %s\n\n",
              failures == 0 ? "OK (bitwise)" : "FAILED");

  // --- throughput ---------------------------------------------------------
  const double scalar_ns =
      time_ns_per_eval(sc, reps, [&] { return scalar_pass(sc, nullptr); });
  simd::override_level(simd::Level::kScalar);
  const double batch_scalar_ns =
      time_ns_per_eval(sc, reps, [&] { return batch_pass(sc, nullptr); });
  simd::reset_level();
  const double batch_active_ns =
      time_ns_per_eval(sc, reps, [&] { return batch_pass(sc, nullptr); });
  const double speedup = scalar_ns / std::max(1e-12, batch_active_ns);

  util::ConsoleTable table({"path", "ns/eval", "speedup vs scalar"});
  table.cell("scalar").cell(scalar_ns, 1).cell(1.0, 2).end_row();
  table.cell("batch-scalar")
      .cell(batch_scalar_ns, 1)
      .cell(scalar_ns / std::max(1e-12, batch_scalar_ns), 2)
      .end_row();
  table.cell(std::string("batch-") + simd::level_name(active))
      .cell(batch_active_ns, 1)
      .cell(speedup, 2)
      .end_row();
  table.print();

  const std::string json_path = args.get_string("json");
  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmark\": \"simd-eval-throughput\",\n");
  std::fprintf(json,
               "  \"config\": {\"grid\": %u, \"subregions\": %zu, "
               "\"reps\": %zu, \"evals_per_pass\": %zu},\n",
               grid, subregions, reps, sc.evals_per_pass());
  std::fprintf(json, "  \"simd_level\": \"%s\",\n", simd::level_name(active));
  std::fprintf(json, "  \"results\": [\n");
  std::fprintf(json,
               "    {\"kernel\": \"wake-batch\", \"scalar_ns_per_eval\": "
               "%.2f,\n     \"batch_scalar_ns_per_eval\": %.2f, "
               "\"batch_active_ns_per_eval\": %.2f,\n"
               "     \"speedup_pct\": %lld, \"identical\": %d}\n",
               scalar_ns, batch_scalar_ns, batch_active_ns,
               static_cast<long long>(speedup * 100.0), failures == 0 ? 1 : 0);
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());

  // --- regression gate ----------------------------------------------------
  const std::string baseline_path = args.get_string("check-baseline");
  if (!baseline_path.empty()) {
    const std::string baseline = read_file(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    const long long floor_pct =
        baseline_value(baseline, "wake-batch", "min_speedup_pct");
    if (floor_pct < 0) {
      std::fprintf(stderr, "baseline %s has no min_speedup_pct\n",
                   baseline_path.c_str());
      ++failures;
    } else if (active == simd::Level::kAvx2) {
      if (speedup * 100.0 < static_cast<double>(floor_pct)) {
        std::fprintf(stderr,
                     "FAIL wake-batch: speedup %.2fx below the baseline "
                     "floor %.2fx\n",
                     speedup, static_cast<double>(floor_pct) / 100.0);
        ++failures;
      }
    } else {
      std::printf("speedup floor skipped: active level is %s (floor gates "
                  "AVX2 hosts only; identity still enforced)\n",
                  simd::level_name(active));
    }
    std::printf("baseline check vs %s: %s\n", baseline_path.c_str(),
                failures == 0 ? "OK" : "FAILED");
  }
  return failures == 0 ? 0 : 1;
}
