/// Tests for the LaneProbe instrumentation interface and site ids.

#include <gtest/gtest.h>

#include "simt/device.hpp"
#include "simt/probe.hpp"

namespace bd::simt {
namespace {

TEST(SiteId, StableAndDistinct) {
  constexpr std::uint32_t a = site_id("module/site-a");
  constexpr std::uint32_t b = site_id("module/site-b");
  static_assert(a != b, "distinct names must hash differently");
  EXPECT_EQ(site_id("module/site-a"), a);
  EXPECT_NE(site_id(""), site_id("x"));
}

TEST(NullProbe, IsSharedAndInert) {
  NullProbe& p = NullProbe::instance();
  EXPECT_EQ(&p, &NullProbe::instance());
  // No observable state; just must not crash.
  p.count_flops(5);
  p.load(1, nullptr, 8);
  p.loop_trip(2, 100);
  p.branch(3, true);
}

TEST(CountingProbe, AccumulatesAllKinds) {
  CountingProbe p;
  p.count_flops(10);
  p.count_flops(5);
  p.load(1, nullptr, 24);
  p.load(1, nullptr, 8);
  p.loop_trip(2, 7);
  p.branch(3, false);
  p.branch(3, true);
  EXPECT_EQ(p.flops(), 15u);
  EXPECT_EQ(p.loads(), 2u);
  EXPECT_EQ(p.load_bytes(), 32u);
  EXPECT_EQ(p.loop_iterations(), 7u);
  EXPECT_EQ(p.branches(), 2u);
  p.reset();
  EXPECT_EQ(p.flops(), 0u);
  EXPECT_EQ(p.loads(), 0u);
}

TEST(DeviceSpec, K40Defaults) {
  const DeviceSpec spec = tesla_k40();
  EXPECT_EQ(spec.warp_size, 32u);
  EXPECT_EQ(spec.num_sms, 15u);
  EXPECT_DOUBLE_EQ(spec.peak_dp_gflops, 1430.0);
  EXPECT_GT(spec.theoretical_bw_gbs, spec.measured_bw_gbs);
  EXPECT_NEAR(spec.ridge_ai(), 1430.0 / 200.0, 1e-12);
  EXPECT_EQ(spec.l1_bytes, 48u * 1024u);
  EXPECT_EQ(spec.l1_line_bytes, 128u);
  EXPECT_EQ(spec.l2_line_bytes, 32u);
}

TEST(DeviceSpec, TestDeviceIsSmall) {
  const DeviceSpec spec = test_device();
  EXPECT_LT(spec.l1_bytes, tesla_k40().l1_bytes);
  EXPECT_EQ(spec.num_sms, 2u);
}

}  // namespace
}  // namespace bd::simt
