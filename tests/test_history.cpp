/// Tests for the moment-grid history ring buffer.

#include <gtest/gtest.h>

#include "beam/deposit.hpp"
#include "beam/history.hpp"
#include "util/check.hpp"

namespace bd::beam {
namespace {

GridSpec small_spec() { return make_centered_grid(8, 8, 1.0, 1.0); }

std::pair<Grid2D, Grid2D> constant_grids(const GridSpec& spec, double value) {
  Grid2D rho(spec), grad(spec);
  rho.fill(value);
  grad.fill(-value);
  return {std::move(rho), std::move(grad)};
}

TEST(History, PushAndRetrieve) {
  GridHistory history(small_spec(), 4);
  auto [rho, grad] = constant_grids(small_spec(), 1.0);
  history.fill_all(0, rho, grad);
  for (std::int64_t step = 1; step <= 3; ++step) {
    auto [r, g] = constant_grids(small_spec(), static_cast<double>(step));
    history.push_step(step, r, g);
  }
  EXPECT_EQ(history.latest_step(), 3);
  EXPECT_DOUBLE_EQ(history.value(3, kChannelRho, 2, 2), 3.0);
  EXPECT_DOUBLE_EQ(history.value(2, kChannelRho, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(history.value(1, kChannelDrhoDs, 5, 5), -1.0);
  EXPECT_DOUBLE_EQ(history.value(0, kChannelRho, 0, 0), 1.0);
}

TEST(History, EvictsOldestBeyondDepth) {
  GridHistory history(small_spec(), 3);
  auto [rho, grad] = constant_grids(small_spec(), 0.0);
  history.fill_all(0, rho, grad);
  for (std::int64_t step = 1; step <= 4; ++step) {
    auto [r, g] = constant_grids(small_spec(), static_cast<double>(step));
    history.push_step(step, r, g);
  }
  EXPECT_TRUE(history.has_step(4));
  EXPECT_TRUE(history.has_step(2));
  EXPECT_FALSE(history.has_step(1));
  EXPECT_THROW(history.value(1, kChannelRho, 0, 0), bd::CheckError);
}

TEST(History, RejectsNonConsecutivePush) {
  GridHistory history(small_spec(), 4);
  auto [rho, grad] = constant_grids(small_spec(), 1.0);
  history.fill_all(0, rho, grad);
  EXPECT_THROW(history.push_step(2, rho, grad), bd::CheckError);
  EXPECT_THROW(history.push_step(0, rho, grad), bd::CheckError);
}

TEST(History, RejectsWrongSpec) {
  GridHistory history(small_spec(), 2);
  Grid2D wrong(make_centered_grid(4, 4, 1.0, 1.0));
  EXPECT_THROW(history.push_step(0, wrong, wrong), bd::CheckError);
}

TEST(History, FillAllPopulatesWholeDepth) {
  GridHistory history(small_spec(), 5);
  auto [rho, grad] = constant_grids(small_spec(), 7.0);
  history.fill_all(10, rho, grad);
  for (std::int64_t step = 6; step <= 10; ++step) {
    EXPECT_TRUE(history.has_step(step));
    EXPECT_DOUBLE_EQ(history.value(step, kChannelRho, 3, 3), 7.0);
  }
  EXPECT_FALSE(history.has_step(5));
}

TEST(History, RowPtrMatchesValues) {
  GridHistory history(small_spec(), 2);
  Grid2D rho(small_spec()), grad(small_spec());
  rho.at(3, 4) = 42.0;
  history.fill_all(0, rho, grad);
  const double* row = history.row_ptr(0, kChannelRho, 2, 4);
  EXPECT_DOUBLE_EQ(row[1], 42.0);
  EXPECT_EQ(history.plane(0, kChannelRho) + 4 * 8 + 2, row);
}

TEST(History, SlotsShareOneContiguousBuffer) {
  // The SIMT cache model needs stable, distinct addresses per (step,
  // channel) plane inside one allocation.
  GridHistory history(small_spec(), 3);
  auto [rho, grad] = constant_grids(small_spec(), 1.0);
  history.fill_all(2, rho, grad);
  const double* lo = history.plane(0, kChannelRho);
  const double* hi = lo;
  for (std::int64_t step = 0; step <= 2; ++step) {
    for (auto channel : {kChannelRho, kChannelDrhoDs}) {
      const double* p = history.plane(step, channel);
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
  }
  const std::size_t plane = small_spec().nodes();
  EXPECT_EQ(static_cast<std::size_t>(hi - lo), plane * (3 * 2 - 1));
  EXPECT_EQ(history.footprint_bytes(), plane * 6 * sizeof(double));
}

TEST(History, DepthOneStillWorks) {
  GridHistory history(small_spec(), 1);
  auto [rho, grad] = constant_grids(small_spec(), 2.0);
  history.fill_all(0, rho, grad);
  history.push_step(1, rho, grad);
  EXPECT_TRUE(history.has_step(1));
  EXPECT_FALSE(history.has_step(0));
}

}  // namespace
}  // namespace bd::beam
