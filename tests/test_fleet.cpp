/// SimulationFleet: submit/poll/cancel lifecycle, failure containment,
/// per-job telemetry and fault-harness isolation, eviction + resume
/// digest identity, resume-on-submit from a pre-existing spool file, and
/// the supervisor layer — crash-safe journal recovery, checkpoint-based
/// retry with backoff, quarantine, the quantum watchdog, drain/restart
/// and the stale-tmp sweep (docs/ROBUSTNESS.md).
///
/// tools/ci.sh reruns this suite under a BD_FAULT sweep: tests that pin
/// `fault_spec` (or an inert private harness) are immune by design; the
/// rest must *absorb* ambient faults through the retry machinery.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "baselines/heuristic.hpp"
#include "baselines/two_phase.hpp"
#include "core/checkpoint.hpp"
#include "core/fleet.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "simt/device.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/parallel.hpp"
#include "util/serialize.hpp"
#include "util/telemetry.hpp"

namespace bd {
namespace {

namespace fs = std::filesystem;

core::SimConfig fleet_config(std::uint64_t seed,
                             bool health_checks = false) {
  core::SimConfig config;
  config.particles = 2000;
  config.nx = 16;
  config.ny = 16;
  config.tolerance = 1e-5;
  config.rigid = false;
  config.seed = seed;
  config.health_checks = health_checks;
  return config;
}

std::unique_ptr<core::Simulation> build_sim(std::uint64_t seed,
                                            bool health_checks = false) {
  auto sim = std::make_unique<core::Simulation>(
      fleet_config(seed, health_checks),
      std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
  if (health_checks) {
    sim->add_fallback_solver(
        std::make_unique<baselines::HeuristicSolver>(simt::tesla_k40()));
    sim->add_fallback_solver(
        std::make_unique<baselines::TwoPhaseSolver>(simt::tesla_k40()));
  }
  return sim;
}

core::FleetJobSpec job_spec(const std::string& name, std::uint64_t seed,
                            std::size_t target_steps) {
  core::FleetJobSpec spec;
  spec.name = name;
  spec.factory = [seed] { return build_sim(seed); };
  spec.target_steps = target_steps;
  return spec;
}

/// Digest of an uninterrupted solo run — the reference every supervised
/// path (retry, watchdog, kill-and-recover, drain/restart) must reproduce
/// bit-for-bit. The sim gets an inert private harness so an ambient
/// BD_FAULT sweep cannot perturb the reference.
std::uint32_t solo_digest(std::uint64_t seed, std::size_t steps,
                          bool health_checks = false) {
  util::faultinject::FaultHarness inert;
  auto sim = build_sim(seed, health_checks);
  sim->set_fault_harness(&inert);
  sim->initialize();
  std::uint32_t digest = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    digest = core::fleet_digest_step(sim->step(), digest);
  }
  return digest;
}

std::uint64_t global_counter(const std::string& name) {
  const auto snap = util::telemetry::MetricsRegistry::global().snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0u : it->second;
}

/// Scratch directory for spool files, wiped on teardown.
class FleetSpoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("bd_fleet_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

TEST(Fleet, SubmitValidatesSpecs) {
  core::SimulationFleet fleet;
  EXPECT_THROW(fleet.submit(job_spec("", 1, 4)), bd::CheckError);
  EXPECT_THROW(fleet.submit(job_spec("a/b", 1, 4)), bd::CheckError);
  EXPECT_THROW(fleet.submit(job_spec("no-steps", 1, 0)), bd::CheckError);
  core::FleetJobSpec no_factory;
  no_factory.name = "no-factory";
  no_factory.target_steps = 4;
  EXPECT_THROW(fleet.submit(no_factory), bd::CheckError);

  const auto id = fleet.submit(job_spec("ok", 1, 2));
  EXPECT_THROW(fleet.submit(job_spec("ok", 2, 2)), bd::CheckError);
  EXPECT_EQ(fleet.job_count(), 1u);
  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
}

TEST(Fleet, JobsRunToCompletion) {
  core::FleetOptions options;
  options.quantum_steps = 2;
  core::SimulationFleet fleet(options);
  const auto a = fleet.submit(job_spec("a", 11, 5));
  const auto b = fleet.submit(job_spec("b", 22, 3));
  fleet.wait_all();

  const core::FleetJobStatus sa = fleet.poll(a);
  const core::FleetJobStatus sb = fleet.poll(b);
  EXPECT_EQ(sa.state, core::FleetJobState::kDone);
  EXPECT_EQ(sa.steps_done, 5u);
  EXPECT_EQ(sa.target_steps, 5u);
  EXPECT_NE(sa.digest, 0u);
  EXPECT_TRUE(sa.error.empty());
  EXPECT_EQ(sb.state, core::FleetJobState::kDone);
  EXPECT_EQ(sb.steps_done, 3u);
  // Different seeds walk different trajectories.
  EXPECT_NE(sa.digest, sb.digest);
  EXPECT_THROW(fleet.poll(99), bd::CheckError);
}

TEST(Fleet, SameSpecSameDigest) {
  core::SimulationFleet fleet;
  const auto a = fleet.submit(job_spec("a", 7, 4));
  const auto b = fleet.submit(job_spec("b", 7, 4));
  fleet.wait_all();
  // Identical configs on isolated jobs are bit-identical regardless of
  // which lane/thread ran them — the concurrency-corruption regression.
  EXPECT_EQ(fleet.poll(a).digest, fleet.poll(b).digest);
}

TEST(Fleet, CancelSemantics) {
  // One giant quantum keeps the first job kRunning while the second sits
  // queued behind it (single lane is enough: lanes drain in FIFO order).
  core::FleetOptions options;
  options.quantum_steps = 100000;
  core::SimulationFleet fleet(options);
  const auto running = fleet.submit(job_spec("running", 1, 100000));
  const auto queued = fleet.submit(job_spec("queued", 2, 100000));

  EXPECT_TRUE(fleet.cancel(queued));
  const core::FleetJobStatus qs = fleet.wait(queued);
  EXPECT_EQ(qs.state, core::FleetJobState::kCancelled);
  EXPECT_EQ(qs.steps_done, 0u);
  EXPECT_FALSE(fleet.cancel(queued));  // already terminal

  // Cancel the first job only once it is provably mid-quantum: the lane
  // must notice the flag at the next step boundary.
  while (fleet.poll(running).steps_done == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fleet.cancel(running));
  const core::FleetJobStatus rs = fleet.wait(running);
  EXPECT_EQ(rs.state, core::FleetJobState::kCancelled);
  EXPECT_GE(rs.steps_done, 1u);
  EXPECT_LT(rs.steps_done, 100000u);
  EXPECT_FALSE(fleet.cancel(running));
}

TEST(Fleet, DestructorCancelsOutstandingJobs) {
  // The dtor must cancel a mid-quantum job at its next step boundary and
  // join without deadlock.
  core::FleetOptions options;
  options.quantum_steps = 100000;
  core::SimulationFleet fleet(options);
  const auto id = fleet.submit(job_spec("long", 3, 100000));
  while (fleet.poll(id).steps_done == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Fleet, FailureIsContained) {
  core::SimulationFleet fleet;
  core::FleetJobSpec bad;
  bad.name = "bad";
  bad.factory = [] { return std::unique_ptr<core::Simulation>(); };
  bad.target_steps = 4;
  const auto bad_id = fleet.submit(std::move(bad));
  const auto good_id = fleet.submit(job_spec("good", 5, 3));
  fleet.wait_all();

  const core::FleetJobStatus bs = fleet.poll(bad_id);
  EXPECT_EQ(bs.state, core::FleetJobState::kFailed);
  EXPECT_NE(bs.error.find("factory returned null"), std::string::npos)
      << bs.error;
  EXPECT_EQ(fleet.poll(good_id).state, core::FleetJobState::kDone);
}

// ---------------------------------------------------------------------------
// Isolation
// ---------------------------------------------------------------------------

TEST(Fleet, PerJobMetricsAreIsolated) {
  using util::telemetry::MetricsRegistry;
  MetricsRegistry::global().reset();

  core::SimulationFleet fleet;
  // Pinned fault-free: the exact sim.steps counts below must hold even
  // when the CI fault sweep sets an ambient BD_FAULT that would retry.
  core::FleetJobSpec spec_a = job_spec("a", 1, 4);
  spec_a.fault_spec = "none";
  core::FleetJobSpec spec_b = job_spec("b", 2, 7);
  spec_b.fault_spec = "none";
  const auto a = fleet.submit(std::move(spec_a));
  const auto b = fleet.submit(std::move(spec_b));
  fleet.wait_all();

  const auto sa = fleet.job_metrics(a);
  const auto sb = fleet.job_metrics(b);
  EXPECT_EQ(sa.counters.at("sim.steps"), 4u);
  EXPECT_EQ(sb.counters.at("sim.steps"), 7u);
  // Nothing leaked into the process-global registry: it holds fleet.* and
  // pool.* bookkeeping, never a job's sim.* stream.
  const auto global = MetricsRegistry::global().snapshot();
  EXPECT_EQ(global.counters.count("sim.steps"), 0u);
  EXPECT_EQ(global.counters.at("fleet.completed"), 2u);
  EXPECT_EQ(global.counters.at("fleet.submitted"), 2u);
  MetricsRegistry::global().reset();
}

TEST(Fleet, PerJobFaultHarnessesAreIsolated) {
  util::faultinject::clear();  // default harness must stay untouched

  core::SimulationFleet fleet;
  core::FleetJobSpec faulty = job_spec("faulty", 9, 5);
  faulty.factory = [] { return build_sim(9, /*health_checks=*/true); };
  faulty.fault_spec = "grid_nan@2:1";
  const auto faulty_id = fleet.submit(std::move(faulty));
  core::FleetJobSpec clean = job_spec("clean", 10, 5);
  clean.fault_spec = "none";  // stays clean even under a CI BD_FAULT sweep
  const auto clean_id = fleet.submit(std::move(clean));
  fleet.wait_all();

  EXPECT_EQ(fleet.poll(faulty_id).state, core::FleetJobState::kDone);
  EXPECT_EQ(fleet.poll(clean_id).state, core::FleetJobState::kDone);
  // The injection fired inside the faulty job's scope only.
  const auto faulty_metrics = fleet.job_metrics(faulty_id);
  const auto clean_metrics = fleet.job_metrics(clean_id);
  EXPECT_EQ(faulty_metrics.counters.at("faultinject.injections"), 1u);
  EXPECT_EQ(clean_metrics.counters.count("faultinject.injections"), 0u);
  // ...and never consumed budget from the process-default harness.
  EXPECT_EQ(util::faultinject::fired_count(), 0u);
}

// ---------------------------------------------------------------------------
// Eviction + resume
// ---------------------------------------------------------------------------

TEST_F(FleetSpoolTest, EvictionPreservesDigests) {
  using util::telemetry::MetricsRegistry;
  constexpr std::size_t kJobs = 3;
  constexpr std::size_t kSteps = 6;

  // Reference digests: an unconstrained fleet where every sim stays
  // resident from first to last step.
  std::uint32_t reference[kJobs] = {};
  {
    core::SimulationFleet fleet;
    core::SimulationFleet::JobId ids[kJobs];
    for (std::size_t i = 0; i < kJobs; ++i) {
      ids[i] = fleet.submit(job_spec("job" + std::to_string(i),
                                     100 + i, kSteps));
    }
    fleet.wait_all();
    for (std::size_t i = 0; i < kJobs; ++i) {
      reference[i] = fleet.poll(ids[i]).digest;
    }
  }

  MetricsRegistry::global().reset();
  {
    core::FleetOptions options;
    options.max_resident = 1;
    options.spool_dir = dir_;
    options.quantum_steps = 2;
    core::SimulationFleet fleet(options);
    core::SimulationFleet::JobId ids[kJobs];
    for (std::size_t i = 0; i < kJobs; ++i) {
      ids[i] = fleet.submit(job_spec("job" + std::to_string(i),
                                     100 + i, kSteps));
    }
    fleet.wait_all();
    const auto global = MetricsRegistry::global().snapshot();
    EXPECT_GT(global.counters.at("fleet.evictions"), 0u);
    if (std::getenv("BD_FAULT") == nullptr) {
      EXPECT_EQ(global.counters.at("fleet.evictions"),
                global.counters.at("fleet.resumes"));
    } else {
      // Under the CI fault sweep a retry restores from the spool too, so
      // resumes can outnumber evictions.
      EXPECT_GE(global.counters.at("fleet.resumes"),
                global.counters.at("fleet.evictions"));
    }
    for (std::size_t i = 0; i < kJobs; ++i) {
      const core::FleetJobStatus status = fleet.poll(ids[i]);
      EXPECT_EQ(status.state, core::FleetJobState::kDone);
      EXPECT_EQ(status.steps_done, kSteps);
      // The physics digest chains straight across evict/resume cycles.
      EXPECT_EQ(status.digest, reference[i]) << "job " << i;
      // Completed jobs leave no spool file behind.
      EXPECT_FALSE(
          fs::exists(dir_ + "/job" + std::to_string(i) + ".ckpt"));
    }
  }
  MetricsRegistry::global().reset();
}

TEST_F(FleetSpoolTest, ResumesFromPreexistingSpoolFile) {
  constexpr std::size_t kTarget = 6;
  constexpr std::size_t kPrefix = 2;

  // A prior process ran the scenario for two steps and spooled it. Both
  // solo sims run with inert harnesses (a CI BD_FAULT sweep must not
  // perturb the spooled state or the expected digest).
  util::faultinject::FaultHarness inert;
  auto sim = build_sim(42);
  sim->set_fault_harness(&inert);
  sim->initialize();
  sim->run(kPrefix);
  const std::string spool = dir_ + "/warm.ckpt";
  core::save_checkpoint(*sim, spool);

  // Expected digest of the *resumed* steps, chained from zero (the fresh
  // job starts with an empty digest; only post-resume steps contribute).
  std::uint32_t expected = 0;
  {
    auto replay = build_sim(42);
    replay->set_fault_harness(&inert);
    core::restore_checkpoint(*replay, spool);
    for (std::size_t i = kPrefix; i < kTarget; ++i) {
      expected = core::fleet_digest_step(replay->step(), expected);
    }
  }

  core::FleetOptions options;
  options.spool_dir = dir_;
  core::SimulationFleet fleet(options);
  core::FleetJobSpec warm = job_spec("warm", 42, kTarget);
  warm.fault_spec = "none";
  const auto id = fleet.submit(std::move(warm));
  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
  EXPECT_EQ(status.steps_done, kTarget);
  EXPECT_EQ(status.digest, expected);
  // The sim stepped only kTarget - kPrefix times inside the fleet.
  EXPECT_EQ(fleet.job_metrics(id).counters.at("sim.steps"),
            kTarget - kPrefix);
}

// ---------------------------------------------------------------------------
// Retry + quarantine
// ---------------------------------------------------------------------------

TEST(Fleet, RetryWithoutSpoolRestartsFromScratch) {
  using util::telemetry::MetricsRegistry;
  MetricsRegistry::global().reset();
  constexpr std::size_t kSteps = 5;
  const std::uint32_t reference = solo_digest(33, kSteps);

  // No spool dir: journaling is off and there is no checkpoint to restore
  // — the retry path must rebuild the sim from scratch. pool_throw is
  // pure control flow (the poisoned step never lands in the digest), so
  // the retried run converges on the clean reference digest.
  core::FleetOptions options;
  options.quantum_steps = 2;
  core::SimulationFleet fleet(options);
  core::FleetJobSpec spec = job_spec("retry", 33, kSteps);
  spec.fault_spec = "pool_throw@3";
  spec.retry.max_attempts = 3;
  spec.retry.backoff_rounds = 2;
  const auto id = fleet.submit(std::move(spec));

  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
  EXPECT_EQ(status.steps_done, kSteps);
  EXPECT_EQ(status.attempts, 1u);
  EXPECT_TRUE(status.error.empty()) << status.error;
  EXPECT_EQ(status.digest, reference);
  EXPECT_EQ(global_counter("fleet.retries"), 1u);
  MetricsRegistry::global().reset();
}

TEST_F(FleetSpoolTest, RetryRestoresFromCheckpoint) {
  using util::telemetry::MetricsRegistry;
  MetricsRegistry::global().reset();
  constexpr std::size_t kSteps = 6;
  const std::uint32_t reference = solo_digest(44, kSteps);

  core::FleetOptions options;
  options.spool_dir = dir_;
  options.quantum_steps = 2;
  options.checkpoint_every_quanta = 1;  // spool at steps 2, 4, ...
  core::SimulationFleet fleet(options);
  core::FleetJobSpec spec = job_spec("ckptretry", 44, kSteps);
  spec.fault_spec = "pool_throw@5";  // fails after the step-4 checkpoint
  spec.retry.max_attempts = 2;
  const auto id = fleet.submit(std::move(spec));

  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
  EXPECT_EQ(status.steps_done, kSteps);
  EXPECT_EQ(status.attempts, 1u);
  EXPECT_TRUE(status.error.empty()) << status.error;
  // Restored from the step-4 spool (digest rewound with it), then the
  // remaining clean steps chain to exactly the uninterrupted digest.
  EXPECT_EQ(status.digest, reference);
  EXPECT_EQ(global_counter("fleet.retries"), 1u);
  EXPECT_GE(global_counter("fleet.resumes"), 1u);
  MetricsRegistry::global().reset();
}

TEST_F(FleetSpoolTest, QuarantineAfterExhaustedRetries) {
  using util::telemetry::MetricsRegistry;
  MetricsRegistry::global().reset();

  core::FleetOptions options;
  options.spool_dir = dir_;
  options.quantum_steps = 1;
  options.checkpoint_every_quanta = 1;  // a good checkpoint lands at step 1
  core::SimulationFleet fleet(options);
  core::FleetJobSpec spec = job_spec("poison", 55, 8);
  // One-shot entries: step 2 fails on the first attempt AND on the retry.
  spec.fault_spec = "pool_throw@2;pool_throw@2;pool_throw@2";
  spec.retry.max_attempts = 2;
  spec.retry.backoff_rounds = 1;
  const auto id = fleet.submit(std::move(spec));

  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kQuarantined);
  EXPECT_EQ(status.attempts, 2u);
  EXPECT_FALSE(status.error.empty());

  const auto quarantine = fleet.quarantined();
  ASSERT_EQ(quarantine.size(), 1u);
  EXPECT_EQ(quarantine[0].name, "poison");
  EXPECT_EQ(quarantine[0].attempts, 2u);
  EXPECT_FALSE(quarantine[0].error.empty());
  // The last good checkpoint stays on disk for postmortem.
  ASSERT_FALSE(quarantine[0].checkpoint_path.empty());
  EXPECT_TRUE(fs::exists(quarantine[0].checkpoint_path));

  EXPECT_EQ(global_counter("fleet.quarantined"), 1u);
  EXPECT_EQ(global_counter("fleet.retries"), 1u);
  MetricsRegistry::global().reset();
}

TEST_F(FleetSpoolTest, LadderExhaustionRetriesFromCheckpoint) {
  using util::telemetry::MetricsRegistry;
  MetricsRegistry::global().reset();

  // Nine one-shot wildcard corruptions poison steps 1..9: the ladder
  // demotes 0->1 after step 3, 1->2 after step 6, and three unhealthy
  // steps on the last rung (7..9) exhaust it — a job-level failure. The
  // retry restores the step-8 checkpoint; with the budget spent, steps
  // 9..12 run clean and the job completes.
  std::string fault;
  for (int i = 0; i < 9; ++i) fault += (i ? ";grid_nan:40" : "grid_nan:40");

  core::FleetOptions options;
  options.spool_dir = dir_;
  options.quantum_steps = 4;
  options.checkpoint_every_quanta = 1;
  core::SimulationFleet fleet(options);
  core::FleetJobSpec spec;
  spec.name = "ladder";
  spec.factory = [] { return build_sim(77, /*health_checks=*/true); };
  spec.target_steps = 12;
  spec.fault_spec = fault;
  spec.retry.max_attempts = 2;
  const auto id = fleet.submit(std::move(spec));

  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
  EXPECT_EQ(status.steps_done, 12u);
  EXPECT_EQ(status.attempts, 1u);
  EXPECT_TRUE(status.error.empty()) << status.error;
  EXPECT_TRUE(fleet.quarantined().empty());
  EXPECT_EQ(global_counter("fleet.retries"), 1u);
  MetricsRegistry::global().reset();
}

// ---------------------------------------------------------------------------
// Quantum watchdog
// ---------------------------------------------------------------------------

TEST_F(FleetSpoolTest, WatchdogTripsSlowJobAndItStillCompletes) {
  using util::telemetry::MetricsRegistry;
  MetricsRegistry::global().reset();

  core::FleetOptions options;
  options.spool_dir = dir_;
  options.quantum_steps = 5;
  options.step_deadline_ms = 250;
  core::SimulationFleet fleet(options);
  core::FleetJobSpec spec;
  spec.name = "slow";
  // Fallback tiers installed so the post-trip demotion has a rung to go to.
  spec.factory = [] { return build_sim(66, /*health_checks=*/true); };
  spec.target_steps = 5;
  spec.fault_spec = "slow_step@2:2000";  // step 2 stalls 2 s >> 250 ms
  // Generous budget: a loaded CI machine may trip the deadline spuriously
  // on other steps too, and every trip must end in a retry, not quarantine.
  spec.retry.max_attempts = 10;
  const auto id = fleet.submit(std::move(spec));

  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
  EXPECT_EQ(status.steps_done, 5u);
  EXPECT_GE(status.attempts, 1u);
  EXPECT_TRUE(status.error.empty()) << status.error;
  EXPECT_GE(global_counter("fleet.watchdog_trips"), 1u);
  EXPECT_GE(global_counter("fleet.retries"), 1u);
  // The trip demoted the job one ladder rung (its private registry).
  const auto metrics = fleet.job_metrics(id);
  const auto it = metrics.counters.find("health.demotions");
  ASSERT_NE(it, metrics.counters.end());
  EXPECT_GE(it->second, 1u);
  MetricsRegistry::global().reset();
}

// ---------------------------------------------------------------------------
// Journal recovery
// ---------------------------------------------------------------------------

TEST_F(FleetSpoolTest, KillAndRecoverDigestIdentity) {
  using util::telemetry::MetricsRegistry;
  constexpr std::size_t kJobs = 3;
  constexpr std::size_t kTarget = 16;

  std::uint32_t reference[kJobs] = {};
  for (std::size_t i = 0; i < kJobs; ++i) {
    reference[i] = solo_digest(100 + i, kTarget);
  }

  // Fleet A runs the jobs partway, then is destroyed mid-flight — the
  // crash-like teardown: no drain, no journaled cancels, spool files kept.
  {
    core::FleetOptions options;
    options.spool_dir = dir_;
    options.quantum_steps = 2;
    options.checkpoint_every_quanta = 1;
    core::SimulationFleet fleet(options);
    core::SimulationFleet::JobId ids[kJobs];
    for (std::size_t i = 0; i < kJobs; ++i) {
      core::FleetJobSpec spec =
          job_spec("job" + std::to_string(i), 100 + i, kTarget);
      spec.fault_spec = "none";
      ids[i] = fleet.submit(std::move(spec));
    }
    const auto all_past = [&] {
      for (const auto id : ids) {
        if (fleet.poll(id).steps_done < 4) return false;
      }
      return true;
    };
    while (!all_past()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(fs::exists(dir_ + "/fleet.journal"));

  // Fleet B replays the journal and resumes every incomplete job from its
  // last good checkpoint; the final digests must be bit-identical to the
  // uninterrupted solo runs.
  MetricsRegistry::global().reset();
  core::FleetOptions options;
  options.spool_dir = dir_;
  options.quantum_steps = 2;
  options.checkpoint_every_quanta = 1;
  options.recovery_factory = [](const std::string& name) {
    return build_sim(100 + static_cast<std::uint64_t>(name.back() - '0'));
  };
  core::SimulationFleet fleet(options);
  EXPECT_EQ(global_counter("fleet.journal_replays"), 1u);
  EXPECT_GE(global_counter("fleet.recovered"), 1u);
  const auto recovered = fleet.recovered();
  ASSERT_EQ(recovered.size(), kJobs);
  fleet.wait_all();

  std::size_t next_id = 0;
  for (const auto& job : recovered) {
    const std::size_t i = static_cast<std::size_t>(job.name.back() - '0');
    ASSERT_LT(i, kJobs);
    if (job.resubmitted) {
      // Resubmitted jobs get dense ids in journal (= submit) order.
      const core::FleetJobStatus status = fleet.poll(next_id++);
      EXPECT_EQ(status.state, core::FleetJobState::kDone) << job.name;
      EXPECT_EQ(status.steps_done, kTarget) << job.name;
      EXPECT_EQ(status.digest, reference[i]) << job.name;
    } else {
      // Already journaled complete before the kill.
      EXPECT_EQ(job.state, core::FleetJobState::kDone) << job.name;
      EXPECT_EQ(job.digest, reference[i]) << job.name;
    }
  }
  MetricsRegistry::global().reset();
}

TEST_F(FleetSpoolTest, TruncatedJournalTailRecoversIntactPrefix) {
  constexpr std::size_t kTarget = 30;
  const std::uint32_t reference = solo_digest(88, kTarget);

  {
    core::FleetOptions options;
    options.spool_dir = dir_;
    options.quantum_steps = 2;
    options.checkpoint_every_quanta = 1;
    core::SimulationFleet fleet(options);
    core::FleetJobSpec spec = job_spec("tail", 88, kTarget);
    spec.fault_spec = "none";
    const auto id = fleet.submit(std::move(spec));
    while (fleet.poll(id).steps_done < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // A crash mid-append leaves a torn frame at the tail; recovery must use
  // the intact prefix. (Only the *tail* may be damaged: the journal entry
  // for a checkpoint is flushed before the spool write starts, so the
  // surviving spool file's step is always covered by the intact prefix.)
  {
    std::ofstream out(dir_ + "/fleet.journal",
                      std::ios::binary | std::ios::app);
    out.write("GARBAGE", 7);
  }

  core::FleetOptions options;
  options.spool_dir = dir_;
  options.quantum_steps = 2;
  options.recovery_factory = [](const std::string&) { return build_sim(88); };
  core::SimulationFleet fleet(options);
  const auto recovered = fleet.recovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_TRUE(recovered[0].resubmitted);
  fleet.wait_all();
  const core::FleetJobStatus status = fleet.poll(0);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
  EXPECT_EQ(status.steps_done, kTarget);
  EXPECT_EQ(status.digest, reference);
}

TEST_F(FleetSpoolTest, DuplicateCompleteRecordsAndResubmitOfDoneName) {
  // Hand-crafted journal: header, submit, then TWO complete records for
  // the same job (a crash between the append and the state change can
  // duplicate terminal records on the next run — replay is idempotent).
  const std::string journal = dir_ + "/fleet.journal";
  {
    util::BinaryWriter header;
    header.write_u8(0);   // kHeader
    header.write_u32(1);  // journal version
    util::append_journal_record(journal, header.payload());
    util::BinaryWriter submit;
    submit.write_u8(1);  // kSubmit
    submit.write_string("dup");
    submit.write_u64(4);
    submit.write_string("none");
    submit.write_u32(3);
    submit.write_u32(1);
    util::append_journal_record(journal, submit.payload());
    for (int i = 0; i < 2; ++i) {
      util::BinaryWriter complete;
      complete.write_u8(4);  // kComplete
      complete.write_string("dup");
      complete.write_u64(4);
      complete.write_u32(0xDEADBEEFu);
      util::append_journal_record(journal, complete.payload());
    }
  }

  auto factory_calls = std::make_shared<std::atomic<int>>(0);
  core::FleetOptions options;
  options.spool_dir = dir_;
  options.recovery_factory = [factory_calls](const std::string&) {
    ++*factory_calls;
    return build_sim(1);
  };
  core::SimulationFleet fleet(options);
  // Completed jobs are reported once and never resubmitted.
  const auto recovered = fleet.recovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].name, "dup");
  EXPECT_EQ(recovered[0].state, core::FleetJobState::kDone);
  EXPECT_EQ(recovered[0].checkpoint_step, 4u);
  EXPECT_EQ(recovered[0].digest, 0xDEADBEEFu);
  EXPECT_FALSE(recovered[0].resubmitted);
  EXPECT_EQ(factory_calls->load(), 0);

  // The name of a *finished* journaled job is free for reuse.
  core::FleetJobSpec spec = job_spec("dup", 5, 3);
  spec.fault_spec = "none";
  const auto id = fleet.submit(std::move(spec));
  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
  EXPECT_EQ(status.steps_done, 3u);
}

TEST_F(FleetSpoolTest, MidJournalCorruptionFailsLoudly) {
  const std::string journal = dir_ + "/fleet.journal";
  {
    util::BinaryWriter header;
    header.write_u8(0);
    header.write_u32(1);
    util::append_journal_record(journal, header.payload());
    util::BinaryWriter submit;
    submit.write_u8(1);
    submit.write_string("x");
    submit.write_u64(4);
    submit.write_string("");
    submit.write_u32(3);
    submit.write_u32(1);
    util::append_journal_record(journal, submit.payload());
  }
  // Flip a payload byte of the FIRST record: damage before the tail is
  // real corruption, not a torn append — recovery must refuse, loudly,
  // rather than silently drop journaled work.
  {
    std::fstream f(journal,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(12);  // first payload byte, past the 12-byte frame header
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(12);
    f.write(&byte, 1);
  }
  core::FleetOptions options;
  options.spool_dir = dir_;
  EXPECT_THROW(core::SimulationFleet fleet(options), bd::CheckError);
}

// ---------------------------------------------------------------------------
// Drain / restart
// ---------------------------------------------------------------------------

TEST_F(FleetSpoolTest, DrainAndRestartAreBitIdentical) {
  constexpr std::size_t kJobs = 3;
  constexpr std::size_t kTarget = 12;
  std::uint32_t reference[kJobs] = {};
  for (std::size_t i = 0; i < kJobs; ++i) {
    reference[i] = solo_digest(300 + i, kTarget);
  }

  {
    core::FleetOptions options;
    options.spool_dir = dir_;
    options.quantum_steps = 2;
    core::SimulationFleet fleet(options);
    core::SimulationFleet::JobId ids[kJobs];
    for (std::size_t i = 0; i < kJobs; ++i) {
      core::FleetJobSpec spec =
          job_spec("job" + std::to_string(i), 300 + i, kTarget);
      spec.fault_spec = "none";
      ids[i] = fleet.submit(std::move(spec));
    }
    const auto all_past = [&] {
      for (const auto id : ids) {
        if (fleet.poll(id).steps_done < 2) return false;
      }
      return true;
    };
    while (!all_past()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    fleet.drain();
    EXPECT_THROW(fleet.submit(job_spec("late", 9, 2)), bd::CheckError);
    fleet.drain();  // idempotent
  }

  core::FleetOptions options;
  options.spool_dir = dir_;
  options.quantum_steps = 2;
  options.recovery_factory = [](const std::string& name) {
    return build_sim(300 + static_cast<std::uint64_t>(name.back() - '0'));
  };
  core::SimulationFleet fleet(options);
  const auto recovered = fleet.recovered();
  ASSERT_EQ(recovered.size(), kJobs);
  fleet.wait_all();
  std::size_t next_id = 0;
  for (const auto& job : recovered) {
    const std::size_t i = static_cast<std::size_t>(job.name.back() - '0');
    ASSERT_LT(i, kJobs);
    if (job.resubmitted) {
      const core::FleetJobStatus status = fleet.poll(next_id++);
      EXPECT_EQ(status.state, core::FleetJobState::kDone) << job.name;
      EXPECT_EQ(status.steps_done, kTarget) << job.name;
      EXPECT_EQ(status.digest, reference[i]) << job.name;
    } else {
      EXPECT_EQ(job.state, core::FleetJobState::kDone) << job.name;
      EXPECT_EQ(job.digest, reference[i]) << job.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Cancel vs eviction races, stale-tmp sweep
// ---------------------------------------------------------------------------

TEST_F(FleetSpoolTest, CancelRacingEvictionCleansUp) {
  {
    core::FleetOptions options;
    options.spool_dir = dir_;
    options.max_resident = 1;
    options.quantum_steps = 1;
    core::SimulationFleet fleet(options);
    core::FleetJobSpec a = job_spec("a", 401, 500);
    a.fault_spec = "none";
    core::FleetJobSpec b = job_spec("b", 402, 500);
    b.fault_spec = "none";
    const auto ia = fleet.submit(std::move(a));
    const auto ib = fleet.submit(std::move(b));
    // Let the evict/resume churn get going, then cancel mid-churn: each
    // job may be kRunning, kEvicted or mid-restore when the flag lands.
    while (fleet.poll(ia).steps_done < 2 || fleet.poll(ib).steps_done < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(fleet.cancel(ia));
    EXPECT_TRUE(fleet.cancel(ib));
    const core::FleetJobStatus sa = fleet.wait(ia);
    const core::FleetJobStatus sb = fleet.wait(ib);
    EXPECT_EQ(sa.state, core::FleetJobState::kCancelled);
    EXPECT_EQ(sb.state, core::FleetJobState::kCancelled);
    EXPECT_LT(sa.steps_done, 500u);
    EXPECT_LT(sb.steps_done, 500u);
    // Cancelled spool files are removed (possibly just after the terminal
    // state publishes — poll briefly).
    for (int i = 0; i < 2000 && (fs::exists(dir_ + "/a.ckpt") ||
                                 fs::exists(dir_ + "/b.ckpt"));
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_FALSE(fs::exists(dir_ + "/a.ckpt"));
    EXPECT_FALSE(fs::exists(dir_ + "/b.ckpt"));
  }
  // The journal recorded the cancellations: a restart reports the jobs as
  // cancelled and does not resurrect them.
  core::FleetOptions options;
  options.spool_dir = dir_;
  options.recovery_factory = [](const std::string&) { return build_sim(1); };
  core::SimulationFleet fleet(options);
  const auto recovered = fleet.recovered();
  ASSERT_EQ(recovered.size(), 2u);
  for (const auto& job : recovered) {
    EXPECT_EQ(job.state, core::FleetJobState::kCancelled) << job.name;
    EXPECT_FALSE(job.resubmitted) << job.name;
  }
}

TEST_F(FleetSpoolTest, StaleTmpSweepRemovesOnlyDeadPidStages) {
  using util::telemetry::MetricsRegistry;
  // A verifiably dead pid: fork a child that exits immediately.
  const pid_t dead = fork();
  if (dead == 0) _exit(0);
  ASSERT_GT(dead, 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(dead, &wstatus, 0), dead);

  const std::string stale =
      dir_ + "/x.ckpt.tmp." + std::to_string(dead) + ".1";
  const std::string live =
      dir_ + "/y.ckpt.tmp." + std::to_string(::getpid()) + ".2";
  const std::string plain = dir_ + "/z.ckpt";
  std::ofstream(stale) << "stale";
  std::ofstream(live) << "live";
  std::ofstream(plain) << "ckpt";

  MetricsRegistry::global().reset();
  core::FleetOptions options;
  options.spool_dir = dir_;
  core::SimulationFleet fleet(options);
  EXPECT_FALSE(fs::exists(stale));  // dead owner: removed
  EXPECT_TRUE(fs::exists(live));    // live owner (us): kept
  EXPECT_TRUE(fs::exists(plain));   // not a stage file: kept
  EXPECT_EQ(global_counter("fleet.stale_tmp_removed"), 1u);
  MetricsRegistry::global().reset();
}

}  // namespace
}  // namespace bd
