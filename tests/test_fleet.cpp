/// SimulationFleet: submit/poll/cancel lifecycle, failure containment,
/// per-job telemetry and fault-harness isolation, eviction + resume
/// digest identity, and resume-on-submit from a pre-existing spool file.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "baselines/heuristic.hpp"
#include "baselines/two_phase.hpp"
#include "core/checkpoint.hpp"
#include "core/fleet.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "simt/device.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/parallel.hpp"
#include "util/telemetry.hpp"

namespace bd {
namespace {

namespace fs = std::filesystem;

core::SimConfig fleet_config(std::uint64_t seed,
                             bool health_checks = false) {
  core::SimConfig config;
  config.particles = 2000;
  config.nx = 16;
  config.ny = 16;
  config.tolerance = 1e-5;
  config.rigid = false;
  config.seed = seed;
  config.health_checks = health_checks;
  return config;
}

std::unique_ptr<core::Simulation> build_sim(std::uint64_t seed,
                                            bool health_checks = false) {
  auto sim = std::make_unique<core::Simulation>(
      fleet_config(seed, health_checks),
      std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
  if (health_checks) {
    sim->add_fallback_solver(
        std::make_unique<baselines::HeuristicSolver>(simt::tesla_k40()));
    sim->add_fallback_solver(
        std::make_unique<baselines::TwoPhaseSolver>(simt::tesla_k40()));
  }
  return sim;
}

core::FleetJobSpec job_spec(const std::string& name, std::uint64_t seed,
                            std::size_t target_steps) {
  core::FleetJobSpec spec;
  spec.name = name;
  spec.factory = [seed] { return build_sim(seed); };
  spec.target_steps = target_steps;
  return spec;
}

/// Scratch directory for spool files, wiped on teardown.
class FleetSpoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("bd_fleet_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

TEST(Fleet, SubmitValidatesSpecs) {
  core::SimulationFleet fleet;
  EXPECT_THROW(fleet.submit(job_spec("", 1, 4)), bd::CheckError);
  EXPECT_THROW(fleet.submit(job_spec("a/b", 1, 4)), bd::CheckError);
  EXPECT_THROW(fleet.submit(job_spec("no-steps", 1, 0)), bd::CheckError);
  core::FleetJobSpec no_factory;
  no_factory.name = "no-factory";
  no_factory.target_steps = 4;
  EXPECT_THROW(fleet.submit(no_factory), bd::CheckError);

  const auto id = fleet.submit(job_spec("ok", 1, 2));
  EXPECT_THROW(fleet.submit(job_spec("ok", 2, 2)), bd::CheckError);
  EXPECT_EQ(fleet.job_count(), 1u);
  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
}

TEST(Fleet, JobsRunToCompletion) {
  core::FleetOptions options;
  options.quantum_steps = 2;
  core::SimulationFleet fleet(options);
  const auto a = fleet.submit(job_spec("a", 11, 5));
  const auto b = fleet.submit(job_spec("b", 22, 3));
  fleet.wait_all();

  const core::FleetJobStatus sa = fleet.poll(a);
  const core::FleetJobStatus sb = fleet.poll(b);
  EXPECT_EQ(sa.state, core::FleetJobState::kDone);
  EXPECT_EQ(sa.steps_done, 5u);
  EXPECT_EQ(sa.target_steps, 5u);
  EXPECT_NE(sa.digest, 0u);
  EXPECT_TRUE(sa.error.empty());
  EXPECT_EQ(sb.state, core::FleetJobState::kDone);
  EXPECT_EQ(sb.steps_done, 3u);
  // Different seeds walk different trajectories.
  EXPECT_NE(sa.digest, sb.digest);
  EXPECT_THROW(fleet.poll(99), bd::CheckError);
}

TEST(Fleet, SameSpecSameDigest) {
  core::SimulationFleet fleet;
  const auto a = fleet.submit(job_spec("a", 7, 4));
  const auto b = fleet.submit(job_spec("b", 7, 4));
  fleet.wait_all();
  // Identical configs on isolated jobs are bit-identical regardless of
  // which lane/thread ran them — the concurrency-corruption regression.
  EXPECT_EQ(fleet.poll(a).digest, fleet.poll(b).digest);
}

TEST(Fleet, CancelSemantics) {
  // One giant quantum keeps the first job kRunning while the second sits
  // queued behind it (single lane is enough: lanes drain in FIFO order).
  core::FleetOptions options;
  options.quantum_steps = 100000;
  core::SimulationFleet fleet(options);
  const auto running = fleet.submit(job_spec("running", 1, 100000));
  const auto queued = fleet.submit(job_spec("queued", 2, 100000));

  EXPECT_TRUE(fleet.cancel(queued));
  const core::FleetJobStatus qs = fleet.wait(queued);
  EXPECT_EQ(qs.state, core::FleetJobState::kCancelled);
  EXPECT_EQ(qs.steps_done, 0u);
  EXPECT_FALSE(fleet.cancel(queued));  // already terminal

  // Cancel the first job only once it is provably mid-quantum: the lane
  // must notice the flag at the next step boundary.
  while (fleet.poll(running).steps_done == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fleet.cancel(running));
  const core::FleetJobStatus rs = fleet.wait(running);
  EXPECT_EQ(rs.state, core::FleetJobState::kCancelled);
  EXPECT_GE(rs.steps_done, 1u);
  EXPECT_LT(rs.steps_done, 100000u);
  EXPECT_FALSE(fleet.cancel(running));
}

TEST(Fleet, DestructorCancelsOutstandingJobs) {
  // The dtor must cancel a mid-quantum job at its next step boundary and
  // join without deadlock.
  core::FleetOptions options;
  options.quantum_steps = 100000;
  core::SimulationFleet fleet(options);
  const auto id = fleet.submit(job_spec("long", 3, 100000));
  while (fleet.poll(id).steps_done == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Fleet, FailureIsContained) {
  core::SimulationFleet fleet;
  core::FleetJobSpec bad;
  bad.name = "bad";
  bad.factory = [] { return std::unique_ptr<core::Simulation>(); };
  bad.target_steps = 4;
  const auto bad_id = fleet.submit(std::move(bad));
  const auto good_id = fleet.submit(job_spec("good", 5, 3));
  fleet.wait_all();

  const core::FleetJobStatus bs = fleet.poll(bad_id);
  EXPECT_EQ(bs.state, core::FleetJobState::kFailed);
  EXPECT_NE(bs.error.find("factory returned null"), std::string::npos)
      << bs.error;
  EXPECT_EQ(fleet.poll(good_id).state, core::FleetJobState::kDone);
}

// ---------------------------------------------------------------------------
// Isolation
// ---------------------------------------------------------------------------

TEST(Fleet, PerJobMetricsAreIsolated) {
  using util::telemetry::MetricsRegistry;
  MetricsRegistry::global().reset();

  core::SimulationFleet fleet;
  const auto a = fleet.submit(job_spec("a", 1, 4));
  const auto b = fleet.submit(job_spec("b", 2, 7));
  fleet.wait_all();

  const auto sa = fleet.job_metrics(a);
  const auto sb = fleet.job_metrics(b);
  EXPECT_EQ(sa.counters.at("sim.steps"), 4u);
  EXPECT_EQ(sb.counters.at("sim.steps"), 7u);
  // Nothing leaked into the process-global registry: it holds fleet.* and
  // pool.* bookkeeping, never a job's sim.* stream.
  const auto global = MetricsRegistry::global().snapshot();
  EXPECT_EQ(global.counters.count("sim.steps"), 0u);
  EXPECT_EQ(global.counters.at("fleet.completed"), 2u);
  EXPECT_EQ(global.counters.at("fleet.submitted"), 2u);
  MetricsRegistry::global().reset();
}

TEST(Fleet, PerJobFaultHarnessesAreIsolated) {
  util::faultinject::clear();  // default harness must stay untouched

  core::SimulationFleet fleet;
  core::FleetJobSpec faulty = job_spec("faulty", 9, 5);
  faulty.factory = [] { return build_sim(9, /*health_checks=*/true); };
  faulty.fault_spec = "grid_nan@2:1";
  const auto faulty_id = fleet.submit(std::move(faulty));
  const auto clean_id = fleet.submit(job_spec("clean", 10, 5));
  fleet.wait_all();

  EXPECT_EQ(fleet.poll(faulty_id).state, core::FleetJobState::kDone);
  EXPECT_EQ(fleet.poll(clean_id).state, core::FleetJobState::kDone);
  // The injection fired inside the faulty job's scope only.
  const auto faulty_metrics = fleet.job_metrics(faulty_id);
  const auto clean_metrics = fleet.job_metrics(clean_id);
  EXPECT_EQ(faulty_metrics.counters.at("faultinject.injections"), 1u);
  EXPECT_EQ(clean_metrics.counters.count("faultinject.injections"), 0u);
  // ...and never consumed budget from the process-default harness.
  EXPECT_EQ(util::faultinject::fired_count(), 0u);
}

// ---------------------------------------------------------------------------
// Eviction + resume
// ---------------------------------------------------------------------------

TEST_F(FleetSpoolTest, EvictionPreservesDigests) {
  using util::telemetry::MetricsRegistry;
  constexpr std::size_t kJobs = 3;
  constexpr std::size_t kSteps = 6;

  // Reference digests: an unconstrained fleet where every sim stays
  // resident from first to last step.
  std::uint32_t reference[kJobs] = {};
  {
    core::SimulationFleet fleet;
    core::SimulationFleet::JobId ids[kJobs];
    for (std::size_t i = 0; i < kJobs; ++i) {
      ids[i] = fleet.submit(job_spec("job" + std::to_string(i),
                                     100 + i, kSteps));
    }
    fleet.wait_all();
    for (std::size_t i = 0; i < kJobs; ++i) {
      reference[i] = fleet.poll(ids[i]).digest;
    }
  }

  MetricsRegistry::global().reset();
  {
    core::FleetOptions options;
    options.max_resident = 1;
    options.spool_dir = dir_;
    options.quantum_steps = 2;
    core::SimulationFleet fleet(options);
    core::SimulationFleet::JobId ids[kJobs];
    for (std::size_t i = 0; i < kJobs; ++i) {
      ids[i] = fleet.submit(job_spec("job" + std::to_string(i),
                                     100 + i, kSteps));
    }
    fleet.wait_all();
    const auto global = MetricsRegistry::global().snapshot();
    EXPECT_GT(global.counters.at("fleet.evictions"), 0u);
    EXPECT_EQ(global.counters.at("fleet.evictions"),
              global.counters.at("fleet.resumes"));
    for (std::size_t i = 0; i < kJobs; ++i) {
      const core::FleetJobStatus status = fleet.poll(ids[i]);
      EXPECT_EQ(status.state, core::FleetJobState::kDone);
      EXPECT_EQ(status.steps_done, kSteps);
      // The physics digest chains straight across evict/resume cycles.
      EXPECT_EQ(status.digest, reference[i]) << "job " << i;
      // Completed jobs leave no spool file behind.
      EXPECT_FALSE(
          fs::exists(dir_ + "/job" + std::to_string(i) + ".ckpt"));
    }
  }
  MetricsRegistry::global().reset();
}

TEST_F(FleetSpoolTest, ResumesFromPreexistingSpoolFile) {
  constexpr std::size_t kTarget = 6;
  constexpr std::size_t kPrefix = 2;

  // A prior process ran the scenario for two steps and spooled it.
  auto sim = build_sim(42);
  sim->initialize();
  sim->run(kPrefix);
  const std::string spool = dir_ + "/warm.ckpt";
  core::save_checkpoint(*sim, spool);

  // Expected digest of the *resumed* steps, chained from zero (the fresh
  // job starts with an empty digest; only post-resume steps contribute).
  std::uint32_t expected = 0;
  {
    auto replay = build_sim(42);
    core::restore_checkpoint(*replay, spool);
    for (std::size_t i = kPrefix; i < kTarget; ++i) {
      expected = core::fleet_digest_step(replay->step(), expected);
    }
  }

  core::FleetOptions options;
  options.spool_dir = dir_;
  core::SimulationFleet fleet(options);
  const auto id = fleet.submit(job_spec("warm", 42, kTarget));
  const core::FleetJobStatus status = fleet.wait(id);
  EXPECT_EQ(status.state, core::FleetJobState::kDone);
  EXPECT_EQ(status.steps_done, kTarget);
  EXPECT_EQ(status.digest, expected);
  // The sim stepped only kTarget - kPrefix times inside the fleet.
  EXPECT_EQ(fleet.job_metrics(id).counters.at("sim.steps"),
            kTarget - kPrefix);
}

}  // namespace
}  // namespace bd
