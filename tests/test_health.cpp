/// Guarded-simulation tests: the health monitor, the degradation ladder,
/// and one end-to-end containment case per injected failure class
/// (poisoned moment grids, corrupted forecasts, truncated checkpoint
/// writes, thread-pool job exceptions). Every case asserts the run
/// completes with finite physics and the expected health.* telemetry.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "baselines/heuristic.hpp"
#include "baselines/two_phase.hpp"
#include "core/checkpoint.hpp"
#include "core/health.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "simt/device.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/telemetry.hpp"

namespace bd {
namespace {

// ---------------------------------------------------------------------------
// HealthMonitor / DegradationLadder units
// ---------------------------------------------------------------------------

TEST(HealthMonitor, CountsAndQuarantinesNonFinite) {
  std::vector<double> data{1.0, std::nan(""), 3.0,
                           std::numeric_limits<double>::infinity()};
  EXPECT_EQ(core::HealthMonitor::count_non_finite(data), 2u);
  EXPECT_EQ(core::HealthMonitor::quarantine_non_finite(data), 2u);
  EXPECT_EQ(core::HealthMonitor::count_non_finite(data), 0u);
  EXPECT_EQ(data[1], 0.0);
  EXPECT_EQ(data[3], 0.0);
}

TEST(HealthMonitor, MaeDriftAgainstEmaBaseline) {
  core::HealthThresholds thresholds;
  thresholds.mae_warmup = 2;
  thresholds.mae_drift_factor = 4.0;
  core::HealthMonitor monitor(thresholds);
  EXPECT_FALSE(monitor.observe_mae(1.0));  // warm-up
  EXPECT_FALSE(monitor.observe_mae(1.2));  // warm-up
  EXPECT_FALSE(monitor.observe_mae(1.1));  // within 4x of baseline
  EXPECT_TRUE(monitor.observe_mae(50.0));  // way past the limit
  // The violating sample must not be folded into the baseline: a normal
  // sample right after still passes.
  EXPECT_FALSE(monitor.observe_mae(1.0));
}

TEST(HealthMonitor, NonFiniteMaeIsAlwaysDrift) {
  core::HealthMonitor monitor;
  EXPECT_TRUE(monitor.observe_mae(std::nan("")));
  EXPECT_TRUE(monitor.observe_mae(-1.0));
}

TEST(DegradationLadder, DemotesAfterStreakAndPromotesBack) {
  core::DegradationLadder ladder(3, /*demote_after=*/2, /*promote_after=*/3);
  EXPECT_EQ(ladder.tier(), 0u);
  EXPECT_EQ(ladder.on_step(false), 0);  // streak 1 of 2
  EXPECT_EQ(ladder.on_step(false), 1);  // demote 0 -> 1
  EXPECT_EQ(ladder.tier(), 1u);
  EXPECT_EQ(ladder.on_step(false), 0);
  EXPECT_EQ(ladder.on_step(false), 1);  // demote 1 -> 2 (last rung)
  EXPECT_EQ(ladder.tier(), 2u);
  EXPECT_EQ(ladder.on_step(false), 0);  // pinned at the last rung
  EXPECT_EQ(ladder.tier(), 2u);
  EXPECT_EQ(ladder.on_step(true), 0);
  EXPECT_EQ(ladder.on_step(true), 0);
  EXPECT_EQ(ladder.on_step(true), -1);  // promote 2 -> 1
  EXPECT_EQ(ladder.tier(), 1u);
}

TEST(DegradationLadder, HealthyStepResetsDemoteStreak) {
  core::DegradationLadder ladder(2, /*demote_after=*/2, /*promote_after=*/2);
  EXPECT_EQ(ladder.on_step(false), 0);
  EXPECT_EQ(ladder.on_step(true), 0);   // breaks the unhealthy streak
  EXPECT_EQ(ladder.on_step(false), 0);  // streak restarts at 1
  EXPECT_EQ(ladder.tier(), 0u);
}

TEST(HealthReport, HealthyIgnoresRemediationCounters) {
  core::HealthReport report;
  EXPECT_TRUE(report.healthy());
  report.recomputed_points = 5;  // remediation alone is not a violation
  EXPECT_TRUE(report.healthy());
  report.nan_potentials = 1;
  EXPECT_FALSE(report.healthy());
}

// ---------------------------------------------------------------------------
// Fault-injection plan parsing / semantics
// ---------------------------------------------------------------------------

class FaultInjectTest : public ::testing::Test {
 protected:
  void TearDown() override { util::faultinject::clear(); }
};

TEST_F(FaultInjectTest, DisabledByDefaultAndAfterClear) {
  util::faultinject::clear();
  EXPECT_FALSE(util::faultinject::enabled());
  EXPECT_FALSE(util::faultinject::fire(
      util::faultinject::FaultClass::kGridNan, 1));
}

TEST_F(FaultInjectTest, EntriesFireOnceAtTheirStep) {
  util::faultinject::install("grid_nan@3:8");
  EXPECT_TRUE(util::faultinject::enabled());
  EXPECT_FALSE(util::faultinject::fire(
      util::faultinject::FaultClass::kGridNan, 2));
  const auto fired =
      util::faultinject::fire(util::faultinject::FaultClass::kGridNan, 3);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->count, 8u);
  // One-shot: the same entry never fires again.
  EXPECT_FALSE(util::faultinject::fire(
      util::faultinject::FaultClass::kGridNan, 3));
  EXPECT_FALSE(util::faultinject::enabled());
}

TEST_F(FaultInjectTest, WildcardEntryFiresAtAnyStep) {
  util::faultinject::install("pool_throw");
  EXPECT_TRUE(util::faultinject::fire(
      util::faultinject::FaultClass::kPoolThrow, 17).has_value());
}

TEST_F(FaultInjectTest, MalformedSpecThrows) {
  EXPECT_THROW(util::faultinject::install("not_a_class"), bd::CheckError);
  EXPECT_THROW(util::faultinject::install("grid_nan@abc"), bd::CheckError);
  EXPECT_THROW(util::faultinject::install("grid_nan:0"), bd::CheckError);
}

// Expect install(spec) to throw and the error text to include every one of
// `needles` — the message must name the bad token, not just say "bad spec".
void expect_parse_error(const std::string& spec,
                        std::initializer_list<const char*> needles) {
  try {
    util::faultinject::install(spec);
    FAIL() << "spec '" << spec << "' was accepted";
  } catch (const bd::CheckError& e) {
    const std::string message = e.what();
    for (const char* needle : needles) {
      EXPECT_NE(message.find(needle), std::string::npos)
          << "error for spec '" << spec << "' does not name '" << needle
          << "': " << message;
    }
  }
}

TEST_F(FaultInjectTest, ParseErrorMatrixNamesTheBadToken) {
  // Unknown class — message must carry the offending token and the menu.
  expect_parse_error("gridnan", {"gridnan", "slow_step"});
  expect_parse_error("grid_nan;bogus@3", {"bogus"});
  // Malformed step.
  expect_parse_error("grid_nan@", {"step", "grid_nan@"});
  expect_parse_error("grid_nan@-2", {"step", "-2"});
  expect_parse_error("grid_nan@1x", {"step", "1x"});
  expect_parse_error("grid_nan@ 3", {"step"});
  // Malformed count.
  expect_parse_error("pool_throw:", {"count", "pool_throw:"});
  expect_parse_error("pool_throw:zero", {"count", "zero"});
  expect_parse_error("pool_throw:+4", {"count", "+4"});
  expect_parse_error("slow_step:0", {"count", "slow_step:0"});
  expect_parse_error("slow_step:4294967296", {"count", "u32"});
  // Empty entries are mangled specs, not no-ops.
  expect_parse_error(";", {"empty fault entry"});
  expect_parse_error("grid_nan;;pool_throw", {"empty fault entry"});
  expect_parse_error("grid_nan;", {"empty fault entry"});
}

TEST_F(FaultInjectTest, MalformedSpecLeavesPreviousPlanInstalled) {
  util::faultinject::install("grid_nan@3");
  EXPECT_THROW(util::faultinject::install("grid_nan;bogus"), bd::CheckError);
  // The good plan survives the failed install.
  EXPECT_TRUE(util::faultinject::enabled());
  EXPECT_TRUE(util::faultinject::fire(
      util::faultinject::FaultClass::kGridNan, 3).has_value());
}

TEST_F(FaultInjectTest, SlowStepClassParsesAndFires) {
  util::faultinject::install("slow_step@5:25");
  const auto fired =
      util::faultinject::fire(util::faultinject::FaultClass::kSlowStep, 5);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->count, 25u);
}

// ---------------------------------------------------------------------------
// End-to-end containment, one case per failure class
// ---------------------------------------------------------------------------

core::SimConfig guarded_config() {
  core::SimConfig config;
  config.particles = 5000;
  config.nx = 16;
  config.ny = 16;
  config.tolerance = 1e-5;
  config.rigid = false;
  config.health_checks = true;
  config.health.demote_after = 1;
  config.health.promote_after = 2;
  return config;
}

std::unique_ptr<core::Simulation> guarded_sim(
    core::SimConfig config = guarded_config()) {
  auto sim = std::make_unique<core::Simulation>(
      config, std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
  sim->add_fallback_solver(
      std::make_unique<baselines::HeuristicSolver>(simt::tesla_k40()));
  sim->add_fallback_solver(
      std::make_unique<baselines::TwoPhaseSolver>(simt::tesla_k40()));
  sim->initialize();
  return sim;
}

void expect_finite_physics(const core::Simulation& sim,
                           const std::vector<core::StepStats>& stats) {
  for (const auto& s : stats) {
    for (double v : s.longitudinal.values.data()) {
      ASSERT_TRUE(std::isfinite(v)) << "step " << s.step;
    }
  }
  for (double v : sim.force_s().data()) ASSERT_TRUE(std::isfinite(v));
  for (double v : sim.particles().s()) ASSERT_TRUE(std::isfinite(v));
  for (double v : sim.particles().ps()) ASSERT_TRUE(std::isfinite(v));
}

std::uint64_t counter(const util::telemetry::MetricsSnapshot& snap,
                      const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

class GuardedSimTest : public ::testing::Test {
 protected:
  void SetUp() override { util::faultinject::clear(); }
  void TearDown() override { util::faultinject::clear(); }
};

TEST_F(GuardedSimTest, HealthReportAbsentWhenChecksOff) {
  core::SimConfig config = guarded_config();
  config.health_checks = false;
  auto sim = guarded_sim(config);
  const auto stats = sim->run(1);
  EXPECT_FALSE(stats[0].health.has_value());
}

TEST_F(GuardedSimTest, ContainsGridNanInjection) {
  const auto before = util::telemetry::MetricsRegistry::global().snapshot();
  auto sim = guarded_sim();
  util::faultinject::install("grid_nan@2:8");
  const auto stats = sim->run(4);

  ASSERT_TRUE(stats[1].health.has_value());
  EXPECT_GT(stats[1].health->nan_moments, 0u);
  EXPECT_GT(stats[1].health->quarantined_cells, 0u);
  expect_finite_physics(*sim, stats);
  // The history ring must hold the repaired (finite) moments.
  for (std::uint32_t iy = 0; iy < 16; ++iy) {
    for (std::uint32_t ix = 0; ix < 16; ++ix) {
      ASSERT_TRUE(std::isfinite(
          sim->history().value(2, beam::kChannelRho, ix, iy)));
    }
  }
  const auto after = util::telemetry::MetricsRegistry::global().snapshot();
  EXPECT_GT(counter(after, "health.quarantined_cells"),
            counter(before, "health.quarantined_cells"));
  EXPECT_GT(counter(after, "health.violations"),
            counter(before, "health.violations"));
  EXPECT_GT(counter(after, "faultinject.injections"),
            counter(before, "faultinject.injections"));
}

TEST_F(GuardedSimTest, ContainsForecastCorruptionAndWalksTheLadder) {
  const auto before = util::telemetry::MetricsRegistry::global().snapshot();
  auto sim = guarded_sim();
  // Step 1 bootstraps the predictor; step 3 is a predictive solve whose
  // forecast gets scrambled (NaNs + 1e18s). The sanitizer must contain it,
  // the step is flagged, and with demote_after=1 the ladder demotes; two
  // clean steps later it promotes back.
  util::faultinject::install("forecast@3");
  const auto stats = sim->run(6);

  ASSERT_TRUE(stats[2].health.has_value());
  EXPECT_GT(stats[2].health->sanitized_forecasts, 0u);
  EXPECT_TRUE(stats[2].health->forecast_corrupt);
  EXPECT_TRUE(stats[2].health->demoted);
  EXPECT_EQ(stats[3].health->tier, 1u);  // heuristic tier took over
  expect_finite_physics(*sim, stats);

  const auto after = util::telemetry::MetricsRegistry::global().snapshot();
  EXPECT_GT(counter(after, "health.demotions"),
            counter(before, "health.demotions"));
  EXPECT_GT(counter(after, "health.promotions"),
            counter(before, "health.promotions"));
  EXPECT_GT(counter(after, "predictive.forecast_sanitized"),
            counter(before, "predictive.forecast_sanitized"));
  // Promoted all the way back by the end of the run.
  EXPECT_EQ(sim->active_tier(), 0u);
}

TEST_F(GuardedSimTest, ContainsPoolJobException) {
  const auto before = util::telemetry::MetricsRegistry::global().snapshot();
  auto sim = guarded_sim();
  // Fires inside the forecast parallel_for body at step 2 (the first
  // predictive solve); the pool rethrows on the caller, the guarded solve
  // catches, resets the poisoned solver and recomputes with the last rung.
  util::faultinject::install("pool_throw@2");
  const auto stats = sim->run(3);

  ASSERT_TRUE(stats[1].health.has_value());
  EXPECT_TRUE(stats[1].health->solver_exception);
  EXPECT_GT(stats[1].longitudinal.kernel_intervals, 0u);  // recompute ran
  expect_finite_physics(*sim, stats);

  const auto after = util::telemetry::MetricsRegistry::global().snapshot();
  EXPECT_GT(counter(after, "health.solver_exceptions"),
            counter(before, "health.solver_exceptions"));
}

TEST_F(GuardedSimTest, PoolExceptionPropagatesWhenChecksOff) {
  core::SimConfig config = guarded_config();
  config.health_checks = false;
  auto sim = guarded_sim(config);
  util::faultinject::install("pool_throw@2");
  sim->run(1);
  EXPECT_THROW(sim->step(), std::runtime_error);
}

TEST_F(GuardedSimTest, TruncatedCheckpointWriteKeepsPreviousSnapshot) {
  const std::string path =
      ::testing::TempDir() + "bd_health_truncate_test.ckpt";
  auto sim = guarded_sim();
  sim->run(1);
  core::save_checkpoint(*sim, path);
  sim->run(1);
  util::faultinject::install("checkpoint_truncate");
  EXPECT_THROW(core::save_checkpoint(*sim, path), bd::CheckError);
  util::faultinject::clear();

  // The step-1 snapshot survives the simulated mid-write crash, and the
  // run continues unharmed after the failed save.
  const auto stats = sim->run(2);
  expect_finite_physics(*sim, stats);
  auto restored = guarded_sim();
  core::restore_checkpoint(*restored, path);
  EXPECT_EQ(restored->current_step(), 1);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(GuardedSimTest, MonitorAndLadderStateSurviveCheckpoint) {
  const std::string path = ::testing::TempDir() + "bd_health_ckpt_state.ckpt";
  auto sim = guarded_sim();
  util::faultinject::install("forecast@3");
  sim->run(3);  // demoted at step 3
  EXPECT_EQ(sim->active_tier(), 1u);
  core::save_checkpoint(*sim, path);

  auto restored = guarded_sim();
  core::restore_checkpoint(*restored, path);
  EXPECT_EQ(restored->active_tier(), 1u);  // ladder state came back
  const auto stats = restored->run(2);     // promote_after=2 clean steps
  ASSERT_TRUE(stats[1].health.has_value());
  EXPECT_TRUE(stats[1].health->promoted);
  EXPECT_EQ(restored->active_tier(), 0u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace bd
