/// Tests for the roofline model utilities (Fig. 4).

#include <gtest/gtest.h>

#include "simt/roofline.hpp"
#include "util/check.hpp"

namespace bd::simt {
namespace {

TEST(Roofline, MemoryRoofBelowRidge) {
  const DeviceSpec spec = tesla_k40();
  EXPECT_DOUBLE_EQ(attainable_gflops(spec, 1.0), spec.measured_bw_gbs);
  EXPECT_DOUBLE_EQ(attainable_gflops(spec, 2.0), 2.0 * spec.measured_bw_gbs);
}

TEST(Roofline, ComputeRoofAboveRidge) {
  const DeviceSpec spec = tesla_k40();
  EXPECT_DOUBLE_EQ(attainable_gflops(spec, 100.0), spec.peak_dp_gflops);
}

TEST(Roofline, RidgePointConsistent) {
  const DeviceSpec spec = tesla_k40();
  const double ridge = spec.ridge_ai();
  EXPECT_NEAR(attainable_gflops(spec, ridge), spec.peak_dp_gflops,
              spec.peak_dp_gflops * 1e-12);
  EXPECT_LT(attainable_gflops(spec, ridge * 0.99), spec.peak_dp_gflops);
}

TEST(Roofline, TheoreticalRoofHigher) {
  const DeviceSpec spec = tesla_k40();
  EXPECT_GT(attainable_gflops_theoretical(spec, 1.0),
            attainable_gflops(spec, 1.0));
}

TEST(Roofline, MakePointComputesFractions) {
  const DeviceSpec spec = tesla_k40();
  KernelMetrics m;
  m.flops = 2'000'000'000;
  m.dram_bytes = 1'000'000'000;  // AI = 2
  m.modeled_seconds = 10.0;      // 0.2 GF/s (absurdly slow)
  const RooflinePoint p = make_point("test", m, spec);
  EXPECT_EQ(p.label, "test");
  EXPECT_DOUBLE_EQ(p.arithmetic_intensity, 2.0);
  EXPECT_DOUBLE_EQ(p.attainable_gflops, 2.0 * spec.measured_bw_gbs);
  EXPECT_NEAR(p.roof_fraction, 0.2 / 400.0, 1e-12);
}

TEST(Roofline, SampleSeriesIsLogSpacedAndMonotone) {
  const DeviceSpec spec = tesla_k40();
  const auto samples = sample_roofline(spec, 0.125, 32.0, 9);
  ASSERT_EQ(samples.size(), 9u);
  EXPECT_NEAR(samples.front().ai, 0.125, 1e-12);
  EXPECT_NEAR(samples.back().ai, 32.0, 1e-9);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].ai, samples[i - 1].ai);
    EXPECT_GE(samples[i].roof_measured, samples[i - 1].roof_measured);
    // log-spacing: constant ratio
    EXPECT_NEAR(samples[i].ai / samples[i - 1].ai, 2.0, 1e-9);
  }
}

TEST(Roofline, SampleValidatesArguments) {
  const DeviceSpec spec = tesla_k40();
  EXPECT_THROW(sample_roofline(spec, 0.0, 1.0, 5), CheckError);
  EXPECT_THROW(sample_roofline(spec, 2.0, 1.0, 5), CheckError);
  EXPECT_THROW(sample_roofline(spec, 1.0, 2.0, 1), CheckError);
}

}  // namespace
}  // namespace bd::simt
