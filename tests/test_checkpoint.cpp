/// Checkpoint/restart: serialization primitives, the checked-file
/// container (CRC, truncation, atomic rename), and full Simulation
/// save/restore including solver learned state.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "baselines/heuristic.hpp"
#include "baselines/two_phase.hpp"
#include "core/checkpoint.hpp"
#include "core/predictive.hpp"
#include "core/simulation.hpp"
#include "simt/device.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/serialize.hpp"

namespace bd {
namespace {

TEST(Serialize, WriterReaderRoundTrip) {
  util::BinaryWriter out;
  out.write_u8(7);
  out.write_u32(0xDEADBEEFu);
  out.write_u64(1ull << 60);
  out.write_i64(-42);
  out.write_f64(3.14159);
  out.write_bool(true);
  out.write_string("predictive-rp");
  const std::vector<double> values{1.0, -2.5, 1e300, 0.0};
  out.write_f64_span(values);

  util::BinaryReader in(out.payload());
  EXPECT_EQ(in.read_u8(), 7);
  EXPECT_EQ(in.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.read_u64(), 1ull << 60);
  EXPECT_EQ(in.read_i64(), -42);
  EXPECT_DOUBLE_EQ(in.read_f64(), 3.14159);
  EXPECT_TRUE(in.read_bool());
  EXPECT_EQ(in.read_string(), "predictive-rp");
  EXPECT_EQ(in.read_f64_vector(), values);
  EXPECT_TRUE(in.done());
}

TEST(Serialize, ReaderOverrunThrows) {
  util::BinaryWriter out;
  out.write_u32(1);
  util::BinaryReader in(out.payload());
  in.read_u32();
  EXPECT_THROW(in.read_u32(), bd::CheckError);
}

TEST(Serialize, ReadIntoRequiresExactLength) {
  util::BinaryWriter out;
  out.write_f64_span(std::vector<double>{1.0, 2.0, 3.0});
  util::BinaryReader in(out.payload());
  std::vector<double> wrong(4);
  EXPECT_THROW(in.read_f64_into(wrong), bd::CheckError);
}

TEST(Serialize, NestedF64RoundTrip) {
  const std::vector<std::vector<double>> partitions{
      {0.0, 1.0, 2.0}, {}, {5.5}};
  util::BinaryWriter out;
  util::write_nested_f64(out, partitions);
  util::BinaryReader in(out.payload());
  EXPECT_EQ(util::read_nested_f64(in), partitions);
}

TEST(Serialize, Crc32MatchesKnownVector) {
  // CRC-32("123456789") = 0xCBF43926 — the standard check value.
  const char* digits = "123456789";
  const auto bytes = std::as_bytes(std::span<const char>(digits, 9));
  EXPECT_EQ(util::crc32(bytes), 0xCBF43926u);
}

class CheckedFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "bd_checked_file_test.bin";
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
    util::faultinject::clear();
  }

  std::vector<std::byte> payload() const {
    util::BinaryWriter out;
    out.write_string("some payload");
    out.write_u64(123456);
    return {out.payload().begin(), out.payload().end()};
  }
};

constexpr std::uint32_t kMagic = 0x54534554u;  // "TEST"

TEST_F(CheckedFileTest, RoundTrip) {
  util::write_checked_file(path_, kMagic, 3, payload());
  std::uint32_t version = 0;
  EXPECT_EQ(util::read_checked_file(path_, kMagic, version), payload());
  EXPECT_EQ(version, 3u);
}

TEST_F(CheckedFileTest, WrongMagicRejected) {
  util::write_checked_file(path_, kMagic, 1, payload());
  std::uint32_t version = 0;
  EXPECT_THROW(util::read_checked_file(path_, kMagic + 1, version),
               bd::CheckError);
}

TEST_F(CheckedFileTest, TruncationDetected) {
  util::write_checked_file(path_, kMagic, 1, payload());
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 5);
  std::uint32_t version = 0;
  EXPECT_THROW(util::read_checked_file(path_, kMagic, version),
               bd::CheckError);
}

TEST_F(CheckedFileTest, BitFlipDetectedByCrc) {
  util::write_checked_file(path_, kMagic, 1, payload());
  {
    std::fstream file(path_, std::ios::in | std::ios::out |
                                 std::ios::binary);
    file.seekp(-1, std::ios::end);  // flip a bit in the last payload byte
    const auto pos = file.tellp();
    file.seekg(pos);
    char byte = 0;
    file.get(byte);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(pos);
    file.put(byte);
  }
  std::uint32_t version = 0;
  EXPECT_THROW(util::read_checked_file(path_, kMagic, version),
               bd::CheckError);
}

TEST_F(CheckedFileTest, TruncationFaultLeavesPreviousSnapshotIntact) {
  // First write succeeds; the injected mid-write crash on the second write
  // must throw *and* leave the original file fully readable (the atomic
  // tmp+rename contract).
  util::write_checked_file(path_, kMagic, 1, payload());

  util::BinaryWriter newer;
  newer.write_string("newer payload that must never land");
  util::faultinject::install("checkpoint_truncate");
  EXPECT_THROW(
      util::write_checked_file(path_, kMagic, 1, newer.payload()),
      bd::CheckError);
  util::faultinject::clear();

  std::uint32_t version = 0;
  EXPECT_EQ(util::read_checked_file(path_, kMagic, version), payload());
}

TEST_F(CheckedFileTest, ConcurrentWritersToSamePathNeverCorrupt) {
  // Two threads hammering the SAME destination path: per-writer tmp names
  // (pid + sequence) keep the writes from clobbering each other's staging
  // file, and the atomic rename guarantees the destination is always one
  // writer's complete, CRC-valid snapshot — never a torn mix.
  auto encode = [](std::uint64_t tag) {
    util::BinaryWriter out;
    out.write_string("writer payload");
    out.write_u64(tag);
    return std::vector<std::byte>(out.payload().begin(),
                                  out.payload().end());
  };
  constexpr int kRounds = 25;
  auto writer = [&](std::uint64_t tag) {
    for (int k = 0; k < kRounds; ++k) {
      util::write_checked_file(path_, kMagic, 1, encode(tag));
    }
  };
  std::thread a(writer, 1);
  std::thread b(writer, 2);
  a.join();
  b.join();

  std::uint32_t version = 0;
  const std::vector<std::byte> final =
      util::read_checked_file(path_, kMagic, version);
  EXPECT_TRUE(final == encode(1) || final == encode(2));
  // No staging files left behind.
  const auto dir = std::filesystem::path(path_).parent_path();
  const auto stem = std::filesystem::path(path_).filename().string();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(stem + ".tmp"), std::string::npos)
        << "stray staging file: " << name;
  }
}

// ---------------------------------------------------------------------------
// Append-only CRC-framed journal (write-ahead log)
// ---------------------------------------------------------------------------

/// Corruption matrix for the journal framing, mirroring the checked-file
/// matrix above: round trip, torn tail (tolerated), mid-file damage
/// (loud failure).
class JournalFrameTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "bd_journal_frame_test.wal";
  void TearDown() override { std::remove(path_.c_str()); }

  static std::vector<std::byte> record(std::uint64_t tag) {
    util::BinaryWriter out;
    out.write_string("journal record");
    out.write_u64(tag);
    return {out.payload().begin(), out.payload().end()};
  }

  void flip_byte_at(std::int64_t offset_from_start) {
    std::fstream file(path_, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(offset_from_start);
    char byte = 0;
    file.get(byte);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(offset_from_start);
    file.put(byte);
  }
};

TEST_F(JournalFrameTest, AppendReadRoundTrip) {
  util::append_journal_record(path_, record(1));
  util::append_journal_record(path_, record(2));
  util::append_journal_record(path_, record(3));
  const util::JournalReadResult result = util::read_journal_records(path_);
  EXPECT_FALSE(result.truncated_tail);
  ASSERT_EQ(result.records.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.records[i], record(i + 1));
  }
}

TEST_F(JournalFrameTest, MissingFileYieldsNoRecords) {
  const util::JournalReadResult result = util::read_journal_records(path_);
  EXPECT_TRUE(result.records.empty());
  EXPECT_FALSE(result.truncated_tail);
}

TEST_F(JournalFrameTest, TruncatedTailHeaderTolerated) {
  // Crash after writing only part of the last frame *header*: the intact
  // prefix records survive and the tail is flagged, not fatal.
  util::append_journal_record(path_, record(1));
  util::append_journal_record(path_, record(2));
  const auto full = std::filesystem::file_size(path_);
  const auto last = record(2).size() + 12;  // frame header is 12 bytes
  std::filesystem::resize_file(path_, full - last + 5);
  const util::JournalReadResult result = util::read_journal_records(path_);
  EXPECT_TRUE(result.truncated_tail);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0], record(1));
}

TEST_F(JournalFrameTest, TruncatedTailPayloadTolerated) {
  // Crash mid-payload of the last frame.
  util::append_journal_record(path_, record(1));
  util::append_journal_record(path_, record(2));
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 3);
  const util::JournalReadResult result = util::read_journal_records(path_);
  EXPECT_TRUE(result.truncated_tail);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0], record(1));
}

TEST_F(JournalFrameTest, GarbageTailFrameTolerated) {
  // A torn write can land a full-length frame of garbage bytes: the CRC
  // catches it, and because it is the *last* frame it is tolerated.
  util::append_journal_record(path_, record(1));
  util::append_journal_record(path_, record(2));
  const auto full = std::filesystem::file_size(path_);
  flip_byte_at(static_cast<std::int64_t>(full) - 1);
  const util::JournalReadResult result = util::read_journal_records(path_);
  EXPECT_TRUE(result.truncated_tail);
  ASSERT_EQ(result.records.size(), 1u);
}

TEST_F(JournalFrameTest, MidFileCorruptionThrows) {
  // The same bit flip in a frame *followed by more records* is real
  // corruption, not a torn append — it must fail loudly.
  util::append_journal_record(path_, record(1));
  const auto first = std::filesystem::file_size(path_);
  util::append_journal_record(path_, record(2));
  flip_byte_at(static_cast<std::int64_t>(first) - 1);
  EXPECT_THROW(util::read_journal_records(path_), bd::CheckError);
}

TEST_F(JournalFrameTest, BadMarkerThrows) {
  util::append_journal_record(path_, record(1));
  flip_byte_at(0);
  EXPECT_THROW(util::read_journal_records(path_), bd::CheckError);
}

TEST_F(JournalFrameTest, EmptyPayloadRecordRoundTrips) {
  util::append_journal_record(path_, {});
  util::append_journal_record(path_, record(9));
  const util::JournalReadResult result = util::read_journal_records(path_);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_TRUE(result.records[0].empty());
  EXPECT_EQ(result.records[1], record(9));
}

// ---------------------------------------------------------------------------
// Full-simulation checkpointing
// ---------------------------------------------------------------------------

core::SimConfig sim_config() {
  core::SimConfig config;
  config.particles = 5000;
  config.nx = 16;
  config.ny = 16;
  config.tolerance = 1e-5;
  config.rigid = false;  // exercise the push so phase space evolves
  return config;
}

std::unique_ptr<core::Simulation> make_sim(bool with_fallbacks = true) {
  auto sim = std::make_unique<core::Simulation>(
      sim_config(),
      std::make_unique<core::PredictiveSolver>(simt::tesla_k40()));
  if (with_fallbacks) {
    sim->add_fallback_solver(
        std::make_unique<baselines::HeuristicSolver>(simt::tesla_k40()));
    sim->add_fallback_solver(
        std::make_unique<baselines::TwoPhaseSolver>(simt::tesla_k40()));
  }
  return sim;
}

class CheckpointTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "bd_checkpoint_test.ckpt";
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
};

TEST_F(CheckpointTest, FreshObjectRestoreMatchesContinuedRun) {
  // Run A: 2 + 2 steps straight through. Run B: restore a fresh simulation
  // from A's step-2 snapshot, then 2 steps. Physics outputs must agree
  // bit-for-bit (metrics are address-sensitive and are checked in
  // test_determinism with an in-place restore).
  auto a = make_sim();
  a->initialize();
  a->run(2);
  core::save_checkpoint(*a, path_);
  const auto a_stats = a->run(2);

  auto b = make_sim();
  core::restore_checkpoint(*b, path_);
  EXPECT_EQ(b->current_step(), 2);
  const auto b_stats = b->run(2);

  ASSERT_EQ(a_stats.size(), b_stats.size());
  for (std::size_t k = 0; k < a_stats.size(); ++k) {
    const auto av = a_stats[k].longitudinal.values.data();
    const auto bv = b_stats[k].longitudinal.values.data();
    ASSERT_EQ(av.size(), bv.size());
    for (std::size_t i = 0; i < av.size(); ++i) {
      ASSERT_EQ(av[i], bv[i]) << "step " << k << " node " << i;
    }
    EXPECT_EQ(a_stats[k].longitudinal.fallback_items,
              b_stats[k].longitudinal.fallback_items);
    EXPECT_EQ(a_stats[k].longitudinal.kernel_intervals,
              b_stats[k].longitudinal.kernel_intervals);
  }
  // Particle phase space identical after the resumed steps.
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(a->particles().s()[i], b->particles().s()[i]);
    ASSERT_EQ(a->particles().ps()[i], b->particles().ps()[i]);
  }
}

TEST_F(CheckpointTest, RestoreRejectsConfigMismatch) {
  auto a = make_sim();
  a->initialize();
  a->run(1);
  core::save_checkpoint(*a, path_);

  core::SimConfig other = sim_config();
  other.tolerance = 1e-4;
  core::Simulation b(other,
                     std::make_unique<core::PredictiveSolver>(
                         simt::tesla_k40()));
  EXPECT_THROW(core::restore_checkpoint(b, path_), bd::CheckError);
}

TEST_F(CheckpointTest, RestoreRejectsSolverLineupMismatch) {
  auto a = make_sim(/*with_fallbacks=*/true);
  a->initialize();
  a->run(1);
  core::save_checkpoint(*a, path_);

  auto b = make_sim(/*with_fallbacks=*/false);
  EXPECT_THROW(core::restore_checkpoint(*b, path_), bd::CheckError);

  core::Simulation c(sim_config(), std::make_unique<baselines::TwoPhaseSolver>(
                                       simt::tesla_k40()));
  EXPECT_THROW(core::restore_checkpoint(c, path_), bd::CheckError);
}

TEST_F(CheckpointTest, RestoreRejectsMissingFile) {
  auto sim = make_sim();
  EXPECT_THROW(
      core::restore_checkpoint(*sim, ::testing::TempDir() + "no_such.ckpt"),
      bd::CheckError);
}

TEST_F(CheckpointTest, ConcurrentSimsCheckpointIntoSameDirectory) {
  // Two simulations saving side by side into one directory (the fleet
  // spool shape): before tmp names carried a per-process/per-write suffix
  // both writers staged to "<path>.tmp" and could rename each other's
  // half-written file into place. Each checkpoint must restore to its own
  // simulation afterwards.
  const std::string path_a = ::testing::TempDir() + "bd_ckpt_dir_a.ckpt";
  const std::string path_b = ::testing::TempDir() + "bd_ckpt_dir_b.ckpt";

  auto sim_a = make_sim();
  auto sim_b = make_sim();
  sim_a->initialize();
  sim_b->initialize();
  sim_a->run(2);
  sim_b->run(3);

  constexpr int kRounds = 10;
  std::thread ta([&] {
    for (int k = 0; k < kRounds; ++k) core::save_checkpoint(*sim_a, path_a);
  });
  std::thread tb([&] {
    for (int k = 0; k < kRounds; ++k) core::save_checkpoint(*sim_b, path_b);
  });
  ta.join();
  tb.join();

  auto restored_a = make_sim();
  auto restored_b = make_sim();
  core::restore_checkpoint(*restored_a, path_a);
  core::restore_checkpoint(*restored_b, path_b);
  EXPECT_EQ(restored_a->current_step(), 2);
  EXPECT_EQ(restored_b->current_step(), 3);
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(restored_a->particles().s()[i], sim_a->particles().s()[i]);
    ASSERT_EQ(restored_b->particles().s()[i], sim_b->particles().s()[i]);
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_F(CheckpointTest, PeriodicOverwriteKeepsLatestSnapshot) {
  auto sim = make_sim();
  sim->initialize();
  for (int k = 0; k < 3; ++k) {
    sim->run(1);
    core::save_checkpoint(*sim, path_);  // overwrite in place each step
  }
  auto restored = make_sim();
  core::restore_checkpoint(*restored, path_);
  EXPECT_EQ(restored->current_step(), 3);
}

}  // namespace
}  // namespace bd
