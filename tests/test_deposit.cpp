/// Tests for particle-in-cell deposition.

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "beam/bunch.hpp"
#include "beam/deposit.hpp"
#include "util/rng.hpp"

namespace bd::beam {
namespace {

ParticleSet single_particle(double s, double y, double weight = 1.0) {
  ParticleSet p(1);
  p.s()[0] = s;
  p.y()[0] = y;
  p.set_weight(weight);
  return p;
}

class DepositSchemes : public ::testing::TestWithParam<DepositScheme> {};

TEST_P(DepositSchemes, ConservesCharge) {
  const GridSpec spec = make_centered_grid(17, 17, 4.0, 4.0);
  Grid2D rho(spec);
  util::Rng rng(3);
  BeamParams params;
  params.sigma_s = 0.8;
  params.sigma_y = 0.8;
  params.charge = 3.0;
  const ParticleSet p = sample_gaussian_bunch(5000, params, rng);
  const double dropped = deposit(p, GetParam(), rho);
  // Deposited density × cell area + dropped = total charge.
  EXPECT_NEAR(rho.sum() * spec.dx * spec.dy + dropped, 3.0, 1e-10);
  EXPECT_LT(dropped, 0.01);  // ±4σ box at σ=0.8 drops almost nothing
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DepositSchemes,
                         ::testing::Values(DepositScheme::kNGP,
                                           DepositScheme::kCIC,
                                           DepositScheme::kTSC));

TEST(Deposit, NgpPutsAllChargeOnNearestNode) {
  const GridSpec spec = make_centered_grid(5, 5, 2.0, 2.0);
  Grid2D rho(spec);
  deposit(single_particle(0.4, -0.6), DepositScheme::kNGP, rho);
  // Nearest node to (0.4,-0.6): ix=2, iy=1 (gx=2.4, gy=1.4).
  EXPECT_GT(rho.at(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(rho.sum(), rho.at(2, 1));
}

TEST(Deposit, CicCentroidPreserved) {
  const GridSpec spec = make_centered_grid(9, 9, 4.0, 4.0);
  Grid2D rho(spec);
  deposit(single_particle(0.3, -1.2), DepositScheme::kCIC, rho);
  double cx = 0.0, cy = 0.0, total = 0.0;
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      const double v = rho.at(ix, iy);
      cx += v * spec.x_at(ix);
      cy += v * spec.y_at(iy);
      total += v;
    }
  }
  EXPECT_NEAR(cx / total, 0.3, 1e-12);
  EXPECT_NEAR(cy / total, -1.2, 1e-12);
}

TEST(Deposit, TscCentroidPreserved) {
  const GridSpec spec = make_centered_grid(9, 9, 4.0, 4.0);
  Grid2D rho(spec);
  deposit(single_particle(-0.7, 0.9), DepositScheme::kTSC, rho);
  double cx = 0.0, cy = 0.0, total = 0.0;
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      const double v = rho.at(ix, iy);
      cx += v * spec.x_at(ix);
      cy += v * spec.y_at(iy);
      total += v;
    }
  }
  EXPECT_NEAR(cx / total, -0.7, 1e-12);
  EXPECT_NEAR(cy / total, 0.9, 1e-12);
}

TEST(Deposit, TscSpreadsOver9Nodes) {
  const GridSpec spec = make_centered_grid(9, 9, 4.0, 4.0);
  Grid2D rho(spec);
  deposit(single_particle(0.1, 0.1), DepositScheme::kTSC, rho);
  int nonzero = 0;
  for (double v : rho.data()) {
    if (v != 0.0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 9);
}

TEST(Deposit, OutsideParticleDropped) {
  const GridSpec spec = make_centered_grid(5, 5, 1.0, 1.0);
  Grid2D rho(spec);
  const double dropped =
      deposit(single_particle(10.0, 0.0, 2.0), DepositScheme::kTSC, rho);
  EXPECT_GT(dropped, 0.0);
  EXPECT_DOUBLE_EQ(rho.sum(), 0.0);
}

TEST(Gradient, LongitudinalOfLinearField) {
  const GridSpec spec = make_centered_grid(9, 5, 4.0, 2.0);
  Grid2D rho(spec), grad(spec);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      rho.at(ix, iy) = 3.0 * spec.x_at(ix) + 7.0;
    }
  }
  longitudinal_gradient(rho, grad);
  for (double v : grad.data()) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(Gradient, TransverseOfLinearField) {
  const GridSpec spec = make_centered_grid(5, 9, 2.0, 4.0);
  Grid2D rho(spec), grad(spec);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      rho.at(ix, iy) = -2.0 * spec.y_at(iy);
    }
  }
  transverse_gradient(rho, grad);
  for (double v : grad.data()) EXPECT_NEAR(v, -2.0, 1e-12);
}

TEST(Gradient, QuadraticFieldSecondOrderAccurate) {
  const GridSpec spec = make_centered_grid(33, 5, 4.0, 1.0);
  Grid2D rho(spec), grad(spec);
  for (std::uint32_t iy = 0; iy < spec.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < spec.nx; ++ix) {
      const double x = spec.x_at(ix);
      rho.at(ix, iy) = x * x;
    }
  }
  longitudinal_gradient(rho, grad);
  // Central differences are exact for quadratics in the interior.
  for (std::uint32_t ix = 1; ix + 1 < spec.nx; ++ix) {
    EXPECT_NEAR(grad.at(ix, 2), 2.0 * spec.x_at(ix), 1e-12);
  }
}

TEST(Gradient, SpecMismatchThrows) {
  Grid2D a(make_centered_grid(4, 4, 1.0, 1.0));
  Grid2D b(make_centered_grid(5, 5, 1.0, 1.0));
  EXPECT_THROW(longitudinal_gradient(a, b), bd::CheckError);
}

}  // namespace
}  // namespace bd::beam
