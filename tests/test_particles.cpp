/// Tests for the particle container and bunch samplers.

#include <gtest/gtest.h>

#include <cmath>

#include "beam/bunch.hpp"
#include "beam/particles.hpp"
#include "util/rng.hpp"

namespace bd::beam {
namespace {

TEST(Particles, ResizeKeepsArraysInSync) {
  ParticleSet p(10);
  EXPECT_EQ(p.size(), 10u);
  EXPECT_EQ(p.s().size(), 10u);
  EXPECT_EQ(p.y().size(), 10u);
  EXPECT_EQ(p.ps().size(), 10u);
  EXPECT_EQ(p.py().size(), 10u);
  p.resize(3);
  EXPECT_EQ(p.size(), 3u);
}

TEST(Particles, MomentsOfKnownSet) {
  ParticleSet p(2);
  p.s()[0] = -1.0;
  p.s()[1] = 3.0;
  p.y()[0] = 2.0;
  p.y()[1] = 2.0;
  EXPECT_DOUBLE_EQ(p.mean_s(), 1.0);
  EXPECT_DOUBLE_EQ(p.rms_s(), 2.0);
  EXPECT_DOUBLE_EQ(p.mean_y(), 2.0);
  EXPECT_DOUBLE_EQ(p.rms_y(), 0.0);
}

TEST(Bunch, GaussianMomentsMatchParams) {
  util::Rng rng(101);
  BeamParams params;
  params.sigma_s = 1.0;
  params.sigma_y = 0.5;
  params.charge = 2.0;
  const ParticleSet p = sample_gaussian_bunch(50000, params, rng);
  EXPECT_NEAR(p.mean_s(), 0.0, 0.02);
  EXPECT_NEAR(p.rms_s(), 1.0, 0.02);
  EXPECT_NEAR(p.rms_y(), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(p.weight(), 2.0 / 50000.0);
}

TEST(Bunch, ZeroMomentumSpreadByDefault) {
  util::Rng rng(5);
  const ParticleSet p = sample_gaussian_bunch(100, BeamParams{}, rng);
  for (double v : p.ps()) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : p.py()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Bunch, MomentumSpreadApplied) {
  util::Rng rng(6);
  const ParticleSet p =
      sample_gaussian_bunch(20000, BeamParams{}, rng, /*momentum_spread=*/0.1);
  double acc = 0.0;
  for (double v : p.ps()) acc += v * v;
  EXPECT_NEAR(std::sqrt(acc / 20000.0), 0.1, 0.005);
}

TEST(Bunch, RigidLineBunchIsOnAxis) {
  util::Rng rng(7);
  const ParticleSet p = sample_rigid_line_bunch(1000, BeamParams{}, rng);
  for (double v : p.y()) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : p.ps()) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_NEAR(p.rms_s(), 1.0, 0.1);
}

TEST(Bunch, DeterministicForSeed) {
  util::Rng rng1(42), rng2(42);
  const ParticleSet a = sample_gaussian_bunch(100, BeamParams{}, rng1);
  const ParticleSet b = sample_gaussian_bunch(100, BeamParams{}, rng2);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.s()[i], b.s()[i]);
    EXPECT_DOUBLE_EQ(a.y()[i], b.y()[i]);
  }
}

}  // namespace
}  // namespace bd::beam
