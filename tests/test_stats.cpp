/// Tests for the statistics helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace bd::util {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // mean 5, sum sq dev 32, unbiased variance 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, RmsKnown) {
  const std::vector<double> xs{3.0, 4.0};
  EXPECT_NEAR(rms(xs), std::sqrt(12.5), 1e-12);
}

TEST(Stats, MseAndMaxAbs) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 4.0, 0.0};
  EXPECT_NEAR(mean_squared_error(a, b), (0.0 + 4.0 + 9.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 3.0);
}

TEST(Stats, MseSizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(mean_squared_error(a, b), CheckError);
}

TEST(Stats, FitLineExact) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i - 1.0);
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitLineNoisy) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(-0.5 * i + 3.0 + ((i % 2) ? 0.1 : -0.1));
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, -0.5, 1e-3);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Stats, FitLineRejectsDegenerate) {
  const std::vector<double> xs{1.0, 1.0};
  const std::vector<double> ys{2.0, 3.0};
  EXPECT_THROW(fit_line(xs, ys), CheckError);
  EXPECT_THROW(fit_line(std::vector<double>{1.0}, std::vector<double>{1.0}),
               CheckError);
}

TEST(Stats, CorrelationSigns) {
  std::vector<double> xs, up, down;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    up.push_back(3.0 * i + 1);
    down.push_back(-2.0 * i);
  }
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
}

TEST(Stats, CorrelationConstantIsZero) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(correlation(a, b), 0.0);
}

}  // namespace
}  // namespace bd::util
