/// Tests for the checking macros.

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace bd {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(BD_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(BD_CHECK_MSG(true, "never seen"));
}

TEST(Check, FailingCheckThrows) {
  EXPECT_THROW(BD_CHECK(false), CheckError);
}

TEST(Check, MessageIncludesExpressionAndText) {
  try {
    BD_CHECK_MSG(2 > 3, "two is not greater, got " << 2);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not greater, got 2"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, CheckErrorIsRuntimeError) {
  EXPECT_THROW(BD_CHECK(false), std::runtime_error);
}

}  // namespace
}  // namespace bd
