/// Tests for the dense linear algebra kernel of the regression models.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/linalg.hpp"
#include "util/check.hpp"

namespace bd::ml {
namespace {

TEST(Matrix, BasicAccessAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(m.row(0)[1], -2.0);
}

TEST(Matrix, MultiplyKnown) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = Matrix::multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, GramIsAtA) {
  Matrix a(3, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  a(2, 0) = 5; a(2, 1) = 6;
  const Matrix g = Matrix::gram(a);
  EXPECT_DOUBLE_EQ(g(0, 0), 35);
  EXPECT_DOUBLE_EQ(g(0, 1), 44);
  EXPECT_DOUBLE_EQ(g(1, 0), 44);
  EXPECT_DOUBLE_EQ(g(1, 1), 56);
}

TEST(Matrix, AtB) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 0; a(1, 0) = 0; a(1, 1) = 2;
  Matrix b(2, 1);
  b(0, 0) = 3; b(1, 0) = 4;
  const Matrix c = Matrix::at_b(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 3);
  EXPECT_DOUBLE_EQ(c(1, 0), 8);
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Cholesky, FactorAndSolveSpd) {
  // A = [[4,2],[2,3]] — SPD.
  Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 3;
  Matrix l = a;
  ASSERT_TRUE(cholesky_factor(l));
  const std::vector<double> x = cholesky_solve(l, std::vector<double>{8, 7});
  // Solve [[4,2],[2,3]]x = [8,7] -> x = [1.25, 1.5].
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_factor(a));
}

TEST(SpdSolve, MultipleRhs) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 0; a(1, 0) = 0; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 2; b(0, 1) = 4; b(1, 0) = 4; b(1, 1) = 8;
  const Matrix x = spd_solve(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 2.0, 1e-12);
}

TEST(SpdSolve, RidgeRegularizesSingularMatrix) {
  Matrix a(2, 2);  // rank-1
  a(0, 0) = 1; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 1;
  Matrix b(2, 1);
  b(0, 0) = 1; b(1, 0) = 1;
  EXPECT_THROW(spd_solve(a, b, 0.0), bd::CheckError);
  const Matrix x = spd_solve(a, b, 1e-6);
  EXPECT_NEAR(x(0, 0), 0.5, 1e-4);
}

TEST(SquaredDistance, Basic) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{4.0, 6.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_THROW(squared_distance(a, std::vector<double>{1.0}), bd::CheckError);
}

TEST(Cholesky, LargerRandomSpdRoundTrip) {
  // Build SPD as MᵀM + I and verify solve(A, A·x) == x.
  const std::size_t n = 8;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = std::sin(static_cast<double>(i * 7 + j * 3 + 1));
    }
  }
  Matrix a = Matrix::gram(m);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  Matrix x_true(n, 1);
  for (std::size_t i = 0; i < n; ++i) x_true(i, 0) = static_cast<double>(i) - 3.0;
  const Matrix b = Matrix::multiply(a, x_true);
  const Matrix x = spd_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x(i, 0), x_true(i, 0), 1e-9);
  }
}

}  // namespace
}  // namespace bd::ml
