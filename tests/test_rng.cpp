/// Tests for the deterministic RNG stack (SplitMix64, xoshiro256++, Rng).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace bd::util {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 1234567 from the public-domain SplitMix64.
  SplitMix64 sm(1234567);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(1234567);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 g1(42), g2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g1.next(), g2.next());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 g1(1), g2(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (g1.next() == g2.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 base(7);
  Xoshiro256 jumped(7);
  jumped.jump();
  std::set<std::uint64_t> head;
  Xoshiro256 replay(7);
  for (int i = 0; i < 1000; ++i) head.insert(replay.next());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (head.count(jumped.next())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.uniform();
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(21);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(22);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.normal(3.0, 2.0);
  EXPECT_NEAR(mean(xs), 3.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(31);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k = rng.uniform_index(10);
    ASSERT_LT(k, 10u);
    ++counts[static_cast<std::size_t>(k)];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, UniformIndexZeroIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_index(0), 0u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(77);
  Rng child = parent.split();
  std::vector<double> a(5000), b(5000);
  for (int i = 0; i < 5000; ++i) {
    a[static_cast<std::size_t>(i)] = parent.uniform();
    b[static_cast<std::size_t>(i)] = child.uniform();
  }
  EXPECT_LT(std::abs(correlation(a, b)), 0.05);
}

TEST(Rng, ReproducibleAcrossInstances) {
  Rng r1(123), r2(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(r1.normal(), r2.normal());
  }
}

}  // namespace
}  // namespace bd::util
