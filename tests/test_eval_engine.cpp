/// Tests for the evaluation-engine overhaul: the shared-sample partition
/// sweep and the memoized adaptive driver must be *bit-identical* to the
/// naive formulations they replaced, and their evaluation counts must hit
/// the algebraic identities the perf-smoke gate relies on (4n+1 per sweep,
/// 2 per memoized bisection child, 4k+1 for a fully refined tree).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "beam/wake.hpp"
#include "beam/wake_simd.hpp"
#include "quad/adaptive.hpp"
#include "quad/batch_eval.hpp"
#include "quad/simpson.hpp"
#include "simt/trace.hpp"
#include "test_helpers.hpp"
#include "util/simd.hpp"

namespace bd::quad {
namespace {

simt::NullProbe& probe() { return simt::NullProbe::instance(); }

/// A smooth but non-polynomial integrand (nonzero Richardson error on
/// every interval) with an evaluation counter.
struct CountedIntegrand final : RadialIntegrand {
  mutable std::uint64_t evals = 0;
  double eval(double r, simt::LaneProbe&) const override {
    ++evals;
    return std::exp(-0.7 * r) * std::sin(3.0 * r + 0.25) + 0.1 * r * r;
  }
};

std::vector<double> irregular_partition() {
  return {0.0, 0.17, 0.4, 1.0, 1.03, 2.5, 3.0, 4.75, 6.0};
}

TEST(SimpsonSweep, BitwiseIdenticalToNaiveLoop) {
  const CountedIntegrand f;
  const std::vector<double> partition = irregular_partition();
  const std::size_t n = partition.size() - 1;

  std::vector<QuadEstimate> naive;
  for (std::size_t i = 0; i < n; ++i) {
    naive.push_back(
        simpson_estimate(f, partition[i], partition[i + 1], probe()));
  }

  std::vector<QuadEstimate> swept;
  std::vector<SimpsonSamples> samples;
  simpson_sweep(f, partition, probe(),
                [&](std::size_t, double, double, const QuadEstimate& est,
                    const SimpsonSamples& s) {
                  swept.push_back(est);
                  samples.push_back(s);
                });

  ASSERT_EQ(swept.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    // Exact double equality on purpose: the sweep reuses f(b_i) as
    // f(a_{i+1}) but every sample-point expression is unchanged.
    EXPECT_EQ(swept[i].integral, naive[i].integral) << "interval " << i;
    EXPECT_EQ(swept[i].error, naive[i].error) << "interval " << i;
  }
  // The visited samples are the real interval samples (the fallback seeds
  // adaptive refinement with them): recombining must reproduce the
  // estimate exactly.
  for (std::size_t i = 0; i < n; ++i) {
    const QuadEstimate re =
        simpson_combine(partition[i], partition[i + 1], samples[i], probe());
    EXPECT_EQ(re.integral, swept[i].integral) << "interval " << i;
    EXPECT_EQ(re.error, swept[i].error) << "interval " << i;
  }
}

TEST(SimpsonSweep, CostsFourNPlusOneEvaluations) {
  for (std::size_t n : {1u, 2u, 7u, 32u}) {
    CountedIntegrand f;
    std::vector<double> partition;
    for (std::size_t i = 0; i <= n; ++i) {
      partition.push_back(6.0 * static_cast<double>(i) /
                          static_cast<double>(n));
    }
    const std::uint64_t reported =
        simpson_sweep(f, partition, probe(),
                      [](std::size_t, double, double, const QuadEstimate&,
                         const SimpsonSamples&) {});
    EXPECT_EQ(reported, 4 * n + 1) << "n=" << n;
    EXPECT_EQ(f.evals, 4 * n + 1) << "n=" << n;  // naive loop pays 5n
  }
}

TEST(SimpsonSweep, DegenerateInputsCostNothing) {
  CountedIntegrand f;
  auto visit = [](std::size_t, double, double, const QuadEstimate&,
                  const SimpsonSamples&) { FAIL() << "no intervals"; };
  EXPECT_EQ(simpson_sweep(f, {}, probe(), visit), 0u);
  const std::vector<double> single{1.0};
  EXPECT_EQ(simpson_sweep(f, single, probe(), visit), 0u);
  EXPECT_EQ(f.evals, 0u);
}

TEST(SimpsonMemo, TwoEvaluationsAndBitIdenticalEstimate) {
  const CountedIntegrand f;
  const double a = 0.3, b = 2.1;
  const QuadEstimate full = simpson_estimate(f, a, b, probe());
  EXPECT_EQ(f.evals, 5u);

  const double m = 0.5 * (a + b);
  f.evals = 0;
  const double fa = f.eval(a, probe());
  const double fm = f.eval(m, probe());
  const double fb = f.eval(b, probe());
  SimpsonSamples out;
  const QuadEstimate memo =
      simpson_estimate_memo(f, a, b, fa, fm, fb, probe(), out);
  EXPECT_EQ(f.evals, 5u);  // 3 coarse (paid above) + exactly 2 fine
  EXPECT_EQ(memo.integral, full.integral);
  EXPECT_EQ(memo.error, full.error);
  EXPECT_EQ(out.fa, fa);
  EXPECT_EQ(out.fm, fm);
  EXPECT_EQ(out.fb, fb);
}

/// The historical non-memoized adaptive driver, reimplemented verbatim as
/// a reference: same worklist discipline (LIFO, left child on top), same
/// accept/poison/budget logic, but every item pays the full 5-point
/// simpson_estimate.
AdaptiveResult reference_adaptive(const RadialIntegrand& f, double a,
                                  double b, double tol,
                                  const AdaptiveOptions& options = {}) {
  struct Item {
    double a, b, tol;
    int depth;
  };
  AdaptiveResult result;
  std::vector<Item> stack{{a, b, tol, 0}};
  std::vector<double> interior;
  std::uint64_t intervals_created = 1;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const QuadEstimate est =
        simpson_estimate(f, item.a, item.b, probe());
    result.evaluations += 5;
    const bool poisoned =
        !std::isfinite(est.integral) || !std::isfinite(est.error);
    const bool accepted = poisoned || est.error <= item.tol ||
                          item.depth >= options.max_depth ||
                          intervals_created >= options.max_intervals;
    if (accepted) {
      if (poisoned || est.error > item.tol) result.converged = false;
      result.integral += est.integral;
      result.error += est.error;
      if (item.a != a) interior.push_back(item.a);
    } else {
      const double m = 0.5 * (item.a + item.b);
      stack.push_back({m, item.b, 0.5 * item.tol, item.depth + 1});
      stack.push_back({item.a, m, 0.5 * item.tol, item.depth + 1});
      ++intervals_created;
    }
  }
  std::sort(interior.begin(), interior.end());
  result.breakpoints.push_back(a);
  for (double x : interior) result.breakpoints.push_back(x);
  result.breakpoints.push_back(b);
  return result;
}

TEST(AdaptiveMemo, BitwiseIdenticalToNonMemoizedReference) {
  const CountedIntegrand f;
  for (double tol : {1e-3, 1e-6, 1e-9}) {
    const AdaptiveResult memo = adaptive_simpson(f, 0.0, 6.0, tol, probe());
    const AdaptiveResult ref = reference_adaptive(f, 0.0, 6.0, tol);
    ASSERT_GT(memo.breakpoints.size(), 2u) << "tol too loose to refine";
    EXPECT_EQ(memo.integral, ref.integral) << "tol=" << tol;
    EXPECT_EQ(memo.error, ref.error) << "tol=" << tol;
    EXPECT_EQ(memo.converged, ref.converged) << "tol=" << tol;
    EXPECT_EQ(memo.breakpoints, ref.breakpoints) << "tol=" << tol;
    // Memoization changes only who pays: evals + saved must equal the
    // reference's full price.
    EXPECT_EQ(memo.evaluations + memo.evaluations_saved, ref.evaluations)
        << "tol=" << tol;
    EXPECT_LT(memo.evaluations, ref.evaluations) << "tol=" << tol;
  }
}

TEST(AdaptiveMemo, FullyRefinedTreeCostsFourLeavesPlusOne) {
  // An impossible tolerance with a shallow depth cap forces a complete
  // binary tree of 2^depth leaves; each bisection child costs exactly 2
  // new evaluations, so the whole tree costs 4k+1 where k = leaf count.
  const CountedIntegrand f;
  AdaptiveOptions options;
  options.max_depth = 3;
  const AdaptiveResult r =
      adaptive_simpson(f, 0.0, 6.0, 1e-300, probe(), options);
  const std::uint64_t k = 8;  // 2^3 leaves
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.breakpoints.size(), k + 1);
  EXPECT_EQ(r.evaluations, 4 * k + 1);
  EXPECT_EQ(f.evals, 4 * k + 1);
  // Old cost: 5 per node over the full tree of 2k-1 nodes.
  EXPECT_EQ(r.evaluations + r.evaluations_saved, 5 * (2 * k - 1));
}

TEST(AdaptiveMemo, SeededRootReusesSweepSamples) {
  // The fallback path: kernel 1 already holds the five samples of a failed
  // interval, so the seeded driver books zero evaluations for the root.
  const CountedIntegrand f;
  const double a = 0.0, b = 3.0, m = 0.5 * (a + b);
  SimpsonSamples root;
  root.fa = f.eval(a, probe());
  root.fm = f.eval(m, probe());
  root.fb = f.eval(b, probe());
  root.fl = f.eval(0.5 * (a + m), probe());
  root.fr = f.eval(0.5 * (m + b), probe());
  f.evals = 0;

  std::vector<AdaptiveWorkItem> stack;
  const AdaptiveOutcome seeded = adaptive_simpson_seeded(
      f, a, b, 1e-8, root, probe(), {}, stack,
      [](const AdaptiveWorkItem&, const QuadEstimate&) {});
  EXPECT_EQ(seeded.evaluations, f.evals);  // root cost nothing new
  const AdaptiveResult standalone =
      adaptive_simpson(f, a, b, 1e-8, probe());
  EXPECT_EQ(standalone.evaluations, seeded.evaluations + 5);
  EXPECT_EQ(standalone.integral, seeded.integral);
  EXPECT_EQ(standalone.error, seeded.error);
}

TEST(WakeIntegrandProperty, PureEvaluationOnRealProblem) {
  // The sweep's sample reuse and the memo driver's sample inheritance are
  // sound only if the production integrand is pure (same r -> same bits).
  const bd::testing::ProblemFixture fixture(16, 1e-6);
  const beam::GridSpec& spec = fixture.spec;
  const beam::WakeIntegrand integrand(
      *fixture.problem.history, *fixture.problem.model, spec.x_at(7),
      spec.y_at(9), fixture.problem.step, fixture.problem.sub_width);
  for (double r : {0.0, 0.3, 1.7, 4.2, fixture.problem.r_max()}) {
    const double first = integrand.eval(r, probe());
    const double second = integrand.eval(r, probe());
    EXPECT_EQ(first, second) << "r=" << r;
  }
}

TEST(WakeIntegrandProperty, SweepMatchesNaiveLoopOnRealProblem) {
  const bd::testing::ProblemFixture fixture(16, 1e-6);
  const beam::GridSpec& spec = fixture.spec;
  const beam::WakeIntegrand integrand(
      *fixture.problem.history, *fixture.problem.model, spec.x_at(5),
      spec.y_at(8), fixture.problem.step, fixture.problem.sub_width);
  std::vector<double> partition;
  const std::size_t n = 12;
  for (std::size_t i = 0; i <= n; ++i) {
    partition.push_back(fixture.problem.r_max() * static_cast<double>(i) /
                        static_cast<double>(n));
  }
  std::vector<QuadEstimate> naive;
  for (std::size_t i = 0; i < n; ++i) {
    naive.push_back(
        simpson_estimate(integrand, partition[i], partition[i + 1], probe()));
  }
  std::size_t visited = 0;
  simpson_sweep(integrand, partition, probe(),
                [&](std::size_t i, double, double, const QuadEstimate& est,
                    const SimpsonSamples&) {
                  EXPECT_EQ(est.integral, naive[i].integral) << i;
                  EXPECT_EQ(est.error, naive[i].error) << i;
                  ++visited;
                });
  EXPECT_EQ(visited, n);
}

// ---- SIMD batch engine (src/beam/wake_simd.cpp) ---------------------------
// eval_batch must be bitwise identical to sequential eval() calls — output
// values AND probe event streams — at every dispatch level, for every batch
// width, including boundary stencils and out-of-range samples.

/// Pins the dispatch level for one scope; always restores the default.
struct LevelGuard {
  explicit LevelGuard(simd::Level level) { simd::override_level(level); }
  ~LevelGuard() { simd::reset_level(); }
};

/// The simpson-sweep batch layout for subregion interval j of width 1.
std::array<double, 4> sweep_batch(std::size_t j) {
  const double a = static_cast<double>(j);
  const double b = a + 1.0;
  const double m = 0.5 * (a + b);
  return {m, b, 0.5 * (a + m), 0.5 * (m + b)};
}

TEST(SimdBatch, BatchedMatchesScalarBitwiseOnTableIWorkload) {
  // Table I default geometry (64×64, 12 subregions). Strided nodes cover
  // interior and boundary stencils; the samples are exactly the batches
  // simpson_sweep hands to eval_batch in production.
  const bd::testing::ProblemFixture fixture(64, 1e-6, 12);
  const beam::GridSpec& spec = fixture.spec;
  for (std::uint32_t node = 0; node < spec.nx * spec.ny; node += 97) {
    const std::uint32_t ix = node % spec.nx;
    const std::uint32_t iy = node / spec.nx;
    const beam::WakeIntegrand f(
        *fixture.problem.history, *fixture.problem.model, spec.x_at(ix),
        spec.y_at(iy), fixture.problem.step, fixture.problem.sub_width);
    for (std::size_t j = 0; j < 12; ++j) {
      const std::array<double, 4> u = sweep_batch(j);
      double ref[4], got[4];
      for (std::size_t k = 0; k < 4; ++k) ref[k] = f.eval(u[k], probe());
      f.eval_batch(u.data(), got, 4, probe());
      for (std::size_t k = 0; k < 4; ++k) {
        ASSERT_EQ(got[k], ref[k])
            << "node (" << ix << "," << iy << ") interval " << j
            << " lane " << k;
      }
    }
  }
}

TEST(SimdBatch, PartialWidthsBoundaryAndOutOfRangeSamples) {
  // Widths 1..4 never take the AVX2 fast path below 4; out-of-range u
  // (past r_max the range branch rejects) and edge nodes (x-stencil out of
  // bounds) force the mixed-lane scalar fallback inside eval_batch.
  const bd::testing::ProblemFixture fixture(16, 1e-6, 12);
  const beam::GridSpec& spec = fixture.spec;
  const double far = fixture.problem.r_max() + 25.0;  // in_range == false
  const std::uint32_t nodes[][2] = {{0, 0}, {1, 8}, {8, 8}, {15, 15}};
  for (const auto& node : nodes) {
    const beam::WakeIntegrand f(
        *fixture.problem.history, *fixture.problem.model,
        spec.x_at(node[0]), spec.y_at(node[1]), fixture.problem.step,
        fixture.problem.sub_width);
    const double samples[] = {0.0, 0.75, far, 2.5, far, 0.1, 4.9};
    for (std::size_t n = 1; n <= quad::kBatchWidth; ++n) {
      for (std::size_t off = 0; off + n <= std::size(samples); ++off) {
        double ref[quad::kBatchWidth], got[quad::kBatchWidth];
        for (std::size_t k = 0; k < n; ++k) {
          ref[k] = f.eval(samples[off + k], probe());
        }
        f.eval_batch(samples + off, got, n, probe());
        for (std::size_t k = 0; k < n; ++k) {
          ASSERT_EQ(got[k], ref[k]) << "node (" << node[0] << "," << node[1]
                                    << ") width " << n << " lane " << k;
        }
      }
    }
  }
}

TEST(SimdBatch, ForcedScalarAndActiveDispatchAgree) {
  // The escape hatch (BD_SIMD=off ≙ override to kScalar) must not move a
  // bit. On hosts without AVX2 both runs are scalar and the test is a
  // tautology — the CI AVX2 leg provides the interesting coverage.
  const bd::testing::ProblemFixture fixture(32, 1e-6, 12);
  const beam::GridSpec& spec = fixture.spec;
  const beam::WakeIntegrand f(
      *fixture.problem.history, *fixture.problem.model, spec.x_at(13),
      spec.y_at(17), fixture.problem.step, fixture.problem.sub_width);
  for (std::size_t j = 0; j < 12; ++j) {
    const std::array<double, 4> u = sweep_batch(j);
    double scalar[4], active[4];
    {
      LevelGuard guard(simd::Level::kScalar);
      f.eval_batch(u.data(), scalar, 4, probe());
    }
    f.eval_batch(u.data(), active, 4, probe());
    for (std::size_t k = 0; k < 4; ++k) {
      ASSERT_EQ(active[k], scalar[k]) << "interval " << j << " lane " << k;
    }
  }
}

TEST(SimdBatch, ProbeStreamIdenticalToSequentialEval) {
  // The warp analyzer reconstructs lockstep execution from these streams;
  // the batched path must emit the very same events. Emission is lane-major
  // with per-lane ordering equal to eval()'s, so the raw vectors — not just
  // the per-site subsequences — must match.
  const bd::testing::ProblemFixture fixture(32, 1e-6, 12);
  const beam::GridSpec& spec = fixture.spec;
  const beam::WakeIntegrand f(
      *fixture.problem.history, *fixture.problem.model, spec.x_at(3),
      spec.y_at(28), fixture.problem.step, fixture.problem.sub_width);
  const double far = fixture.problem.r_max() + 25.0;
  const std::array<std::array<double, 4>, 3> batches = {
      sweep_batch(0), sweep_batch(7), {1.0, far, 0.25, far}};
  for (const auto& u : batches) {
    simt::LaneTrace scalar_trace, batch_trace;
    double ref[4], got[4];
    for (std::size_t k = 0; k < 4; ++k) {
      ref[k] = f.eval(u[k], scalar_trace);
    }
    f.eval_batch(u.data(), got, 4, batch_trace);
    for (std::size_t k = 0; k < 4; ++k) ASSERT_EQ(got[k], ref[k]);

    EXPECT_EQ(batch_trace.flops(), scalar_trace.flops());
    ASSERT_EQ(batch_trace.loads().size(), scalar_trace.loads().size());
    for (std::size_t i = 0; i < scalar_trace.loads().size(); ++i) {
      const simt::LoadEvent& a = scalar_trace.loads()[i];
      const simt::LoadEvent& b = batch_trace.loads()[i];
      ASSERT_EQ(b.site, a.site) << "load " << i;
      ASSERT_EQ(b.addr, a.addr) << "load " << i;
      ASSERT_EQ(b.bytes, a.bytes) << "load " << i;
    }
    ASSERT_EQ(batch_trace.branches().size(), scalar_trace.branches().size());
    for (std::size_t i = 0; i < scalar_trace.branches().size(); ++i) {
      ASSERT_EQ(batch_trace.branches()[i].site,
                scalar_trace.branches()[i].site) << "branch " << i;
      ASSERT_EQ(batch_trace.branches()[i].taken,
                scalar_trace.branches()[i].taken) << "branch " << i;
    }
    EXPECT_EQ(batch_trace.loops().size(), scalar_trace.loops().size());
  }
}

TEST(SimdBatch, DefaultEvalBatchLoopsOverEval) {
  // RadialIntegrands without a custom batch path fall back to n sequential
  // eval() calls — identical bits, identical evaluation counts (the eval-
  // count identities above depend on this).
  const CountedIntegrand f;
  const double u[4] = {0.1, 1.9, 3.2, 5.5};
  double ref[4], got[4];
  for (std::size_t k = 0; k < 4; ++k) ref[k] = f.eval(u[k], probe());
  f.evals = 0;
  f.eval_batch(u, got, 4, probe());
  EXPECT_EQ(f.evals, 4u);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(got[k], ref[k]);
}

}  // namespace
}  // namespace bd::quad
