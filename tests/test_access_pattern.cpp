/// Tests for the access-pattern representation (§III-A).

#include <gtest/gtest.h>

#include "core/access_pattern.hpp"
#include "util/check.hpp"

namespace bd::core {
namespace {

TEST(PatternField, LayoutAndAccess) {
  PatternField field(4, 3);
  EXPECT_EQ(field.points(), 4u);
  EXPECT_EQ(field.subregions(), 3u);
  field.at(2)[1] = 5.0;
  EXPECT_DOUBLE_EQ(field.at(2)[1], 5.0);
  EXPECT_DOUBLE_EQ(field.flat()[2 * 3 + 1], 5.0);
}

TEST(PatternField, ClearValues) {
  PatternField field(2, 2);
  field.at(0)[0] = 1.0;
  field.clear_values();
  for (double v : field.flat()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Pattern, DistanceEuclidean) {
  const AccessPattern a{1.0, 2.0, 3.0};
  const AccessPattern b{1.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(pattern_distance(a, b), 2.0);
  EXPECT_THROW(pattern_distance(a, AccessPattern{1.0}), bd::CheckError);
}

TEST(Pattern, TotalIntervalsCeils) {
  const AccessPattern p{0.4, 2.0, 1.5, 0.0, -0.5};
  // ceil: 1 + 2 + 2 + 0 + 0 (negatives clamp to 0).
  EXPECT_EQ(pattern_total_intervals(p), 5u);
}

TEST(Pattern, ReferencesToGridFormula) {
  // Paper §III-A: refs to D_{k-i} = α(n_i + n_{i-1} + n_{i-2}).
  const AccessPattern p{2.0, 4.0, 8.0, 16.0};
  const double alpha = 7.0;
  EXPECT_DOUBLE_EQ(pattern_references_to_grid(p, 0, alpha), 7.0 * 2.0);
  EXPECT_DOUBLE_EQ(pattern_references_to_grid(p, 1, alpha), 7.0 * 6.0);
  EXPECT_DOUBLE_EQ(pattern_references_to_grid(p, 3, alpha), 7.0 * 28.0);
  EXPECT_THROW(pattern_references_to_grid(p, 4, alpha), bd::CheckError);
}

TEST(Pattern, MergeMaxElementwise) {
  AccessPattern into{1.0, 5.0, 2.0};
  const AccessPattern other{3.0, 4.0, 2.0};
  pattern_merge_max(into, other);
  EXPECT_EQ(into, (AccessPattern{3.0, 5.0, 2.0}));
}

}  // namespace
}  // namespace bd::core
