/// Tests for the supervised-learning dataset container.

#include <gtest/gtest.h>

#include "ml/dataset.hpp"
#include "util/check.hpp"

namespace bd::ml {
namespace {

TEST(Dataset, AddAndAccess) {
  Dataset d(2, 3);
  d.add(std::vector<double>{1.0, 2.0}, std::vector<double>{3.0, 4.0, 5.0});
  d.add(std::vector<double>{6.0, 7.0}, std::vector<double>{8.0, 9.0, 10.0});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.feature_dim(), 2u);
  EXPECT_EQ(d.target_dim(), 3u);
  EXPECT_DOUBLE_EQ(d.features(1)[0], 6.0);
  EXPECT_DOUBLE_EQ(d.targets(0)[2], 5.0);
}

TEST(Dataset, DimensionMismatchThrows) {
  Dataset d(2, 1);
  EXPECT_THROW(d.add(std::vector<double>{1.0}, std::vector<double>{1.0}),
               bd::CheckError);
  EXPECT_THROW(
      d.add(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0, 2.0}),
      bd::CheckError);
}

TEST(Dataset, MatricesMaterialize) {
  Dataset d(1, 2);
  d.add(std::vector<double>{1.0}, std::vector<double>{2.0, 3.0});
  d.add(std::vector<double>{4.0}, std::vector<double>{5.0, 6.0});
  const Matrix x = d.feature_matrix();
  const Matrix y = d.target_matrix();
  EXPECT_EQ(x.rows(), 2u);
  EXPECT_EQ(x.cols(), 1u);
  EXPECT_DOUBLE_EQ(x(1, 0), 4.0);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(y(0, 1), 3.0);
}

TEST(Dataset, SplitPreservesAllExamples) {
  Dataset d(1, 1);
  for (int i = 0; i < 100; ++i) {
    const double v = i;
    d.add(std::vector<double>{v}, std::vector<double>{2 * v});
  }
  util::Rng rng(5);
  const auto [train, test] = d.split(0.25, rng);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
  // Every original feature appears exactly once across the two sets.
  std::vector<int> seen(100, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    ++seen[static_cast<std::size_t>(train.features(i)[0])];
  }
  for (std::size_t i = 0; i < test.size(); ++i) {
    ++seen[static_cast<std::size_t>(test.features(i)[0])];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Dataset, SplitIsDeterministicForSeed) {
  Dataset d(1, 1);
  for (int i = 0; i < 20; ++i) {
    const double v = i;
    d.add(std::vector<double>{v}, std::vector<double>{v});
  }
  util::Rng rng1(9), rng2(9);
  const auto [t1, s1] = d.split(0.5, rng1);
  const auto [t2, s2] = d.split(0.5, rng2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.features(i)[0], t2.features(i)[0]);
  }
}

TEST(Dataset, ClearKeepsDims) {
  Dataset d(2, 2);
  d.add(std::vector<double>{1.0, 2.0}, std::vector<double>{3.0, 4.0});
  d.clear();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.feature_dim(), 2u);
  d.add(std::vector<double>{1.0, 2.0}, std::vector<double>{3.0, 4.0});
  EXPECT_EQ(d.size(), 1u);
}

}  // namespace
}  // namespace bd::ml
