/// Tests for the warp analyzer: divergence reconstruction and memory
/// replay from per-lane traces.

#include <gtest/gtest.h>

#include "simt/warp.hpp"
#include "util/check.hpp"

namespace bd::simt {
namespace {

constexpr std::uint32_t kLoad = site_id("test/load");
constexpr std::uint32_t kLoop = site_id("test/loop");
constexpr std::uint32_t kBranch = site_id("test/branch");

struct WarpHarness {
  DeviceSpec spec = test_device();
  SetAssocCache l1{spec.l1_bytes, spec.l1_line_bytes, spec.l1_ways};
  SetAssocCache l2{spec.l2_bytes, spec.l2_line_bytes, spec.l2_ways};
  KernelMetrics metrics;

  void analyze(const std::vector<LaneTrace>& traces) {
    std::vector<const LaneTrace*> ptrs;
    for (const auto& t : traces) ptrs.push_back(&t);
    analyze_warp(ptrs, spec, l1, l2, metrics);
  }
};

TEST(Warp, UniformLoadsFullyActive) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(32);
  for (std::size_t i = 0; i < 32; ++i) {
    lanes[i].load(kLoad, reinterpret_cast<void*>(0x1000 + 8 * i), 8);
  }
  h.analyze(lanes);
  EXPECT_EQ(h.metrics.load_instructions, 1u);
  EXPECT_EQ(h.metrics.active_lane_slots, 32u);
  EXPECT_EQ(h.metrics.lane_slots, 32u);
  EXPECT_DOUBLE_EQ(h.metrics.warp_execution_efficiency(), 1.0);
  // 32 × 8B contiguous starting at 0x1000 (128-aligned) = 2 lines.
  EXPECT_EQ(h.metrics.l1_transactions, 2u);
  EXPECT_EQ(h.metrics.bytes_requested, 256u);
}

TEST(Warp, PartialLoadGroupCountsInactiveLanes) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(32);
  for (std::size_t i = 0; i < 8; ++i) {
    lanes[i].load(kLoad, reinterpret_cast<void*>(0x1000), 8);
  }
  h.analyze(lanes);
  EXPECT_EQ(h.metrics.active_lane_slots, 8u);
  EXPECT_EQ(h.metrics.lane_slots, 32u);
  EXPECT_DOUBLE_EQ(h.metrics.warp_execution_efficiency(), 0.25);
}

TEST(Warp, LoopDivergenceFromTripSpread) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(4);
  lanes[0].loop_trip(kLoop, 10);
  lanes[1].loop_trip(kLoop, 10);
  lanes[2].loop_trip(kLoop, 5);
  lanes[3].loop_trip(kLoop, 1);
  h.analyze(lanes);
  // Warp runs 10 iterations; active lane-iterations = 26 of 10*32 slots.
  EXPECT_EQ(h.metrics.warp_instructions, 10u);
  EXPECT_EQ(h.metrics.active_lane_slots, 26u);
  EXPECT_EQ(h.metrics.lane_slots, 320u);
}

TEST(Warp, UniformLoopIsFullyEfficientWhenWarpFull) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(32);
  for (auto& lane : lanes) lane.loop_trip(kLoop, 7);
  h.analyze(lanes);
  EXPECT_DOUBLE_EQ(h.metrics.warp_execution_efficiency(), 1.0);
}

TEST(Warp, DivergentBranchDetected) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(4);
  lanes[0].branch(kBranch, true);
  lanes[1].branch(kBranch, true);
  lanes[2].branch(kBranch, false);
  lanes[3].branch(kBranch, true);
  h.analyze(lanes);
  EXPECT_EQ(h.metrics.branch_events, 1u);
  EXPECT_EQ(h.metrics.divergent_branches, 1u);
}

TEST(Warp, UniformBranchNotDivergent) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(4);
  for (auto& lane : lanes) lane.branch(kBranch, true);
  h.analyze(lanes);
  EXPECT_EQ(h.metrics.branch_events, 1u);
  EXPECT_EQ(h.metrics.divergent_branches, 0u);
}

TEST(Warp, OccurrencesAtSameSiteAreSeparateInstructions) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(2);
  lanes[0].load(kLoad, reinterpret_cast<void*>(0x0), 8);
  lanes[0].load(kLoad, reinterpret_cast<void*>(0x100), 8);
  lanes[1].load(kLoad, reinterpret_cast<void*>(0x8), 8);
  // Lane 1 has only one occurrence — the second group has 1 active lane.
  h.analyze(lanes);
  EXPECT_EQ(h.metrics.load_instructions, 2u);
  EXPECT_EQ(h.metrics.active_lane_slots, 3u);
}

TEST(Warp, FlopsSummedAcrossLanes) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(3);
  lanes[0].count_flops(10);
  lanes[1].count_flops(20);
  lanes[2].count_flops(30);
  h.analyze(lanes);
  EXPECT_EQ(h.metrics.flops, 60u);
}

TEST(Warp, L1MissGeneratesL2SectorTraffic) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(1);
  lanes[0].load(kLoad, reinterpret_cast<void*>(0x0), 8);
  h.analyze(lanes);
  // one 128B L1 miss = 4 × 32B L2 sector accesses, all missing to DRAM.
  EXPECT_EQ(h.metrics.l1.misses, 1u);
  EXPECT_EQ(h.metrics.l2.accesses(), 4u);
  EXPECT_EQ(h.metrics.dram_bytes, 128u);
}

TEST(Warp, RepeatedLoadHitsL1) {
  WarpHarness h;
  std::vector<LaneTrace> lanes(1);
  lanes[0].load(kLoad, reinterpret_cast<void*>(0x0), 8);
  lanes[0].load(kLoad, reinterpret_cast<void*>(0x8), 8);
  h.analyze(lanes);
  EXPECT_EQ(h.metrics.l1.hits, 1u);
  EXPECT_EQ(h.metrics.l1.misses, 1u);
  EXPECT_EQ(h.metrics.dram_bytes, 128u);
}

TEST(Warp, EmptyWarpRejected) {
  WarpHarness h;
  std::vector<const LaneTrace*> none;
  EXPECT_THROW(
      analyze_warp(none, h.spec, h.l1, h.l2, h.metrics), CheckError);
}

TEST(Warp, TraceResetClearsEvents) {
  LaneTrace trace;
  trace.load(kLoad, nullptr, 8);
  trace.loop_trip(kLoop, 3);
  trace.branch(kBranch, true);
  trace.count_flops(5);
  trace.reset();
  EXPECT_TRUE(trace.loads().empty());
  EXPECT_TRUE(trace.loops().empty());
  EXPECT_TRUE(trace.branches().empty());
  EXPECT_EQ(trace.flops(), 0u);
}

}  // namespace
}  // namespace bd::simt
