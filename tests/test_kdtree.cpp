/// Tests for the kd-tree, including brute-force cross-validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ml/kdtree.hpp"
#include "ml/linalg.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bd::ml {
namespace {

std::vector<Neighbor> brute_force(const std::vector<double>& points,
                                  std::size_t count, std::size_t dim,
                                  std::span<const double> query,
                                  std::size_t k) {
  std::vector<Neighbor> all;
  for (std::size_t i = 0; i < count; ++i) {
    all.push_back(Neighbor{
        i, squared_distance(
               std::span<const double>(points.data() + i * dim, dim), query)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_dist != b.squared_dist) {
      return a.squared_dist < b.squared_dist;
    }
    return a.index < b.index;
  });
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(KdTree, SinglePoint) {
  const std::vector<double> pts{1.0, 2.0};
  KdTree tree;
  tree.build(pts, 1, 2);
  const auto nn = tree.query(std::vector<double>{0.0, 0.0}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].index, 0u);
  EXPECT_DOUBLE_EQ(nn[0].squared_dist, 5.0);
}

TEST(KdTree, ExactNearestOnGrid) {
  std::vector<double> pts;
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      pts.push_back(x);
      pts.push_back(y);
    }
  }
  KdTree tree;
  tree.build(pts, 25, 2);
  const auto nn = tree.query(std::vector<double>{2.2, 3.1}, 1);
  EXPECT_EQ(nn[0].index, 17u);  // (2,3)
}

TEST(KdTree, KClampedToCount) {
  const std::vector<double> pts{0.0, 1.0, 2.0};
  KdTree tree;
  tree.build(pts, 3, 1);
  const auto nn = tree.query(std::vector<double>{0.5}, 10);
  EXPECT_EQ(nn.size(), 3u);
}

TEST(KdTree, ResultsSortedAscending) {
  util::Rng rng(3);
  std::vector<double> pts(200);
  for (double& v : pts) v = rng.uniform(-1, 1);
  KdTree tree;
  tree.build(pts, 100, 2);
  const auto nn = tree.query(std::vector<double>{0.0, 0.0}, 10);
  for (std::size_t i = 1; i < nn.size(); ++i) {
    EXPECT_GE(nn[i].squared_dist, nn[i - 1].squared_dist);
  }
}

TEST(KdTree, EmptyQueryThrows) {
  KdTree tree;
  EXPECT_THROW(tree.query(std::vector<double>{0.0}, 1), bd::CheckError);
}

TEST(KdTree, BuildValidatesSizes) {
  KdTree tree;
  EXPECT_THROW(tree.build(std::vector<double>{1.0, 2.0, 3.0}, 2, 2),
               bd::CheckError);
}

TEST(KdTree, DuplicatePointsAllFound) {
  const std::vector<double> pts{1.0, 1.0, 1.0, 2.0};
  KdTree tree;
  tree.build(pts, 4, 1);
  const auto nn = tree.query(std::vector<double>{1.0}, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_DOUBLE_EQ(nn[0].squared_dist, 0.0);
  EXPECT_DOUBLE_EQ(nn[1].squared_dist, 0.0);
  EXPECT_DOUBLE_EQ(nn[2].squared_dist, 0.0);
}

// Property: kd-tree matches brute force on random point sets.
class KdTreeRandom : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(KdTreeRandom, MatchesBruteForce) {
  const auto [count, dim, k] = GetParam();
  util::Rng rng(1000 + count * 7 + dim);
  std::vector<double> pts(static_cast<std::size_t>(count) * dim);
  for (double& v : pts) v = rng.uniform(-10, 10);
  KdTree tree;
  tree.build(pts, static_cast<std::size_t>(count), static_cast<std::size_t>(dim));
  for (int q = 0; q < 20; ++q) {
    std::vector<double> query(static_cast<std::size_t>(dim));
    for (double& v : query) v = rng.uniform(-12, 12);
    const auto fast = tree.query(query, static_cast<std::size_t>(k));
    const auto slow = brute_force(pts, static_cast<std::size_t>(count),
                                  static_cast<std::size_t>(dim), query,
                                  static_cast<std::size_t>(k));
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i].squared_dist, slow[i].squared_dist, 1e-12)
          << "query " << q << " neighbor " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, KdTreeRandom,
    ::testing::Values(std::make_tuple(50, 2, 1), std::make_tuple(50, 2, 5),
                      std::make_tuple(200, 3, 4), std::make_tuple(500, 2, 8),
                      std::make_tuple(100, 5, 3)));

}  // namespace
}  // namespace bd::ml
