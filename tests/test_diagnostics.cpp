/// Tests for the beam diagnostics module.

#include <gtest/gtest.h>

#include <cmath>

#include "beam/bunch.hpp"
#include "beam/deposit.hpp"
#include "beam/diagnostics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bd::beam {
namespace {

TEST(Diagnostics, MomentsOfColdBunchHaveZeroEmittance) {
  util::Rng rng(1);
  const ParticleSet p = sample_gaussian_bunch(10000, BeamParams{}, rng);
  const PlaneMoments m = longitudinal_moments(p);
  EXPECT_NEAR(m.sigma_position, 1.0, 0.05);
  EXPECT_DOUBLE_EQ(m.sigma_momentum, 0.0);
  EXPECT_DOUBLE_EQ(m.emittance, 0.0);
}

TEST(Diagnostics, EmittanceOfUncorrelatedPhaseSpace) {
  util::Rng rng(2);
  const ParticleSet p =
      sample_gaussian_bunch(50000, BeamParams{}, rng, /*spread=*/0.5);
  const PlaneMoments m = longitudinal_moments(p);
  // Uncorrelated Gaussian phase space: ε = σ_x σ_p.
  EXPECT_NEAR(m.emittance, m.sigma_position * m.sigma_momentum,
              0.02 * m.emittance + 1e-12);
  EXPECT_NEAR(m.sigma_momentum, 0.5, 0.02);
  EXPECT_NEAR(m.correlation, 0.0, 0.01);
}

TEST(Diagnostics, CorrelatedPhaseSpaceShrinksEmittance) {
  // p = 0.7 x exactly: a fully-correlated (chirped) beam has ε = 0.
  ParticleSet p(1000);
  util::Rng rng(3);
  for (std::size_t i = 0; i < 1000; ++i) {
    p.s()[i] = rng.normal();
    p.ps()[i] = 0.7 * p.s()[i];
  }
  const PlaneMoments m = longitudinal_moments(p);
  EXPECT_NEAR(m.emittance, 0.0, 1e-9);
  EXPECT_GT(m.correlation, 0.0);
}

TEST(Diagnostics, EmptyBunchIsAllZero) {
  const PlaneMoments m = transverse_moments(ParticleSet{});
  EXPECT_DOUBLE_EQ(m.sigma_position, 0.0);
  EXPECT_DOUBLE_EQ(m.emittance, 0.0);
}

TEST(Diagnostics, LineDensityIntegratesToCharge) {
  util::Rng rng(4);
  BeamParams params;
  params.charge = 2.5;
  const ParticleSet p = sample_gaussian_bunch(20000, params, rng);
  const std::vector<double> density = line_density(p, -6.0, 6.0, 64);
  double total = 0.0;
  for (double v : density) total += v * (12.0 / 64);
  EXPECT_NEAR(total, 2.5, 0.01);  // ±6σ contains ~all charge
}

TEST(Diagnostics, LineDensityPeaksAtCenter) {
  util::Rng rng(5);
  const ParticleSet p = sample_gaussian_bunch(50000, BeamParams{}, rng);
  const std::vector<double> density = line_density(p, -6.0, 6.0, 48);
  const std::size_t peak =
      static_cast<std::size_t>(std::max_element(density.begin(),
                                                density.end()) -
                               density.begin());
  EXPECT_NEAR(static_cast<double>(peak), 23.5, 3.0);
}

TEST(Diagnostics, LineDensityValidatesArgs) {
  EXPECT_THROW(line_density(ParticleSet{}, 1.0, 1.0, 4), bd::CheckError);
  EXPECT_THROW(line_density(ParticleSet{}, 0.0, 1.0, 0), bd::CheckError);
}

TEST(Diagnostics, ProjectionsConsistentWithGridCharge) {
  util::Rng rng(6);
  BeamParams params;
  params.charge = 3.0;
  const ParticleSet p = sample_gaussian_bunch(30000, params, rng);
  Grid2D rho(make_centered_grid(33, 33, 6.0, 6.0));
  deposit(p, DepositScheme::kTSC, rho);

  const std::vector<double> lambda = project_longitudinal(rho);
  double total = 0.0;
  for (double v : lambda) total += v * rho.spec().dx;
  EXPECT_NEAR(total, grid_charge(rho), 1e-9);
  EXPECT_NEAR(total, 3.0, 0.05);

  const std::vector<double> mu = project_transverse(rho);
  double total_t = 0.0;
  for (double v : mu) total_t += v * rho.spec().dy;
  EXPECT_NEAR(total_t, total, 1e-9);
}

TEST(Diagnostics, FractionInInterior) {
  ParticleSet p(4);
  p.s()[0] = 0.0;  p.y()[0] = 0.0;   // inside
  p.s()[1] = 5.9;  p.y()[1] = 0.0;   // outside interior (guard ring)
  p.s()[2] = -7.0; p.y()[2] = 0.0;   // outside grid
  p.s()[3] = 1.0;  p.y()[3] = -1.0;  // inside
  const GridSpec spec = make_centered_grid(13, 13, 6.0, 6.0);
  EXPECT_DOUBLE_EQ(fraction_in_interior(p, spec), 0.5);
  EXPECT_DOUBLE_EQ(fraction_in_interior(ParticleSet{}, spec), 1.0);
}

}  // namespace
}  // namespace bd::beam
