/// Tests for the online (sliding-window) predictor.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/online.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bd::ml {
namespace {

/// One step of training data: y = slope·x sampled on a 1-D grid.
void feed_step(OnlinePredictor& predictor, double slope, std::size_t n = 64) {
  std::vector<double> features, targets;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    features.push_back(x);
    targets.push_back(slope * x);
  }
  predictor.observe_step(features, targets, n);
}

TEST(Online, NotReadyBeforeFirstObservation) {
  OnlinePredictor predictor(PredictorKind::kKnn, 1, 1);
  EXPECT_FALSE(predictor.ready());
  std::vector<double> out(1);
  EXPECT_THROW(predictor.predict_into(std::vector<double>{0.5}, out),
               bd::CheckError);
}

TEST(Online, LearnsAfterOneStep) {
  OnlinePredictor predictor(PredictorKind::kKnn, 1, 1);
  feed_step(predictor, 2.0);
  ASSERT_TRUE(predictor.ready());
  std::vector<double> out(1);
  predictor.predict_into(std::vector<double>{0.5}, out);
  EXPECT_NEAR(out[0], 1.0, 0.1);
}

TEST(Online, WindowOneForgetsOldSteps) {
  OnlinePredictor predictor(PredictorKind::kKnn, 1, 1, /*window=*/1);
  feed_step(predictor, 2.0);
  feed_step(predictor, -4.0);  // replaces the old data entirely
  std::vector<double> out(1);
  predictor.predict_into(std::vector<double>{0.5}, out);
  EXPECT_NEAR(out[0], -2.0, 0.2);
}

TEST(Online, LargerWindowBlendsSteps) {
  OnlinePredictor predictor(PredictorKind::kKnn, 1, 1, /*window=*/2);
  feed_step(predictor, 0.0);
  feed_step(predictor, 4.0);
  std::vector<double> out(1);
  // Query between samples so the exact-match shortcut does not trigger:
  // neighbors come from both steps, blending slopes 0 and 4.
  predictor.predict_into(std::vector<double>{0.51}, out);
  EXPECT_GT(out[0], 0.3);
  EXPECT_LT(out[0], 1.8);
}

TEST(Online, RidgeBackendWorks) {
  OnlinePredictor predictor(PredictorKind::kRidge, 1, 1);
  feed_step(predictor, 3.0);
  EXPECT_STREQ(predictor.model_name(), "ridge");
  std::vector<double> out(1);
  predictor.predict_into(std::vector<double>{0.25}, out);
  EXPECT_NEAR(out[0], 0.75, 1e-3);
}

TEST(Online, TracksTrainingTime) {
  OnlinePredictor predictor(PredictorKind::kKnn, 1, 1);
  feed_step(predictor, 1.0, 512);
  EXPECT_GE(predictor.last_train_seconds(), 0.0);
}

TEST(Online, MultiOutputTargets) {
  OnlinePredictor predictor(PredictorKind::kKnn, 1, 3);
  std::vector<double> features, targets;
  for (int i = 0; i < 32; ++i) {
    const double x = i / 32.0;
    features.push_back(x);
    targets.push_back(x);
    targets.push_back(2 * x);
    targets.push_back(1.0 - x);
  }
  predictor.observe_step(features, targets, 32);
  std::vector<double> out(3);
  predictor.predict_into(std::vector<double>{0.5}, out);
  EXPECT_NEAR(out[0], 0.5, 0.1);
  EXPECT_NEAR(out[1], 1.0, 0.2);
  EXPECT_NEAR(out[2], 0.5, 0.1);
}

TEST(Online, ValidatesObservationSizes) {
  OnlinePredictor predictor(PredictorKind::kKnn, 2, 1);
  EXPECT_THROW(
      predictor.observe_step(std::vector<double>{1.0}, std::vector<double>{1.0},
                             1),
      bd::CheckError);
}

TEST(Online, ConstructorValidates) {
  EXPECT_THROW(OnlinePredictor(PredictorKind::kKnn, 0, 1), bd::CheckError);
  EXPECT_THROW(OnlinePredictor(PredictorKind::kKnn, 1, 0), bd::CheckError);
  EXPECT_THROW(OnlinePredictor(PredictorKind::kKnn, 1, 1, 0), bd::CheckError);
}

}  // namespace
}  // namespace bd::ml
