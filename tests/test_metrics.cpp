/// Tests for the profiler-style kernel metrics.

#include <gtest/gtest.h>

#include "simt/metrics.hpp"

namespace bd::simt {
namespace {

TEST(Metrics, WarpExecutionEfficiency) {
  KernelMetrics m;
  m.lane_slots = 64;
  m.active_lane_slots = 48;
  EXPECT_DOUBLE_EQ(m.warp_execution_efficiency(), 0.75);
}

TEST(Metrics, WarpEfficiencyDefaultsToOne) {
  KernelMetrics m;
  EXPECT_DOUBLE_EQ(m.warp_execution_efficiency(), 1.0);
}

TEST(Metrics, GlobalLoadEfficiencyCanExceedOne) {
  KernelMetrics m;
  m.bytes_requested = 256;
  m.bytes_transferred = 128;
  EXPECT_DOUBLE_EQ(m.global_load_efficiency(), 2.0);
}

TEST(Metrics, BranchDivergenceRate) {
  KernelMetrics m;
  m.branch_events = 10;
  m.divergent_branches = 3;
  EXPECT_DOUBLE_EQ(m.branch_divergence_rate(), 0.3);
  KernelMetrics none;
  EXPECT_DOUBLE_EQ(none.branch_divergence_rate(), 0.0);
}

TEST(Metrics, ArithmeticIntensity) {
  KernelMetrics m;
  m.flops = 2200;
  m.dram_bytes = 1000;
  EXPECT_DOUBLE_EQ(m.arithmetic_intensity(), 2.2);
  KernelMetrics no_traffic;
  no_traffic.flops = 5;
  EXPECT_DOUBLE_EQ(no_traffic.arithmetic_intensity(), 0.0);
}

TEST(Metrics, GflopsFromModeledTime) {
  KernelMetrics m;
  m.flops = 4'000'000'000ull;
  m.modeled_seconds = 2.0;
  EXPECT_DOUBLE_EQ(m.gflops(), 2.0);
  KernelMetrics untimed;
  untimed.flops = 100;
  EXPECT_DOUBLE_EQ(untimed.gflops(), 0.0);
}

TEST(Metrics, MergeSumsAllCounters) {
  KernelMetrics a;
  a.flops = 10;
  a.warp_instructions = 2;
  a.active_lane_slots = 30;
  a.lane_slots = 64;
  a.branch_events = 1;
  a.divergent_branches = 1;
  a.load_instructions = 3;
  a.bytes_requested = 100;
  a.bytes_transferred = 200;
  a.l1_transactions = 4;
  a.l1 = CacheStats{3, 1};
  a.l2 = CacheStats{2, 2};
  a.dram_bytes = 64;
  a.modeled_seconds = 0.5;

  KernelMetrics b = a;
  a += b;
  EXPECT_EQ(a.flops, 20u);
  EXPECT_EQ(a.warp_instructions, 4u);
  EXPECT_EQ(a.active_lane_slots, 60u);
  EXPECT_EQ(a.lane_slots, 128u);
  EXPECT_EQ(a.l1.hits, 6u);
  EXPECT_EQ(a.l2.misses, 4u);
  EXPECT_EQ(a.dram_bytes, 128u);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, 1.0);
}

TEST(Metrics, SummaryMentionsKeyMetrics) {
  KernelMetrics m;
  m.flops = 1234;
  const std::string s = m.summary();
  EXPECT_NE(s.find("1234"), std::string::npos);
  EXPECT_NE(s.find("warp execution eff"), std::string::npos);
  EXPECT_NE(s.find("L1 hit rate"), std::string::npos);
  EXPECT_NE(s.find("arithmetic intensity"), std::string::npos);
}

}  // namespace
}  // namespace bd::simt
