/// Tests for Gauss–Legendre quadrature.

#include <gtest/gtest.h>

#include <cmath>

#include "quad/gauss.hpp"
#include "util/check.hpp"

namespace bd::quad {
namespace {

TEST(Gauss, WeightsSumToTwo) {
  for (int n : {1, 2, 3, 5, 8, 16, 31}) {
    const GaussRule rule = gauss_legendre(n);
    double sum = 0.0;
    for (double w : rule.weights) sum += w;
    EXPECT_NEAR(sum, 2.0, 1e-12) << "n=" << n;
  }
}

TEST(Gauss, NodesSymmetricAndSorted) {
  const GaussRule rule = gauss_legendre(7);
  for (int i = 0; i < 7; ++i) {
    EXPECT_NEAR(rule.nodes[static_cast<std::size_t>(i)],
                -rule.nodes[static_cast<std::size_t>(6 - i)], 1e-13);
    if (i > 0) {
      EXPECT_GT(rule.nodes[static_cast<std::size_t>(i)],
                rule.nodes[static_cast<std::size_t>(i - 1)]);
    }
  }
}

TEST(Gauss, TwoPointNodesKnown) {
  const GaussRule rule = gauss_legendre(2);
  EXPECT_NEAR(rule.nodes[1], 1.0 / std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(rule.weights[0], 1.0, 1e-14);
}

// n-point Gauss is exact for polynomials up to degree 2n-1.
class GaussExactness : public ::testing::TestWithParam<int> {};

TEST_P(GaussExactness, PolynomialExactness) {
  const int n = GetParam();
  for (int d = 0; d <= 2 * n - 1; ++d) {
    const double v = gauss_integrate(
        [d](double x) { return std::pow(x, d); }, 0.0, 1.0, n);
    EXPECT_NEAR(v, 1.0 / (d + 1), 1e-12) << "n=" << n << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussExactness,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12));

TEST(Gauss, IntegratesExponentialAccurately) {
  const double v =
      gauss_integrate([](double x) { return std::exp(x); }, 0.0, 1.0, 12);
  EXPECT_NEAR(v, std::exp(1.0) - 1.0, 1e-14);
}

TEST(Gauss, AdaptiveHitsToleranceOnPeakedFunction) {
  // Narrow Gaussian: naive low-order rules fail, adaptive must resolve it.
  auto f = [](double x) {
    const double z = (x - 0.37) / 0.01;
    return std::exp(-0.5 * z * z);
  };
  const double exact = 0.01 * std::sqrt(2.0 * M_PI);  // well inside [0,1]
  const double v = gauss_integrate_to_tolerance(f, 0.0, 1.0, 1e-12);
  EXPECT_NEAR(v, exact, 1e-10);
}

TEST(Gauss, AdaptiveHandlesIntegrableSingularity) {
  // ∫₀¹ x^(-1/3) dx = 3/2.
  auto f = [](double x) { return std::pow(x + 1e-300, -1.0 / 3.0); };
  const double v = gauss_integrate_to_tolerance(f, 0.0, 1.0, 1e-10);
  EXPECT_NEAR(v, 1.5, 1e-6);
}

TEST(Gauss, AdaptiveEmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(
      gauss_integrate_to_tolerance([](double) { return 1.0; }, 2.0, 2.0,
                                   1e-10),
      0.0);
}

TEST(Gauss, InvalidArgumentsThrow) {
  EXPECT_THROW(gauss_legendre(0), bd::CheckError);
  EXPECT_THROW(gauss_integrate_to_tolerance([](double) { return 1.0; }, 0.0,
                                            1.0, 0.0),
               bd::CheckError);
}

}  // namespace
}  // namespace bd::quad
