/// Tests for the COMPUTE-PARTITION transforms (§III-C2).

#include <gtest/gtest.h>

#include "core/forecast.hpp"
#include "quad/partition.hpp"

namespace bd::core {
namespace {

TEST(RoundPow2, NearestInLogSpace) {
  EXPECT_EQ(round_pow2(0.0), 1u);
  EXPECT_EQ(round_pow2(1.0), 1u);
  EXPECT_EQ(round_pow2(1.3), 1u);
  EXPECT_EQ(round_pow2(1.5), 2u);
  EXPECT_EQ(round_pow2(3.0), 4u);   // log2(3)=1.58 -> 2 -> 4
  EXPECT_EQ(round_pow2(5.0), 4u);   // log2(5)=2.32 -> 2 -> 4
  EXPECT_EQ(round_pow2(6.0), 8u);   // log2(6)=2.58 -> 3 -> 8
  EXPECT_EQ(round_pow2(16.0), 16u);
  EXPECT_EQ(round_pow2(100.0), 128u);
}

TEST(UniformTransform, ProducesDyadicCounts) {
  const std::vector<double> pattern{1.0, 3.0, 7.0};
  const std::vector<double> breaks =
      pattern_to_partition(pattern, 1.0, 3.0, /*headroom=*/1.0);
  EXPECT_TRUE(quad::is_valid_partition(breaks));
  const auto counts = quad::count_per_subregion(breaks, 1.0, 3);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 4u);
  EXPECT_EQ(counts[2], 8u);
}

TEST(UniformTransform, HeadroomProvisionsUp) {
  const std::vector<double> pattern{3.0};
  // 1.5 × 3 = 4.5 -> nearest pow2 is 4; 1.5 × 6 = 9 -> 8.
  const auto a = pattern_to_partition(pattern, 1.0, 1.0, 1.5);
  EXPECT_EQ(quad::count_per_subregion(a, 1.0, 1)[0], 4u);
  const auto b = pattern_to_partition(std::vector<double>{6.0}, 1.0, 1.0, 1.5);
  EXPECT_EQ(quad::count_per_subregion(b, 1.0, 1)[0], 8u);
}

TEST(UniformTransform, ClipsAtRmax) {
  const std::vector<double> pattern{2.0, 2.0, 2.0, 2.0};
  const std::vector<double> breaks =
      pattern_to_partition(pattern, 1.0, 2.5, 1.0);
  EXPECT_DOUBLE_EQ(breaks.back(), 2.5);
  EXPECT_TRUE(quad::is_valid_partition(breaks));
}

TEST(UniformTransform, SimilarPatternsShareBreakpoints) {
  // The dyadic property: the finer partition contains the coarser one, so
  // MERGE-LISTS of cluster members stays tight.
  const auto coarse =
      pattern_to_partition(std::vector<double>{4.0}, 1.0, 1.0, 1.0);
  const auto fine =
      pattern_to_partition(std::vector<double>{8.0}, 1.0, 1.0, 1.0);
  const auto merged = quad::merge_partitions(coarse, fine);
  EXPECT_EQ(merged, fine);
}

TEST(AdaptiveTransform, RefinesPreviousPartition) {
  const std::vector<double> previous{0.0, 0.5, 1.0, 2.0};
  const std::vector<double> pattern{4.0, 2.0};
  const std::vector<double> refined = pattern_to_partition_adaptive(
      pattern, previous, 1.0, 2.0, /*headroom=*/1.0);
  EXPECT_TRUE(quad::is_valid_partition(refined));
  const auto counts = quad::count_per_subregion(refined, 1.0, 2);
  EXPECT_GE(counts[0], 4u);
  EXPECT_GE(counts[1], 2u);
  // Previous breakpoints survive (refinement, not regeneration).
  bool has_half = false;
  for (double b : refined) has_half |= (b == 0.5);
  EXPECT_TRUE(has_half);
}

TEST(AdaptiveTransform, FallsBackWithoutPrevious) {
  const std::vector<double> pattern{2.0, 2.0};
  EXPECT_EQ(pattern_to_partition_adaptive(pattern, {}, 1.0, 2.0, 1.0),
            pattern_to_partition(pattern, 1.0, 2.0, 1.0));
}

// Property: for any pattern, the generated partition spans [0, r_max] and
// provisions at least the rounded predicted count per subregion.
class TransformSweep : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(TransformSweep, ProvisionsAtLeastPrediction) {
  const auto pattern = GetParam();
  const double r_max = static_cast<double>(pattern.size());
  const auto breaks = pattern_to_partition(pattern, 1.0, r_max, 1.0);
  EXPECT_TRUE(quad::is_valid_partition(breaks));
  EXPECT_DOUBLE_EQ(breaks.front(), 0.0);
  EXPECT_DOUBLE_EQ(breaks.back(), r_max);
  const auto counts = quad::count_per_subregion(
      breaks, 1.0, static_cast<std::uint32_t>(pattern.size()));
  for (std::size_t j = 0; j < pattern.size(); ++j) {
    EXPECT_EQ(counts[j], round_pow2(pattern[j])) << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, TransformSweep,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{0.2, 1.7, 9.3},
                      std::vector<double>{32.0, 16.0, 8.0, 4.0},
                      std::vector<double>{0.0, 0.0, 64.0},
                      std::vector<double>{2.5, 2.5, 2.5, 2.5, 2.5}));

}  // namespace
}  // namespace bd::core
