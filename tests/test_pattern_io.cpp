/// Tests for access-pattern persistence.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/pattern_io.hpp"
#include "util/check.hpp"

namespace bd::core {
namespace {

class PatternIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "bd_patterns_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(PatternIoTest, RoundTrip) {
  PatternField field(5, 3);
  for (std::size_t p = 0; p < 5; ++p) {
    auto row = field.at(p);
    for (std::size_t j = 0; j < 3; ++j) {
      row[j] = static_cast<double>(p) + 0.25 * static_cast<double>(j);
    }
  }
  save_pattern_field(field, path_);
  const PatternField loaded = load_pattern_field(path_);
  ASSERT_EQ(loaded.points(), 5u);
  ASSERT_EQ(loaded.subregions(), 3u);
  for (std::size_t p = 0; p < 5; ++p) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(loaded.at(p)[j], field.at(p)[j]);
    }
  }
}

TEST_F(PatternIoTest, EmptyFieldRoundTrips) {
  save_pattern_field(PatternField(0, 4), path_);
  const PatternField loaded = load_pattern_field(path_);
  EXPECT_EQ(loaded.points(), 0u);
  EXPECT_EQ(loaded.subregions(), 4u);
}

TEST_F(PatternIoTest, MissingFileThrows) {
  EXPECT_THROW(load_pattern_field("/nonexistent/patterns.csv"),
               bd::CheckError);
}

TEST_F(PatternIoTest, MalformedRowThrows) {
  {
    std::ofstream out(path_);
    out << "point,n0,n1\n0,1.0\n";  // short row
  }
  EXPECT_THROW(load_pattern_field(path_), bd::CheckError);
}

TEST_F(PatternIoTest, NonNumericCellThrowsWithContext) {
  {
    std::ofstream out(path_);
    out << "point,n0,n1\n0,1.0,2.0\n1,oops,2.0\n";
  }
  try {
    load_pattern_field(path_);
    FAIL() << "expected rejection of non-numeric cell";
  } catch (const bd::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 1"), std::string::npos) << what;
    EXPECT_NE(what.find("column 1"), std::string::npos) << what;
    EXPECT_NE(what.find("oops"), std::string::npos) << what;
  }
}

TEST_F(PatternIoTest, TrailingGarbageInCellThrows) {
  {
    std::ofstream out(path_);
    out << "point,n0\n0,1.5x\n";  // std::stod would accept this silently
  }
  EXPECT_THROW(load_pattern_field(path_), bd::CheckError);
}

TEST_F(PatternIoTest, NanCountThrows) {
  {
    std::ofstream out(path_);
    out << "point,n0,n1\n0,nan,2.0\n";
  }
  EXPECT_THROW(load_pattern_field(path_), bd::CheckError);
}

TEST_F(PatternIoTest, NegativeCountThrows) {
  {
    std::ofstream out(path_);
    out << "point,n0,n1\n0,1.0,-3.0\n";
  }
  EXPECT_THROW(load_pattern_field(path_), bd::CheckError);
}

TEST_F(PatternIoTest, TruncatedMidRowThrows) {
  {
    std::ofstream out(path_);
    out << "point,n0,n1\n0,1.0,2.0\n1,4.0";  // file cut mid-row
  }
  EXPECT_THROW(load_pattern_field(path_), bd::CheckError);
}

TEST_F(PatternIoTest, EmptyFileThrows) {
  { std::ofstream out(path_); }
  EXPECT_THROW(load_pattern_field(path_), bd::CheckError);
}

}  // namespace
}  // namespace bd::core
